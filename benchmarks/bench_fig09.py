"""Fig. 9 / E3 / C3: fine-grained access favours small object sizes."""

from bench_util import run_experiment

from repro.bench import fig09


def test_fig09_hashmap_object_size(benchmark):
    result = run_experiment(benchmark, fig09)
    # At every memory-constrained point, smaller objects win.
    for i in range(len(result.x_values) - 1):
        assert result.get("256B").values[i] > result.get("4KB").values[i]
