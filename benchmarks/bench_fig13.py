"""Fig. 13 / E7 / C7: I/O amplification at small access granularity."""

from bench_util import run_experiment

from repro.bench import fig13


def test_fig13_io_amplification(benchmark):
    result = run_experiment(benchmark, fig13)
    tfm = result.get("TrackFM 64B data (GB)").values
    fsw = result.get("Fastswap data (GB)").values
    for t, f in zip(tfm[:-1], fsw[:-1]):
        assert f > 20 * t
