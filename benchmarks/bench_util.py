"""Benchmark-suite plumbing.

Every benchmark runs its experiment once per measured round (the
experiments are deterministic simulations — variance comes only from
the host, so one round with a few iterations is plenty) and attaches
the reproduced rows/series to ``benchmark.extra_info`` so the numbers
appear in pytest-benchmark's JSON output.  Each benchmark also prints
the experiment's table so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's figures as text.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` and record its ExperimentResult."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["series"] = {
        s.name: s.values for s in result.series
    }
    benchmark.extra_info["notes"] = result.notes
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        record_metrics(benchmark, metrics)
    print()
    print(result.to_text())
    return result


def record_metrics(benchmark, metrics):
    """Attach runtime counters in the canonical ``Metrics.as_dict`` form.

    The same serialization the trace layer embeds in Chrome traces'
    ``otherData``, so benchmark JSON and trace files agree field for field.
    """
    benchmark.extra_info["metrics"] = metrics.as_dict()
