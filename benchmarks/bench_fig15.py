"""Fig. 15 / E9 / C9: chunking low-density loops hurts the analytics app."""

from bench_util import run_experiment

from repro.bench import fig15


def test_fig15_chunking_policies(benchmark):
    result = run_experiment(benchmark, fig15)
    filt = result.get("high-density loops only").values
    base = result.get("baseline").values
    alll = result.get("all loops").values
    assert all(f < b for f, b in zip(filt, base))
    assert alll[-1] > base[-1]
