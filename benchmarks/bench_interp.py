"""Interpreter microbenchmarks: stream + hashmap + pointer-chase.

Each workload is measured at fixed seeds in two ways, mirroring
``repro.bench.regress``:

* wall-clock ops/sec of the decoded engine on the raw module (with the
  decoded-vs-legacy speedup attached — the decode cache's reason to
  exist, asserted >= 3x on the stream workload);
* the exact simulated-metric fingerprint of a TrackFM-compiled run,
  asserted byte-identical to the checked-in
  ``benchmarks/baselines/BENCH_interp_*.json`` (the CI gate runs the
  same comparison via ``python -m repro.bench regress --check``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.regress import (
    WORKLOADS,
    baseline_path,
    fingerprint_run,
    measure_ops,
)

BASELINE_DIR = Path(__file__).parent / "baselines"

#: Acceptance floor for the pre-decode overhaul (stream microbench).
MIN_STREAM_SPEEDUP = 3.0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_interp_ops_per_sec(benchmark, name):
    """Steady-state decoded-engine interpretation rate."""
    build = WORKLOADS[name]

    def run():
        return measure_ops(build, "decoded", repeats=3)

    decoded = benchmark.pedantic(run, rounds=1, iterations=1)
    legacy = measure_ops(build, "legacy", repeats=3)
    speedup = decoded["ops_per_sec"] / legacy["ops_per_sec"]
    benchmark.extra_info["ops_per_sec"] = decoded["ops_per_sec"]
    benchmark.extra_info["legacy_ops_per_sec"] = legacy["ops_per_sec"]
    benchmark.extra_info["speedup_vs_legacy"] = speedup
    benchmark.extra_info["interp_steps"] = decoded["steps"]
    print(
        f"\n{name}: {decoded['ops_per_sec']:,.0f} ops/s decoded, "
        f"{legacy['ops_per_sec']:,.0f} ops/s legacy ({speedup:.2f}x)"
    )
    if name == "stream":
        assert speedup >= MIN_STREAM_SPEEDUP, (
            f"decoded engine only {speedup:.2f}x over legacy on stream "
            f"(floor {MIN_STREAM_SPEEDUP}x)"
        )


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_interp_fingerprint_matches_baseline(benchmark, name):
    """Simulated metrics must match the recorded baseline exactly."""
    path = baseline_path(BASELINE_DIR, name)
    if not path.exists():
        pytest.skip(f"no baseline at {path}; run: python -m repro.bench regress --record")
    baseline = json.loads(path.read_text())

    fingerprint = benchmark.pedantic(
        fingerprint_run, args=(WORKLOADS[name],), rounds=1, iterations=1
    )
    benchmark.extra_info["fingerprint"] = fingerprint
    assert fingerprint == baseline["fingerprint"], (
        f"{name}: simulated-metric fingerprint drifted from {path}; if the "
        "change is intentional, re-record with "
        "`python -m repro.bench regress --record` and commit the diff"
    )
