"""Micro-check: the no-fault configuration costs one attribute check.

The resilience layer's hot-path contract (see ``repro.net.faults``)
mirrors the tracer's: a link without a fault schedule pays exactly one
attribute load + ``is None`` test in :meth:`NetworkLink.transfer`, and a
backend without a retry policy or breaker takes a two-check fast path in
``fetch``/``evict``.  This file asserts the structural facts (a healthy
run touches none of the resilience machinery) and bounds the timing
ratio, so a change that does real work on the fault-free path fails the
suite instead of silently taxing every simulation.
"""

from __future__ import annotations

import time

from repro.net.backends import make_tcp_backend
from repro.net.faults import FaultPlan, RetryPolicy
from repro.net.link import NetworkLink, TransferDirection

N_TRANSFERS = 50_000
#: A faults-free link may cost at most this factor over the pre-feature
#: arithmetic.  The true cost is one attribute check; 1.5x leaves room
#: for timer noise on loaded CI machines while still catching any change
#: that does real work (rolling, hashing, allocation) when disabled.
MAX_DISABLED_RATIO = 1.5


def _drive(link: NetworkLink, n: int = N_TRANSFERS) -> float:
    started = time.perf_counter()
    for _ in range(n):
        link.transfer(256, TransferDirection.FETCH)
    return time.perf_counter() - started


def _best_of(fn, rounds: int = 5) -> float:
    return min(fn() for _ in range(rounds))


def test_default_configuration_has_no_fault_machinery():
    """Structural half: nothing resilience-shaped exists by default."""
    backend = make_tcp_backend()
    assert backend.link.faults is None
    assert backend.retry_policy is None
    assert backend.breaker is None
    assert not backend.resilient
    # And a healthy fetch leaves zero resilience traces behind.
    backend.fetch(4096)
    assert backend.link.faults is None


def test_noop_schedule_matches_no_schedule_cost_model():
    """A no-op plan's schedule returns the same cycle costs as no plan."""
    plain = NetworkLink(latency_cycles=1000.0)
    armed = NetworkLink(latency_cycles=1000.0)
    armed.faults = FaultPlan().schedule()
    for size in (0, 64, 4096):
        assert plain.transfer(size, TransferDirection.FETCH) == armed.transfer(
            size, TransferDirection.FETCH
        )


def test_resilient_fast_path_skips_retry_loop():
    """Policy installed + healthy link: cost is exactly the link cost."""
    healthy = make_tcp_backend()
    resilient = make_tcp_backend()
    resilient.retry_policy = RetryPolicy()
    assert resilient.fetch(4096) == healthy.fetch(4096)
    assert resilient.retry_policy.retries_used == 0


def test_no_fault_transfer_is_one_attribute_check():
    """Timing half: the ``faults is None`` gate is unmeasurable."""

    class PreFeatureLink(NetworkLink):
        """The transfer arithmetic without the faults gate (baseline)."""

        def transfer(self, size_bytes, direction, depth=1):
            cost = (
                self.transfer_cycles(size_bytes)
                if depth == 1
                else self.pipelined_cycles(size_bytes, depth)
            )
            self.stats.messages += 1
            if direction is TransferDirection.FETCH:
                self.stats.bytes_fetched += size_bytes
            else:
                self.stats.bytes_evicted += size_bytes
            self.stats.busy_cycles += cost
            return cost

    baseline = _best_of(lambda: _drive(PreFeatureLink(latency_cycles=1000.0)))
    current = _best_of(lambda: _drive(NetworkLink(latency_cycles=1000.0)))

    ratio = current / baseline if baseline > 0 else 1.0
    assert ratio < MAX_DISABLED_RATIO, (
        f"fault-free transfer slowed {ratio:.2f}x over the gate-free "
        f"baseline (limit {MAX_DISABLED_RATIO}x): something does work "
        f"when no faults are installed"
    )


def test_armed_schedule_actually_rolls():
    """Sanity counterpart: with a real plan the schedule does engage."""
    link = NetworkLink(latency_cycles=1000.0)
    link.faults = FaultPlan(seed=1, jitter_cycles=50.0).schedule()
    for _ in range(100):
        link.transfer(256, TransferDirection.FETCH)
    assert link.faults.stats.messages == 100
    assert link.faults.stats.extra_cycles > 0.0


def test_default_configuration_has_no_integrity_machinery():
    """Checksums disabled = nothing integrity-shaped exists or costs.

    The integrity layer's hot-path contract matches the fault layer's:
    with no checker attached, ``fetch`` pays one ``is None`` check, an
    ``obj_id`` argument is inert, and costs are bit-identical to the
    pre-feature arithmetic — so checked-in regress baselines need no
    update when integrity ships disabled.
    """
    backend = make_tcp_backend()
    assert backend.integrity is None
    plain_cost = backend.fetch(4096)
    assert backend.integrity is None  # a fetch attaches nothing
    # Naming an object on an integrity-free backend changes no cost.
    assert backend.fetch(4096, obj_id=7) == plain_cost
    assert backend.verify_payload(7, 4096) == 0.0


def test_clean_metrics_emit_no_integrity_counters():
    """Sparse-counter half: disabled integrity leaves no metric deltas."""
    from repro.sim.metrics import Metrics
    from repro.trace.drivers import run_traced

    integrity_keys = {
        "corruptions_detected", "corruptions_repaired",
        "quarantined_objects", "journal_replays",
    }
    assert not integrity_keys & set(Metrics().as_dict())
    # A whole clean run emits none of them either — the exact dict the
    # golden traces and regress baselines snapshot.
    result = run_traced("stream", "aifm", seed=0)
    assert not integrity_keys & set(result.metrics.as_dict())
