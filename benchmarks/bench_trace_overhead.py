"""Micro-check: a disabled tracer costs one attribute check, nothing more.

The hot-path contract (see ``repro.trace.tracer``) is that every
instrumentation site compiles down to::

    tracer = self.tracer
    if tracer.enabled:
        ...

so with the shared :data:`~repro.trace.NULL_TRACER` attached the whole
trace layer must be unmeasurable against simulator noise.  This file
both *measures* the ratio (``--benchmark-only`` reports it) and
*asserts* a generous bound on it, so a regression that puts real work
on the disabled path fails the suite instead of silently taxing every
simulation.
"""

from __future__ import annotations

import time

from repro.aifm.pool import PoolConfig
from repro.machine.costs import AccessKind
from repro.trace import NULL_TRACER, Tracer
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

N_ACCESSES = 20_000
#: Disabled tracing may cost at most this factor over no tracer attached.
#: The true cost is one attribute check (~2% on this path); 1.5x leaves
#: room for timer noise on loaded CI machines while still catching any
#: change that does real work (allocation, formatting) when disabled.
MAX_DISABLED_RATIO = 1.5


def _runtime() -> TrackFMRuntime:
    return TrackFMRuntime(
        PoolConfig(object_size=256, local_memory=2 * KB, heap_size=1 * MB)
    )


def _drive(runtime: TrackFMRuntime, n: int = N_ACCESSES) -> float:
    ptr = runtime.tfm_malloc(16 * KB)
    started = time.perf_counter()
    for i in range(n):
        runtime.access(ptr + (i * 8) % (16 * KB), AccessKind.READ)
    return time.perf_counter() - started


def _best_of(fn, rounds: int = 5) -> float:
    return min(fn() for _ in range(rounds))


def test_disabled_tracer_is_one_attribute_check():
    baseline = _best_of(lambda: _drive(_runtime()))

    disabled = _runtime()
    disabled.set_tracer(NULL_TRACER)
    with_null = _best_of(lambda: _drive(disabled))

    ratio = with_null / baseline if baseline > 0 else 1.0
    assert ratio < MAX_DISABLED_RATIO, (
        f"disabled tracer slowed the guard path {ratio:.2f}x "
        f"(limit {MAX_DISABLED_RATIO}x): something does work while disabled"
    )


def test_enabled_tracer_actually_records():
    runtime = _runtime()
    tracer = Tracer()
    runtime.set_tracer(tracer)
    _drive(runtime, n=2_000)
    assert len(tracer.events) >= 2_000  # every access guards at least once


def test_null_tracer_call_overhead_bounded():
    """Even *un-gated* NullTracer calls stay cheap (cold paths use them)."""
    started = time.perf_counter()
    for _ in range(N_ACCESSES):
        if NULL_TRACER.enabled:
            raise AssertionError("NULL_TRACER must be disabled")
    gate_cost = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(N_ACCESSES):
        NULL_TRACER.counter("c", 0.0, x=1)
    call_cost = time.perf_counter() - started
    # A no-op method call is ~5x an attribute check; 100x is pathological.
    assert call_cost < max(gate_cost, 1e-4) * 100
