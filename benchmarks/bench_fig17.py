"""Fig. 17 / E11 / C11: NAS benchmarks at 25% local memory, plus O1."""

from bench_util import run_experiment

from repro.bench import fig17a, fig17b


def test_fig17a_nas_slowdowns(benchmark):
    result = run_experiment(benchmark, fig17a)
    fsw = result.get("Fastswap").values
    tfm = result.get("TrackFM").values
    gm = result.x_values.index("GeoM.")
    assert tfm[gm] < fsw[gm]
    ft = result.x_values.index("FT")
    assert tfm[ft] > fsw[ft]  # the FT outlier


def test_fig17b_o1_preoptimization(benchmark):
    result = run_experiment(benchmark, fig17b)
    tfm = result.get("TFM").values
    o1 = result.get("TFM/O1").values
    assert all(a > 3 * b for a, b in zip(tfm, o1))
