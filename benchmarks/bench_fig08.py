"""Fig. 8 / E2 / C2: selective loop chunking on k-means."""

from bench_util import run_experiment

from repro.bench import fig08


def test_fig08_kmeans_selective_chunking(benchmark):
    result = run_experiment(benchmark, fig08)
    assert all(v < 0.4 for v in result.get("all loops").values)
    assert all(v > 1.8 for v in result.get("high-density loops only").values)
