"""Benchmark-suite conftest (helpers live in bench_util.py)."""
