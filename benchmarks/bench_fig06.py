"""Fig. 6 (E1 prerequisite): the loop-chunking cost-model crossover."""

from bench_util import run_experiment

from repro.bench import fig06


def test_fig06_chunking_crossover(benchmark):
    result = run_experiment(benchmark, fig06)
    emp = result.get("empirical").values
    xs = result.x_values
    assert emp[xs.index(512)] < 1.0 < emp[xs.index(896)]
