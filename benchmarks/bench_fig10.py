"""Fig. 10 / E4 / C4: spatial locality favours large object sizes."""

from bench_util import run_experiment

from repro.bench import fig10


def test_fig10_stream_object_size(benchmark):
    result = run_experiment(benchmark, fig10)
    for i in range(len(result.x_values)):
        assert result.get("4KB").values[i] > result.get("256B").values[i]
