"""Fig. 14 / E8 / C8: the analytics application across all three systems."""

from bench_util import run_experiment

from repro.bench import fig14


def test_fig14_analytics(benchmark):
    result = run_experiment(benchmark, fig14)
    tfm = result.get("TrackFM").values
    fsw = result.get("Fastswap").values
    aifm = result.get("AIFM").values
    # TrackFM near AIFM parity, well ahead of Fastswap under pressure.
    assert tfm[0] / aifm[0] < 1.3
    assert fsw[0] / tfm[0] > 1.8
