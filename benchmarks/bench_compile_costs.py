"""§4.6: code-size growth and compile-time overhead of the pipeline."""

from bench_util import run_experiment

from repro.bench import compile_costs


def test_compile_costs(benchmark):
    result = run_experiment(benchmark, compile_costs)
    sizes = result.get("code size (x)").values
    assert all(s >= 1.0 for s in sizes)
    assert sizes[-1] < 3.0
