"""Tables 1, 2 and 4: guard/fault microcosts and the system matrix."""

from bench_util import run_experiment

from repro.bench import table1, table2, table4


def test_table1_guard_costs(benchmark):
    result = run_experiment(benchmark, table1)
    assert result.get("Cached").values == [21, 21, 144, 159]


def test_table2_primitive_overheads(benchmark):
    result = run_experiment(benchmark, table2)
    assert result.get("Local Cost").values[0] == 1300


def test_table4_system_matrix(benchmark):
    result = run_experiment(benchmark, table4)
    idx = result.x_values.index("TrackFM (this work)")
    assert all(s.values[idx] == 1 for s in result.series)
