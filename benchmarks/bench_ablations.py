"""Ablations of TrackFM's design choices and the §5 extensions.

These go beyond the paper's figures: each isolates one mechanism
DESIGN.md calls out (state table, prefetch depth, evacuator policy,
chunk-setup cost) or prototypes a §5 direction (heap pruning, hybrid
placement).
"""

from bench_util import run_experiment

from repro.bench.ablations import (
    ablation_chase_prefetch,
    ablation_chunk_setup,
    ablation_evacuator_policy,
    ablation_heap_pruning,
    ablation_hybrid_memcached,
    ablation_multisize,
    ablation_offload,
    ablation_prefetch_depth,
    ablation_state_table,
)


def test_ablation_state_table(benchmark):
    result = run_experiment(benchmark, ablation_state_table)
    with_table, without = result.get("total cycles").values
    assert without > 1.3 * with_table


def test_ablation_prefetch_depth(benchmark):
    result = run_experiment(benchmark, ablation_prefetch_depth)
    costs = result.get("fetch cycles").values
    assert costs == sorted(costs, reverse=True)
    assert costs[0] / costs[-1] > 5  # deep pipelining pays


def test_ablation_evacuator_policy(benchmark):
    result = run_experiment(benchmark, ablation_evacuator_policy)
    clock = result.get("CLOCK (hot bits)").values
    lru = result.get("LRU").values
    # Hotness tracking never loses to plain LRU on zipf traffic.
    assert all(c <= l + 1e-9 for c, l in zip(clock, lru))


def test_ablation_chunk_setup(benchmark):
    result = run_experiment(benchmark, ablation_chunk_setup)
    crossovers = result.get("d*").values
    assert crossovers == sorted(crossovers)
    default_idx = result.x_values.index(12700)
    assert 650 < crossovers[default_idx] < 800


def test_ablation_heap_pruning(benchmark):
    result = run_experiment(benchmark, ablation_heap_pruning)
    base, pruned = result.get("cycles").values
    base_g, pruned_g = result.get("guards").values
    assert pruned < base
    assert pruned_g < base_g


def test_ablation_chase_prefetch(benchmark):
    result = run_experiment(benchmark, ablation_chase_prefetch)
    plain, chased = result.get("cycles").values
    plain_slow, chased_slow = result.get("slow guards").values
    assert chased < plain
    assert chased_slow < plain_slow


def test_ablation_offload(benchmark):
    result = run_experiment(benchmark, ablation_offload)
    fetch, offload = result.get("cycles").values
    fetch_bytes, offload_bytes = result.get("bytes fetched").values
    assert offload < fetch / 3
    assert offload_bytes < fetch_bytes / 100


def test_ablation_multisize(benchmark):
    result = run_experiment(benchmark, ablation_multisize)
    small, big, multi = result.get("cycles").values
    assert multi < small and multi < big
    small_bytes, big_bytes, multi_bytes = result.get("bytes fetched").values
    assert multi_bytes <= small_bytes < big_bytes


def test_ablation_hybrid_memcached(benchmark):
    result = run_experiment(benchmark, ablation_hybrid_memcached)
    hyb = result.get("Hybrid").values
    fsw = result.get("Fastswap").values
    tfm = result.get("TrackFM").values
    assert all(h > f for h, f in zip(hyb, fsw))
    assert all(h > 0.9 * t for h, t in zip(hyb, tfm))
