"""Ablations of TrackFM's design choices and the §5 extensions.

These go beyond the paper's figures: each isolates one mechanism
DESIGN.md calls out (state table, prefetch depth, evacuator policy,
chunk-setup cost) or prototypes a §5 direction (heap pruning, hybrid
placement).

The experiments and their acceptance checks now live in
:mod:`repro.ablate.legacy` (folded into the ablation harness — see
docs/ablations.md); this file is the thin benchmark wrapper that keeps
them in the pytest-benchmark suite, one test per folded experiment.
"""

import pytest

from bench_util import run_experiment

from repro.ablate.legacy import LEGACY_ABLATIONS


@pytest.mark.parametrize(
    "ablation", LEGACY_ABLATIONS, ids=lambda spec: spec.name
)
def test_ablation(benchmark, ablation):
    result = run_experiment(benchmark, ablation.experiment)
    ablation.check(result)
