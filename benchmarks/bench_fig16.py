"""Fig. 16 / E10 / C10: memcached under a zipf skew sweep."""

from bench_util import run_experiment

from repro.bench import fig16


def test_fig16_memcached(benchmark):
    result = run_experiment(benchmark, fig16)
    tfm = result.get("TrackFM KOps/s").values
    fsw = result.get("Fastswap KOps/s").values
    assert all(t > f for t, f in zip(tfm, fsw))
    # Fastswap converges at high skew (amortized faults).
    assert tfm[0] / fsw[0] > tfm[-1] / fsw[-1]
