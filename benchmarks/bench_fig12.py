"""Fig. 12 / E6 / C6: TrackFM vs Fastswap on STREAM."""

from bench_util import run_experiment

from repro.bench import fig12


def test_fig12_trackfm_vs_fastswap(benchmark):
    result = run_experiment(benchmark, fig12)
    for kernel in ("Sum", "Copy"):
        assert result.get(kernel).values[0] > 2.0
