"""Fig. 11 / E5 / C5: prefetching coupled with loop chunking."""

from bench_util import run_experiment

from repro.bench import fig11


def test_fig11_prefetch_speedup(benchmark):
    result = run_experiment(benchmark, fig11)
    for kernel in ("Sum", "Copy"):
        values = result.get(kernel).values
        assert values[0] > 2.0  # biggest win when remote-bound
        assert values[0] > values[-1]
