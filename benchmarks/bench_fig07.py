"""Fig. 7 / E1 / C1: loop chunking eliminates fast-path guards (STREAM)."""

from bench_util import run_experiment

from repro.bench import fig07


def test_fig07_stream_chunking_speedup(benchmark):
    result = run_experiment(benchmark, fig07)
    for kernel in ("Sum", "Copy"):
        values = result.get(kernel).values
        assert all(v > 1.2 for v in values)
        assert values[-1] > values[0]  # rises toward full local memory
