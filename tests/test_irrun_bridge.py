"""The interpreter <-> TrackFM runtime bridge (sim.irrun)."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.errors import SegmentationFault
from repro.ir import IRBuilder, I64, PTR, VOID, Module
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.machine.costs import GuardKind
from repro.sim.irrun import TWIN_BASE, TrackFMProgram
from repro.trackfm.pointer import decode_tfm_pointer, is_tfm_pointer
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


def make_runtime():
    return TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=32 * KB, heap_size=1 * MB),
        cache=AlwaysHitCache(),
    )


def build(body_fn, ret_ty=I64):
    m = Module("bridge")
    f = m.add_function("main", ret_ty)
    b = IRBuilder(f.add_block("entry"))
    value = body_fn(b)
    b.ret(value)
    return m


class TestTwinMapping:
    def test_malloc_returns_tagged_and_maps_twin(self):
        def body(b):
            return b.ptrtoint(b.call(PTR, "tfm_malloc", [Constant(I64, 64)]))

        program = TrackFMProgram(build(body), make_runtime())
        result = program.run("main")
        ptr = result.value & ((1 << 64) - 1)
        assert is_tfm_pointer(ptr)
        twin = TWIN_BASE + decode_tfm_pointer(ptr)
        assert program.interp.memory.is_mapped(twin)

    def test_twin_addr_helper(self):
        program = TrackFMProgram(Module("m"), make_runtime())
        # no functions needed for this helper
        from repro.trackfm.pointer import encode_tfm_pointer

        assert program.twin_addr(encode_tfm_pointer(0x123)) == TWIN_BASE + 0x123

    def test_free_unmaps_twin(self):
        def body(b):
            p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)])
            b.call(VOID, "tfm_free", [p])
            return b.ptrtoint(p)

        program = TrackFMProgram(build(body), make_runtime())
        result = program.run("main")
        twin = TWIN_BASE + decode_tfm_pointer(result.value & ((1 << 64) - 1))
        assert not program.interp.memory.is_mapped(twin)

    def test_guard_translates_to_twin(self):
        def body(b):
            p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)])
            canon = b.call(PTR, "tfm_guard_write", [p])
            b.store(55, canon)
            canon2 = b.call(PTR, "tfm_guard_read", [p])
            return b.load(I64, canon2)

        program = TrackFMProgram(build(body), make_runtime())
        assert program.run("main").value == 55

    def test_unguarded_dereference_faults(self):
        def body(b):
            p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)])
            return b.load(I64, p)  # raw non-canonical pointer

        program = TrackFMProgram(build(body), make_runtime())
        with pytest.raises(SegmentationFault):
            program.run("main")

    def test_guard_on_canonical_pointer_passes_through(self):
        def body(b):
            slot = b.alloca(8)
            b.store(9, slot)
            same = b.call(PTR, "tfm_guard_read", [slot])
            return b.load(I64, same)

        rt = make_runtime()
        program = TrackFMProgram(build(body), rt)
        assert program.run("main").value == 9
        assert rt.metrics.guard_count(GuardKind.CUSTODY_MISS) == 1

    def test_realloc_preserves_bytes_and_remaps(self):
        def body(b):
            p = b.call(PTR, "tfm_malloc", [Constant(I64, 16)])
            canon = b.call(PTR, "tfm_guard_write", [p])
            b.store(1234, canon)
            q = b.call(PTR, "tfm_realloc", [p, Constant(I64, 256)])
            canon2 = b.call(PTR, "tfm_guard_read", [q])
            return b.load(I64, canon2)

        program = TrackFMProgram(build(body), make_runtime())
        assert program.run("main").value == 1234

    def test_calloc(self):
        def body(b):
            p = b.call(PTR, "tfm_calloc", [Constant(I64, 4), Constant(I64, 8)])
            canon = b.call(PTR, "tfm_guard_read", [p])
            return b.load(I64, canon)

        program = TrackFMProgram(build(body), make_runtime())
        assert program.run("main").value == 0


class TestChunkIntrinsics:
    def test_chunk_stream_prefetch_flag(self):
        def body(b):
            p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)])
            b.call(VOID, "tfm_chunk_begin", [Constant(I64, 0), Constant(I64, 1)])
            canon = b.call(PTR, "tfm_chunk_deref", [p, Constant(I64, 0)])
            v = b.load(I64, canon)
            b.call(VOID, "tfm_chunk_end", [Constant(I64, 0)])
            return v

        rt = make_runtime()
        TrackFMProgram(build(body), rt).run("main")
        assert rt.metrics.guard_count(GuardKind.BOUNDARY) == 1
        assert rt.metrics.guard_count(GuardKind.LOCALITY) == 1

    def test_runtime_init_hook(self):
        def body(b):
            b.call(VOID, "tfm_runtime_init", [])
            return Constant(I64, 0)

        rt = make_runtime()
        TrackFMProgram(build(body), rt).run("main")
        assert rt.initialized

    def test_chunk_deref_custody_miss_passthrough(self):
        def body(b):
            slot = b.alloca(8)
            b.store(4, slot)
            b.call(VOID, "tfm_chunk_begin", [Constant(I64, 0), Constant(I64, 0)])
            same = b.call(PTR, "tfm_chunk_deref", [slot, Constant(I64, 0)])
            v = b.load(I64, same)
            b.call(VOID, "tfm_chunk_end", [Constant(I64, 0)])
            return v

        program = TrackFMProgram(build(body), make_runtime())
        assert program.run("main").value == 4


class TestMetricsFlow:
    def test_guard_cycles_accumulate(self):
        def body(b):
            p = b.call(PTR, "tfm_malloc", [Constant(I64, 8)])
            canon = b.call(PTR, "tfm_guard_read", [p])
            return b.load(I64, canon)

        rt = make_runtime()
        TrackFMProgram(build(body), rt).run("main")
        assert rt.metrics.cycles > 30_000  # slow path + fetch
        assert rt.metrics.accesses == 1
        assert rt.metrics.remote_fetches == 1
