"""Individual compiler passes: runtime-init, guard analysis/transform, libc."""

import pytest

from repro.compiler.guard_analysis import GUARD_MD, GuardAnalysisPass
from repro.compiler.guard_transform import GUARDED_MD, GuardTransformPass
from repro.compiler.libc_transform import LibcTransformPass
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.pipeline import CompilerConfig
from repro.compiler.runtime_init import RuntimeInitPass
from repro.errors import PassError
from repro.ir import IRBuilder, I64, PTR, VOID, Module, verify_module
from repro.ir.instructions import Call, Load, Store
from repro.ir.values import Constant

from irprograms import build_sum_loop


def ctx() -> PassContext:
    return PassContext(config=CompilerConfig())


class TestRuntimeInit:
    def test_hook_inserted_first(self):
        m = build_sum_loop()
        RuntimeInitPass().run(m, ctx())
        entry = m.get_function("main").entry
        first = entry.instructions[0]
        assert isinstance(first, Call) and first.callee == "tfm_runtime_init"
        verify_module(m)

    def test_idempotent(self):
        m = build_sum_loop()
        c = ctx()
        p = RuntimeInitPass()
        p.run(m, c)
        p.run(m, c)
        entry = m.get_function("main").entry
        hooks = [i for i in entry.instructions if isinstance(i, Call) and i.callee == "tfm_runtime_init"]
        assert len(hooks) == 1

    def test_missing_main_is_noop(self):
        m = Module()
        f = m.add_function("not_main", VOID)
        b = IRBuilder(f.add_block("entry"))
        b.ret()
        RuntimeInitPass().run(m, ctx())
        assert all(
            not (isinstance(i, Call) and i.callee == "tfm_runtime_init")
            for i in f.instructions()
        )


class TestGuardAnalysis:
    def test_heap_access_marked(self):
        m = build_sum_loop()
        c = ctx()
        GuardAnalysisPass().run(m, c)
        loads = [i for i in m.get_function("main").instructions() if isinstance(i, Load)]
        assert all(l.metadata.get(GUARD_MD) for l in loads)
        assert c.get_stat("guard-analysis.candidates") == len(loads)

    def test_stack_access_skipped(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        b.store(1, slot)
        v = b.load(I64, slot)
        b.ret(v)
        c = ctx()
        GuardAnalysisPass().run(m, c)
        assert c.get_stat("guard-analysis.candidates") == 0
        assert c.get_stat("guard-analysis.skipped") == 2


class TestGuardTransform:
    def test_guard_call_wraps_pointer(self):
        m = build_sum_loop()
        c = ctx()
        PassManager([GuardAnalysisPass(), GuardTransformPass()]).run(m, c)
        f = m.get_function("main")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert len(loads) == 1
        load = loads[0]
        assert isinstance(load.pointer, Call)
        assert load.pointer.callee == "tfm_guard_read"
        assert load.metadata.get(GUARDED_MD)
        assert c.get_stat("guard-transform.guards_inserted") == 1
        verify_module(m)

    def test_store_gets_write_guard(self):
        m = Module()
        f = m.add_function("main", VOID)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 8)])
        b.store(1, p)
        b.ret()
        PassManager([GuardAnalysisPass(), GuardTransformPass()]).run(m, ctx())
        store = next(i for i in f.instructions() if isinstance(i, Store))
        assert isinstance(store.pointer, Call)
        assert store.pointer.callee == "tfm_guard_write"

    def test_transform_is_idempotent(self):
        m = build_sum_loop()
        c = ctx()
        pm = PassManager([GuardAnalysisPass(), GuardTransformPass()])
        pm.run(m, c)
        GuardTransformPass().run(m, c)
        guards = [
            i
            for i in m.get_function("main").instructions()
            if isinstance(i, Call) and i.callee.startswith("tfm_guard")
        ]
        assert len(guards) == 1


class TestLibcTransform:
    def test_all_alloc_calls_rewritten(self):
        m = Module()
        f = m.add_function("main", VOID)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 8)])
        q = b.call(PTR, "calloc", [Constant(I64, 2), Constant(I64, 8)])
        r = b.call(PTR, "realloc", [p, Constant(I64, 32)])
        b.call(VOID, "free", [r])
        b.call(VOID, "free", [q])
        b.ret()
        c = ctx()
        LibcTransformPass().run(m, c)
        callees = [i.callee for i in f.instructions() if isinstance(i, Call)]
        assert callees == ["tfm_malloc", "tfm_calloc", "tfm_realloc", "tfm_free", "tfm_free"]
        assert c.get_stat("libc-transform.rewritten") == 5

    def test_other_calls_untouched(self):
        m = Module()
        f = m.add_function("main", VOID)
        b = IRBuilder(f.add_block("entry"))
        b.call(VOID, "print_i64", [Constant(I64, 1)])
        b.ret()
        LibcTransformPass().run(m, ctx())
        call = next(i for i in f.instructions() if isinstance(i, Call))
        assert call.callee == "print_i64"


class TestPassManager:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(PassError):
            PassManager([])

    def test_verification_catches_broken_pass(self):
        class BrokenPass(RuntimeInitPass):
            name = "broken"

            def run(self, module, c):
                f = module.get_function("main")
                f.entry.instructions.pop()  # drop the terminator

        m = build_sum_loop()
        with pytest.raises(PassError, match="verification failed"):
            PassManager([BrokenPass()]).run(m, ctx())

    def test_pass_names(self):
        pm = PassManager([RuntimeInitPass(), GuardAnalysisPass()])
        assert pm.pass_names() == ["runtime-init", "guard-analysis"]
