"""Structurally-real NAS mini-kernels: semantics and compiler behaviour."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.machine.cache import AlwaysHitCache
from repro.machine.costs import GuardKind
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB
from repro.workloads.nas_kernels import (
    KERNELS,
    build_cg_kernel,
    build_ft_kernel,
    build_is_kernel,
    build_mg_kernel,
    build_sp_kernel,
    cg_reference,
    ft_reference,
    is_reference,
    lcg_fill_reference,
    mg_reference,
    sp_reference,
)


def far_runtime(local=32 * KB):
    return TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=local, heap_size=2 * MB),
        cache=AlwaysHitCache(),
    )


class TestReferencesMatchInterpreter:
    @pytest.mark.parametrize("name", list(KERNELS))
    def test_kernel_matches_python_reference(self, name):
        build, reference = KERNELS[name]
        result = Interpreter(build(), max_steps=5_000_000).run("main")
        assert result.value == reference()

    def test_lcg_fill_reference_deterministic(self):
        assert lcg_fill_reference(5, 1, 100) == lcg_fill_reference(5, 1, 100)
        assert lcg_fill_reference(5, 1, 100) != lcg_fill_reference(5, 2, 100)

    def test_cg_scales_with_size(self):
        small = Interpreter(build_cg_kernel(16, 2)).run("main").value
        assert small == cg_reference(16, 2)

    def test_is_histogram_conserves_keys(self):
        # sum over hist equals n_keys: check via a direct reference.
        n_keys, n_buckets = 64, 8
        keys = lcg_fill_reference(n_keys, 7, n_buckets)
        assert len(keys) == n_keys
        assert Interpreter(build_is_kernel(n_keys, n_buckets)).run("main").value == is_reference(
            n_keys, n_buckets
        )

    def test_sp_recurrence_depends_on_order(self):
        # The sweep is genuinely loop-carried: changing c changes a[n-1].
        assert sp_reference(64, 3) != sp_reference(64, 5)
        assert Interpreter(build_sp_kernel(64, 5)).run("main").value == sp_reference(64, 5)


class TestCompiledKernels:
    @pytest.mark.parametrize("name", list(KERNELS))
    def test_far_memory_run_matches_reference(self, name):
        build, reference = KERNELS[name]
        module = build()
        compiled = TrackFMCompiler(CompilerConfig()).compile(module)
        program = TrackFMProgram(compiled.module, far_runtime(), max_steps=10_000_000)
        assert program.run("main").value == reference()

    def test_mg_stencil_is_chunked(self):
        # Unit-stride stencil: the chunking candidates are found and the
        # cost model accepts the long sweeps.
        module = build_mg_kernel(n=100_000 // 8)
        compiled = TrackFMCompiler(CompilerConfig()).compile(module)
        assert compiled.loops_chunked >= 1

    def test_cg_gather_not_chunked(self):
        # x[col[j]] has no induction-variable stride: the gather access
        # must stay under a full guard.
        module = build_cg_kernel(n_rows=4096, nnz_per_row=4)
        compiled = TrackFMCompiler(CompilerConfig()).compile(module)
        assert compiled.guards_inserted >= 1

    def test_ft_column_major_confounds_loop_analysis(self):
        # The inner index is mul(row, cols) + col — an affine function
        # of the IV, not the IV itself, so the chunking analysis cannot
        # claim it (the paper's §4.5 FT pathology) and the access stays
        # under a full guard.
        from repro.compiler.guard_transform import GUARDED_MD
        from repro.ir.instructions import Load

        module = build_ft_kernel(rows=64, cols=64)
        compiled = TrackFMCompiler(CompilerConfig()).compile(module)
        main = compiled.module.get_function("main")
        traversal_loads = [
            inst
            for inst in main.instructions()
            if isinstance(inst, Load) and inst.parent.name.startswith("inner")
        ]
        assert traversal_loads
        assert all(l.metadata.get(GUARDED_MD) for l in traversal_loads)
        assert not any(l.metadata.get("tfm.chunked") for l in traversal_loads)

    def test_is_scatter_guarded_every_access(self):
        module = build_is_kernel(n_keys=256, n_buckets=32)
        compiled = TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.NONE)
        ).compile(module)
        rt = far_runtime()
        program = TrackFMProgram(compiled.module, rt, max_steps=10_000_000)
        assert program.run("main").value == is_reference(256, 32)
        # Histogram does 1 read + 1 write per key through guards.
        assert rt.metrics.total_guards > 2 * 256

    def test_kernels_survive_o1(self):
        for name, (build, reference) in KERNELS.items():
            module = build()
            compiled = TrackFMCompiler(CompilerConfig(run_o1=True)).compile(module)
            program = TrackFMProgram(
                compiled.module, far_runtime(), max_steps=10_000_000
            )
            assert program.run("main").value == reference(), name
