"""Dead-store elimination and the RemoteList data structure."""

import pytest

from repro.aifm.datastructures import RemoteList
from repro.aifm.pool import PoolConfig
from repro.aifm.runtime import AIFMRuntime
from repro.compiler.dse import DeadStoreEliminationPass
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.pipeline import CompilerConfig
from repro.errors import PointerError, WorkloadError
from repro.ir import IRBuilder, I64, Module
from repro.sim.interpreter import Interpreter
from repro.units import KB, MB


def ctx():
    return PassContext(config=CompilerConfig())


class TestDSE:
    def test_scratch_slot_removed(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        scratch = b.alloca(8)
        b.store(1, scratch)
        b.store(2, scratch)
        b.ret(7)
        c = ctx()
        PassManager([DeadStoreEliminationPass()]).run(m, c)
        assert c.get_stat("dse.stores_removed") == 2
        assert c.get_stat("dse.slots_removed") == 1
        assert f.instruction_count() == 1
        assert Interpreter(m).run("main").value == 7

    def test_loaded_slot_kept(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        b.store(5, slot)
        b.ret(b.load(I64, slot))
        c = ctx()
        PassManager([DeadStoreEliminationPass()]).run(m, c)
        assert c.get_stat("dse.slots_removed") == 0
        assert Interpreter(m).run("main").value == 5

    def test_escaped_slot_kept(self):
        from repro.ir.types import VOID

        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        b.call(VOID, "llvm.sink", [slot])
        b.store(9, slot)
        b.ret(0)
        c = ctx()
        PassManager([DeadStoreEliminationPass()]).run(m, c)
        assert c.get_stat("dse.slots_removed") == 0

    def test_heap_stores_untouched(self):
        from repro.ir.types import PTR
        from repro.ir.values import Constant

        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 8)])
        b.store(3, p)
        b.ret(b.load(I64, p))
        c = ctx()
        PassManager([DeadStoreEliminationPass()]).run(m, c)
        assert c.get_stat("dse.stores_removed") == 0
        assert Interpreter(m).run("main").value == 3


class TestRemoteList:
    def make_runtime(self, local_objects=8, node_size=64):
        return AIFMRuntime(
            PoolConfig(
                object_size=node_size,
                local_memory=local_objects * node_size,
                heap_size=1 * MB,
            ),
            prefetch_depth=2,
        )

    def test_one_object_per_node(self):
        rt = self.make_runtime()
        lst = RemoteList(rt, node_size=64)
        lst.append(4)
        objects = {lst.node_object(i) for i in range(4)}
        assert len(objects) == 4  # §2: 64B object = one list node

    def test_walk_touches_every_node(self):
        rt = self.make_runtime(local_objects=16)
        lst = RemoteList(rt)
        lst.append(10)
        lst.walk(prefetch_next=False)
        assert rt.metrics.accesses == 10
        assert rt.metrics.remote_fetches == 10  # cold walk

    def test_iterator_prefetch_cheaper_on_cold_walk(self):
        rt1 = self.make_runtime(local_objects=4)
        lst1 = RemoteList(rt1)
        lst1.append(64)
        plain = lst1.walk(prefetch_next=False)

        rt2 = self.make_runtime(local_objects=4)
        lst2 = RemoteList(rt2)
        lst2.append(64)
        prefetched = lst2.walk(prefetch_next=True)
        assert prefetched < plain
        assert rt2.metrics.prefetches_useful > 0

    def test_bounds(self):
        rt = self.make_runtime()
        lst = RemoteList(rt)
        lst.append(2)
        with pytest.raises(PointerError):
            lst.node_object(2)
        with pytest.raises(WorkloadError):
            lst.append(0)
        with pytest.raises(WorkloadError):
            RemoteList(rt, node_size=0)

    def test_free(self):
        rt = self.make_runtime()
        lst = RemoteList(rt)
        lst.append(5)
        lst.walk()
        lst.free()
        assert len(lst) == 0
        assert rt.pool.resident_objects == 0
