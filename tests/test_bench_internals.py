"""Benchmark internals: parametrized entry points and data plumbing."""

import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.stream_figs import fig07, fig10, fig11, fig12
from repro.bench.hashmap_figs import fig09
from repro.bench.app_figs import fig08, fig14
from repro.machine.scale import ScaleModel
from repro.units import MB
from repro.workloads.memcached import MemcachedWorkload


class TestParametrizedFigures:
    def test_custom_fractions_respected(self):
        r = fig07(fractions=(0.25, 0.75))
        assert r.x_values == ["25%", "75%"]
        assert len(r.get("Sum").values) == 2

    def test_custom_scale(self):
        coarse = fig07(scale=ScaleModel(factor=2048), fractions=(0.5,))
        fine = fig07(scale=ScaleModel(factor=512), fractions=(0.5,))
        # Scale-invariance of the plotted ratio (the design's key claim).
        assert coarse.get("Sum").values[0] == pytest.approx(
            fine.get("Sum").values[0], rel=0.05
        )

    def test_fig10_object_size_subset(self):
        r = fig10(object_sizes=(4096, 256), fractions=(0.5,))
        assert [s.name for s in r.series] == ["4KB", "256B"]

    def test_fig11_and_fig12_share_x_axis(self):
        a = fig11(fractions=(0.2, 0.8))
        b = fig12(fractions=(0.2, 0.8))
        assert a.x_values == b.x_values

    def test_fig08_fraction_override(self):
        r = fig08(fractions=(0.5,))
        assert len(r.get("all loops").values) == 1

    def test_fig09_smaller_sweep(self):
        r = fig09(object_sizes=(256,), fractions=(0.25, 1.0))
        assert len(r.series) == 1

    def test_fig14_notes_quantify_gap(self):
        r = fig14(fractions=(0.1,))
        assert any("AIFM" in note for note in r.notes)


class TestResultFormatting:
    def test_fmt_variants(self):
        fmt = ExperimentResult._fmt
        assert fmt(0.0) == "0"
        assert fmt(12345.0) == "12,345"
        assert fmt(12.34) == "12.3"
        assert fmt(1.2345) == "1.234"
        assert fmt("label") == "label"
        assert fmt(7) == "7"

    def test_to_text_alignment(self):
        r = ExperimentResult("e", "t", "x", ["a", "bbbb"], "y")
        r.add_series("col", [1.0, 2.0])
        lines = r.to_text().splitlines()
        header = next(l for l in lines if l.startswith("x"))
        assert "col" in header


class TestMemcachedRegions:
    def make(self):
        return MemcachedWorkload(
            working_set=8 * MB, n_keys=50_000, n_ops=10_000, skew=1.1
        )

    def test_region_heats_are_distributions(self):
        wl = self.make()
        for region in ("buckets", "items"):
            heat = wl._region_heat(4096, region)
            assert heat.sum() == pytest.approx(1.0)
            assert (heat >= 0).all()

    def test_unknown_region_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            self.make()._region_heat(4096, "nowhere")

    def test_bucket_region_denser_than_items(self):
        # Buckets are 8B each: a page holds 512 of them, so page-level
        # bucket heat concentrates more than item heat.
        wl = self.make()
        page = 4096
        bucket_hr = wl.region_hit_rate(page, "buckets", 16)
        item_hr = wl.region_hit_rate(page, "items", 16)
        assert bucket_hr > item_hr

    def test_hybrid_between_or_above_pure_systems(self):
        wl = self.make()
        local = 1 * MB
        hybrid = wl.run_hybrid(64, local)
        fsw = wl.run_fastswap(local)
        assert hybrid.cycles < fsw.cycles

    def test_hybrid_splits_traffic(self):
        wl = self.make()
        res = wl.run_hybrid(64, 1 * MB)
        # Both mechanisms moved data: pages for buckets, objects for items.
        assert res.metrics.major_faults > 0
        assert res.metrics.slow_path_guards > 0
