"""Property-based tests for the consistent-hash placement ring.

The serving layer's placement guarantees are stated as hypothesis
properties over 1–64 shards:

* **determinism** — placement is a pure function of the shard set
  (rebuild order and join history never matter);
* **balance** — with 128 vnodes, every shard's deterministic ring-arc
  share stays within a fixed band of fair share;
* **minimal movement, leave** — removing a shard moves *only* the keys
  it owned (exact, not statistical);
* **minimal movement, join** — adding a shard moves keys *only onto*
  the new shard.

Balance is asserted on :meth:`HashRing.arc_shares` — the expected share
of uniformly-hashed keys, a deterministic quantity — so the bounds are
exact assertions, not flaky sampling.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeConfigError
from repro.serve.ring import HashRing, hash_key, moved_keys

#: Shard-id universe: small enough to explore collisions in membership,
#: large enough to exercise the id space.
SHARD_IDS = st.integers(min_value=0, max_value=0xFFFF)
SHARD_SETS = st.sets(SHARD_IDS, min_size=1, max_size=64)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
KEYS = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1, max_size=200, unique=True,
)

#: Balance band for vnodes=128 over <= 64 shards: every shard's arc
#: share within [0.35x, 2.0x] of fair.  Deterministic bound — if this
#: fails, the ring's hash changed, not the dice.
BALANCE_HI = 2.0
BALANCE_LO = 0.35


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS)
@settings(max_examples=60, deadline=None)
def test_placement_pure_function_of_shard_set(shards, seed, keys):
    ordered = HashRing(sorted(shards), seed=seed)
    reversed_ = HashRing(sorted(shards, reverse=True), seed=seed)
    assert ordered.placement(keys) == reversed_.placement(keys)
    # Placed shards are members, always.
    assert all(ordered.place(k) in shards for k in keys)


@given(shards=SHARD_SETS, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_arc_share_balance_within_band(shards, seed):
    ring = HashRing(sorted(shards), vnodes=128, seed=seed)
    shares = ring.arc_shares()
    assert shares.keys() == set(shards)
    total = sum(shares.values())
    assert abs(total - 1.0) < 1e-9
    fair = 1.0 / len(shards)
    for sid, share in shares.items():
        assert share <= BALANCE_HI * fair, (
            f"shard {sid} owns {share / fair:.2f}x fair share"
        )
        assert share >= BALANCE_LO * fair, (
            f"shard {sid} owns only {share / fair:.2f}x fair share"
        )


@given(shards=st.sets(SHARD_IDS, min_size=2, max_size=64), seed=SEEDS,
       keys=KEYS, data=st.data())
@settings(max_examples=60, deadline=None)
def test_leave_moves_only_the_leavers_keys(shards, seed, keys, data):
    ring = HashRing(sorted(shards), seed=seed)
    before = ring.placement(keys)
    leaver = data.draw(st.sampled_from(sorted(shards)))
    ring.remove_shard(leaver)
    after = ring.placement(keys)
    for key, old, new in moved_keys(before, after):
        assert old == leaver, (
            f"key {key} moved {old} -> {new} but {leaver} left"
        )
    # Every key the leaver owned must land somewhere else.
    for key, owner in before.items():
        if owner == leaver:
            assert after[key] != leaver


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS, joiner=SHARD_IDS)
@settings(max_examples=60, deadline=None)
def test_join_moves_keys_only_to_the_joiner(shards, seed, keys, joiner):
    if joiner in shards:
        shards = shards - {joiner}
        if not shards:
            return
    ring = HashRing(sorted(shards), seed=seed)
    before = ring.placement(keys)
    ring.add_shard(joiner)
    after = ring.placement(keys)
    for key, old, new in moved_keys(before, after):
        assert new == joiner, (
            f"key {key} moved {old} -> {new}, not to joiner {joiner}"
        )


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS, joiner=SHARD_IDS)
@settings(max_examples=40, deadline=None)
def test_join_then_leave_roundtrips(shards, seed, keys, joiner):
    if joiner in shards:
        return
    ring = HashRing(sorted(shards), seed=seed)
    before = ring.placement(keys)
    ring.add_shard(joiner)
    ring.remove_shard(joiner)
    assert ring.placement(keys) == before


@given(key=st.integers(min_value=0, max_value=2**40), seed=SEEDS)
@settings(max_examples=100, deadline=None)
def test_hash_key_is_stable(key, seed):
    assert hash_key(key, seed) == hash_key(key, seed)
    assert 0 <= hash_key(key, seed) < 2**64


def test_ring_membership_errors():
    ring = HashRing([0, 1])
    with pytest.raises(RuntimeConfigError):
        ring.add_shard(0)
    with pytest.raises(RuntimeConfigError):
        ring.remove_shard(7)
    with pytest.raises(RuntimeConfigError):
        ring.add_shard(0x10000)
    ring.remove_shard(0)
    ring.remove_shard(1)
    with pytest.raises(RuntimeConfigError):
        ring.place(42)
    with pytest.raises(RuntimeConfigError):
        HashRing(vnodes=0)
