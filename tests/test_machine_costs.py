"""The calibrated cost table (Tables 1/2 anchors)."""

import pytest

from repro.errors import RuntimeConfigError
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS, GuardKind


def test_table1_fast_path_anchors():
    c = DEFAULT_COSTS
    assert c.fast_guard(AccessKind.READ, cached=True) == 21
    assert c.fast_guard(AccessKind.WRITE, cached=True) == 21
    assert c.fast_guard(AccessKind.READ, cached=False) == 297
    assert c.fast_guard(AccessKind.WRITE, cached=False) == 309


def test_table1_slow_path_anchors():
    c = DEFAULT_COSTS
    assert c.slow_guard_local(AccessKind.READ, cached=True) == 144
    assert c.slow_guard_local(AccessKind.WRITE, cached=True) == 159
    assert c.slow_guard_local(AccessKind.READ, cached=False) == 453
    assert c.slow_guard_local(AccessKind.WRITE, cached=False) == 432


def test_table2_fastswap_anchors():
    c = DEFAULT_COSTS
    assert c.fastswap_fault(AccessKind.READ, remote=False) == 1_300
    assert c.fastswap_fault(AccessKind.WRITE, remote=False) == 1_300
    assert c.fastswap_fault(AccessKind.READ, remote=True) == 34_000
    assert c.fastswap_fault(AccessKind.WRITE, remote=True) == 35_000


def test_local_access_is_36_cycles():
    assert DEFAULT_COSTS.local_access == 36


def test_chunking_crossover_near_paper_730():
    # §3.4 / Fig. 6: break-even at ~730 elements per object.
    d_star = DEFAULT_COSTS.chunking_crossover_density()
    assert 650 < d_star < 800


def test_boundary_check_cheaper_than_fast_guard():
    c = DEFAULT_COSTS
    assert c.boundary_check < c.fast_guard_read_cached


def test_locality_guard_slightly_more_expensive_than_slow():
    # §3.4: "slightly more expensive locality invariant guards".
    c = DEFAULT_COSTS
    assert c.slow_guard_read_cached < c.locality_guard < 10 * c.slow_guard_read_cached


def test_with_overrides_returns_new_table():
    c = DEFAULT_COSTS.with_overrides(local_access=10.0)
    assert c.local_access == 10.0
    assert DEFAULT_COSTS.local_access == 36.0


def test_negative_cost_rejected():
    with pytest.raises(RuntimeConfigError):
        CostTable(local_access=-1.0)


def test_degenerate_crossover_rejected():
    c = DEFAULT_COSTS.with_overrides(boundary_check=50.0)
    with pytest.raises(RuntimeConfigError):
        c.chunking_crossover_density()


def test_guard_kind_enum_members():
    names = {k.value for k in GuardKind}
    assert {"none", "custody_miss", "fast", "slow", "boundary", "locality"} == names
