"""Multiple object sizes (§3.2 future work): multipool + size classes."""

import pytest

from repro.compiler.size_classes import recommend_object_sizes
from repro.errors import PointerError, RuntimeConfigError
from repro.ir import IRBuilder, I64, PTR, Module
from repro.ir.values import Constant
from repro.machine.costs import AccessKind, GuardKind
from repro.trackfm.multipool import DEFAULT_CLASSES, MultiPoolRuntime
from repro.trackfm.pointer import is_tfm_pointer
from repro.units import KB, MB

from irprograms import build_sum_loop


def make_multipool(local=256 * KB, heap=4 * MB):
    return MultiPoolRuntime(local_memory=local, heap_size=heap)


class TestMultiPoolRuntime:
    def test_explicit_class_routing(self):
        rt = make_multipool()
        small = rt.tfm_malloc(32, object_size=64)
        big = rt.tfm_malloc(32, object_size=4096)
        assert rt.class_of_pointer(small) != rt.class_of_pointer(big)
        assert rt.runtime_for(small).object_size == 64
        assert rt.runtime_for(big).object_size == 4096

    def test_default_routing_by_allocation_size(self):
        rt = make_multipool()
        tiny = rt.tfm_malloc(16)
        medium = rt.tfm_malloc(300)
        large = rt.tfm_malloc(100_000)
        assert rt.runtime_for(tiny).object_size == 64
        assert rt.runtime_for(medium).object_size == 512
        assert rt.runtime_for(large).object_size == 4096

    def test_pointers_are_non_canonical(self):
        rt = make_multipool()
        assert is_tfm_pointer(rt.tfm_malloc(8))

    def test_access_charges_right_pool(self):
        rt = make_multipool()
        p = rt.tfm_malloc(8, object_size=64)
        rt.access(p, AccessKind.READ)
        per_class = rt.per_class_metrics()
        assert per_class[64].bytes_fetched == 64
        assert per_class[4096].bytes_fetched == 0

    def test_miss_transfer_matches_class(self):
        rt = make_multipool()
        small = rt.tfm_malloc(8, object_size=64)
        big = rt.tfm_malloc(8, object_size=4096)
        rt.access(small)
        rt.access(big)
        merged = rt.metrics
        assert merged.bytes_fetched == 64 + 4096

    def test_free_releases(self):
        rt = make_multipool()
        p = rt.tfm_malloc(128, object_size=512)
        rt.access(p)
        rt.tfm_free(p)
        assert rt.runtime_of_class(512).pool.resident_objects == 0

    def test_sequential_scan_delegates(self):
        rt = make_multipool()
        p = rt.tfm_malloc(64 * KB, object_size=4096)
        cycles = rt.sequential_scan(p, 8192, 8)
        assert cycles > 0
        assert rt.per_class_metrics()[4096].accesses == 8192

    def test_unknown_class_rejected(self):
        rt = make_multipool()
        with pytest.raises(RuntimeConfigError):
            rt.tfm_malloc(8, object_size=128)

    def test_non_tfm_pointer_rejected(self):
        rt = make_multipool()
        with pytest.raises(PointerError):
            rt.class_of_pointer(0x1234)

    def test_config_validation(self):
        with pytest.raises(RuntimeConfigError):
            MultiPoolRuntime(1 * MB, 4 * MB, classes=())
        with pytest.raises(RuntimeConfigError):
            MultiPoolRuntime(1 * MB, 4 * MB, classes=(4096, 64))
        with pytest.raises(RuntimeConfigError):
            MultiPoolRuntime(1 * MB, 4 * MB, classes=(100,))
        with pytest.raises(RuntimeConfigError):
            MultiPoolRuntime(1 * MB, 4 * MB, shares=(0.5, 0.5))

    def test_custom_shares(self):
        rt = MultiPoolRuntime(
            1 * MB, 4 * MB, classes=(64, 4096), shares=(0.25, 0.75)
        )
        assert rt.runtime_of_class(64).config.local_memory == 256 * KB
        assert rt.runtime_of_class(4096).config.local_memory == 768 * KB


def build_mixed_program(n=50_000):
    """One sequentially-scanned array + one randomly-probed table."""
    m = Module("mixed")
    f = m.add_function("main", I64)
    entry, header, body, done = (
        f.add_block(x) for x in ("entry", "header", "body", "done")
    )
    b = IRBuilder(entry)
    seq = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="seq_array")
    table = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="rand_table")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, n), body, done)
    b.set_block(body)
    sv = b.load(I64, b.gep(seq, i, 8))
    idx = b.srem(b.mul(i, 2654435761), n)  # hashed: not an IV pattern
    rv = b.load(I64, b.gep(table, idx, 8))
    s2 = b.add(s, b.add(sv, rv))
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(done)
    b.ret(s)
    return m


class TestSizeClassRecommendation:
    def test_sequential_site_gets_large_class(self):
        rec = recommend_object_sizes(build_mixed_program())
        assert rec["seq_array"] == DEFAULT_CLASSES[-1]

    def test_irregular_site_gets_small_class(self):
        rec = recommend_object_sizes(build_mixed_program())
        assert rec["rand_table"] == DEFAULT_CLASSES[0]

    def test_pure_sequential_program(self):
        rec = recommend_object_sizes(build_sum_loop(n=100_000, elem=4))
        assert list(rec.values()) == [DEFAULT_CLASSES[-1]]

    def test_short_loop_falls_back_to_middle(self):
        # The cost model rejects chunking a tiny loop, so its site is
        # neither confidently sequential nor irregular-heavy... it is
        # accessed via an IV but unchunked -> classified irregular/small
        # or mid depending on plan state; assert it gets *some* class.
        rec = recommend_object_sizes(build_sum_loop(n=8, elem=2048))
        assert set(rec.values()) <= set(DEFAULT_CLASSES)
