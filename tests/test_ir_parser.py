"""The textual IR parser: hand-written programs and print/parse roundtrips."""

import pytest

from repro.errors import IRError
from repro.ir import print_module, verify_module
from repro.ir.parser import parse_module
from repro.sim.interpreter import Interpreter

from irprograms import build_sum_loop, build_write_then_sum


SIMPLE = """
; a tiny program
define i64 @main() {
entry:
  %x = add 2, 3
  %y = mul %x, 4
  ret i64 %y
}
"""


LOOP = """
define i64 @main() {
entry:
  %p = call ptr @malloc(800)
  br label %header
header:
  %i = phi i64 [0, %entry], [%i2, %body]
  %s = phi i64 [0, %entry], [%s2, %body]
  %c = icmp slt %i, 100
  condbr %c, label %body, label %exit
body:
  %addr = gep %p, %i x 8
  store i64 %i, %addr
  %v = load i64, %addr
  %s2 = add %s, %v
  %i2 = add %i, 1
  br label %header
exit:
  ret i64 %s
}
"""


class TestParseBasics:
    def test_simple_program(self):
        m = parse_module(SIMPLE)
        verify_module(m)
        assert Interpreter(m).run("main").value == 20

    def test_loop_with_phis(self):
        m = parse_module(LOOP)
        verify_module(m)
        assert Interpreter(m).run("main").value == 100 * 99 // 2

    def test_globals_and_declarations(self):
        m = parse_module(
            """
@table = global [64 x i8]
declare i64 @external(i64 %x)
define void @main() {
entry:
  ret void
}
"""
        )
        assert m.get_global("table").size_bytes == 64
        assert m.get_function("external").is_declaration
        verify_module(m)

    def test_arguments(self):
        m = parse_module(
            """
define i64 @addone(i64 %n) {
entry:
  %r = add %n, 1
  ret i64 %r
}
define i64 @main() {
entry:
  %v = call i64 @addone(41)
  ret i64 %v
}
"""
        )
        assert Interpreter(m).run("main").value == 42

    def test_select_and_compare(self):
        m = parse_module(
            """
define i64 @main() {
entry:
  %c = icmp sgt 5, 3
  %v = select %c, 10, 20
  ret i64 %v
}
"""
        )
        assert Interpreter(m).run("main").value == 10

    def test_casts_and_pointer_int(self):
        m = parse_module(
            """
define i64 @main() {
entry:
  %p = call ptr @malloc(16)
  %raw = ptrtoint %p
  %bumped = add %raw, 8
  %q = inttoptr %bumped
  store i64 7, %q
  %v = load i64, %q
  ret i64 %v
}
"""
        )
        assert Interpreter(m).run("main").value == 7

    def test_float_program(self):
        m = parse_module(
            """
define f64 @main() {
entry:
  %a = fadd 1.5, 2.5
  %b = fmul %a, 2.0
  ret f64 %b
}
"""
        )
        assert Interpreter(m).run("main").value == 8.0

    def test_comments_ignored(self):
        m = parse_module("; hello\n" + SIMPLE + "; trailing\n")
        assert Interpreter(m).run("main").value == 20


class TestParseErrors:
    def test_undefined_value(self):
        with pytest.raises(IRError, match="undefined value"):
            parse_module("define i64 @main() {\nentry:\n  ret i64 %ghost\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRError, match="unterminated"):
            parse_module("define void @f() {\nentry:\n  ret void\n")

    def test_unknown_instruction(self):
        with pytest.raises(IRError):
            parse_module("define void @f() {\nentry:\n  frobnicate\n}")

    def test_unknown_type(self):
        with pytest.raises(IRError):
            parse_module("define i64 @f() {\nentry:\n  %v = load i77, %p\n  ret i64 0\n}")

    def test_bad_toplevel(self):
        with pytest.raises(IRError, match="top-level"):
            parse_module("hello world")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: build_sum_loop(30),
            lambda: build_write_then_sum(25),
            lambda: build_write_then_sum(25, elem=4),
        ],
    )
    def test_print_parse_preserves_semantics(self, factory):
        original = factory()
        expected = Interpreter(factory()).run("main").value
        reparsed = parse_module(print_module(original))
        verify_module(reparsed)
        assert Interpreter(reparsed).run("main").value == expected

    def test_roundtrip_transformed_module(self):
        from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler

        m = build_write_then_sum(50)
        TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.NONE)).compile(m)
        text = print_module(m)
        reparsed = parse_module(text)
        verify_module(reparsed)
        # Structure preserved: same guard calls, same block count.
        assert text.count("tfm_guard") == print_module(reparsed).count("tfm_guard")

    def test_double_roundtrip_stable(self):
        m = build_sum_loop(10)
        once = print_module(parse_module(print_module(m)))
        twice = print_module(parse_module(once))
        assert once == twice


class TestRoundTripKernels:
    @pytest.mark.parametrize("name", ["CG", "IS", "MG", "SP", "FT"])
    def test_nas_kernel_roundtrip(self, name):
        from repro.workloads.nas_kernels import KERNELS

        build, reference = KERNELS[name]
        text = print_module(build())
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert Interpreter(reparsed, max_steps=5_000_000).run("main").value == reference()

    def test_linked_list_roundtrip(self):
        import sys

        sys.path.insert(0, "tests")
        from test_chase_prefetch import build_list_walk

        original = build_list_walk(64)
        expected = Interpreter(build_list_walk(64)).run("main").value
        reparsed = parse_module(print_module(original))
        assert Interpreter(reparsed).run("main").value == expected
