"""The full STREAM kernel set and cross-kernel invariants."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.sim.local import LocalRuntime
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import KB, MB
from repro.workloads.stream import StreamKernel, StreamWorkload


def tfm(ws, frac):
    return TrackFMRuntime(
        PoolConfig(
            object_size=4 * KB,
            local_memory=max(4 * KB, int(ws * frac)),
            heap_size=2 * ws,
        )
    )


class TestKernelShapes:
    def test_array_counts(self):
        ws = 12 * MB
        assert StreamWorkload(ws, kernel=StreamKernel.SUM).arrays == 1
        assert StreamWorkload(ws, kernel=StreamKernel.COPY).arrays == 2
        assert StreamWorkload(ws, kernel=StreamKernel.SCALE).arrays == 2
        assert StreamWorkload(ws, kernel=StreamKernel.TRIAD).arrays == 3

    def test_accesses_per_element(self):
        ws = 12 * MB
        assert StreamWorkload(ws, kernel=StreamKernel.SUM).accesses_per_elem == 1
        assert StreamWorkload(ws, kernel=StreamKernel.COPY).accesses_per_elem == 2
        assert StreamWorkload(ws, kernel=StreamKernel.TRIAD).accesses_per_elem == 3

    def test_working_set_split_across_arrays(self):
        ws = 12 * MB
        for kernel in StreamKernel:
            wl = StreamWorkload(ws, kernel=kernel)
            assert wl.array_bytes * wl.arrays == pytest.approx(ws, rel=0.01)

    def test_scan_offsets_disjoint(self):
        wl = StreamWorkload(12 * MB, kernel=StreamKernel.TRIAD)
        offsets = [off for off, _ in wl._scans()]
        assert len(set(offsets)) == 3

    def test_triad_has_one_write(self):
        from repro.machine.costs import AccessKind

        wl = StreamWorkload(12 * MB, kernel=StreamKernel.TRIAD)
        kinds = [k for _, k in wl._scans()]
        assert kinds.count(AccessKind.WRITE) == 1
        assert kinds.count(AccessKind.READ) == 2


class TestKernelBehaviour:
    @pytest.mark.parametrize("kernel", list(StreamKernel))
    def test_all_kernels_run_on_all_runtimes(self, kernel):
        ws = 4 * MB
        wl = StreamWorkload(ws, kernel=kernel)
        assert wl.run_trackfm(tfm(ws, 0.5), GuardStrategy.CHUNKED_PREFETCH) > 0
        assert (
            wl.run_fastswap(
                FastswapRuntime(FastswapConfig(local_memory=ws // 2, heap_size=2 * ws))
            )
            > 0
        )
        assert wl.run_local(LocalRuntime()) > 0

    @pytest.mark.parametrize("kernel", list(StreamKernel))
    def test_chunking_always_helps_streams(self, kernel):
        ws = 4 * MB
        naive = StreamWorkload(ws, kernel=kernel).run_trackfm(
            tfm(ws, 0.5), GuardStrategy.NAIVE
        )
        chunked = StreamWorkload(ws, kernel=kernel).run_trackfm(
            tfm(ws, 0.5), GuardStrategy.CHUNKED
        )
        assert chunked < naive

    def test_write_kernels_evacuate(self):
        ws = 4 * MB
        rt = tfm(ws, 0.25)
        StreamWorkload(ws, kernel=StreamKernel.TRIAD).run_trackfm(
            rt, GuardStrategy.CHUNKED_PREFETCH
        )
        assert rt.metrics.bytes_evacuated > 0

    def test_sum_never_evacuates(self):
        ws = 4 * MB
        rt = tfm(ws, 0.25)
        StreamWorkload(ws, kernel=StreamKernel.SUM).run_trackfm(
            rt, GuardStrategy.CHUNKED_PREFETCH
        )
        assert rt.metrics.bytes_evacuated == 0

    def test_more_local_memory_never_hurts(self):
        ws = 4 * MB
        cycles = [
            StreamWorkload(ws).run_trackfm(tfm(ws, f), GuardStrategy.CHUNKED_PREFETCH)
            for f in (0.1, 0.3, 0.5, 0.8, 1.0)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_bandwidth_scales_with_accesses(self):
        ws = 4 * MB
        cycles = 2.4e9  # one simulated second
        bw_sum = StreamWorkload(ws, kernel=StreamKernel.SUM).bandwidth_mb_per_s(cycles)
        bw_triad = StreamWorkload(ws, kernel=StreamKernel.TRIAD).bandwidth_mb_per_s(cycles)
        assert bw_sum == pytest.approx(bw_triad, rel=0.01)  # same bytes touched/working set
