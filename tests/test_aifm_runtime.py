"""The AIFM runtime facade and its library-style data structures."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.aifm.runtime import AIFMRuntime
from repro.aifm.datastructures import RemoteArray, RemoteHashMap
from repro.errors import PointerError, WorkloadError
from repro.machine.costs import AccessKind
from repro.units import KB, MB


def make_runtime(local_objects=4, object_size=4 * KB, prefetch_depth=8):
    config = PoolConfig(
        object_size=object_size,
        local_memory=local_objects * object_size,
        heap_size=64 * object_size,
    )
    return AIFMRuntime(config, prefetch_depth=prefetch_depth)


class TestAIFMRuntime:
    def test_allocate_and_access(self):
        rt = make_runtime()
        alloc = rt.allocate(100)
        cycles = rt.access(alloc.offset)
        assert cycles > 30_000  # first touch fetches
        assert rt.access(alloc.offset) < 100  # hot deref is cheap

    def test_hot_deref_cost_below_trackfm_fast_guard(self):
        # §4.1: AIFM's smart-pointer indirection is cheaper than a guard.
        rt = make_runtime()
        alloc = rt.allocate(8)
        rt.access(alloc.offset)
        hot = rt.access(alloc.offset)
        assert hot == rt.deref_overhead + rt.config.costs.local_access
        assert rt.deref_overhead < 21

    def test_scope_pins_across_accesses(self):
        rt = make_runtime(local_objects=2)
        a = rt.allocate(4 * KB)
        with rt.scope() as scope:
            rt.access(a.offset, scope=scope)
            obj = rt.pool.object_of_offset(a.offset)
            assert rt.pool.residency.is_pinned(obj)
        assert not rt.pool.residency.is_pinned(obj)

    def test_access_spanning_objects(self):
        rt = make_runtime()
        a = rt.allocate(2 * 4 * KB)
        rt.access(a.offset + 4 * KB - 4, size=8)
        assert rt.metrics.remote_fetches == 2

    def test_prefetcher_engaged_on_sequential(self):
        rt = make_runtime(local_objects=16)
        a = rt.allocate(8 * 4 * KB)
        for i in range(8):
            rt.access(a.offset + i * 4 * KB, stream=0)
        assert rt.metrics.prefetches_issued > 0

    def test_free_releases_objects(self):
        rt = make_runtime()
        a = rt.allocate(2 * 4 * KB)
        rt.access(a.offset)
        rt.free(a)
        assert rt.pool.resident_objects == 0

    def test_zero_size_access_rejected(self):
        rt = make_runtime()
        a = rt.allocate(8)
        with pytest.raises(PointerError):
            rt.access(a.offset, size=0)

    def test_sequential_scan_metrics(self):
        rt = make_runtime()
        rt.sequential_scan(0, 4096, 8, AccessKind.READ)
        assert rt.metrics.accesses == 4096
        assert rt.metrics.bytes_fetched == 8 * 4 * KB
        assert rt.metrics.prefetches_useful == 8

    def test_write_scan_evacuates(self):
        rt = make_runtime()
        rt.sequential_scan(0, 4096, 8, AccessKind.WRITE)
        assert rt.metrics.bytes_evacuated > 0


class TestRemoteArray:
    def test_listing1_usage(self):
        # The paper's Listing 1, faithfully: scope + at().
        rt = make_runtime()
        array = RemoteArray(rt, length=100, elem_size=8)
        total = 0.0
        for i in range(100):
            with rt.scope() as scope:
                total += array.at(scope, i)
        assert total > 0
        assert rt.metrics.accesses == 100

    def test_bounds_checked(self):
        rt = make_runtime()
        array = RemoteArray(rt, length=10)
        with rt.scope() as scope:
            with pytest.raises(PointerError):
                array.at(scope, 10)
            with pytest.raises(PointerError):
                array.at(scope, -1)

    def test_set_dirties(self):
        rt = make_runtime(local_objects=1)
        array = RemoteArray(rt, length=1024, elem_size=8)
        with rt.scope() as scope:
            array.set(scope, 0)
        # Evict by touching a different object.
        with rt.scope() as scope:
            array.at(scope, 1023)
        assert rt.metrics.bytes_evacuated > 0

    def test_scan_uses_iterator_path(self):
        rt = make_runtime()
        array = RemoteArray(rt, length=4096, elem_size=8)
        cycles = array.scan()
        assert cycles > 0
        assert rt.metrics.accesses >= 4096

    def test_invalid_construction(self):
        rt = make_runtime()
        with pytest.raises(WorkloadError):
            RemoteArray(rt, length=0)

    def test_free(self):
        rt = make_runtime()
        array = RemoteArray(rt, length=16, elem_size=8)
        with rt.scope() as scope:
            array.at(scope, 0)
        array.free()
        assert rt.pool.resident_objects == 0


class TestRemoteHashMap:
    def test_get_put(self):
        rt = make_runtime()
        hm = RemoteHashMap(rt, capacity=1000)
        with rt.scope() as scope:
            first = hm.get(scope, 42)
        with rt.scope() as scope:
            second = hm.get(scope, 42)
        assert second < first  # second lookup hits

    def test_distinct_keys_distinct_buckets_mostly(self):
        rt = make_runtime(local_objects=32)
        hm = RemoteHashMap(rt, capacity=4096)
        with rt.scope() as scope:
            for key in range(50):
                hm.get(scope, key)
        # 50 keys over 4096 buckets across 16 objects: several objects hit.
        assert rt.metrics.remote_fetches > 2

    def test_put_marks_dirty(self):
        rt = make_runtime(local_objects=1)
        hm = RemoteHashMap(rt, capacity=4096, entry_size=16)
        with rt.scope() as scope:
            hm.put(scope, 1)
        # Force eviction of the dirty bucket object by touching another.
        dirty_obj = rt.pool.object_of_offset(hm._bucket_offset(1))
        other = (dirty_obj + 1) % rt.pool.config.num_objects
        rt.pool.ensure_local(other)
        assert rt.metrics.bytes_evacuated > 0

    def test_invalid_construction(self):
        rt = make_runtime()
        with pytest.raises(WorkloadError):
            RemoteHashMap(rt, capacity=0)
