"""The full compiler pipeline + interpreter/runtime end-to-end behaviour.

These are the tests that make the paper's transparency claim concrete:
the *same source module* runs correctly before compilation (local heap)
and after compilation (far-memory heap), with guards and chunking doing
their jobs, and crashes if guards are missing.
"""

import pytest

from repro.aifm.pool import PoolConfig
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.errors import PassError, SegmentationFault
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.machine.costs import GuardKind
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

from irprograms import build_sum_loop, build_write_then_sum


def make_runtime(object_size=4 * KB, local=64 * KB, heap=1 * MB) -> TrackFMRuntime:
    return TrackFMRuntime(
        PoolConfig(object_size=object_size, local_memory=local, heap_size=heap),
        cache=AlwaysHitCache(),
    )


class TestCompileResult:
    def test_summary_and_stats(self):
        m = build_write_then_sum(5000, elem=4)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        assert res.loops_chunked == 2
        assert res.accesses_chunked == 2
        assert res.guards_inserted == 0  # everything chunked
        assert res.code_size_factor > 1.0
        assert "loops" in res.summary()

    def test_naive_config_counts_guards(self):
        m = build_write_then_sum(100)
        cfg = CompilerConfig(chunking=ChunkingPolicy.NONE)
        res = TrackFMCompiler(cfg).compile(m)
        assert res.guards_inserted == 2
        assert res.loops_chunked == 0

    def test_object_size_validation(self):
        with pytest.raises(PassError):
            CompilerConfig(object_size=8 * KB)
        with pytest.raises(PassError):
            CompilerConfig(object_size=100)

    def test_compile_verifies_output(self):
        m = build_write_then_sum(50)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        verify_module(res.module)


class TestTransparency:
    """The headline: recompile, don't rewrite."""

    def test_same_result_before_and_after(self):
        expected = Interpreter(build_write_then_sum(500)).run("main").value
        m = build_write_then_sum(500)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        program = TrackFMProgram(res.module, make_runtime())
        assert program.run("main").value == expected

    def test_untransformed_program_crashes_on_tfm_pointers(self):
        # A program handed a TrackFM pointer without guards GP-faults,
        # exactly as non-canonical addresses do on x86 (§3.1 fn 3).
        m = build_sum_loop(100)
        # Only swap malloc -> tfm_malloc; no guards injected.
        from repro.compiler.libc_transform import LibcTransformPass
        from repro.compiler.pass_manager import PassContext

        LibcTransformPass().run(m, PassContext(config=CompilerConfig()))
        program = TrackFMProgram(m, make_runtime())
        with pytest.raises(SegmentationFault):
            program.run("main")

    def test_guarded_naive_program_works(self):
        expected = Interpreter(build_write_then_sum(300)).run("main").value
        m = build_write_then_sum(300)
        cfg = CompilerConfig(chunking=ChunkingPolicy.NONE)
        res = TrackFMCompiler(cfg).compile(m)
        rt = make_runtime()
        program = TrackFMProgram(res.module, rt)
        assert program.run("main").value == expected
        assert rt.metrics.guard_count(GuardKind.FAST) > 0
        assert rt.metrics.guard_count(GuardKind.SLOW) > 0

    def test_chunked_program_uses_boundary_checks(self):
        m = build_write_then_sum(500)
        res = TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.ALL)).compile(m)
        rt = make_runtime()
        TrackFMProgram(res.module, rt).run("main")
        assert rt.metrics.guard_count(GuardKind.BOUNDARY) == 1000
        assert rt.metrics.guard_count(GuardKind.LOCALITY) >= 1
        assert rt.metrics.guard_count(GuardKind.FAST) == 0

    def test_chunking_reduces_guard_cycles(self):
        m1 = build_write_then_sum(2000, elem=4)
        res1 = TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.NONE)).compile(m1)
        rt1 = make_runtime()
        TrackFMProgram(res1.module, rt1).run("main")

        m2 = build_write_then_sum(2000, elem=4)
        res2 = TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.ALL)).compile(m2)
        rt2 = make_runtime()
        TrackFMProgram(res2.module, rt2).run("main")
        assert rt2.metrics.cycles < rt1.metrics.cycles

    def test_memory_pressure_evicts_and_refetches(self):
        # Working set (64 KB) >> local memory (2 objects = 8 KB).
        m = build_write_then_sum(8192, elem=8)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        rt = make_runtime(local=8 * KB, heap=1 * MB)
        program = TrackFMProgram(res.module, rt)
        expected = 8192 * 8191 // 2
        assert program.run("main").value == expected
        assert rt.metrics.evictions > 0
        # The second (read) loop must refetch what the write loop lost.
        assert rt.metrics.remote_fetches > 16

    def test_stack_accesses_not_guarded(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        b.store(5, slot)
        v = b.load(I64, slot)
        b.ret(v)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        rt = make_runtime()
        assert TrackFMProgram(res.module, rt).run("main").value == 5
        assert rt.metrics.total_guards == 0

    def test_free_and_reuse_through_runtime(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 64)])
        b.store(11, p)
        b.call(I64, "free", [p])
        q = b.call(PTR, "malloc", [Constant(I64, 64)])
        b.store(22, q)
        v = b.load(I64, q)
        b.ret(v)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        assert TrackFMProgram(res.module, make_runtime()).run("main").value == 22

    def test_realloc_through_runtime(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 8)])
        b.store(33, p)
        q = b.call(PTR, "realloc", [p, Constant(I64, 128)])
        v = b.load(I64, q)
        b.ret(v)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        assert TrackFMProgram(res.module, make_runtime()).run("main").value == 33


class TestPointerIntegerRoundTrip:
    def test_guarded_access_after_ptrtoint_math(self):
        # §3.2: pointer cast to int, offset, cast back — still guarded.
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 64)])
        b.store(77, b.gep(p, 2, 8))
        raw = b.ptrtoint(p)
        bumped = b.add(raw, 16)
        q = b.inttoptr(bumped)
        v = b.load(I64, q)
        b.ret(v)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        rt = make_runtime()
        assert TrackFMProgram(res.module, rt).run("main").value == 77
        assert rt.metrics.total_guards > 0


class TestProfileGuidedCompile:
    def test_profile_feeds_cost_model(self):
        from repro.analysis.profiler import profile_module

        # Short low-density loop: without a profile the static trip
        # count already rejects it; the profiled compile agrees.
        m = build_sum_loop(n=4, elem=2048)
        profile = profile_module(build_sum_loop(n=4, elem=2048))
        res = TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.COST_MODEL)
        ).compile(m, profile=profile)
        assert res.loops_chunked == 0
        assert res.guards_inserted == 1
