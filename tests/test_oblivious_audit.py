"""The far-memory access auditor (repro.analysis.oblivious)."""

import pytest

from repro.analysis.oblivious import (
    LoopClass,
    MAX_ENUMERATED_TRIPS,
    audit_module,
)
from repro.ir import IRBuilder, Module
from repro.ir.types import I64, PTR
from repro.ir.values import Constant

from irprograms import build_sum_loop, build_write_then_sum
from test_symbolic_streams import build_strided_loop


class TestClassification:
    def test_sum_loop_is_oblivious(self):
        audit = audit_module(build_sum_loop(n=100), object_size=256)
        assert len(audit.loops) == 1
        la = audit.loops[0]
        assert la.classification is LoopClass.OBLIVIOUS
        assert la.trips == 100

    def test_hashmap_probe_loop_is_opaque(self):
        from repro.trace.drivers import _build_hashmap_module

        audit = audit_module(_build_hashmap_module(7), object_size=4096)
        classes = {a.loop.header.name: a.classification for a in audit.loops}
        assert classes["wh"] is LoopClass.OBLIVIOUS
        assert classes["rh"] is LoopClass.OPAQUE
        assert not audit.program_prediction().complete

    def test_pointer_chase_is_opaque(self):
        m = Module("list")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        head = b.call(PTR, "malloc", [Constant(I64, 16)], name="head")
        b.br(header)
        b.set_block(header)
        node = b.phi(PTR, name="node")
        b.condbr(b.icmp("ne", node, Constant(PTR, 0)), body, exit_)
        b.set_block(body)
        nxt = b.load(PTR, b.gep(node, 1, 8), name="next")
        b.br(header)
        node.add_incoming(head, entry)
        node.add_incoming(nxt, body)
        b.set_block(exit_)
        b.ret(0)
        audit = audit_module(m, object_size=256)
        assert audit.loops[0].classification is LoopClass.OPAQUE

    def test_unknown_bound_is_strided_partial(self):
        m = Module("bounded-by-arg")
        f = m.add_function("main", I64, [I64], ["n"])
        n = f.args[0]
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, 8192)], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, n), body, exit_)
        b.set_block(body)
        v = b.load(I64, b.gep(p, i, 8), name="v")
        del v
        i2 = b.add(i, 1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        audit = audit_module(m, object_size=256)
        la = audit.loops[0]
        assert la.classification is LoopClass.STRIDED_PARTIAL
        assert la.prediction is None

    def test_stack_only_loop_has_no_streams(self):
        m = Module("stack-only")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        slot = b.alloca(8, name="slot")
        b.store(0, slot)
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, 10), body, exit_)
        b.set_block(body)
        v = b.load(I64, slot, name="v")
        b.store(b.add(v, 1), slot)
        i2 = b.add(i, 1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        audit = audit_module(m, object_size=256)
        la = audit.loops[0]
        assert la.classification is LoopClass.OBLIVIOUS
        assert not la.has_heap_streams
        assert audit.program_prediction().objects == 0


class TestPredictions:
    def test_object_count_and_bytes(self):
        # 100 x 8B elements over 256B objects: offsets 0..799 -> 4 objects.
        audit = audit_module(build_sum_loop(n=100), object_size=256)
        pred = audit.loops[0].prediction
        assert pred.objects == 4
        assert pred.bytes_fetched == 4 * 256
        assert pred.bytes_used == 800
        assert pred.fetch_amplification == pytest.approx(1024 / 800)

    def test_sparse_stride_amplification(self):
        # stride 32B over 256B objects is dense (<= object), span covers
        # all objects between first and last element.
        audit = audit_module(build_strided_loop(n=64, scale=4), object_size=256)
        pred = audit.loops[0].prediction
        # span = 32*63 + 8 = 2024 bytes -> objects 0..7
        assert pred.objects == 8
        assert pred.bytes_used == 64 * 8
        assert pred.fetch_amplification == pytest.approx((8 * 256) / 512)

    def test_wide_stride_enumerates_objects(self):
        # stride 512B > object 256B: every other object is skipped.
        audit = audit_module(build_strided_loop(n=16, scale=64), object_size=256)
        pred = audit.loops[0].prediction
        assert pred.objects == 16  # one distinct object per element

    def test_program_prediction_unions_loops(self):
        # Write loop + read loop over the same allocation: objects
        # counted once program-wide.
        audit = audit_module(build_write_then_sum(n=100), object_size=256)
        assert len(audit.oblivious) == 2
        per_loop = [a.prediction.objects for a in audit.oblivious]
        assert per_loop == [4, 4]
        pp = audit.program_prediction()
        assert pp.complete
        assert pp.objects == 4
        assert pp.bytes_fetched == 4 * 256
        assert pp.bytes_used == 800

    def test_guard_cost_predictions_present(self):
        audit = audit_module(build_sum_loop(n=1000), object_size=4096)
        la = audit.loops[0]
        assert la.naive_guard_cycles > 0
        assert la.chunked_guard_cycles > 0


class TestInterprocedural:
    def _helper_module(self, helper_returns="malloc"):
        m = Module("interproc")
        helper = m.add_function("make_buf", PTR)
        hentry = helper.add_block("entry")
        hb = IRBuilder(hentry)
        if helper_returns == "malloc":
            buf = hb.call(PTR, "malloc", [Constant(I64, 800)], name="buf")
        else:
            buf = hb.alloca(800, name="buf")
        hb.ret(buf)

        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        p = b.call(PTR, "make_buf", [], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, 100), body, exit_)
        b.set_block(body)
        v = b.load(I64, b.gep(p, i, 8), name="v")
        del v
        i2 = b.add(i, 1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        return m

    def test_heap_through_helper_is_audited(self):
        audit = audit_module(self._helper_module("malloc"), object_size=256)
        mains = [a for a in audit.loops if a.function == "main"]
        assert mains[0].classification is LoopClass.OBLIVIOUS
        assert mains[0].prediction.objects == 4

    def test_stack_through_helper_is_skipped(self):
        audit = audit_module(self._helper_module("alloca"), object_size=256)
        mains = [a for a in audit.loops if a.function == "main"]
        assert not mains[0].has_heap_streams

    def test_unreachable_functions_excluded(self):
        m = self._helper_module("malloc")
        dead = m.add_function("dead_code", I64)
        dentry = dead.add_block("entry")
        dh = dead.add_block("h")
        db = dead.add_block("b")
        dx = dead.add_block("x")
        b = IRBuilder(dentry)
        q = b.call(PTR, "malloc", [Constant(I64, 64)], name="q")
        b.br(dh)
        b.set_block(dh)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, 8), db, dx)
        b.set_block(db)
        v = b.load(I64, b.gep(q, i, 8), name="v")
        del v
        i2 = b.add(i, 1)
        b.br(dh)
        i.add_incoming(Constant(I64, 0), dentry)
        i.add_incoming(i2, db)
        b.set_block(dx)
        b.ret(0)
        audit = audit_module(m, object_size=256)
        assert "dead_code" not in audit.functions
        everything = audit_module(m, object_size=256, reachable_only=False)
        assert "dead_code" in everything.functions
