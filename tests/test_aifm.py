"""AIFM substrate: metadata formats, allocator, pool, scope, prefetcher."""

import pytest

from repro.aifm.allocator import RegionAllocator
from repro.aifm.objectmeta import (
    DIRTY_BIT,
    EVACUATING_BIT,
    ObjectMeta,
    UNSAFE_MASK,
    encode_local,
    encode_remote,
)
from repro.aifm.pool import ObjectPool, PoolConfig
from repro.aifm.prefetcher import StridePrefetcher
from repro.aifm.scope import DerefScope
from repro.errors import (
    EvacuationError,
    OutOfMemoryError,
    PointerError,
    RuntimeConfigError,
)
from repro.units import KB, MB


class TestObjectMeta:
    def test_local_roundtrip(self):
        word = encode_local(0xABC000, dirty=True, hot=True)
        meta = ObjectMeta(word)
        assert meta.is_local and not meta.is_remote
        assert meta.data_addr == 0xABC000
        assert meta.is_dirty and meta.is_hot
        assert not meta.is_evacuating

    def test_remote_roundtrip(self):
        word = encode_remote(obj_id=12345, obj_size=4096, ds_id=7, shared=True)
        meta = ObjectMeta(word)
        assert meta.is_remote
        assert meta.obj_id == 12345
        assert meta.obj_size == 4096
        assert meta.ds_id == 7

    def test_safety_mask(self):
        assert ObjectMeta(encode_local(0x1000)).is_safe
        assert not ObjectMeta(encode_remote(1, 64)).is_safe
        assert not ObjectMeta(encode_local(0x1000, evacuating=True)).is_safe
        # Dirty/hot local objects are still safe to access.
        assert ObjectMeta(encode_local(0x1000, dirty=True, hot=True)).is_safe

    def test_unsafe_mask_is_remote_or_evacuating(self):
        assert encode_remote(0, 64) & UNSAFE_MASK
        assert encode_local(0, evacuating=True) & UNSAFE_MASK
        assert not (encode_local(0, dirty=True) & UNSAFE_MASK)

    def test_field_bounds(self):
        with pytest.raises(PointerError):
            encode_local(1 << 47)
        with pytest.raises(PointerError):
            encode_remote(1 << 38, 64)
        with pytest.raises(PointerError):
            encode_remote(0, 1 << 16)
        with pytest.raises(PointerError):
            encode_remote(0, 64, ds_id=256)

    def test_transitions(self):
        meta = ObjectMeta(encode_local(0x40))
        assert meta.with_dirty().is_dirty
        assert meta.with_hot().is_hot
        assert meta.with_evacuating().is_evacuating
        assert not meta.with_dirty().with_dirty(False).is_dirty

    def test_remote_transitions_rejected(self):
        meta = ObjectMeta(encode_remote(1, 64))
        with pytest.raises(PointerError):
            meta.with_dirty()
        with pytest.raises(PointerError):
            meta.data_addr
        with pytest.raises(PointerError):
            ObjectMeta(encode_local(0)).obj_id


class TestRegionAllocator:
    def test_small_allocations_share_a_region(self):
        alloc = RegionAllocator(heap_size=64 * KB, object_size=4 * KB)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        assert a.object_range(4 * KB) == b.object_range(4 * KB)

    def test_large_allocation_spans_objects(self):
        alloc = RegionAllocator(heap_size=64 * KB, object_size=4 * KB)
        a = alloc.allocate(10 * KB)
        first, last = a.object_range(4 * KB)
        assert last - first == 3

    def test_free_and_recycle(self):
        alloc = RegionAllocator(heap_size=8 * KB, object_size=4 * KB)
        a = alloc.allocate(4 * KB)
        b = alloc.allocate(4 * KB)
        alloc.free(a.offset)
        alloc.free(b.offset)
        c = alloc.allocate(4 * KB)  # recycled region, not OOM
        assert c.offset in (a.offset, b.offset)

    def test_oom(self):
        alloc = RegionAllocator(heap_size=8 * KB, object_size=4 * KB)
        alloc.allocate(8 * KB)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(4 * KB)

    def test_free_unknown_offset(self):
        alloc = RegionAllocator(heap_size=8 * KB, object_size=4 * KB)
        with pytest.raises(PointerError):
            alloc.free(123)

    def test_allocation_at_interior_offset(self):
        alloc = RegionAllocator(heap_size=64 * KB, object_size=4 * KB)
        a = alloc.allocate(1000)
        assert alloc.allocation_at(a.offset + 500) == a
        assert alloc.allocation_at(a.offset) == a

    def test_bytes_allocated_tracking(self):
        alloc = RegionAllocator(heap_size=64 * KB, object_size=4 * KB)
        a = alloc.allocate(128)
        assert alloc.bytes_allocated == 128
        alloc.free(a.offset)
        assert alloc.bytes_allocated == 0

    def test_zero_size_clamped(self):
        alloc = RegionAllocator(heap_size=8 * KB, object_size=4 * KB)
        a = alloc.allocate(0)
        assert a.size > 0


class TestObjectPool:
    def make_pool(self, local_objects=4, object_size=4 * KB) -> ObjectPool:
        config = PoolConfig(
            object_size=object_size,
            local_memory=local_objects * object_size,
            heap_size=64 * object_size,
        )
        return ObjectPool(config)

    def test_initially_all_remote(self):
        pool = self.make_pool()
        assert pool.meta(0).is_remote
        assert not pool.is_safe(0)

    def test_first_touch_fetches(self):
        pool = self.make_pool()
        hit, cycles = pool.ensure_local(0)
        assert hit is False
        assert cycles > 30_000  # a blocking TCP fetch
        assert pool.meta(0).is_local
        assert pool.is_safe(0)
        assert pool.metrics.remote_fetches == 1
        assert pool.metrics.bytes_fetched == 4 * KB

    def test_second_touch_hits(self):
        pool = self.make_pool()
        pool.ensure_local(0)
        hit, cycles = pool.ensure_local(0)
        assert hit is True
        assert cycles == 0.0

    def test_eviction_flips_meta_remote(self):
        pool = self.make_pool(local_objects=1)
        pool.ensure_local(0)
        pool.ensure_local(1)
        assert pool.meta(0).is_remote
        assert pool.meta(1).is_local

    def test_dirty_eviction_writes_back(self):
        pool = self.make_pool(local_objects=1)
        pool.ensure_local(0, write=True)
        pool.ensure_local(1)
        assert pool.metrics.bytes_evacuated == 4 * KB
        assert pool.metrics.evictions == 1

    def test_clean_eviction_free(self):
        pool = self.make_pool(local_objects=1)
        pool.ensure_local(0)
        pool.ensure_local(1)
        assert pool.metrics.bytes_evacuated == 0

    def test_prefetch_cheaper_than_fetch(self):
        pool = self.make_pool()
        cost = pool.prefetch(3)
        _, fetch = self.make_pool().ensure_local(3)
        assert cost < fetch
        assert pool.metrics.prefetches_useful == 1
        hit, cycles = pool.ensure_local(3)
        assert hit is True

    def test_prefetch_resident_is_free(self):
        pool = self.make_pool()
        pool.ensure_local(5)
        assert pool.prefetch(5) == 0.0

    def test_object_of_offset(self):
        pool = self.make_pool()
        assert pool.object_of_offset(0) == 0
        assert pool.object_of_offset(4 * KB) == 1
        assert pool.object_of_offset(4 * KB - 1) == 0
        with pytest.raises(PointerError):
            pool.object_of_offset(64 * 4 * KB)

    def test_bad_object_id(self):
        pool = self.make_pool()
        with pytest.raises(PointerError):
            pool.ensure_local(9999)

    def test_free_object_drops_residency(self):
        pool = self.make_pool()
        pool.ensure_local(0)
        pool.free_object(0)
        assert pool.meta(0).is_remote
        assert pool.resident_objects == 0

    def test_config_validation(self):
        with pytest.raises(RuntimeConfigError):
            PoolConfig(object_size=100, local_memory=1 * MB, heap_size=1 * MB)
        with pytest.raises(RuntimeConfigError):
            PoolConfig(object_size=4 * KB, local_memory=1 * KB, heap_size=1 * MB)

    def test_local_bytes_in_use(self):
        pool = self.make_pool(local_objects=4)
        pool.ensure_local(0)
        pool.ensure_local(1)
        assert pool.local_bytes_in_use == 8 * KB


class TestDerefScope:
    def test_scope_pins_and_releases(self):
        config = PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=64 * KB)
        pool = ObjectPool(config)
        pool.ensure_local(0)
        with DerefScope(pool) as scope:
            scope.pin(0)
            assert pool.residency.is_pinned(0)
            assert scope.pinned_count == 1
        assert not pool.residency.is_pinned(0)

    def test_use_outside_with_block(self):
        config = PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=64 * KB)
        pool = ObjectPool(config)
        scope = DerefScope(pool)
        with pytest.raises(EvacuationError):
            scope.pin(0)


class TestStridePrefetcher:
    def test_sequential_stream_detected(self):
        pf = StridePrefetcher(depth=4, confidence_threshold=2)
        assert pf.observe(0) == []
        assert pf.observe(1) == []
        targets = pf.observe(2)
        assert targets == [3, 4, 5, 6]

    def test_no_reissue(self):
        pf = StridePrefetcher(depth=4, confidence_threshold=2)
        pf.observe(0)
        pf.observe(1)
        first = pf.observe(2)
        second = pf.observe(3)
        assert set(first).isdisjoint(second)

    def test_strided_stream(self):
        pf = StridePrefetcher(depth=2, confidence_threshold=2)
        pf.observe(0)
        pf.observe(10)
        targets = pf.observe(20)
        assert targets == [30, 40]

    def test_random_stream_silent(self):
        pf = StridePrefetcher(depth=4, confidence_threshold=3)
        issued = []
        for obj in (5, 99, 3, 42, 7, 1000):
            issued.extend(pf.observe(obj))
        assert issued == []

    def test_streams_independent(self):
        pf = StridePrefetcher(depth=2, confidence_threshold=2)
        pf.observe(0, stream=0)
        pf.observe(100, stream=1)
        pf.observe(1, stream=0)
        pf.observe(200, stream=1)
        assert pf.observe(2, stream=0) == [3, 4]

    def test_same_object_repeats_ignored(self):
        pf = StridePrefetcher(depth=2, confidence_threshold=2)
        pf.observe(0)
        pf.observe(0)
        pf.observe(1)
        # The duplicate did not reset stride learning.
        assert pf.observe(2) == [3, 4]

    def test_reset(self):
        pf = StridePrefetcher(depth=2, confidence_threshold=2)
        pf.observe(0)
        pf.observe(1)
        pf.reset()
        assert pf.observe(2) == []

    def test_negative_stride_stops_at_zero(self):
        pf = StridePrefetcher(depth=4, confidence_threshold=2)
        pf.observe(3)
        pf.observe(2)
        targets = pf.observe(1)
        assert targets == [0]

    def test_config_validation(self):
        with pytest.raises(RuntimeConfigError):
            StridePrefetcher(depth=0)
        with pytest.raises(RuntimeConfigError):
            StridePrefetcher(confidence_threshold=0)
