"""The Fastswap kernel-paging baseline."""

import pytest

from repro.errors import PointerError, RuntimeConfigError
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.machine.costs import AccessKind
from repro.units import KB, MB


def make_runtime(local_pages=4, heap_pages=64) -> FastswapRuntime:
    return FastswapRuntime(
        FastswapConfig(local_memory=local_pages * 4 * KB, heap_size=heap_pages * 4 * KB)
    )


class TestConfig:
    def test_capacity_math(self):
        cfg = FastswapConfig(local_memory=1 * MB, heap_size=4 * MB)
        assert cfg.local_capacity_pages == 256
        assert cfg.num_pages == 1024

    def test_validation(self):
        with pytest.raises(RuntimeConfigError):
            FastswapConfig(local_memory=100, heap_size=1 * MB)
        with pytest.raises(RuntimeConfigError):
            FastswapConfig(local_memory=1 * MB, heap_size=1 * MB, page_size=1000)


class TestAccessPath:
    def test_first_touch_major_faults(self):
        rt = make_runtime()
        off = rt.allocate(100)
        cycles = rt.access(off)
        assert cycles >= 34_000
        assert rt.metrics.major_faults == 1
        assert rt.metrics.bytes_fetched == 4 * KB

    def test_resident_access_costs_nothing_extra(self):
        # The defining property of kernel paging: no software cost on hits.
        rt = make_runtime()
        off = rt.allocate(100)
        rt.access(off)
        cycles = rt.access(off)
        assert cycles == rt.config.costs.local_access
        assert rt.metrics.major_faults == 1

    def test_same_page_shares_fault(self):
        rt = make_runtime()
        off = rt.allocate(4 * KB)
        rt.access(off)
        rt.access(off + 512)
        assert rt.metrics.major_faults == 1

    def test_write_fault_more_expensive(self):
        r = make_runtime()
        w = make_runtime()
        off_r = r.allocate(8)
        off_w = w.allocate(8)
        assert w.access(off_w, AccessKind.WRITE) > r.access(off_r, AccessKind.READ)

    def test_eviction_reclaim_cost(self):
        rt = make_runtime(local_pages=1)
        a = rt.allocate(4 * KB)
        b = rt.allocate(4 * KB)
        rt.access(a)
        cycles = rt.access(b)
        assert cycles > 34_000 + rt.config.reclaim_cycles - 1
        assert rt.metrics.evictions == 1

    def test_dirty_page_writeback(self):
        rt = make_runtime(local_pages=1)
        a = rt.allocate(4 * KB)
        b = rt.allocate(4 * KB)
        rt.access(a, AccessKind.WRITE)
        rt.access(b)
        assert rt.metrics.bytes_evacuated == 4 * KB

    def test_access_spanning_pages(self):
        rt = make_runtime()
        off = rt.allocate(2 * 4 * KB)
        rt.access(off + 4 * KB - 4, size=8)
        assert rt.metrics.major_faults == 2

    def test_out_of_heap_offset(self):
        rt = make_runtime(heap_pages=1)
        with pytest.raises(PointerError):
            rt.access(4 * KB + 1)

    def test_heap_exhaustion(self):
        rt = make_runtime(heap_pages=1)
        rt.allocate(4 * KB)
        with pytest.raises(PointerError):
            rt.allocate(4 * KB)


class TestScan:
    def test_page_granularity_io(self):
        rt = make_runtime(local_pages=2, heap_pages=64)
        rt.sequential_scan(0, 512 * 4, 8)  # 16 KB = 4 pages
        assert rt.metrics.major_faults == 4
        assert rt.metrics.bytes_fetched == 4 * 4 * KB

    def test_scan_amplification_vs_trackfm(self):
        # Fastswap always moves whole pages; with 8-byte elements and a
        # sparse touch pattern the amplification shows in bytes moved.
        rt = make_runtime()
        rt.sequential_scan(0, 100, 8)  # 800 bytes -> still a whole page
        assert rt.metrics.bytes_fetched == 4 * KB

    def test_resident_fraction(self):
        rt1 = make_runtime()
        cold = rt1.sequential_scan(0, 10_000, 8)
        rt2 = make_runtime()
        warm = rt2.sequential_scan(0, 10_000, 8, resident_fraction=0.9)
        assert warm < cold

    def test_write_scan_writes_back(self):
        rt = make_runtime()
        rt.sequential_scan(0, 10_000, 8, kind=AccessKind.WRITE)
        assert rt.metrics.bytes_evacuated > 0

    def test_pressure_flag(self):
        rt1 = make_runtime()
        relaxed = rt1.sequential_scan(0, 10_000, 8, under_pressure=False)
        rt2 = make_runtime()
        pressured = rt2.sequential_scan(0, 10_000, 8, under_pressure=True)
        assert pressured > relaxed


class TestProbes:
    def test_fault_probe_costs(self):
        rt = make_runtime()
        assert rt.fault_probe(AccessKind.READ, remote=False) == 1_300
        assert rt.fault_probe(AccessKind.READ, remote=True) == 34_000
        assert rt.fault_probe(AccessKind.WRITE, remote=True) == 35_000
        assert rt.metrics.minor_faults == 1
        assert rt.metrics.major_faults == 2
