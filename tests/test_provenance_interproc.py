"""Provenance + call graph interaction: pointers through call boundaries."""

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.provenance import (
    Provenance,
    ProvenanceAnalysis,
    return_provenance_summaries,
)
from repro.ir import IRBuilder, Module
from repro.ir.instructions import Load
from repro.ir.types import I64, PTR
from repro.ir.values import Constant


def _make_helper(m, name, kind):
    """A helper returning a pointer of the given provenance kind."""
    f = m.add_function(name, PTR)
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    if kind == "heap":
        p = b.call(PTR, "malloc", [Constant(I64, 64)], name="p")
    elif kind == "stack":
        p = b.alloca(64, name="p")
    elif kind == "global":
        p = b.call(PTR, "global_addr.table", [], name="p")
    else:
        raise ValueError(kind)
    b.ret(p)
    return f


def _main_loading_through(m, helper_name):
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    p = b.call(PTR, helper_name, [], name="p")
    v = b.load(I64, p, name="v")
    b.ret(v)
    return f


class TestReturnSummaries:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("heap", Provenance.HEAP),
            ("stack", Provenance.STACK),
            ("global", Provenance.GLOBAL),
        ],
    )
    def test_direct_helper(self, kind, expected):
        m = Module("helpers")
        _make_helper(m, "make", kind)
        summaries = return_provenance_summaries(m)
        assert summaries["make"] == expected

    def test_wrapper_chain_converges(self):
        m = Module("chain")
        _make_helper(m, "inner", "heap")
        outer = m.add_function("outer", PTR)
        entry = outer.add_block("entry")
        b = IRBuilder(entry)
        p = b.call(PTR, "inner", [], name="p")
        b.ret(p)
        summaries = return_provenance_summaries(m)
        assert summaries["outer"] == Provenance.HEAP

    def test_mixed_returns_join(self):
        m = Module("mixed")
        f = m.add_function("pick", PTR, [I64], ["flag"])
        entry = f.add_block("entry")
        heap_bb = f.add_block("heap")
        stack_bb = f.add_block("stack")
        b = IRBuilder(entry)
        b.condbr(b.icmp("ne", f.args[0], Constant(I64, 0)), heap_bb, stack_bb)
        b.set_block(heap_bb)
        hp = b.call(PTR, "malloc", [Constant(I64, 32)], name="hp")
        b.ret(hp)
        b.set_block(stack_bb)
        sp = b.alloca(32, name="sp")
        b.ret(sp)
        summaries = return_provenance_summaries(m)
        assert summaries["pick"] == Provenance.HEAP | Provenance.STACK
        assert summaries["pick"].may_be_heap()

    def test_external_callee_stays_unknown(self):
        m = Module("external")
        f = m.add_function("wrap", PTR)
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        p = b.call(PTR, "mystery_extern", [], name="p")
        b.ret(p)
        summaries = return_provenance_summaries(m)
        assert "mystery_extern" not in summaries
        assert summaries["wrap"] == Provenance.UNKNOWN


class TestMustGuardThroughCalls:
    def _load_in(self, func):
        return next(i for i in func.instructions() if isinstance(i, Load))

    def test_regression_stack_helper_was_over_conservative(self):
        """must_guard on a stack-returning helper's result.

        Without summaries the call result is UNKNOWN and the load is
        guarded (the historical over-conservative answer); with
        summaries the analysis proves it stack-only and skips the guard.
        """
        m = Module("reg")
        _make_helper(m, "make_local", "stack")
        main = _main_loading_through(m, "make_local")
        load = self._load_in(main)

        conservative = ProvenanceAnalysis(main)
        assert conservative.must_guard(load), "baseline: unknown => guarded"

        summaries = return_provenance_summaries(m)
        precise = ProvenanceAnalysis(main, summaries=summaries)
        assert not precise.must_guard(load)
        assert precise.of(load.pointer).definitely_local_only()

    def test_heap_helper_still_guarded(self):
        m = Module("heap-via-call")
        _make_helper(m, "make_buf", "heap")
        main = _main_loading_through(m, "make_buf")
        load = self._load_in(main)
        summaries = return_provenance_summaries(m)
        precise = ProvenanceAnalysis(main, summaries=summaries)
        assert precise.must_guard(load)

    def test_pointer_through_call_argument_stays_unknown(self):
        """A pointer passed INTO a callee: the callee must still guard.

        Callee argument provenance is not summarized (call sites vary),
        so the conservative UNKNOWN remains — this is the safe side.
        """
        m = Module("arg-pass")
        callee = m.add_function("reader", I64, [PTR], ["q"])
        entry = callee.add_block("entry")
        b = IRBuilder(entry)
        v = b.load(I64, callee.args[0], name="v")
        b.ret(v)
        summaries = return_provenance_summaries(m)
        analysis = ProvenanceAnalysis(callee, summaries=summaries)
        load = self._load_in(callee)
        assert analysis.must_guard(load)

    def test_callgraph_reachability_drives_audit_scope(self):
        m = Module("scope")
        _make_helper(m, "make_buf", "heap")
        _main_loading_through(m, "make_buf")
        _make_helper(m, "unused", "heap")
        cg = CallGraph(m)
        reachable = cg.reachable_from("main")
        assert "make_buf" in reachable
        assert "unused" not in reachable


class TestGuardPipelineUnchanged:
    def test_guard_analysis_stays_conservative_without_summaries(self):
        """The compiler's guard pass does not consume summaries: a
        helper-returned stack pointer still gets guarded (safety-first
        default), while the auditor's interprocedural view refines it."""
        from repro.compiler.guard_analysis import GUARD_MD, GuardAnalysisPass
        from repro.compiler.pass_manager import PassContext
        from repro.compiler.pipeline import CompilerConfig

        m = Module("pipeline-cons")
        _make_helper(m, "make_local", "stack")
        main = _main_loading_through(m, "make_local")
        ctx = PassContext(config=CompilerConfig())
        GuardAnalysisPass().run(m, ctx)
        load = next(i for i in main.instructions() if isinstance(i, Load))
        assert load.metadata.get(GUARD_MD)
