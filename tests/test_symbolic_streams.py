"""Affine address-stream extraction (repro.analysis.symbolic)."""

import pytest

from repro.analysis.loops import find_loops
from repro.analysis.symbolic import SymbolicAddressAnalysis
from repro.ir import IRBuilder, Module
from repro.ir.instructions import Load, Store
from repro.ir.types import I64, PTR
from repro.ir.values import Constant

from irprograms import build_sum_loop


def _analyze(module):
    func = module.get_function("main")
    return func, SymbolicAddressAnalysis(func)


def _loop_of(analysis, func):
    loops = list(analysis.loop_info)
    assert loops, "expected at least one loop"
    return loops[0]


def _only_load_stream(module):
    func, analysis = _analyze(module)
    loads = [i for i in func.instructions() if isinstance(i, Load)]
    heap_loads = [i for i in loads if analysis.stream_of(i) is not None]
    assert len(heap_loads) == 1
    return analysis.stream_of(heap_loads[0])


class TestUnitStrideLoop:
    def test_sum_loop_stream(self):
        m = build_sum_loop(n=100, elem=8)
        stream = _only_load_stream(m)
        assert stream.exact
        assert stream.stride == 8
        assert stream.offset == 0
        assert stream.elem_size == 8
        assert stream.trips == 100
        assert stream.base is not None and stream.base.name == "p"

    def test_span_and_used_bytes(self):
        m = build_sum_loop(n=100, elem=8)
        stream = _only_load_stream(m)
        assert stream.span_bytes() == 800
        assert stream.used_bytes() == 800
        assert stream.byte_interval() == (0, 800)


def build_strided_loop(n=64, elem=8, scale=4, start=0, offset_elems=0):
    """for i = start; i < n; i++: sum += p[scale*i + offset_elems]."""
    m = Module("strided")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * elem * scale + 64)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, n), body, exit_)
    b.set_block(body)
    addr = b.gep(p, i, elem * scale, name="addr")
    if offset_elems:
        addr = b.gep(addr, offset_elems, elem, name="addr2")
    v = b.load(I64, addr, name="v")
    s2 = b.add(s, v)
    i2 = b.add(i, 1, name="i2")
    b.br(header)
    i.add_incoming(Constant(I64, start), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(exit_)
    b.ret(s)
    return m


class TestGepChains:
    def test_scaled_stride(self):
        stream = _only_load_stream(build_strided_loop(scale=4, elem=8))
        assert stream.exact and stream.stride == 32 and stream.offset == 0

    def test_constant_gep_offset_folds(self):
        stream = _only_load_stream(build_strided_loop(scale=4, offset_elems=3))
        assert stream.exact and stream.stride == 32 and stream.offset == 24

    def test_nonzero_start_shifts_offset(self):
        stream = _only_load_stream(build_strided_loop(scale=1, start=10))
        assert stream.exact and stream.offset == 80 and stream.stride == 8
        # trips: i = 10..63
        assert stream.trips == 54

    def test_update_operand_index_is_one_step_ahead(self):
        """p[i+1] indexed via the IV's update instruction."""
        m = Module("lookahead")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, 1024)], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, 100), body, exit_)
        b.set_block(body)
        i2 = b.add(i, 1, name="i2")
        v = b.load(I64, b.gep(p, i2, 8, name="addr"), name="v")
        del v
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        func, analysis = _analyze(m)
        load = next(j for j in func.instructions() if isinstance(j, Load))
        stream = analysis.stream_of(load)
        assert stream is not None and stream.exact
        assert stream.offset == 8 and stream.stride == 8


class TestPointerIV:
    def test_pointer_phi_stream(self):
        m = Module("ptr-iv")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        base = b.call(PTR, "malloc", [Constant(I64, 512)], name="base")
        end = b.gep(base, 64, 8, name="end")
        b.br(header)
        b.set_block(header)
        p = b.phi(PTR, name="p")
        b.condbr(b.icmp("ne", p, end), body, exit_)
        b.set_block(body)
        v = b.load(I64, p, name="v")
        del v
        p2 = b.gep(p, 1, 8, name="p2")
        b.br(header)
        p.add_incoming(base, entry)
        p.add_incoming(p2, body)
        b.set_block(exit_)
        b.ret(0)
        func, analysis = _analyze(m)
        load = next(i for i in func.instructions() if isinstance(i, Load))
        stream = analysis.stream_of(load)
        assert stream is not None and stream.exact
        assert stream.base is base and stream.stride == 8 and stream.offset == 0


class TestOpaqueAndPartial:
    def test_loaded_pointer_is_opaque(self):
        """*q where q is loaded inside the loop: pointer chase."""
        m = Module("chase")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, 512)], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, 8), body, exit_)
        b.set_block(body)
        q = b.load(PTR, b.gep(p, i, 8), name="q")
        v = b.load(I64, q, name="v")
        del v
        i2 = b.add(i, 1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        func, analysis = _analyze(m)
        loads = [j for j in func.instructions() if isinstance(j, Load)]
        by_name = {ld.name: analysis.stream_of(ld) for ld in loads}
        assert by_name["q"] is not None  # p[i] itself is affine
        assert by_name["v"] is None  # *q is opaque

    def test_loop_invariant_unknown_index_is_partial(self):
        """p[k + i] with k a function argument: stride known, start not."""
        m = Module("partial")
        f = m.add_function("main", I64, [I64], ["k"])
        k = f.args[0]
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, 4096)], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, 16), body, exit_)
        b.set_block(body)
        off = b.gep(p, k, 8, name="off")
        v = b.load(I64, b.gep(off, i, 8, name="addr"), name="v")
        del v
        i2 = b.add(i, 1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        func, analysis = _analyze(m)
        load = next(j for j in func.instructions() if isinstance(j, Load))
        stream = analysis.stream_of(load)
        assert stream is not None
        assert not stream.exact
        assert stream.stride == 8

    def test_store_streams_are_derived_too(self):
        from irprograms import build_write_then_sum

        m = build_write_then_sum(n=50)
        func, analysis = _analyze(m)
        stores = [i for i in func.instructions() if isinstance(i, Store)]
        streams = [analysis.stream_of(s) for s in stores]
        assert all(st is not None and st.exact and st.stride == 8 for st in streams)
        assert all(st.is_write for st in streams)


class TestPostTransformIR:
    def test_streams_survive_chunk_transform(self):
        from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler

        m = build_sum_loop(n=200, elem=8)
        TrackFMCompiler(
            CompilerConfig(object_size=256, chunking=ChunkingPolicy.ALL)
        ).compile(m)
        func = m.get_function("main")
        analysis = SymbolicAddressAnalysis(func)
        loads = [
            i
            for i in func.instructions()
            if isinstance(i, Load) and analysis.stream_of(i) is not None
        ]
        assert loads, "chunked load should still have an affine stream"
        stream = analysis.stream_of(loads[0])
        assert stream.exact and stream.stride == 8 and stream.trips == 200
