"""Pointer provenance: the heap/stack/global classification behind guards."""

import pytest

from repro.analysis.provenance import Provenance, ProvenanceAnalysis
from repro.ir import IRBuilder, I64, PTR, VOID, Module
from repro.ir.instructions import Load, Store
from repro.ir.values import Constant


def build(fn):
    m = Module()
    m.add_global("gtable", 64)
    f = m.add_function("main", I64, [PTR], ["escaped"])
    b = IRBuilder(f.add_block("entry"))
    ret = fn(b, f)
    b.ret(ret if ret is not None else 0)
    return f


def test_alloca_is_stack():
    def body(b, f):
        p = b.alloca(8)
        v = b.load(I64, p)
        return v

    f = build(body)
    prov = ProvenanceAnalysis(f)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    assert prov.of(load.pointer) == Provenance.STACK
    assert not prov.must_guard(load)


def test_malloc_is_heap():
    def body(b, f):
        p = b.call(PTR, "malloc", [Constant(I64, 64)])
        return b.load(I64, p)

    f = build(body)
    prov = ProvenanceAnalysis(f)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    assert prov.of(load.pointer) == Provenance.HEAP
    assert prov.must_guard(load)


def test_tfm_malloc_also_heap():
    def body(b, f):
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)])
        return b.load(I64, p)

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    assert ProvenanceAnalysis(f).must_guard(load)


def test_gep_propagates_provenance():
    def body(b, f):
        p = b.call(PTR, "malloc", [Constant(I64, 64)])
        q = b.gep(p, 2, 8)
        return b.load(I64, q)

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    assert ProvenanceAnalysis(f).of(load.pointer).may_be_heap()


def test_global_addr_not_guarded():
    def body(b, f):
        g = b.call(PTR, "global_addr.gtable")
        return b.load(I64, g)

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    prov = ProvenanceAnalysis(f)
    assert prov.of(load.pointer) == Provenance.GLOBAL
    assert not prov.must_guard(load)


def test_argument_pointer_is_unknown_and_guarded():
    def body(b, f):
        return b.load(I64, f.args[0])

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    prov = ProvenanceAnalysis(f)
    assert prov.of(f.args[0]) == Provenance.UNKNOWN
    assert prov.must_guard(load)


def test_select_merges_provenance():
    def body(b, f):
        heap = b.call(PTR, "malloc", [Constant(I64, 8)])
        stack = b.alloca(8)
        cond = b.icmp("slt", 1, 2)
        p = b.select(cond, heap, stack)
        return b.load(I64, p)

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    prov = ProvenanceAnalysis(f)
    merged = prov.of(load.pointer)
    assert merged & Provenance.HEAP
    assert merged & Provenance.STACK
    assert prov.must_guard(load)  # may-be-heap wins


def test_ptrtoint_roundtrip_keeps_heap_provenance():
    # §3.2: offset math on a cast pointer is still guarded.
    def body(b, f):
        p = b.call(PTR, "malloc", [Constant(I64, 64)])
        raw = b.ptrtoint(p)
        bumped = b.add(raw, 16)
        q = b.inttoptr(bumped)
        return b.load(I64, q)

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    assert ProvenanceAnalysis(f).of(load.pointer).may_be_heap()


def test_inttoptr_from_unknown_integer_is_unknown():
    def body(b, f):
        q = b.inttoptr(b.add(0, 0x1000))
        return b.load(I64, q)

    f = build(body)
    load = next(i for i in f.instructions() if isinstance(i, Load))
    prov = ProvenanceAnalysis(f).of(load.pointer)
    assert prov.may_be_heap()  # conservative


def test_phi_merges_provenance_in_loops():
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body_b = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    base = b.call(PTR, "malloc", [Constant(I64, 80)])
    b.br(header)
    b.set_block(header)
    p = b.phi(PTR, name="p")
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, 10), body_b, exit_)
    b.set_block(body_b)
    v = b.load(I64, p)
    p2 = b.gep(p, 1, 8)
    i2 = b.add(i, 1)
    b.br(header)
    p.add_incoming(base, entry)
    p.add_incoming(p2, body_b)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body_b)
    b.set_block(exit_)
    b.ret(0)
    del v
    prov = ProvenanceAnalysis(f)
    assert prov.of(p).may_be_heap()


def test_store_to_stack_of_heap_value_not_guarded():
    def body(b, f):
        slot = b.alloca(8)
        heap = b.call(PTR, "malloc", [Constant(I64, 8)])
        b.store(b.ptrtoint(heap), slot)  # storing TO stack: no guard
        return b.load(I64, slot)

    f = build(body)
    prov = ProvenanceAnalysis(f)
    store = next(i for i in f.instructions() if isinstance(i, Store))
    assert not prov.must_guard(store)


def test_loaded_pointer_is_unknown():
    def body(b, f):
        slot = b.alloca(8)
        loaded = b.load(PTR, slot)
        return b.load(I64, loaded)

    f = build(body)
    prov = ProvenanceAnalysis(f)
    loads = [i for i in f.instructions() if isinstance(i, Load)]
    inner = loads[-1]
    assert prov.of(inner.pointer) == Provenance.UNKNOWN
    assert prov.must_guard(inner)


def test_definitely_local_only():
    assert Provenance.STACK.definitely_local_only()
    assert Provenance.GLOBAL.definitely_local_only()
    assert not Provenance.HEAP.definitely_local_only()
    assert not (Provenance.STACK | Provenance.UNKNOWN).definitely_local_only()
    assert not Provenance.NONE.definitely_local_only()
