"""Computation offload / near-data processing (§5 extension)."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.compiler.guard_analysis import GuardAnalysisPass
from repro.compiler.offload import OffloadPass, find_offload_candidates
from repro.compiler.pass_manager import PassContext, PassManager
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.instructions import Call
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

from irprograms import build_sum_loop, build_write_then_sum


def analyzed(m):
    ctx = PassContext(config=CompilerConfig())
    GuardAnalysisPass().run(m, ctx)
    return m


def make_runtime(local=16 * KB):
    return TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=local, heap_size=2 * MB),
        cache=AlwaysHitCache(),
    )


class TestCandidateMatching:
    def test_sum_loop_matches(self):
        m = analyzed(build_sum_loop(n=10_000))
        cands = find_offload_candidates(m.get_function("main"))
        assert len(cands) == 1
        c = cands[0]
        assert c.op == "add"
        assert c.elem_size == 8
        assert c.footprint_bytes(1) == 80_000

    def test_loop_with_store_rejected(self):
        m = analyzed(build_write_then_sum(1000))
        cands = find_offload_candidates(m.get_function("main"))
        # Only the read loop matches; the write loop has a store.
        assert len(cands) == 1
        assert cands[0].loop.header.name == "rh"

    def test_unguarded_loop_rejected(self):
        # Stack-array sums never go remote: nothing to offload.
        m = Module()
        f = m.add_function("main", I64)
        entry, header, body, exit_ = (
            f.add_block(x) for x in ("entry", "header", "body", "exit")
        )
        b = IRBuilder(entry)
        p = b.alloca(80)
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        s = b.phi(I64, name="s")
        b.condbr(b.icmp("slt", i, 10), body, exit_)
        b.set_block(body)
        v = b.load(I64, b.gep(p, i, 8))
        s2 = b.add(s, v)
        i2 = b.add(i, 1)
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        s.add_incoming(Constant(I64, 0), entry)
        s.add_incoming(s2, body)
        b.set_block(exit_)
        b.ret(s)
        analyzed(m)
        assert find_offload_candidates(m.get_function("main")) == []

    def test_escaping_accumulator_rejected(self):
        # acc used by another instruction inside the loop: partial sums
        # escape, cannot offload.
        m = build_sum_loop(n=100)
        f = m.get_function("main")
        body = f.get_block("body")
        header = f.get_block("header")
        s_phi = next(p for p in header.phis() if p.name == "s")
        b = IRBuilder(body)
        # Insert an extra use of s before the terminator.
        from repro.ir.instructions import BinOp

        extra = BinOp("add", s_phi, Constant(I64, 1))
        extra.name = "leak"
        body.insert(0, extra)
        analyzed(m)
        assert find_offload_candidates(f) == []


class TestTransform:
    def compile_offload(self, m, threshold=1):
        config = CompilerConfig(
            chunking=ChunkingPolicy.NONE,
            enable_offload=True,
            offload_threshold_bytes=threshold,
        )
        return TrackFMCompiler(config).compile(m)

    def test_loop_replaced_by_call(self):
        m = build_sum_loop(n=10_000)
        res = self.compile_offload(m)
        assert res.ctx.get_stat("offload.loops_offloaded") == 1
        f = m.get_function("main")
        calls = [
            i for i in f.instructions()
            if isinstance(i, Call) and i.callee == "tfm_offload_reduce"
        ]
        assert len(calls) == 1
        # The loop blocks are gone.
        assert all(b.name not in ("header", "body") for b in f.blocks)
        verify_module(m)

    def test_threshold_respected(self):
        m = build_sum_loop(n=100)  # 800 bytes
        res = self.compile_offload(m, threshold=1 * MB)
        assert res.ctx.get_stat("offload.loops_offloaded", ) == 0
        assert res.ctx.get_stat("offload.below_threshold") == 1

    def test_semantics_preserved(self):
        expected = Interpreter(build_write_then_sum(4000)).run("main").value
        m = build_write_then_sum(4000)
        res = self.compile_offload(m)
        assert res.ctx.get_stat("offload.loops_offloaded") == 1
        rt = make_runtime()
        got = TrackFMProgram(res.module, rt).run("main").value
        assert got == expected

    def test_semantics_preserved_i32(self):
        expected = Interpreter(build_write_then_sum(3000, elem=4)).run("main").value
        m = build_write_then_sum(3000, elem=4)
        res = self.compile_offload(m)
        rt = make_runtime()
        got = TrackFMProgram(res.module, rt).run("main").value
        assert got == expected

    def test_offload_avoids_data_fetch(self):
        # The write loop dirties everything; the offloaded read loop
        # must flush dirty objects but fetch (almost) nothing.
        n = 8192  # 64 KB of data, 16 KB local
        m = build_write_then_sum(n)
        res = self.compile_offload(m)
        rt = make_runtime()
        TrackFMProgram(res.module, rt).run("main")
        offload_metrics = rt.metrics.snapshot()

        m2 = build_write_then_sum(n)
        res2 = TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.NONE)
        ).compile(m2)
        rt2 = make_runtime()
        TrackFMProgram(res2.module, rt2).run("main")
        fetch_metrics = rt2.metrics

        # The write loop still fetches its objects; the offloaded read
        # loop replaces its entire fetch traffic with one 64B message.
        assert offload_metrics.bytes_fetched < fetch_metrics.bytes_fetched * 0.6
        assert offload_metrics.cycles < fetch_metrics.cycles

    def test_offload_flushes_dirty_objects(self):
        n = 8192
        m = build_write_then_sum(n)
        res = self.compile_offload(m)
        rt = make_runtime()
        TrackFMProgram(res.module, rt).run("main")
        # The locally-dirty objects were written back before the remote
        # scan (at least the ones still resident).
        assert rt.metrics.bytes_evacuated > 0

    def test_disabled_by_default(self):
        m = build_sum_loop(n=10_000)
        res = TrackFMCompiler(CompilerConfig()).compile(m)
        f = res.module.get_function("main")
        assert not any(
            isinstance(i, Call) and i.callee == "tfm_offload_reduce"
            for i in f.instructions()
        )
