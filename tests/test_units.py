"""Unit helpers."""

import pytest

from repro.units import (
    CACHE_LINE,
    GB,
    KB,
    MB,
    PLAUSIBLE_OBJECT_SIZES,
    align_down,
    align_up,
    ceil_div,
    fmt_bytes,
    fmt_cycles,
    is_power_of_two,
    log2_exact,
)


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert CACHE_LINE == 64


def test_plausible_object_sizes_match_paper_range():
    # §3.2: powers of two from cache line (64B) to base page (4KB).
    assert PLAUSIBLE_OBJECT_SIZES[0] == 64
    assert PLAUSIBLE_OBJECT_SIZES[-1] == 4 * KB
    assert all(is_power_of_two(s) for s in PLAUSIBLE_OBJECT_SIZES)


@pytest.mark.parametrize("n,expected", [(1, True), (2, True), (3, False), (0, False), (-4, False), (4096, True)])
def test_is_power_of_two(n, expected):
    assert is_power_of_two(n) is expected


def test_log2_exact():
    assert log2_exact(4096) == 12
    assert log2_exact(64) == 6
    with pytest.raises(ValueError):
        log2_exact(100)


def test_align_up_down():
    assert align_up(5, 8) == 8
    assert align_up(8, 8) == 8
    assert align_down(5, 8) == 0
    assert align_down(17, 8) == 16
    with pytest.raises(ValueError):
        align_up(1, 0)
    with pytest.raises(ValueError):
        align_down(1, -2)


def test_ceil_div():
    assert ceil_div(10, 3) == 4
    assert ceil_div(9, 3) == 3
    assert ceil_div(0, 5) == 0
    with pytest.raises(ValueError):
        ceil_div(1, 0)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(3 * GB) == "3.0GB"
    assert fmt_bytes(1536) == "1.5KB"


def test_fmt_cycles():
    assert fmt_cycles(34_000) == "34.0K"
    assert fmt_cycles(21) == "21"
    assert fmt_cycles(2.4e9) == "2.4G"
    assert fmt_cycles(1.5e6) == "1.5M"
