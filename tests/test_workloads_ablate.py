"""The three ablation-matrix workloads: graph BFS, external sort, web cache.

Each gets the same three-part treatment the ablation matrix relies on:
seeded determinism (same seed, same everything; different seed,
different trace), cross-runtime value equality (the computed value is a
property of the workload, never of the memory system underneath), and
one chaos cell (the workload survives a fault plan with the resilience
machinery armed).
"""

import pytest

from repro.ablate.matrix import CellSpec
from repro.ablate.registry import BASELINE
from repro.ablate.runner import run_cell
from repro.machine.costs import AccessKind
from repro.workloads.extsort import ExternalSortWorkload
from repro.workloads.graph import GraphTraversalWorkload
from repro.workloads.webcache import WebCacheConfig, WebCacheWorkload

RUNTIMES = ("aifm", "fastswap", "hybrid", "trackfm")


class TestGraphTraversal:
    def test_seeded_determinism(self):
        a = GraphTraversalWorkload(seed=3)
        b = GraphTraversalWorkload(seed=3)
        assert a.value() == b.value()
        assert list(a.accesses()) == list(b.accesses())
        assert GraphTraversalWorkload(seed=4).value() != a.value()

    def test_bfs_visits_every_node(self):
        wl = GraphTraversalWorkload()
        order, dist = wl.bfs()
        assert sorted(order) == list(range(wl.n_nodes))
        # The ring edges guarantee connectivity; distances are finite.
        assert all(d >= 0 for d in dist)

    def test_accesses_stay_in_arena(self):
        wl = GraphTraversalWorkload()
        for offset, kind in wl.accesses():
            assert 0 <= offset < wl.arena_bytes
            assert kind in (AccessKind.READ, AccessKind.WRITE)

    def test_writes_present(self):
        kinds = {kind for _, kind in GraphTraversalWorkload().accesses()}
        assert kinds == {AccessKind.READ, AccessKind.WRITE}

    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_cross_runtime_value_equality(self, runtime):
        run = run_cell(CellSpec("graph", runtime, "clean", "pattern"), BASELINE)
        assert run.ok
        assert run.value == GraphTraversalWorkload().value()

    def test_chaos_cell(self):
        run = run_cell(CellSpec("graph", "trackfm", "faulty", "pattern"), BASELINE)
        assert run.ok
        assert run.value == GraphTraversalWorkload().value()
        assert run.metric("drops") > 0
        assert run.metric("degraded_accesses") > 0


class TestExternalSort:
    def test_seeded_determinism(self):
        a = ExternalSortWorkload(seed=9)
        b = ExternalSortWorkload(seed=9)
        assert a.value() == b.value()
        assert list(a.accesses()) == list(b.accesses())
        assert ExternalSortWorkload(seed=10).value() != a.value()

    def test_merge_is_a_sort(self):
        wl = ExternalSortWorkload()
        merged = wl.merged()
        assert list(merged) == sorted(wl.keys)
        for run in wl.sorted_runs():
            assert list(run) == sorted(run)

    def test_accesses_stay_in_arena(self):
        wl = ExternalSortWorkload()
        for offset, kind in wl.accesses():
            assert 0 <= offset < wl.arena_bytes

    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_cross_runtime_value_equality(self, runtime):
        run = run_cell(CellSpec("extsort", runtime, "clean", "pattern"), BASELINE)
        assert run.ok
        assert run.value == ExternalSortWorkload().value()

    def test_chaos_cell(self):
        run = run_cell(CellSpec("extsort", "trackfm", "corrupt", "pattern"), BASELINE)
        assert run.ok
        assert run.value == ExternalSortWorkload().value()
        assert run.metric("corruptions_detected") > 0


class TestWebCache:
    def test_seeded_determinism(self):
        wl = WebCacheWorkload()
        assert wl.value() == WebCacheWorkload().value()
        assert wl.with_seed(99).value() != wl.value()

    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_cross_runtime_fingerprint_equality(self, runtime):
        # The completion fingerprint folds order, value, and shard — all
        # properties of the trace and placement, not the memory system.
        assert WebCacheWorkload().value(runtime=runtime) == WebCacheWorkload().value()

    def test_quota_knob_moves_fetches(self):
        wl = WebCacheWorkload()
        with_quotas = wl.run(runtime="aifm", quotas=True)
        without = wl.run(runtime="aifm", quotas=False)
        assert with_quotas.completions_fingerprint == without.completions_fingerprint
        assert (
            with_quotas.metrics["remote_fetches"]
            > without.metrics["remote_fetches"]
        )

    def test_chaos_cell(self):
        run = run_cell(CellSpec("webcache", "trackfm", "faulty", "serving"), BASELINE)
        assert run.ok
        assert run.latency is not None and run.latency["p99"] > 0
        clean = run_cell(CellSpec("webcache", "trackfm", "clean", "serving"), BASELINE)
        assert clean.ok
        assert run.latency["p99"] > clean.latency["p99"]

    def test_config_is_frozen(self):
        cfg = WebCacheConfig()
        with pytest.raises(Exception):
            cfg.n_keys = 1
