"""Pre-decode cache: invalidation, callee resolution, engine equivalence.

The decoded engine (:mod:`repro.sim.decode`) is a performance feature
with zero semantic budget: it must match the legacy IR-walking engine
value for value, step for step, metric for metric.  These tests pin

* cache behaviour — reuse while the IR is untouched, re-decode after
  any pass (the :class:`PassManager` invalidation hook) and after
  out-of-band instruction surgery (the instruction-count safety net);
* equivalence across the differential fuzzer's program shapes and the
  hand-built ``irprograms`` modules: identical values, identical step
  counts, and identical ``Metrics.as_dict()`` on compiled far-memory
  runs;
* error parity for the paths the decoder rewrites (entry-block phis,
  fall-through blocks, ``max_steps``) and the block-hook contract the
  profiler relies on.
"""

from __future__ import annotations

import pytest

from repro.aifm.pool import PoolConfig
from repro.compiler import CompilerConfig, TrackFMCompiler
from repro.compiler.guard_analysis import GuardAnalysisPass
from repro.compiler.guard_transform import GuardTransformPass
from repro.compiler.pass_manager import PassContext, PassManager
from repro.errors import InterpError
from repro.ir import IRBuilder, I64, Module, verify_module
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.sim.decode import decode_module
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

from irgen import generate_module
from irprograms import build_sum_loop, build_write_then_sum

#: A small seed slice is plenty here: the full 50-seed corpus already
#: runs both engines via the differential fuzzer's raw-interpreter leg.
EQUIV_SEEDS = list(range(12))


class TestCacheLifecycle:
    def test_cache_hit_without_mutation(self):
        m = build_sum_loop()
        assert decode_module(m) is decode_module(m)

    def test_pass_manager_invalidates_after_each_pass(self):
        m = build_sum_loop()
        before = decode_module(m)
        ctx = PassContext(config=CompilerConfig())
        PassManager([GuardAnalysisPass(), GuardTransformPass()]).run(m, ctx)
        after = decode_module(m)
        assert after is not before
        assert after.epoch > before.epoch

    def test_analysis_only_pass_still_invalidates(self):
        # The manager can't know whether a pass wrote IR, so even a pure
        # analysis bumps the epoch — correctness over cache retention.
        m = build_sum_loop()
        before = decode_module(m)
        PassManager([GuardAnalysisPass()]).run(m, PassContext(config=CompilerConfig()))
        assert decode_module(m) is not before

    def test_instruction_count_safety_net(self):
        # Out-of-band surgery (no pass, no invalidate call): the decode
        # cache notices through the instruction count.
        m = build_sum_loop()
        before = decode_module(m)
        f = m.get_function("main")
        extra = f.add_block("extra")  # unreachable, but changes the count
        IRBuilder(extra).ret(Constant(I64, 0))
        assert decode_module(m) is not before

    def test_explicit_invalidate(self):
        m = build_sum_loop()
        before = decode_module(m)
        m.invalidate_decode()
        assert decode_module(m) is not before

    def test_register_intrinsic_resets_callee_cache(self):
        # First run resolves "tfm_mystery" -> unresolved; registering
        # the intrinsic must drop that cached resolution.
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.call(I64, "tfm_mystery", []))
        verify_module(m)
        interp = Interpreter(m, engine="decoded")
        with pytest.raises(InterpError, match="unresolved"):
            interp.run("main")
        interp.register_intrinsic("tfm_mystery", lambda i, args: 99)
        assert interp.run("main").value == 99


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", EQUIV_SEEDS)
    def test_raw_value_and_steps_match(self, seed):
        module = generate_module(seed)
        verify_module(module)
        legacy = Interpreter(module, engine="legacy", max_steps=5_000_000).run("main")
        decoded = Interpreter(module, engine="decoded", max_steps=5_000_000).run("main")
        assert decoded.value == legacy.value, f"seed {seed}: value diverged"
        assert decoded.steps == legacy.steps, f"seed {seed}: step count diverged"
        assert decoded.output == legacy.output, f"seed {seed}: output diverged"

    @pytest.mark.parametrize("seed", EQUIV_SEEDS[::3])
    def test_compiled_far_memory_metrics_match(self, seed):
        results = {}
        for engine in ("legacy", "decoded"):
            compiled = TrackFMCompiler(CompilerConfig()).compile(generate_module(seed))
            runtime = TrackFMRuntime(
                PoolConfig(object_size=256, local_memory=1 * KB, heap_size=1 * MB),
                cache=AlwaysHitCache(),
            )
            result = TrackFMProgram(
                compiled.module, runtime, max_steps=5_000_000, engine=engine
            ).run("main")
            results[engine] = (result.value, result.steps, runtime.metrics.as_dict())
        assert results["decoded"] == results["legacy"], f"seed {seed}: metrics diverged"

    @pytest.mark.parametrize(
        "build", [build_sum_loop, build_write_then_sum], ids=["sum_loop", "write_sum"]
    )
    def test_irprogram_shapes_match(self, build):
        for engine in ("legacy", "decoded"):
            module = build()
            interp = Interpreter(module, engine=engine)
            result = interp.run("main")
            if engine == "legacy":
                expected = (result.value, result.steps)
            else:
                assert (result.value, result.steps) == expected

    def test_fingerprint_workloads_match(self):
        # The bench-regress workloads themselves, end to end.
        from repro.bench.regress import WORKLOADS

        for name, build in WORKLOADS.items():
            compiled_l = TrackFMCompiler(CompilerConfig()).compile(build())
            compiled_d = TrackFMCompiler(CompilerConfig()).compile(build())
            rt_l = TrackFMRuntime(
                PoolConfig(object_size=256, local_memory=2 * KB, heap_size=1 * MB),
                cache=AlwaysHitCache(),
            )
            rt_d = TrackFMRuntime(
                PoolConfig(object_size=256, local_memory=2 * KB, heap_size=1 * MB),
                cache=AlwaysHitCache(),
            )
            legacy = TrackFMProgram(compiled_l.module, rt_l, engine="legacy").run("main")
            decoded = TrackFMProgram(compiled_d.module, rt_d, engine="decoded").run("main")
            assert (legacy.value, legacy.steps) == (decoded.value, decoded.steps), name
            assert rt_l.metrics.as_dict() == rt_d.metrics.as_dict(), name


class TestErrorAndHookParity:
    def _engines(self):
        return ("legacy", "decoded")

    def test_max_steps_parity(self):
        for engine in self._engines():
            m = build_sum_loop(n=1000)
            interp = Interpreter(m, engine=engine, max_steps=50)
            with pytest.raises(InterpError, match="max_steps=50"):
                interp.run("main")
            assert interp.steps == 51, engine

    def test_entry_phi_rejected(self):
        for engine in self._engines():
            m = Module()
            f = m.add_function("main", I64)
            entry = f.add_block("entry")
            b = IRBuilder(entry)
            phi = b.phi(I64)
            b.ret(phi)
            with pytest.raises(InterpError, match="phi in entry block"):
                Interpreter(m, engine=engine).run("main")

    def test_fell_through_block(self):
        for engine in self._engines():
            m = Module()
            f = m.add_function("main", I64)
            b = IRBuilder(f.add_block("entry"))
            b.add(Constant(I64, 1), 2)  # no terminator
            with pytest.raises(InterpError, match="fell through"):
                Interpreter(m, engine=engine).run("main")

    def test_arity_error_parity(self):
        for engine in self._engines():
            m = build_sum_loop()
            with pytest.raises(InterpError, match="expects"):
                Interpreter(m, engine=engine).run("main", [1, 2, 3])

    def test_block_hook_sequence_matches(self):
        visits = {}
        for engine in self._engines():
            m = build_sum_loop(n=5)
            seen = []
            interp = Interpreter(
                m, engine=engine, block_hook=lambda f, name: seen.append(name)
            )
            interp.run("main")
            visits[engine] = seen
        assert visits["decoded"] == visits["legacy"]
        assert visits["decoded"]  # the hook actually fired
