"""Loop chunking: analysis, cost-model filtering, and the transform."""

import pytest

from repro.compiler.chunk_analysis import ChunkAnalysisPass
from repro.compiler.chunk_transform import ChunkTransformPass, split_edge
from repro.compiler.cost_model import ChunkingCostModel, LoopShape
from repro.compiler.guard_analysis import GUARD_MD, GuardAnalysisPass
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig
from repro.errors import PassError
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.instructions import Call, Load
from repro.ir.values import Constant

from irprograms import build_sum_loop


def analyze(m, policy=ChunkingPolicy.ALL, object_size=4096, profile=None):
    cfg = CompilerConfig(object_size=object_size, chunking=policy)
    c = PassContext(config=cfg, profile=profile)
    PassManager([GuardAnalysisPass(), ChunkAnalysisPass()]).run(m, c)
    return c


class TestCostModel:
    def test_equations_1_and_2(self):
        model = ChunkingCostModel(4096)
        # Eq. 1 at d=512 (8-byte elems): 511 fast + 1 slow.
        assert model.naive_cost_per_object(8) == 511 * 21 + 144
        # Eq. 2: 511 boundary checks + locality guard.
        assert model.chunked_cost_per_object(8) == 511 * 3 + 420

    def test_density(self):
        model = ChunkingCostModel(4096)
        assert model.density(8) == 512
        assert model.density(4) == 1024
        with pytest.raises(PassError):
            model.density(0)

    def test_threshold_matches_cost_table(self):
        model = ChunkingCostModel(4096)
        assert 650 < model.density_threshold() < 800

    def test_long_dense_loop_chunked(self):
        model = ChunkingCostModel(4096)
        shape = LoopShape(iterations_per_entry=1_000_000, elem_size=4)
        assert model.should_chunk(shape)

    def test_short_nested_loop_rejected(self):
        # k-means style: 8-trip inner loop entered millions of times.
        model = ChunkingCostModel(4096)
        shape = LoopShape(iterations_per_entry=8, elem_size=4, entries=1_000_000)
        assert not model.should_chunk(shape)

    def test_large_elements_rejected(self):
        # Low density: few elements per object.
        model = ChunkingCostModel(4096)
        shape = LoopShape(iterations_per_entry=100, elem_size=2048)
        assert not model.should_chunk(shape)

    def test_single_object_loop_crossover(self):
        # The Fig. 6 configuration: N == d, one entry.
        model = ChunkingCostModel(4096)
        d_star = model.density_threshold()
        below = LoopShape(iterations_per_entry=d_star * 0.9, elem_size=int(4096 / (d_star * 0.9)))
        above = LoopShape(iterations_per_entry=d_star * 1.2, elem_size=max(1, int(4096 / (d_star * 1.2))))
        assert not model.should_chunk(below)
        assert model.should_chunk(above)

    def test_predicted_speedup_monotone_in_density(self):
        model = ChunkingCostModel(4096)
        speedups = [
            model.predicted_speedup(LoopShape(iterations_per_entry=d, elem_size=4096 // d))
            for d in (64, 256, 512, 1024)
        ]
        assert speedups == sorted(speedups)


class TestChunkAnalysis:
    def test_gep_iv_candidate_found(self):
        m = build_sum_loop(n=1000, elem=4)
        c = analyze(m)
        plans = c.results["chunk_plans"]
        assert len(plans) == 1
        plan = plans[0]
        assert plan.apply
        assert len(plan.candidates) == 1
        assert plan.candidates[0].stride_bytes == 4
        assert plan.density(4096) == 1024

    def test_policy_none_disables(self):
        m = build_sum_loop()
        c = analyze(m, policy=ChunkingPolicy.NONE)
        assert all(not p.apply for p in c.results["chunk_plans"])

    def test_cost_model_rejects_sparse_loop(self):
        # 2 KB elements: density 2, way below the crossover.
        m = build_sum_loop(n=8, elem=2048)
        c = analyze(m, policy=ChunkingPolicy.COST_MODEL)
        plans = c.results["chunk_plans"]
        assert plans and not plans[0].apply
        assert c.get_stat("chunk-analysis.rejected_by_model") == 1

    def test_cost_model_accepts_dense_loop(self):
        m = build_sum_loop(n=100_000, elem=4)
        c = analyze(m, policy=ChunkingPolicy.COST_MODEL)
        assert c.results["chunk_plans"][0].apply

    def test_profile_guides_decision(self):
        from repro.analysis.profiler import profile_module

        # Statically unbounded-looking loop, profiled as short: build a
        # loop with trip count 4 and feed the profile in.
        m = build_sum_loop(n=4, elem=2048)
        profile = profile_module(build_sum_loop(n=4, elem=2048))
        c = analyze(m, policy=ChunkingPolicy.COST_MODEL, profile=profile)
        assert not c.results["chunk_plans"][0].apply

    def test_prefetch_enabled_for_positive_stride(self):
        m = build_sum_loop(n=10_000, elem=4)
        c = analyze(m)
        assert c.results["chunk_plans"][0].prefetch

    def test_prefetch_disabled_by_config(self):
        m = build_sum_loop(n=10_000, elem=4)
        cfg = CompilerConfig(chunking=ChunkingPolicy.ALL, enable_prefetch=False)
        c = PassContext(config=cfg)
        PassManager([GuardAnalysisPass(), ChunkAnalysisPass()]).run(m, c)
        assert not c.results["chunk_plans"][0].prefetch


class TestChunkTransform:
    def compile_chunked(self, m):
        cfg = CompilerConfig(chunking=ChunkingPolicy.ALL)
        c = PassContext(config=cfg)
        PassManager(
            [GuardAnalysisPass(), ChunkAnalysisPass(), ChunkTransformPass()]
        ).run(m, c)
        return c

    def test_begin_deref_end_inserted(self):
        m = build_sum_loop(n=1000, elem=4)
        c = self.compile_chunked(m)
        f = m.get_function("main")
        calls = [i.callee for i in f.instructions() if isinstance(i, Call)]
        assert "tfm_chunk_begin" in calls
        assert "tfm_chunk_deref" in calls
        assert "tfm_chunk_end" in calls
        assert c.get_stat("chunk-transform.loops_chunked") == 1
        verify_module(m)

    def test_chunked_access_unmarked_for_guards(self):
        m = build_sum_loop(n=1000, elem=4)
        self.compile_chunked(m)
        load = next(i for i in m.get_function("main").instructions() if isinstance(i, Load))
        assert not load.metadata.get(GUARD_MD)
        assert load.metadata.get("tfm.chunked")

    def test_deref_feeds_the_load(self):
        m = build_sum_loop(n=1000, elem=4)
        self.compile_chunked(m)
        load = next(i for i in m.get_function("main").instructions() if isinstance(i, Load))
        assert isinstance(load.pointer, Call)
        assert load.pointer.callee == "tfm_chunk_deref"

    def test_chunk_end_on_split_exit_edge(self):
        m = build_sum_loop(n=1000, elem=4)
        self.compile_chunked(m)
        f = m.get_function("main")
        end_blocks = [
            b.name
            for b in f.blocks
            if any(isinstance(i, Call) and i.callee == "tfm_chunk_end" for i in b.instructions)
        ]
        assert len(end_blocks) == 1
        assert end_blocks[0].startswith("edge")

    def test_store_uses_write_deref(self):
        from irprograms import build_write_then_sum
        from repro.ir.instructions import Store

        m = build_write_then_sum(n=1000, elem=4)
        self.compile_chunked(m)
        store = next(i for i in m.get_function("main").instructions() if isinstance(i, Store))
        assert isinstance(store.pointer, Call)
        assert store.pointer.callee == "tfm_chunk_deref_write"
        verify_module(m)


class TestSplitEdge:
    def test_phi_updated(self):
        m = Module()
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        a = f.add_block("a")
        join = f.add_block("join")
        b = IRBuilder(entry)
        b.condbr(b.icmp("slt", 1, 2), a, join)
        b.set_block(a)
        av = b.add(5, 0, name="av")
        b.br(join)
        b.set_block(join)
        phi = b.phi(I64, name="x")
        phi.add_incoming(av, a)
        phi.add_incoming(Constant(I64, 9), entry)
        b.ret(phi)
        verify_module(m)
        edge = split_edge(f, entry, join)
        verify_module(m)
        assert any(blk is edge for _, blk in phi.incoming)
        assert all(blk is not entry for _, blk in phi.incoming)
