"""Residency set (LRU/CLOCK + pinning) and the sparse address space."""

import pytest

from repro.errors import EvacuationError, InterpError, RuntimeConfigError, SegmentationFault
from repro.ir.types import F64, I32, I64
from repro.sim.memory import AddressSpace
from repro.sim.residency import ResidencySet


class TestResidencyLRU:
    def test_miss_then_hit(self):
        rs = ResidencySet(capacity=2)
        assert rs.access(1).hit is False
        assert rs.access(1).hit is True
        assert len(rs) == 1

    def test_lru_eviction_order(self):
        rs = ResidencySet(capacity=2)
        rs.access(1)
        rs.access(2)
        rs.access(1)  # 2 is now LRU
        out = rs.access(3)
        assert out.evicted == [(2, False)]
        assert 1 in rs and 3 in rs

    def test_dirty_tracking(self):
        rs = ResidencySet(capacity=1)
        rs.access(1, write=True)
        assert rs.is_dirty(1)
        out = rs.access(2)
        assert out.evicted == [(1, True)]
        assert not rs.is_dirty(1)

    def test_write_on_hit_dirties(self):
        rs = ResidencySet(capacity=2)
        rs.access(1)
        assert not rs.is_dirty(1)
        rs.access(1, write=True)
        assert rs.is_dirty(1)

    def test_pinned_granules_not_evicted(self):
        rs = ResidencySet(capacity=2)
        rs.access(1)
        rs.pin(1)
        rs.access(2)
        out = rs.access(3)
        assert (1, False) not in out.evicted
        assert 1 in rs

    def test_all_pinned_raises(self):
        rs = ResidencySet(capacity=1)
        rs.access(1)
        rs.pin(1)
        with pytest.raises(EvacuationError):
            rs.access(2)

    def test_unpin_allows_eviction_again(self):
        rs = ResidencySet(capacity=1)
        rs.access(1)
        rs.pin(1)
        rs.unpin(1)
        out = rs.access(2)
        assert out.evicted == [(1, False)]

    def test_nested_pins(self):
        rs = ResidencySet(capacity=1)
        rs.access(1)
        rs.pin(1)
        rs.pin(1)
        rs.unpin(1)
        assert rs.is_pinned(1)
        rs.unpin(1)
        assert not rs.is_pinned(1)

    def test_unpin_unpinned_raises(self):
        rs = ResidencySet(capacity=1)
        with pytest.raises(EvacuationError):
            rs.unpin(7)

    def test_insert_prefetch_enters_cold(self):
        rs = ResidencySet(capacity=2)
        rs.access(1)
        rs.insert(2)  # prefetched: LRU position
        out = rs.access(3)
        assert out.evicted == [(2, False)]

    def test_insert_existing_is_noop(self):
        rs = ResidencySet(capacity=2)
        rs.access(1)
        assert rs.insert(1) == []

    def test_discard(self):
        rs = ResidencySet(capacity=2)
        rs.access(1, write=True)
        rs.discard(1)
        assert 1 not in rs
        assert not rs.is_dirty(1)

    def test_flush_reports_dirty(self):
        rs = ResidencySet(capacity=4)
        rs.access(1, write=True)
        rs.access(2)
        flushed = dict(rs.flush())
        assert flushed == {1: True, 2: False}
        assert len(rs) == 0

    def test_flush_skips_pinned(self):
        rs = ResidencySet(capacity=4)
        rs.access(1)
        rs.pin(1)
        rs.access(2)
        flushed = rs.flush()
        assert (2, False) in flushed
        assert 1 in rs

    def test_capacity_validation(self):
        with pytest.raises(RuntimeConfigError):
            ResidencySet(capacity=0)


class TestResidencyClock:
    def test_second_chance(self):
        rs = ResidencySet(capacity=2, use_clock=True)
        rs.access(1)
        rs.access(2)
        rs.access(1)  # sets 1's hot bit
        out = rs.access(3)
        # CLOCK clears 1's hot bit and evicts 2 (cold).
        assert out.evicted == [(2, False)]
        assert 1 in rs

    def test_clock_with_pins(self):
        rs = ResidencySet(capacity=2, use_clock=True)
        rs.access(1)
        rs.pin(1)
        rs.access(2)
        out = rs.access(3)
        assert out.evicted == [(2, False)]


class TestAddressSpace:
    def test_map_read_write(self):
        mem = AddressSpace()
        mem.map_region(0x1000, 64)
        mem.write_bytes(0x1010, b"hello")
        assert mem.read_bytes(0x1010, 5) == b"hello"

    def test_unmapped_access_faults(self):
        mem = AddressSpace()
        with pytest.raises(SegmentationFault):
            mem.read_bytes(0x2000, 8)

    def test_overlap_rejected(self):
        mem = AddressSpace()
        mem.map_region(0x1000, 64)
        with pytest.raises(InterpError):
            mem.map_region(0x1020, 64)
        with pytest.raises(InterpError):
            mem.map_region(0xFE0, 64)

    def test_access_straddling_region_end_faults(self):
        mem = AddressSpace()
        mem.map_region(0x1000, 8)
        with pytest.raises(SegmentationFault):
            mem.read_bytes(0x1004, 8)

    def test_unmap(self):
        mem = AddressSpace()
        mem.map_region(0x1000, 64)
        mem.unmap(0x1000)
        assert not mem.is_mapped(0x1000)
        with pytest.raises(InterpError):
            mem.unmap(0x1000)

    def test_typed_roundtrips(self):
        mem = AddressSpace()
        mem.map_region(0, 64)
        mem.write_value(0, I64, -5)
        assert mem.read_value(0, I64) == -5
        mem.write_value(8, F64, 1.5)
        assert mem.read_value(8, F64) == 1.5
        mem.write_value(16, I32, -1)
        assert mem.read_value(16, I32) == -1

    def test_adjacent_regions(self):
        mem = AddressSpace()
        mem.map_region(0, 64)
        mem.map_region(64, 64)  # exactly adjacent: allowed
        mem.write_bytes(64, b"x")
        assert mem.read_bytes(64, 1) == b"x"

    def test_empty_region_rejected(self):
        mem = AddressSpace()
        with pytest.raises(InterpError):
            mem.map_region(0, 0)
