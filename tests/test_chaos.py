"""Seeded chaos suite: deterministic fault injection through the stack.

The resilience layer's whole contract is that injected faults are (a)
*deterministic* — the same :class:`FaultPlan` seed produces a
bit-identical fault schedule, metrics fingerprint, and trace shape on
every run — and (b) *survivable* — a plan the retry policy can absorb
changes only costs and resilience counters, never the values a program
computes.  Both halves are pinned here, along with the degradation
paths: breaker-open behaviour on every runtime, the hybrid's page-tier
fallback, and the evacuator's writeback deferral.
"""

from __future__ import annotations

import pytest

from repro.aifm.evacuator import Evacuator
from repro.aifm.pool import PoolConfig
from repro.aifm.runtime import AIFMRuntime
from repro.errors import (
    FarMemoryUnavailableError,
    RuntimeConfigError,
    TransientNetworkError,
)
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.hybrid.runtime import AdaptiveHybridRuntime, HybridRuntime, Placement
from repro.hybrid.selector import SelectorConfig
from repro.machine.costs import AccessKind
from repro.net.backends import RemoteBackend, make_tcp_backend
from repro.net.faults import (
    CircuitBreaker,
    FaultPlan,
    FaultyLink,
    RetryPolicy,
    default_fault_plan,
    installed_fault_plan,
    parse_fault_spec,
)
from repro.net.link import NetworkLink, TransferDirection
from repro.sim.metrics import Metrics
from repro.trace.drivers import run_traced
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB
from repro.workloads.phase import PhaseShiftWorkload

#: A plan every workload below survives: drops are retried away well
#: inside the default policy's four attempts, so program values must
#: match the fault-free run exactly.
SURVIVABLE = FaultPlan(seed=7, drop_rate=0.03, jitter_cycles=400.0)

#: A dead remote: every message is lost.
DEAD = FaultPlan(seed=0, drop_rate=1.0)


def _fail_fast(backend: RemoteBackend, plan: FaultPlan = DEAD) -> RemoteBackend:
    """Arm ``backend`` with ``plan`` and a quick-to-give-up policy."""
    backend.link.faults = plan.schedule()
    backend.retry_policy = RetryPolicy(
        max_attempts=2, timeout_cycles=5_000.0, base_backoff_cycles=1_000.0
    )
    backend.breaker = CircuitBreaker(failure_threshold=3, cooldown_rejections=4)
    return backend


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a, b = FaultPlan(seed=11, drop_rate=0.1).schedule(), FaultPlan(
            seed=11, drop_rate=0.1
        ).schedule()
        for size in range(300):
            ra = rb = None
            try:
                ra = a.roll(size)
            except TransientNetworkError as err:
                ra = ("lost", err.kind, err.message_index)
            try:
                rb = b.roll(size)
            except TransientNetworkError as err:
                rb = ("lost", err.kind, err.message_index)
            assert ra == rb
        assert a.stats == b.stats

    def test_different_seed_different_schedule(self):
        def losses(seed):
            sched = FaultPlan(seed=seed, drop_rate=0.1).schedule()
            out = []
            for _ in range(200):
                try:
                    sched.roll(64)
                except TransientNetworkError as err:
                    out.append(err.message_index)
            return out

        assert losses(1) != losses(2)

    def test_decide_is_pure(self):
        plan = FaultPlan(seed=3, drop_rate=0.2, spike_rate=0.1, spike_cycles=1e4)
        assert [plan.decide(i) for i in range(100)] == [
            plan.decide(i) for i in range(100)
        ]

    def test_pause_window_loses_every_message(self):
        plan = FaultPlan(pause_windows=((2, 5),))
        sched = plan.schedule()
        outcomes = []
        for _ in range(7):
            try:
                sched.roll(64)
                outcomes.append("ok")
            except TransientNetworkError as err:
                outcomes.append(err.kind)
        assert outcomes == ["ok", "ok", "pause", "pause", "pause", "ok", "ok"]

    def test_drop_rate_roughly_respected(self):
        sched = FaultPlan(seed=5, drop_rate=0.2).schedule()
        for _ in range(2000):
            try:
                sched.roll(64)
            except TransientNetworkError:
                pass
        assert 0.15 < sched.stats.drops / 2000 < 0.25

    def test_faulty_link_wrap_shares_stats(self):
        base = NetworkLink(latency_cycles=1000.0)
        base.transfer(64, TransferDirection.FETCH)
        link = FaultyLink.wrap(base, FaultPlan(jitter_cycles=100.0, seed=2))
        link.transfer(64, TransferDirection.FETCH)
        assert base.stats is link.stats
        assert link.stats.messages == 2
        # Jitter lands on top of the healthy cost, from the seeded RNG.
        assert link.faults.stats.extra_cycles > 0.0

    def test_noop_plan_detection(self):
        assert FaultPlan().is_noop
        assert FaultPlan(spike_rate=0.5).is_noop  # spike of 0 cycles
        assert not FaultPlan(drop_rate=0.01).is_noop
        assert not FaultPlan(pause_windows=((0, 1),)).is_noop

    def test_plan_validation(self):
        with pytest.raises(RuntimeConfigError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(RuntimeConfigError):
            FaultPlan(jitter_cycles=-1.0)
        with pytest.raises(RuntimeConfigError):
            FaultPlan(pause_windows=((5, 5),))


class TestFaultSpecParsing:
    def test_full_spec(self):
        plan = parse_fault_spec(
            "seed=3,drop=0.02,spike=0.05:20000,jitter=500,pause=10:20;100:140"
        )
        assert plan == FaultPlan(
            seed=3,
            drop_rate=0.02,
            spike_rate=0.05,
            spike_cycles=20000.0,
            jitter_cycles=500.0,
            pause_windows=((10, 20), (100, 140)),
        )

    def test_empty_spec_is_noop(self):
        assert parse_fault_spec("").is_noop

    def test_bad_specs(self):
        for spec in ("drop", "bogus=1", "drop=x", "pause=5"):
            with pytest.raises(RuntimeConfigError):
                parse_fault_spec(spec)


class TestSurvivableDifferential:
    """Values under survivable faults == fault-free golden values."""

    @pytest.mark.parametrize(
        "runtime", ["trackfm", "aifm", "fastswap", "hybrid", "adaptive"]
    )
    @pytest.mark.parametrize("workload", ["stream", "hashmap"])
    def test_values_match_fault_free(self, workload, runtime):
        clean = run_traced(workload, runtime, seed=5)
        faulty = run_traced(workload, runtime, seed=5, fault_plan=SURVIVABLE)
        assert faulty.value == clean.value
        # Survivable means every loss was retried away (never degraded).
        m = faulty.metrics
        assert m.retries == m.drops and m.timeouts == m.drops
        assert m.degraded_accesses == 0
        if m.drops:  # low-traffic runs may roll zero losses
            assert faulty.cycles > clean.cycles
        # The clean run carries no resilience counters at all.
        for key in ("drops", "timeouts", "retries", "degraded_accesses"):
            assert key not in clean.metrics.as_dict()

    @pytest.mark.parametrize("runtime", ["trackfm", "aifm"])
    def test_plan_genuinely_perturbs_busy_runtimes(self, runtime):
        # hashmap under object-granular runtimes moves thousands of
        # messages: a 3% drop plan must actually hit some of them.
        faulty = run_traced("hashmap", runtime, seed=5, fault_plan=SURVIVABLE)
        assert faulty.metrics.drops > 0
        assert faulty.metrics.retries > 0

    @pytest.mark.parametrize("runtime", ["trackfm", "fastswap"])
    def test_replay_is_bit_identical(self, runtime):
        a = run_traced("hashmap", runtime, seed=5, fault_plan=SURVIVABLE)
        b = run_traced("hashmap", runtime, seed=5, fault_plan=SURVIVABLE)
        assert a.metrics.as_dict() == b.metrics.as_dict()
        assert a.cycles == b.cycles
        assert a.tracer.category_counts() == b.tracer.category_counts()

    def test_faulted_trace_has_new_categories(self):
        result = run_traced("hashmap", "trackfm", seed=5, fault_plan=SURVIVABLE)
        counts = result.tracer.category_counts()
        assert counts.get("fault", 0) > 0
        assert counts.get("retry", 0) > 0

    def test_installed_plan_is_scoped(self):
        assert default_fault_plan() is None
        run_traced("stream", "aifm", seed=1, fault_plan=SURVIVABLE)
        assert default_fault_plan() is None


class TestRetryAccounting:
    def test_retry_penalty_added_to_cost(self):
        # Message 0 dropped, message 1 (the retry) delivered.
        plan = FaultPlan(pause_windows=((0, 1),))
        backend = make_tcp_backend()
        backend.link.faults = plan.schedule()
        policy = RetryPolicy(
            max_attempts=4,
            timeout_cycles=50_000.0,
            base_backoff_cycles=10_000.0,
            jitter_fraction=0.0,
        )
        backend.retry_policy = policy
        metrics = Metrics()
        backend.metrics = metrics
        healthy = backend.fetch_cost(4096)
        cost = backend.fetch(4096)
        assert cost == pytest.approx(healthy + 50_000.0 + 10_000.0)
        assert metrics.drops == 1
        assert metrics.timeouts == 1
        assert metrics.retries == 1
        assert policy.retries_used == 1

    def test_exhaustion_raises_unavailable(self):
        backend = make_tcp_backend()
        backend.link.faults = DEAD.schedule()
        backend.retry_policy = RetryPolicy(max_attempts=3)
        with pytest.raises(FarMemoryUnavailableError):
            backend.fetch(4096)
        # 3 attempts, 2 retries granted.
        assert backend.link.faults.stats.drops == 3
        assert backend.retry_policy.retries_used == 2

    def test_retry_budget_fails_faster(self):
        backend = make_tcp_backend()
        backend.link.faults = DEAD.schedule()
        backend.retry_policy = RetryPolicy(max_attempts=10, retry_budget=1)
        with pytest.raises(FarMemoryUnavailableError):
            backend.fetch(4096)
        assert backend.link.faults.stats.drops == 2  # 1st try + budgeted retry

    def test_faults_without_policy_fail_fast(self):
        # Documented behaviour: a faulted link on a non-resilient
        # backend propagates the raw transient error.
        backend = make_tcp_backend()
        backend.link.faults = DEAD.schedule()
        with pytest.raises(TransientNetworkError):
            backend.fetch(4096)

    def test_breaker_opens_then_rejects(self):
        backend = _fail_fast(make_tcp_backend())
        for _ in range(2):  # 2 requests x 2 attempts = 4 failures > 3
            with pytest.raises(FarMemoryUnavailableError):
                backend.fetch(4096)
        messages_so_far = backend.link.faults.stats.messages
        # Breaker is now open: requests are rejected without touching
        # the wire at all.
        with pytest.raises(FarMemoryUnavailableError):
            backend.fetch(4096)
        assert backend.link.faults.stats.messages == messages_so_far
        assert backend.breaker.trips >= 1


class TestDegradedRuntimes:
    def _trackfm(self):
        rt = TrackFMRuntime(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=64 * KB)
        )
        _fail_fast(rt.pool.backend)
        return rt

    def test_trackfm_guard_surfaces_unavailable(self):
        rt = self._trackfm()
        ptr = rt.tfm_malloc(4096)
        with pytest.raises(FarMemoryUnavailableError):
            rt.access(ptr)

    def test_trackfm_state_consistent_after_raise(self):
        rt = self._trackfm()
        ptr = rt.tfm_malloc(4096)
        with pytest.raises(FarMemoryUnavailableError):
            rt.access(ptr)
        # The failed object was not left resident ...
        assert rt.pool.resident_objects == 0
        # ... and the metadata word still says remote.
        assert not rt.pool.meta(rt.pool.object_of_offset(0)).is_local

    def test_trackfm_degraded_mode_serves_locally(self):
        rt = self._trackfm()
        rt.enable_degraded_mode(stall_cycles=2_000.0)
        ptr = rt.tfm_malloc(4096)
        cycles = rt.access(ptr)
        assert cycles > 0
        m = rt.metrics
        assert m.degraded_accesses == 1
        assert m.bytes_fetched == 0  # nothing crossed the wire
        assert m.remote_fetches == 0

    def test_aifm_degraded_mode(self):
        rt = AIFMRuntime(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=64 * KB)
        )
        _fail_fast(rt.pool.backend)
        rt.enable_degraded_mode(stall_cycles=500.0)
        rt.allocate(4096)
        rt.access(0)
        assert rt.metrics.degraded_accesses == 1

    def test_fastswap_degraded_mode(self):
        rt = FastswapRuntime(
            FastswapConfig(local_memory=8 * KB, heap_size=1 * MB)
        )
        _fail_fast(rt.backend)
        off = rt.allocate(4096)
        with pytest.raises(FarMemoryUnavailableError):
            rt.access(off)
        rt.enable_degraded_mode(stall_cycles=500.0)
        rt.access(off)
        m = rt.metrics
        assert m.degraded_accesses == 1
        assert m.bytes_fetched == 0
        assert m.major_faults == 0  # no swap-in actually completed

    def test_fastswap_no_double_charge_on_healthy_faulted_link(self):
        # With faults installed but no losses, the page fault cost must
        # stay exactly the calibrated cost: admit() adds penalties only.
        clean = FastswapRuntime(
            FastswapConfig(local_memory=8 * KB, heap_size=1 * MB)
        )
        faulted = FastswapRuntime(
            FastswapConfig(local_memory=8 * KB, heap_size=1 * MB)
        )
        faulted.backend.link.faults = FaultPlan().schedule()  # no-op plan
        faulted.backend.retry_policy = RetryPolicy()
        off_a = clean.allocate(4096)
        off_b = faulted.allocate(4096)
        assert clean.access(off_a) == faulted.access(off_b)


class TestHybridFallback:
    def _hybrid(self):
        rt = HybridRuntime(local_memory=8 * KB, heap_size=256 * KB, object_size=256)
        _fail_fast(rt.trackfm.pool.backend)
        return rt

    def test_object_access_falls_back_to_pages(self):
        rt = self._hybrid()
        handle = rt.allocate(1024, Placement.OBJECTS)
        cycles = rt.access(handle, 0)
        assert cycles > 0
        assert rt.extra_metrics.degraded_accesses == 1
        # The fallback allocated a shadow in the page heap and the
        # access was served as a page fault there.
        assert rt.fastswap.metrics.major_faults >= 1

    def test_fallback_shadow_is_reused(self):
        rt = self._hybrid()
        handle = rt.allocate(1024, Placement.OBJECTS)
        rt.access(handle, 0)
        rt.access(handle, 8)
        rt.access(handle, 512)
        assert len(rt._fallback) == 1
        assert rt.extra_metrics.degraded_accesses == 3
        assert rt.metrics.degraded_accesses == 3  # merged view includes it

    def test_page_side_unaffected(self):
        rt = self._hybrid()
        pages = rt.allocate(1024, Placement.PAGES)
        rt.access(pages, 0)
        assert rt.extra_metrics.degraded_accesses == 0


class TestAdaptiveMigrationChaos:
    """Survivable faults while tier migrations are in flight.

    The selector's decisions are pure functions of the access stream's
    counters — never of what the network did — so a survivable fault
    plan must leave the replay checksum, every migration event, and the
    final region placements bit-identical to the fault-free run, while
    the resilience counters show the faults really happened.
    """

    #: Phase-change workload: the hot region rotates, so migrations go
    #: both directions while faults are landing on both tiers' links.
    WORKLOAD = PhaseShiftWorkload(
        n_regions=4,
        region_bytes=4096,
        dense_stride=64,
        n_phases=4,
        dense_passes=16,
        sparse_probes=12,
        seed=3,
    )

    def _run_phase(self, fault_plan=None, rebalance_mid_flight=False):
        wl = self.WORKLOAD
        rt = AdaptiveHybridRuntime(
            local_memory=16 * KB,
            heap_size=64 * KB,
            object_size=256,
            epoch_accesses=64,
            selector_config=SelectorConfig(hysteresis=0.05, min_accesses=4),
        )
        if fault_plan is not None:
            for backend in rt.remote_backends():
                backend.link.faults = fault_plan.schedule()
                backend.retry_policy = RetryPolicy()
        ptr = rt.tfm_malloc(wl.arena_bytes)
        half = wl.accesses_per_phase * wl.n_phases // 2
        checksum = 0
        for i, (off, kind) in enumerate(wl.accesses()):
            rt.access(ptr + off, kind, size=8)
            checksum = (checksum * 31 + off + 1) & 0xFFFFFFFF
            if rebalance_mid_flight and i == half:
                rt.rebalance()
        return rt, checksum

    def test_survivable_faults_change_nothing_but_cost(self):
        clean_rt, clean_sum = self._run_phase()
        faulty_rt, faulty_sum = self._run_phase(SURVIVABLE)
        assert faulty_sum == clean_sum
        # Migrations really were in flight, in both directions.
        assert clean_rt.metrics.tier_switches > 0
        assert any(e.target is Placement.PAGES for e in clean_rt.migration_log)
        assert any(e.target is Placement.OBJECTS for e in clean_rt.migration_log)
        # ... and the faulted run made the same decisions at the same
        # epochs, ending in the same placements.
        assert faulty_rt.migration_log == clean_rt.migration_log
        assert faulty_rt.region_placements() == clean_rt.region_placements()
        m = faulty_rt.metrics
        assert m.drops > 0
        assert m.retries == m.drops and m.timeouts == m.drops
        assert m.degraded_accesses == 0
        assert faulty_rt.metrics.cycles > clean_rt.metrics.cycles

    def test_forced_rebalance_mid_flight_under_faults(self):
        clean_rt, clean_sum = self._run_phase(rebalance_mid_flight=True)
        faulty_rt, faulty_sum = self._run_phase(
            SURVIVABLE, rebalance_mid_flight=True
        )
        assert faulty_sum == clean_sum
        assert faulty_rt.migration_log == clean_rt.migration_log
        assert faulty_rt.region_placements() == clean_rt.region_placements()

    def test_faulted_migration_replay_is_bit_identical(self):
        a_rt, _ = self._run_phase(SURVIVABLE)
        b_rt, _ = self._run_phase(SURVIVABLE)
        assert a_rt.metrics.as_dict() == b_rt.metrics.as_dict()
        assert a_rt.migration_log == b_rt.migration_log


class TestEvacuatorDeferral:
    def test_process_defers_instead_of_raising(self):
        backend = _fail_fast(make_tcp_backend())
        evac = Evacuator(backend=backend, object_size=256)
        metrics = Metrics()
        cycles = evac.process([(1, True), (2, False), (3, True)], metrics)
        assert cycles == 0.0  # nothing actually went out
        assert metrics.deferred_writebacks == 2
        assert metrics.evictions == 3
        assert metrics.bytes_evacuated == 0

    def test_degraded_writes_defer_writebacks(self):
        # Degraded mode + dirty evictions: the evacuator defers rather
        # than failing an unrelated access.
        rt = AIFMRuntime(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=64 * KB)
        )
        _fail_fast(rt.pool.backend)
        rt.enable_degraded_mode()
        rt.allocate(16 * KB)
        # 64 dirty objects through a 4-object residency: evictions happen.
        for i in range(64):
            rt.access(i * 256, AccessKind.WRITE)
        m = rt.metrics
        assert m.deferred_writebacks > 0
        assert m.bytes_evacuated == 0


class TestDeferredDrain:
    """``Evacuator.drain_deferred``: deferred writebacks are re-driven."""

    def _deferred_evacuator(self, n_dirty: int):
        backend = _fail_fast(make_tcp_backend())
        evac = Evacuator(backend=backend, object_size=256)
        metrics = Metrics()
        evac.process([(obj, True) for obj in range(1, n_dirty + 1)], metrics)
        assert evac.deferred_objects == tuple(range(1, n_dirty + 1))
        return evac, backend, metrics

    def _heal(self, backend):
        backend.link.faults = None
        backend.breaker = CircuitBreaker(failure_threshold=3, cooldown_rejections=4)

    def test_drain_charges_exact_writeback_cycles(self):
        evac, backend, metrics = self._deferred_evacuator(2)
        self._heal(backend)
        cycles_before = metrics.cycles
        drained = evac.drain_deferred(metrics)
        # Accounting matches process(): each re-driven writeback costs
        # one depth-pipelined evict, sync_fraction of it app-visible.
        per_writeback = (
            backend.link.pipelined_cycles(256, evac.writeback_depth)
            * evac.sync_fraction
        )
        assert drained == pytest.approx(2 * per_writeback)
        assert metrics.cycles - cycles_before == pytest.approx(drained)
        assert metrics.bytes_evacuated == 2 * 256
        assert evac.drained_total == 2
        assert not evac.has_deferred
        assert metrics.deferred_writebacks == 2  # unchanged by the drain

    def test_drain_stops_at_first_failure_preserving_order(self):
        evac, backend, metrics = self._deferred_evacuator(3)
        # Heal just long enough for one message: index 0 succeeds, every
        # later message lands in the pause window.
        backend.link.faults = FaultPlan(
            seed=0, pause_windows=((1, 1_000_000),)
        ).schedule()
        backend.breaker = CircuitBreaker(failure_threshold=3, cooldown_rejections=4)
        deferred_before = metrics.deferred_writebacks
        evac.drain_deferred(metrics)
        # Object 1 went out; object 2 failed and was re-deferred; object
        # 3 was never attempted and keeps its place in line.
        assert evac.drained_total == 1
        assert evac.deferred_objects == (2, 3)
        assert metrics.deferred_writebacks == deferred_before + 1
        assert metrics.bytes_evacuated == 256

    def test_drain_on_empty_queue_is_free(self):
        backend = make_tcp_backend()
        evac = Evacuator(backend=backend, object_size=256)
        metrics = Metrics()
        assert evac.drain_deferred(metrics) == 0.0
        assert metrics.cycles == 0.0

    def test_deferral_is_deduplicated(self):
        evac, backend, metrics = self._deferred_evacuator(1)
        evac.process([(1, True)], metrics)
        # Two failed attempts are both counted, but the queue holds the
        # object once — draining must not write it back twice.
        assert metrics.deferred_writebacks == 2
        assert evac.deferred_objects == (1,)
        self._heal(backend)
        evac.drain_deferred(metrics)
        assert evac.drained_total == 1
        assert metrics.bytes_evacuated == 256

    def test_pool_auto_drains_after_next_successful_fetch(self):
        rt = AIFMRuntime(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=64 * KB)
        )
        _fail_fast(rt.pool.backend)
        rt.enable_degraded_mode()
        rt.allocate(16 * KB)
        for i in range(64):
            rt.access(i * 256, AccessKind.WRITE)
        assert rt.pool.evacuator.has_deferred
        # The tier heals: the next miss's successful fetch re-drives the
        # backlog — the moment the breaker would close again.
        rt.pool.backend.link.faults = None
        rt.pool.backend.breaker = CircuitBreaker(
            failure_threshold=3, cooldown_rejections=4
        )
        rt.access(0)
        assert not rt.pool.evacuator.has_deferred
        assert rt.metrics.bytes_evacuated > 0
        assert rt.pool.evacuator.drained_total > 0


class TestCLISmoke:
    def test_trace_cli_with_faults(self, tmp_path, capsys):
        from repro.trace.__main__ import main

        out = tmp_path / "t.json"
        rc = main(
            [
                "--workload", "stream", "--runtime", "trackfm",
                "--out", str(out), "--seed", "2",
                "--faults", "seed=2,drop=0.03,jitter=300",
            ]
        )
        assert rc == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "faults  = drops" in text
        assert default_fault_plan() is None  # plan uninstalled after the run

    def test_bench_cli_with_faults(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["table2", "--faults", "seed=1,drop=0.005"])
        assert rc == 0
        assert "TrackFM" in capsys.readouterr().out
        assert default_fault_plan() is None

    def test_installed_plan_context_restores_previous(self):
        outer = FaultPlan(seed=1, drop_rate=0.1)
        inner = FaultPlan(seed=2, drop_rate=0.2)
        with installed_fault_plan(outer):
            with installed_fault_plan(inner):
                assert default_fault_plan() is inner
            assert default_fault_plan() is outer
        assert default_fault_plan() is None
