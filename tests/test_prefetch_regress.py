"""The ``python -m repro.bench pprefetch`` baseline gate."""

import json

from repro.bench.__main__ import main as bench_main
from repro.bench.prefetch_regress import (
    WORKLOADS,
    baseline_path,
    check_baselines,
    measure_bench,
    record_baselines,
)

CHECKED_IN = "benchmarks/baselines"


class TestMeasurement:
    def test_programmed_beats_stride_on_stream(self):
        data = measure_bench("stream")
        assert data["programmed"]["demand_misses"] <= data["stride"]["demand_misses"]
        assert data["programmed"]["demand_misses"] == 0
        assert data["programmed"]["cycles"] < data["stride"]["cycles"]
        # Scheduling moves fetches earlier; it must not add traffic.
        assert data["programmed"]["bytes_fetched"] == data["stride"]["bytes_fetched"]
        assert data["programmed"]["value"] == data["stride"]["value"]

    def test_nas_kernel_covered(self):
        data = measure_bench("nas_cg")
        assert data["programmed"]["demand_misses"] <= data["stride"]["demand_misses"]
        assert data["programmed"]["value"] == data["stride"]["value"]


class TestCheckedInBaselines:
    def test_checked_in_baselines_hold(self):
        report = check_baselines(CHECKED_IN)
        assert report["ok"], json.dumps(report, indent=2, default=str)

    def test_every_workload_has_a_baseline(self):
        for name in WORKLOADS:
            assert baseline_path(CHECKED_IN, name).exists()


class TestGateMechanics:
    def test_record_then_check_round_trips(self, tmp_path):
        record_baselines(tmp_path, ["stream"])
        report = check_baselines(tmp_path, ["stream"])
        assert report["ok"]
        assert report["benches"]["stream"]["status"] == "ok"

    def test_missing_baseline_fails(self, tmp_path):
        report = check_baselines(tmp_path, ["stream"])
        assert not report["ok"]
        assert report["benches"]["stream"]["status"] == "missing-baseline"

    def test_tampered_baseline_fails(self, tmp_path):
        record_baselines(tmp_path, ["stream"])
        path = baseline_path(tmp_path, "stream")
        blob = json.loads(path.read_text())
        blob["stride"]["demand_misses"] += 1
        path.write_text(json.dumps(blob))
        report = check_baselines(tmp_path, ["stream"])
        assert not report["ok"]
        assert report["benches"]["stream"]["status"] == "baseline-mismatch"

    def test_cli_dispatch_via_bench_module(self, tmp_path, capsys):
        assert bench_main(["pprefetch", "--record", "--baseline-dir", str(tmp_path), "--bench", "stream"]) == 0
        capsys.readouterr()
        out_file = tmp_path / "report.json"
        rc = bench_main(
            [
                "pprefetch",
                "--check",
                "--baseline-dir",
                str(tmp_path),
                "--bench",
                "stream",
                "--out",
                str(out_file),
            ]
        )
        assert rc == 0
        assert "all baselines hold" in capsys.readouterr().out
        assert json.loads(out_file.read_text())["ok"]
