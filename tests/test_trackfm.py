"""TrackFM runtime: pointers, state table, guards, chunk streams."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.errors import PointerError, RuntimeConfigError
from repro.machine.cache import AlwaysHitCache, AlwaysMissCache
from repro.machine.costs import AccessKind, GuardKind
from repro.trackfm.pointer import (
    TFM_BASE,
    decode_tfm_pointer,
    encode_tfm_pointer,
    is_tfm_pointer,
    object_id_of,
)
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.trackfm.state_table import ObjectStateTable
from repro.units import GB, KB, MB


def make_runtime(object_size=4 * KB, local_objects=4, heap_objects=64, cache=None):
    config = PoolConfig(
        object_size=object_size,
        local_memory=local_objects * object_size,
        heap_size=heap_objects * object_size,
    )
    return TrackFMRuntime(config, cache=cache or AlwaysHitCache())


class TestPointers:
    def test_encode_decode_roundtrip(self):
        for offset in (0, 1, 4096, (1 << 60) - 1):
            ptr = encode_tfm_pointer(offset)
            assert is_tfm_pointer(ptr)
            assert decode_tfm_pointer(ptr) == offset

    def test_base_is_2_to_60(self):
        assert TFM_BASE == 1 << 60
        assert encode_tfm_pointer(0) == TFM_BASE

    def test_canonical_pointers_not_tfm(self):
        for addr in (0, 0x1000, (1 << 47) - 1):
            assert not is_tfm_pointer(addr)

    def test_out_of_range_offset(self):
        with pytest.raises(PointerError):
            encode_tfm_pointer(1 << 60)
        with pytest.raises(PointerError):
            encode_tfm_pointer(-1)

    def test_decode_non_tfm_raises(self):
        with pytest.raises(PointerError):
            decode_tfm_pointer(0x1000)

    def test_object_id_is_shift(self):
        ptr = encode_tfm_pointer(3 * 4096 + 17)
        assert object_id_of(ptr, 4096) == 3
        assert object_id_of(ptr, 64) == (3 * 4096 + 17) // 64

    def test_object_id_requires_power_of_two(self):
        with pytest.raises(PointerError):
            object_id_of(encode_tfm_pointer(0), 100)


class TestStateTable:
    def test_size_matches_paper_math(self):
        # §3.2: a 32 GB heap of 4 KB objects -> 2^23 entries = 64 MB.
        config = PoolConfig(
            object_size=4 * KB, local_memory=1 * MB, heap_size=32 * GB
        )
        from repro.aifm.pool import ObjectPool

        table = ObjectStateTable(ObjectPool(config))
        assert table.num_entries == 1 << 23
        assert table.size_bytes == 64 * MB
        assert "64.0MB" in table.describe()

    def test_lookup_coherent_with_pool(self):
        rt = make_runtime()
        ptr = rt.tfm_malloc(100)
        obj = object_id_of(ptr, rt.object_size)
        safe, _ = rt.table.is_safe(obj)
        assert not safe  # never localized yet
        rt.access(ptr)
        safe, _ = rt.table.is_safe(obj)
        assert safe

    def test_cache_hit_flag_propagates(self):
        rt = make_runtime(cache=AlwaysMissCache())
        ptr = rt.tfm_malloc(8)
        rt.access(ptr)
        _, hit = rt.table.lookup(object_id_of(ptr, rt.object_size))
        assert hit is False


class TestMalloc:
    def test_malloc_returns_non_canonical(self):
        rt = make_runtime()
        ptr = rt.tfm_malloc(64)
        assert is_tfm_pointer(ptr)

    def test_distinct_allocations_disjoint(self):
        rt = make_runtime()
        a = rt.tfm_malloc(100)
        bb = rt.tfm_malloc(100)
        ra = rt.allocation_of(a)
        rb = rt.allocation_of(bb)
        assert ra.end <= rb.offset or rb.end <= ra.offset

    def test_free_releases(self):
        rt = make_runtime(heap_objects=2)
        a = rt.tfm_malloc(4 * KB)
        b2 = rt.tfm_malloc(4 * KB)
        rt.tfm_free(a)
        rt.tfm_free(b2)
        c = rt.tfm_malloc(4 * KB)  # recycled
        assert is_tfm_pointer(c)

    def test_free_non_tfm_pointer_rejected(self):
        rt = make_runtime()
        with pytest.raises(PointerError):
            rt.tfm_free(0x1234)

    def test_calloc(self):
        rt = make_runtime()
        ptr = rt.tfm_calloc(8, 16)
        assert rt.allocation_of(ptr).size >= 128


class TestGuards:
    def test_custody_miss_for_canonical_pointer(self):
        rt = make_runtime()
        result = rt.guards.guard(0x1000, AccessKind.READ)
        assert result.kind is GuardKind.CUSTODY_MISS
        assert result.cycles == rt.costs.custody_miss

    def test_first_access_slow_with_fetch(self):
        rt = make_runtime()
        ptr = rt.tfm_malloc(8)
        result = rt.guards.guard(ptr, AccessKind.READ)
        assert result.kind is GuardKind.SLOW
        assert result.remote_fetch
        assert result.cycles > 30_000

    def test_second_access_fast(self):
        rt = make_runtime()
        ptr = rt.tfm_malloc(8)
        rt.guards.guard(ptr, AccessKind.READ)
        result = rt.guards.guard(ptr, AccessKind.READ)
        assert result.kind is GuardKind.FAST
        assert result.cycles == 21

    def test_write_guard_costs(self):
        rt = make_runtime(cache=AlwaysMissCache())
        ptr = rt.tfm_malloc(8)
        rt.guards.guard(ptr, AccessKind.WRITE)
        result = rt.guards.guard(ptr, AccessKind.WRITE)
        assert result.kind is GuardKind.FAST
        assert result.cycles == 309  # uncached fast write (Table 1)

    def test_guard_counts_in_metrics(self):
        rt = make_runtime()
        ptr = rt.tfm_malloc(8)
        rt.guards.guard(ptr, AccessKind.READ)
        rt.guards.guard(ptr, AccessKind.READ)
        rt.guards.guard(0x10, AccessKind.READ)
        m = rt.metrics
        assert m.guard_count(GuardKind.SLOW) == 1
        assert m.guard_count(GuardKind.FAST) == 1
        assert m.guard_count(GuardKind.CUSTODY_MISS) == 1

    def test_access_spanning_objects_guards_both(self):
        rt = make_runtime(object_size=64)
        ptr = rt.tfm_malloc(256)
        rt.access(ptr + 60, AccessKind.READ, size=8)
        assert rt.metrics.guard_count(GuardKind.SLOW) == 2


class TestChunkStreams:
    def test_chunk_begin_charges_setup(self):
        rt = make_runtime()
        cycles = rt.chunk_begin(0)
        assert cycles == rt.costs.chunk_setup

    def test_chunk_access_boundary_vs_locality(self):
        rt = make_runtime(object_size=64)
        ptr = rt.tfm_malloc(256)
        rt.chunk_begin(0)
        first = rt.chunk_access(ptr, AccessKind.READ, stream=0)
        assert first > rt.costs.locality_guard  # includes fetch
        within = rt.chunk_access(ptr + 8, AccessKind.READ, stream=0)
        assert within == pytest.approx(
            rt.costs.boundary_check + rt.costs.local_access
        )
        crossing = rt.chunk_access(ptr + 64, AccessKind.READ, stream=0)
        assert crossing > within
        rt.chunk_end(0)
        assert rt.metrics.guard_count(GuardKind.BOUNDARY) == 3
        assert rt.metrics.guard_count(GuardKind.LOCALITY) == 2

    def test_chunk_pins_current_object(self):
        rt = make_runtime(object_size=64, local_objects=2)
        ptr = rt.tfm_malloc(64)
        rt.chunk_begin(0)
        rt.chunk_access(ptr, AccessKind.READ, stream=0)
        obj = object_id_of(ptr, 64)
        assert rt.pool.residency.is_pinned(obj)
        rt.chunk_end(0)
        assert not rt.pool.residency.is_pinned(obj)

    def test_chunk_access_without_begin_raises(self):
        rt = make_runtime()
        ptr = rt.tfm_malloc(8)
        with pytest.raises(RuntimeConfigError):
            rt.chunk_access(ptr, AccessKind.READ, stream=3)

    def test_chunk_prefetch_clipped_to_allocation(self):
        rt = make_runtime(object_size=64, local_objects=32, heap_objects=128)
        ptr = rt.tfm_malloc(4 * 64)  # 4 objects
        rt.chunk_begin(0)
        for i in range(4 * 8):
            rt.chunk_access(ptr + i * 8, AccessKind.READ, stream=0, prefetch=True)
        rt.chunk_end(0)
        # No prefetch should have gone past the allocation's last object.
        fetched_bytes = rt.metrics.bytes_fetched
        assert fetched_bytes <= 4 * 64

    def test_chunk_end_unknown_stream_is_noop(self):
        rt = make_runtime()
        rt.chunk_end(42)  # must not raise


class TestSequentialScan:
    def test_naive_counts_guards(self):
        rt = make_runtime(object_size=4 * KB, local_objects=8, heap_objects=64)
        cycles = rt.sequential_scan(
            0, 1024, 8, AccessKind.READ, GuardStrategy.NAIVE, resident_fraction=0.0
        )
        assert cycles > 0
        m = rt.metrics
        # 1024 elems * 8B = 2 objects: 2 slow guards, rest fast.
        assert m.guard_count(GuardKind.SLOW) == 2
        assert m.guard_count(GuardKind.FAST) == 1022
        assert m.remote_fetches == 2

    def test_chunked_cheaper_than_naive_for_dense_loops(self):
        rt1 = make_runtime()
        naive = rt1.sequential_scan(
            0, 100_000, 4, AccessKind.READ, GuardStrategy.NAIVE
        )
        rt2 = make_runtime()
        chunked = rt2.sequential_scan(
            0, 100_000, 4, AccessKind.READ, GuardStrategy.CHUNKED
        )
        assert chunked < naive

    def test_prefetch_cheaper_than_blocking(self):
        rt1 = make_runtime()
        plain = rt1.sequential_scan(
            0, 100_000, 4, AccessKind.READ, GuardStrategy.CHUNKED
        )
        rt2 = make_runtime()
        pref = rt2.sequential_scan(
            0, 100_000, 4, AccessKind.READ, GuardStrategy.CHUNKED_PREFETCH
        )
        assert pref < plain

    def test_resident_fraction_reduces_cost(self):
        rt1 = make_runtime()
        cold = rt1.sequential_scan(0, 10_000, 8, AccessKind.READ, GuardStrategy.NAIVE, 0.0)
        rt2 = make_runtime()
        warm = rt2.sequential_scan(0, 10_000, 8, AccessKind.READ, GuardStrategy.NAIVE, 0.9)
        assert warm < cold

    def test_write_scan_accounts_evacuation(self):
        rt = make_runtime()
        rt.sequential_scan(0, 10_000, 8, AccessKind.WRITE, GuardStrategy.CHUNKED)
        assert rt.metrics.bytes_evacuated > 0

    def test_loop_entries_multiply_setup(self):
        rt1 = make_runtime()
        once = rt1.sequential_scan(
            0, 1000, 8, AccessKind.READ, GuardStrategy.CHUNKED, loop_entries=1
        )
        rt2 = make_runtime()
        many = rt2.sequential_scan(
            0, 1000, 8, AccessKind.READ, GuardStrategy.CHUNKED, loop_entries=100
        )
        assert many - once == pytest.approx(99 * rt1.costs.chunk_setup)

    def test_invalid_fraction(self):
        rt = make_runtime()
        with pytest.raises(RuntimeConfigError):
            rt.sequential_scan(0, 10, 8, AccessKind.READ, GuardStrategy.NAIVE, 1.5)

    def test_zero_elements(self):
        rt = make_runtime()
        assert rt.sequential_scan(0, 0, 8) == 0.0


class TestTierConsistency:
    """The per-access and closed-form tiers must agree (docs/architecture.md)."""

    def test_naive_scan_counts_match_replay(self):
        n, elem = 2048, 8  # 16 KB = 4 objects
        replay = make_runtime(local_objects=8)
        ptr = replay.tfm_malloc(n * elem)
        for i in range(n):
            replay.access(ptr + i * elem, AccessKind.READ, size=elem)

        closed = make_runtime(local_objects=8)
        closed.sequential_scan(
            0, n, elem, AccessKind.READ, GuardStrategy.NAIVE, resident_fraction=0.0
        )

        rm, cm = replay.metrics, closed.metrics
        assert rm.guard_count(GuardKind.SLOW) == cm.guard_count(GuardKind.SLOW)
        assert rm.guard_count(GuardKind.FAST) == cm.guard_count(GuardKind.FAST)
        assert rm.remote_fetches == cm.remote_fetches
        assert rm.bytes_fetched == cm.bytes_fetched
        assert rm.accesses == cm.accesses

    def test_naive_scan_cycles_close_to_replay(self):
        # Cycles agree up to the cache-hit pattern of the state-table
        # lookups (the closed form assumes one uncached lookup per
        # object; replay with AlwaysHitCache under-counts those).
        n, elem = 2048, 8
        replay = make_runtime(local_objects=8)
        ptr = replay.tfm_malloc(n * elem)
        replay_cycles = sum(
            replay.access(ptr + i * elem, AccessKind.READ, size=elem)
            for i in range(n)
        )
        closed = make_runtime(local_objects=8)
        closed_cycles = closed.sequential_scan(
            0, n, elem, AccessKind.READ, GuardStrategy.NAIVE, resident_fraction=0.0
        )
        assert replay_cycles == pytest.approx(closed_cycles, rel=0.02)

    def test_chunked_scan_counts_match_replay(self):
        n, elem = 2048, 8
        replay = make_runtime(local_objects=8)
        ptr = replay.tfm_malloc(n * elem)
        replay.chunk_begin(0)
        for i in range(n):
            replay.chunk_access(ptr + i * elem, AccessKind.READ, stream=0)
        replay.chunk_end(0)

        closed = make_runtime(local_objects=8)
        closed.sequential_scan(
            0, n, elem, AccessKind.READ, GuardStrategy.CHUNKED, resident_fraction=0.0
        )
        rm, cm = replay.metrics, closed.metrics
        assert rm.guard_count(GuardKind.BOUNDARY) == cm.guard_count(GuardKind.BOUNDARY)
        assert rm.guard_count(GuardKind.LOCALITY) == cm.guard_count(GuardKind.LOCALITY)
        assert rm.remote_fetches == cm.remote_fetches
        assert rm.bytes_fetched == cm.bytes_fetched
