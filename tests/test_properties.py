"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aifm.allocator import RegionAllocator
from repro.aifm.objectmeta import ObjectMeta, encode_local, encode_remote
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS
from repro.sim.che import lru_hit_rate, per_granule_hit_rates
from repro.sim.residency import ResidencySet
from repro.trackfm.pointer import (
    decode_tfm_pointer,
    encode_tfm_pointer,
    is_tfm_pointer,
    object_id_of,
)
from repro.units import align_up, ceil_div, is_power_of_two

offsets = st.integers(min_value=0, max_value=(1 << 60) - 1)
object_sizes = st.sampled_from([64, 128, 256, 512, 1024, 2048, 4096])


class TestPointerProperties:
    @given(offsets)
    def test_encode_decode_roundtrip(self, offset):
        assert decode_tfm_pointer(encode_tfm_pointer(offset)) == offset

    @given(offsets)
    def test_encoded_pointers_always_non_canonical(self, offset):
        assert is_tfm_pointer(encode_tfm_pointer(offset))

    @given(st.integers(min_value=0, max_value=(1 << 47) - 1))
    def test_canonical_addresses_never_tfm(self, addr):
        assert not is_tfm_pointer(addr)

    @given(offsets, object_sizes)
    def test_object_id_consistent_with_division(self, offset, size):
        ptr = encode_tfm_pointer(offset)
        assert object_id_of(ptr, size) == offset // size

    @given(offsets, object_sizes, st.integers(min_value=0, max_value=63))
    def test_intra_object_offsets_share_id(self, offset, size, delta):
        base = (offset // size) * size
        if base + delta >= 1 << 60:
            return
        a = object_id_of(encode_tfm_pointer(base), size)
        b = object_id_of(encode_tfm_pointer(base + min(delta, size - 1)), size)
        assert a == b


class TestMetadataProperties:
    @given(
        st.integers(min_value=0, max_value=(1 << 47) - 1),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    def test_local_word_roundtrip(self, addr, dirty, hot, shared):
        meta = ObjectMeta(encode_local(addr, dirty=dirty, hot=hot, shared=shared))
        assert meta.is_local
        assert meta.data_addr == addr
        assert meta.is_dirty == dirty
        assert meta.is_hot == hot
        assert meta.is_safe  # not evacuating, not remote

    @given(
        st.integers(min_value=0, max_value=(1 << 38) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=255),
    )
    def test_remote_word_roundtrip(self, obj_id, size, ds_id):
        meta = ObjectMeta(encode_remote(obj_id, size, ds_id))
        assert meta.is_remote
        assert meta.obj_id == obj_id
        assert meta.obj_size == size
        assert meta.ds_id == ds_id
        assert not meta.is_safe


class TestResidencyProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=8),
        st.booleans(),
    )
    @settings(max_examples=50)
    def test_capacity_never_exceeded_and_access_resident(self, ops, capacity, clock):
        rs = ResidencySet(capacity, use_clock=clock)
        for granule, write in ops:
            rs.access(granule, write=write)
            assert len(rs) <= capacity
            assert granule in rs  # just-touched granule is resident

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_eviction_conserves_granules(self, stream):
        rs = ResidencySet(4)
        evicted_total = 0
        for g in stream:
            out = rs.access(g)
            evicted_total += len(out.evicted)
        misses = sum(1 for _ in [0])  # placeholder to keep flake quiet
        del misses
        # Everything ever evicted plus the still-resident set accounts
        # for every miss (each miss inserts exactly one granule).
        assert evicted_total + len(rs) <= len(stream) + 4


class TestAllocatorProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_live_allocations_never_overlap(self, sizes):
        alloc = RegionAllocator(heap_size=1 << 22, object_size=4096)
        live = [alloc.allocate(s) for s in sizes]
        spans = sorted((a.offset, a.end) for a in live)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_free_everything_resets_accounting(self, sizes):
        alloc = RegionAllocator(heap_size=1 << 22, object_size=4096)
        live = [alloc.allocate(s) for s in sizes]
        for a in live:
            alloc.free(a.offset)
        assert alloc.bytes_allocated == 0
        assert alloc.live_allocations() == []

    @given(st.integers(min_value=1, max_value=100_000))
    def test_allocation_covers_request(self, size):
        alloc = RegionAllocator(heap_size=1 << 22, object_size=4096)
        a = alloc.allocate(size)
        assert a.size >= size


class TestCheProperties:
    @given(
        st.integers(min_value=2, max_value=500),
        st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=50)
    def test_hit_rate_bounded(self, n, skew):
        masses = np.arange(1, n + 1, dtype=np.float64) ** (-skew)
        for cap in (0, 1, n // 2, n, n * 2):
            hr = lru_hit_rate(masses, cap)
            assert 0.0 <= hr <= 1.0

    @given(st.integers(min_value=4, max_value=300))
    @settings(max_examples=30)
    def test_hit_rate_monotone_in_capacity(self, n):
        masses = np.arange(1, n + 1, dtype=np.float64) ** -1.1
        rates = [lru_hit_rate(masses, c) for c in range(0, n + 1, max(1, n // 7))]
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))

    @given(st.integers(min_value=4, max_value=200))
    @settings(max_examples=30)
    def test_full_capacity_hits_everything(self, n):
        masses = np.ones(n)
        assert lru_hit_rate(masses, n) == 1.0

    @given(st.integers(min_value=8, max_value=200))
    @settings(max_examples=30)
    def test_hotter_granules_hit_more(self, n):
        masses = np.arange(1, n + 1, dtype=np.float64) ** -1.2
        per = per_granule_hit_rates(masses, n // 4)
        assert all(a >= b - 1e-12 for a, b in zip(per, per[1:]))


class TestCostModelProperties:
    @given(object_sizes, st.integers(min_value=1, max_value=4096))
    def test_costs_positive(self, obj, elem):
        from repro.compiler.cost_model import ChunkingCostModel, LoopShape

        model = ChunkingCostModel(obj)
        shape = LoopShape(iterations_per_entry=1000, elem_size=elem)
        naive, chunked = model.loop_costs(shape)
        assert naive >= 0 and chunked >= 0

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=30)
    def test_decision_matches_cost_comparison(self, elem):
        from repro.compiler.cost_model import ChunkingCostModel, LoopShape

        model = ChunkingCostModel(4096)
        shape = LoopShape(iterations_per_entry=50_000, elem_size=elem)
        naive, chunked = model.loop_costs(shape)
        assert model.should_chunk(shape) == (chunked < naive)


class TestUnitProperties:
    @given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([1, 2, 8, 64, 4096]))
    def test_align_up_properties(self, value, alignment):
        aligned = align_up(value, alignment)
        assert aligned >= value
        assert aligned % alignment == 0
        assert aligned - value < alignment

    @given(st.integers(min_value=0, max_value=1 << 40), st.integers(min_value=1, max_value=1 << 20))
    def test_ceil_div_properties(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or a == 0

    @given(st.integers(min_value=0, max_value=63))
    def test_powers_of_two(self, exp):
        assert is_power_of_two(1 << exp)
        if exp > 1:
            assert not is_power_of_two((1 << exp) + 1)


class TestInterpreterArithmeticProperties:
    @given(
        st.integers(min_value=-(1 << 62), max_value=1 << 62),
        st.integers(min_value=-(1 << 62), max_value=1 << 62),
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
    )
    @settings(max_examples=60)
    def test_binops_match_python_mod_2_64(self, a, b, op):
        from repro.ir import IRBuilder, I64, Module
        from repro.sim.interpreter import Interpreter

        m = Module()
        f = m.add_function("main", I64)
        builder = IRBuilder(f.add_block("entry"))
        v = getattr(builder, op if op not in ("and", "or") else op + "_")(a, b)
        builder.ret(v)
        got = Interpreter(m).run("main").value
        table = {
            "add": a + b,
            "sub": a - b,
            "mul": a * b,
            "and": a & b,
            "or": a | b,
            "xor": a ^ b,
        }
        expected = table[op] & ((1 << 64) - 1)
        if expected >= 1 << 63:
            expected -= 1 << 64
        assert got == expected
