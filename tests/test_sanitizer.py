"""Guard-safety sanitizer: dataflow engine, checks, CLI, pipeline hook.

The adversarial fixtures hand-build modules that violate exactly one
invariant each and assert the matching diagnostic code fires; the
clean-run tests push every IR program this repo builds through the full
default pipeline and require zero errors.
"""

from __future__ import annotations

import pytest

from irprograms import build_sum_loop, build_write_then_sum

from repro.analysis import LiveVariables
from repro.analysis.dataflow import TOP
from repro.compiler.guard_transform import GUARDED_MD
from repro.compiler.pass_manager import Pass
from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.errors import IRVerifyError, PassError
from repro.ir import IRBuilder, Module, I64, PTR, parse_module, print_module
from repro.ir.instructions import Call, CondBr, Load, Phi, Ret, Store
from repro.ir.values import Constant
from repro.ir.verifier import verify_module
from repro.sanitizer import (
    CHUNK_INVARIANT,
    GUARD_ON_LOCAL,
    LOCALIZED_ESCAPE,
    REDUNDANT_GUARD,
    STALE_LOCALIZED,
    UNGUARDED_DEREF,
    ReachingGuards,
    Sanitizer,
    sanitize_module,
)
from repro.sanitizer.__main__ import main as sanitizer_cli
from repro.workloads.nas import NAS_SUITE, build_nas_ir
from repro.workloads.nas_kernels import (
    build_cg_kernel,
    build_ft_kernel,
    build_is_kernel,
    build_mg_kernel,
    build_sp_kernel,
)


def codes(report):
    return {d.code for d in report.diagnostics}


def error_codes(report):
    return {d.code for d in report.errors}


# ---------------------------------------------------------------------------
# adversarial fixture builders
# ---------------------------------------------------------------------------


def build_dropped_guard() -> Module:
    """A heap load that never goes through a guard."""
    m = Module("dropped_guard")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
    v = b.load(I64, p, name="v")
    b.ret(v)
    return m


def build_escaped_localized() -> Module:
    """A guard result returned from the function."""
    m = Module("escaped")
    f = m.add_function("main", PTR)
    b = IRBuilder(f.add_block("entry"))
    p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
    g = b.call(PTR, "tfm_guard_read", [p], name="g")
    b.ret(g)
    return m


def build_chunked_without_begin() -> Module:
    """A chunk deref whose stream was never set up."""
    m = Module("chunk_no_begin")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
    d = b.call(PTR, "tfm_chunk_deref", [p, Constant(I64, 0)], name="d")
    v = b.load(I64, d, name="v")
    b.ret(v)
    return m


# ---------------------------------------------------------------------------
# dataflow engine
# ---------------------------------------------------------------------------


class TestDataflowEngine:
    def test_liveness_on_sum_loop(self):
        m = build_sum_loop()
        f = m.get_function("main")
        live = LiveVariables(f).run()
        header = f.get_block("header")
        p = next(i for i in f.instructions() if i.name == "p")
        # p (the malloc) is used in the body every iteration, so it is
        # live into the header; but not live into the entry block where
        # it is defined.
        assert p in live.in_state(header)
        assert p not in live.in_state(f.get_block("entry"))

    def test_liveness_state_queries(self):
        m = build_sum_loop()
        f = m.get_function("main")
        live = LiveVariables(f).run()
        body = f.get_block("body")
        load = next(i for i in body.instructions if isinstance(i, Load))
        # The loaded value is consumed by the add right after it.
        assert load in live.state_after(load)

    def test_reaching_guards_straight_line_and_kill(self):
        m = Module("rg")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        g = b.call(PTR, "tfm_guard_read", [p], name="g")
        v = b.load(I64, g, name="v")
        q = b.call(PTR, "tfm_malloc", [Constant(I64, 8)], name="q")
        b.ret(v)
        rg = ReachingGuards(f).run()
        assert g in rg.state_before(v)
        # The second malloc is an evacuation point: kills the guard.
        assert g not in rg.state_after(q)

    def test_reaching_guards_joins_by_intersection(self):
        m = Module("rgjoin")
        f = m.add_function("main", I64, [I64], ["c"])
        entry = f.add_block("entry")
        a = f.add_block("a")
        bb = f.add_block("b")
        join = f.add_block("join")
        b = IRBuilder(entry)
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        b.condbr(b.icmp("ne", f.args[0], Constant(I64, 0)), a, bb)
        b.set_block(a)
        g = b.call(PTR, "tfm_guard_read", [p], name="g")
        b.br(join)
        b.set_block(bb)
        b.br(join)
        b.set_block(join)
        b.ret(Constant(I64, 0))
        rg = ReachingGuards(f).run()
        assert g in rg.out_state(a)
        # Guarded on only one path: invalid at the merge.
        assert g not in rg.in_state(join)

    def test_unreachable_blocks_stay_top(self):
        m = Module("unreach")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.ret(Constant(I64, 0))
        dead = f.add_block("dead")
        IRBuilder(dead).ret(Constant(I64, 1))
        rg = ReachingGuards(f).run()
        assert rg.in_state(dead) is TOP


# ---------------------------------------------------------------------------
# adversarial fixtures -> distinct diagnostic codes
# ---------------------------------------------------------------------------


class TestAdversarialFixtures:
    def test_dropped_guard_fires_unguarded_deref(self):
        report = sanitize_module(build_dropped_guard())
        assert not report.ok
        assert error_codes(report) == {UNGUARDED_DEREF}
        diag = report.errors[0]
        assert diag.function == "main" and diag.block == "entry"
        assert "load" in diag.instruction

    def test_returned_localized_fires_escape(self):
        report = sanitize_module(build_escaped_localized())
        assert LOCALIZED_ESCAPE in error_codes(report)

    def test_stored_localized_fires_escape(self):
        m = Module("stored")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8, name="slot")
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        g = b.call(PTR, "tfm_guard_read", [p], name="g")
        b.store(g, slot)
        b.ret(Constant(I64, 0))
        report = sanitize_module(m)
        assert LOCALIZED_ESCAPE in error_codes(report)
        assert "stored to memory" in report.by_code(LOCALIZED_ESCAPE)[0].message

    def test_phi_merge_with_unlocalized_fires_escape(self):
        m = Module("phimerge")
        f = m.add_function("main", I64, [I64], ["c"])
        entry = f.add_block("entry")
        a = f.add_block("a")
        bb = f.add_block("b")
        join = f.add_block("join")
        b = IRBuilder(entry)
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        b.condbr(b.icmp("ne", f.args[0], Constant(I64, 0)), a, bb)
        b.set_block(a)
        g = b.call(PTR, "tfm_guard_read", [p], name="g")
        b.br(join)
        b.set_block(bb)
        b.br(join)
        b.set_block(join)
        q = b.phi(PTR, name="q")
        q.add_incoming(g, a)
        q.add_incoming(p, bb)
        b.ret(Constant(I64, 0))
        report = sanitize_module(m)
        assert LOCALIZED_ESCAPE in error_codes(report)

    def test_use_across_evacuation_fires_stale(self):
        m = Module("stale")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        g = b.call(PTR, "tfm_guard_read", [p], name="g")
        b.call(PTR, "tfm_malloc", [Constant(I64, 8)], name="q")
        v = b.load(I64, g, name="v")
        b.ret(v)
        report = sanitize_module(m)
        assert STALE_LOCALIZED in error_codes(report)

    def test_gep_transparency_over_localized(self):
        """A gep over a guard result is still the localized address."""
        m = Module("gepok")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        g = b.call(PTR, "tfm_guard_read", [p], name="g")
        v = b.load(I64, b.gep(g, Constant(I64, 2), 8, name="addr"), name="v")
        b.ret(v)
        report = sanitize_module(m)
        assert report.ok

    def test_chunk_deref_without_begin_fires_chunk_invariant(self):
        report = sanitize_module(build_chunked_without_begin())
        assert CHUNK_INVARIANT in error_codes(report)

    def test_chunk_mark_without_deref_fires_chunk_invariant(self):
        m = Module("chunkmark")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        v = b.load(I64, p, name="v")
        v.metadata["tfm.chunked"] = True
        b.ret(v)
        report = sanitize_module(m)
        assert CHUNK_INVARIANT in error_codes(report)

    def test_three_fixtures_have_distinct_codes(self):
        """Acceptance: dropped guard / escape / chunk map 1:1 to codes."""
        dropped = error_codes(sanitize_module(build_dropped_guard()))
        escaped = error_codes(sanitize_module(build_escaped_localized()))
        chunked = error_codes(sanitize_module(build_chunked_without_begin()))
        assert UNGUARDED_DEREF in dropped and UNGUARDED_DEREF not in (escaped | chunked)
        assert LOCALIZED_ESCAPE in escaped and LOCALIZED_ESCAPE not in (dropped | chunked)
        assert CHUNK_INVARIANT in chunked and CHUNK_INVARIANT not in (dropped | escaped)


class TestLints:
    def test_redundant_guard_lint(self):
        m = Module("redundant")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        g1 = b.call(PTR, "tfm_guard_read", [p], name="g1")
        v1 = b.load(I64, g1, name="v1")
        g2 = b.call(PTR, "tfm_guard_read", [p], name="g2")
        v2 = b.load(I64, g2, name="v2")
        b.ret(b.add(v1, v2))
        report = sanitize_module(m)
        assert report.ok  # a lint, not an error
        assert [d.code for d in report.warnings] == [REDUNDANT_GUARD]

    def test_write_guard_not_covered_by_read_guard(self):
        m = Module("wnotr")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        g1 = b.call(PTR, "tfm_guard_read", [p], name="g1")
        v1 = b.load(I64, g1, name="v1")
        g2 = b.call(PTR, "tfm_guard_write", [p], name="g2")
        b.store(v1, g2)
        b.ret(v1)
        report = sanitize_module(m)
        assert not report.by_code(REDUNDANT_GUARD)

    def test_guard_on_stack_pointer_lint(self):
        m = Module("wasted")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8, name="slot")
        g = b.call(PTR, "tfm_guard_read", [slot], name="g")
        v = b.load(I64, g, name="v")
        b.ret(v)
        report = sanitize_module(m)
        assert GUARD_ON_LOCAL in codes(report)
        assert report.ok


# ---------------------------------------------------------------------------
# strict vs incremental mode
# ---------------------------------------------------------------------------


class TestModes:
    def test_incremental_tolerates_untransformed_module(self):
        m = build_dropped_guard()
        assert Sanitizer(strict=False).run(m).ok
        assert not Sanitizer(strict=True).run(m).ok

    def test_incremental_rejects_broken_guarded_mark(self):
        m = build_dropped_guard()
        load = next(
            i for i in m.get_function("main").instructions() if isinstance(i, Load)
        )
        load.metadata[GUARDED_MD] = True  # claims guarded; pointer is raw
        report = Sanitizer(strict=False).run(m)
        assert UNGUARDED_DEREF in error_codes(report)

    def test_strict_flags_pending_guard_mark(self):
        m = build_dropped_guard()
        load = next(
            i for i in m.get_function("main").instructions() if isinstance(i, Load)
        )
        load.metadata["tfm.guard"] = True  # scheduled but never transformed
        report = Sanitizer(strict=True).run(m)
        assert UNGUARDED_DEREF in error_codes(report)
        assert "never transformed" in report.errors[0].message


# ---------------------------------------------------------------------------
# clean runs: every program this repo builds, full default pipeline
# ---------------------------------------------------------------------------


IR_BUILDERS = {
    "sum_loop": build_sum_loop,
    "write_then_sum": build_write_then_sum,
    "nas_cg_kernel": build_cg_kernel,
    "nas_is_kernel": build_is_kernel,
    "nas_mg_kernel": build_mg_kernel,
    "nas_sp_kernel": build_sp_kernel,
    "nas_ft_kernel": build_ft_kernel,
}


class TestCleanRuns:
    @pytest.mark.parametrize("name", sorted(IR_BUILDERS))
    def test_pipeline_output_is_guard_safe(self, name):
        module = IR_BUILDERS[name]()
        result = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        report = result.ctx.results["sanitizer_report"]
        assert report.ok, report.render()

    @pytest.mark.parametrize("bench", [b.name for b in NAS_SUITE])
    def test_nas_suite_is_guard_safe(self, bench):
        module = build_nas_ir(bench, n=32)
        result = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        assert result.ctx.results["sanitizer_report"].ok

    def test_printed_pipeline_output_reparses_clean(self):
        """The CLI path: print -> parse -> strict sanitize, no errors."""
        module = build_write_then_sum()
        TrackFMCompiler(CompilerConfig()).compile(module)
        reparsed = parse_module(print_module(module))
        verify_module(reparsed)
        assert sanitize_module(reparsed).ok

    def test_per_pass_reports_are_recorded(self):
        module = build_sum_loop()
        result = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        per_pass = result.ctx.results["sanitizer_per_pass"]
        assert "guard-transform" in per_pass
        assert all(rep.ok for rep in per_pass.values())


# ---------------------------------------------------------------------------
# pipeline bisection: verify_guards names the breaking pass
# ---------------------------------------------------------------------------


class _GuardBreakerPass(Pass):
    """Reroute every guarded access back to its raw pointer (sabotage)."""

    name = "guard-breaker"

    def run(self, module, ctx):
        for func in module.defined_functions():
            for inst in func.instructions():
                if not isinstance(inst, (Load, Store)):
                    continue
                guard = inst.pointer
                if isinstance(guard, Call) and guard.callee.startswith("tfm_guard"):
                    inst.replace_uses_of(guard, guard.args[0])


class _SabotagedCompiler(TrackFMCompiler):
    def build_pipeline(self):
        return super().build_pipeline() + [_GuardBreakerPass()]


class TestPipelineBisection:
    def test_verify_guards_names_breaking_pass(self):
        module = build_sum_loop()
        compiler = _SabotagedCompiler(CompilerConfig(verify_guards=True))
        with pytest.raises(PassError, match="guard-breaker"):
            compiler.compile(module)

    def test_sabotage_goes_unnoticed_without_verify_guards(self):
        module = build_sum_loop()
        _SabotagedCompiler(CompilerConfig()).compile(module)  # no error
        assert not sanitize_module(module).ok


# ---------------------------------------------------------------------------
# verifier satellites
# ---------------------------------------------------------------------------


class TestVerifierSatellites:
    def _double_edge_func(self, incoming_count):
        m = Module("dup")
        f = m.add_function("main", I64, [I64], ["c"])
        entry = f.add_block("entry")
        join = f.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("ne", f.args[0], Constant(I64, 0))
        entry.append(CondBr(cond, join, join))  # both arms -> join
        b.set_block(join)
        phi = Phi(I64, name="x")
        for _ in range(incoming_count):
            phi.add_incoming(Constant(I64, 1), entry)
        join.insert(0, phi)
        phi.parent = join
        join.append(Ret(phi))
        return m

    def test_phi_needs_one_incoming_per_duplicate_edge(self):
        # Two edges from entry -> join: two incoming entries verify...
        verify_module(self._double_edge_func(2))
        # ...but a single entry (edge-count disagreement) is rejected.
        with pytest.raises(IRVerifyError, match="multiset"):
            verify_module(self._double_edge_func(1))

    def test_intrinsic_arity_checked(self):
        m = Module("arity")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "tfm_malloc", [Constant(I64, 64)], name="p")
        b.call(PTR, "tfm_guard_read", [p, Constant(I64, 1)], name="g")
        b.ret(Constant(I64, 0))
        with pytest.raises(IRVerifyError, match="tfm_guard_read expects 1"):
            verify_module(m)

    def test_chunk_begin_arity_checked(self):
        m = Module("arity2")
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        from repro.ir.types import VOID

        b.call(VOID, "tfm_chunk_begin", [Constant(I64, 0)])
        b.ret(Constant(I64, 0))
        with pytest.raises(IRVerifyError, match="tfm_chunk_begin expects 2"):
            verify_module(m)


# ---------------------------------------------------------------------------
# guard <-> access metadata link
# ---------------------------------------------------------------------------


class TestGuardAccessLink:
    def test_guard_call_links_back_to_access(self):
        module = build_sum_loop(n=4)
        TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.NONE, enable_chase_prefetch=False)
        ).compile(module)
        f = module.get_function("main")
        guards = [
            i
            for i in f.instructions()
            if isinstance(i, Call) and i.callee.startswith("tfm_guard")
        ]
        assert guards
        for guard in guards:
            access = guard.metadata.get(GUARDED_MD)
            assert isinstance(access, (Load, Store))
            assert access.pointer is guard  # the link is the protected access


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def _write_ir(self, tmp_path, module, name):
        path = tmp_path / name
        path.write_text(print_module(module))
        return str(path)

    def test_clean_module_exits_zero(self, tmp_path, capsys):
        module = build_write_then_sum()
        TrackFMCompiler(CompilerConfig()).compile(module)
        path = self._write_ir(tmp_path, module, "clean.ir")
        assert sanitizer_cli([path]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_dropped_guard_exits_nonzero_with_coded_diag(self, tmp_path, capsys):
        path = self._write_ir(tmp_path, build_dropped_guard(), "bad.ir")
        assert sanitizer_cli([path]) == 1
        out = capsys.readouterr().out
        assert UNGUARDED_DEREF in out
        assert "@main" in out and "%entry" in out

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "junk.ir"
        path.write_text("this is not IR\n")
        assert sanitizer_cli([str(path)]) == 2

    def test_missing_file_exits_two(self, tmp_path):
        assert sanitizer_cli([str(tmp_path / "nope.ir")]) == 2

    def test_explain_lists_codes(self, capsys):
        assert sanitizer_cli(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in (UNGUARDED_DEREF, LOCALIZED_ESCAPE, CHUNK_INVARIANT):
            assert code in out
