"""Reusable IR program builders for tests and benchmarks."""

from __future__ import annotations

from repro.aifm.pool import PoolConfig
from repro.ir import IRBuilder, Module
from repro.ir.types import I64, PTR
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


def build_sum_loop(n: int = 100, alloc_bytes: int = None, elem: int = 8) -> Module:
    """``main: p = malloc(n*elem); for i<n: sum += p[i]; ret sum``."""
    if alloc_bytes is None:
        alloc_bytes = n * elem
    m = Module("sumloop")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, alloc_bytes)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, n), body, exit_)
    b.set_block(body)
    v = b.load(I64, b.gep(p, i, elem, name="addr"), name="v")
    s2 = b.add(s, v, name="s2")
    i2 = b.add(i, 1, name="i2")
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(exit_)
    b.ret(s)
    return m


def build_write_then_sum(n: int = 100, elem: int = 8) -> Module:
    """Writes ``p[i] = i`` then sums; result is n*(n-1)/2.

    ``elem`` of 4 stores/loads i32 (truncated/sign-extended), 8 uses i64.
    """
    from repro.ir.types import I32

    if elem not in (4, 8):
        raise ValueError("elem must be 4 or 8")
    elem_ty = I32 if elem == 4 else I64
    m = Module("writesum")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    wh = f.add_block("wh")
    wb = f.add_block("wb")
    mid = f.add_block("mid")
    rh = f.add_block("rh")
    rb = f.add_block("rb")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * elem)], name="p")
    b.br(wh)
    b.set_block(wh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, n), wb, mid)
    b.set_block(wb)
    value = b.cast("trunc", i, I32) if elem == 4 else i
    b.store(value, b.gep(p, i, elem))
    i2 = b.add(i, 1)
    b.br(wh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, wb)
    b.set_block(mid)
    b.br(rh)
    b.set_block(rh)
    j = b.phi(I64, name="j")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", j, n), rb, exit_)
    b.set_block(rb)
    raw = b.load(elem_ty, b.gep(p, j, elem))
    v = b.cast("sext", raw, I64) if elem == 4 else raw
    s2 = b.add(s, v)
    j2 = b.add(j, 1)
    b.br(rh)
    j.add_incoming(Constant(I64, 0), mid)
    j.add_incoming(j2, rb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, rb)
    b.set_block(exit_)
    b.ret(s)
    return m


