"""Metrics, the stream executor, the local runtime, Che edge cases."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind, GuardKind
from repro.sim.che import characteristic_time, lru_hit_rate, per_granule_hit_rates
from repro.sim.executor import AccessStreamExecutor, replay_offsets
from repro.sim.local import LocalRuntime
from repro.sim.metrics import Metrics


class TestMetrics:
    def test_guard_counting(self):
        m = Metrics()
        m.count_guard(GuardKind.FAST, 3)
        m.count_guard(GuardKind.SLOW)
        assert m.guard_count(GuardKind.FAST) == 3
        assert m.total_guards == 4
        assert m.slow_path_guards == 1

    def test_custody_miss_not_in_total_wait(self):
        m = Metrics()
        m.count_guard(GuardKind.CUSTODY_MISS, 5)
        assert m.total_guards == 5  # custody misses still execute guard code
        m2 = Metrics()
        m2.count_guard(GuardKind.NONE, 5)
        assert m2.total_guards == 0

    def test_amplification(self):
        m = Metrics(bytes_fetched=3000, bytes_evacuated=1000)
        assert m.amplification(1000) == 4.0
        assert m.amplification(0) == 0.0

    def test_merge(self):
        a = Metrics(cycles=10, accesses=1, major_faults=2)
        a.count_guard(GuardKind.FAST, 1)
        b = Metrics(cycles=5, accesses=2, minor_faults=3)
        b.count_guard(GuardKind.FAST, 2)
        a.merge(b)
        assert a.cycles == 15
        assert a.accesses == 3
        assert a.guard_count(GuardKind.FAST) == 3
        assert a.total_faults == 5

    def test_snapshot_is_independent(self):
        m = Metrics(cycles=1)
        m.count_guard(GuardKind.SLOW)
        snap = m.snapshot()
        m.cycles = 99
        m.count_guard(GuardKind.SLOW)
        assert snap.cycles == 1
        assert snap.guard_count(GuardKind.SLOW) == 1

    def test_reset(self):
        m = Metrics(cycles=5, bytes_fetched=10)
        m.count_guard(GuardKind.FAST)
        m.reset()
        assert m.cycles == 0 and m.bytes_fetched == 0 and m.total_guards == 0


class TestExecutor:
    def test_replay_accumulates(self):
        rt = LocalRuntime()
        ex = AccessStreamExecutor(rt.access)
        total = ex.replay(np.array([0, 8, 16]), AccessKind.READ)
        assert total == 3 * rt.costs.local_access
        assert rt.metrics.accesses == 3

    def test_replay_mixed(self):
        rt = LocalRuntime()
        ex = AccessStreamExecutor(rt.access)
        ex.replay_mixed([0, 8], [False, True])
        assert rt.metrics.accesses == 2

    def test_replay_mixed_length_mismatch(self):
        ex = AccessStreamExecutor(LocalRuntime().access)
        with pytest.raises(WorkloadError):
            ex.replay_mixed([0, 8], [True])

    def test_replay_offsets_helper(self):
        rt = LocalRuntime()
        total = replay_offsets(rt, range(10))
        assert total == 10 * rt.costs.local_access

    def test_replay_against_trackfm(self):
        from repro.aifm.pool import PoolConfig
        from repro.trackfm.runtime import TrackFMRuntime

        rt = TrackFMRuntime(
            PoolConfig(object_size=4096, local_memory=16 * 4096, heap_size=64 * 4096)
        )
        ptr = rt.tfm_malloc(4096)
        ex = AccessStreamExecutor(rt.access)
        ex.replay([ptr + i * 8 for i in range(16)])
        assert rt.metrics.guard_count(GuardKind.FAST) == 15
        assert rt.metrics.guard_count(GuardKind.SLOW) == 1


class TestLocalRuntime:
    def test_access_cost(self):
        rt = LocalRuntime()
        assert rt.access(0) == 36.0

    def test_scan_with_body_override(self):
        rt = LocalRuntime()
        assert rt.sequential_scan(0, 100, 8, body_cycles=10.0) == 1000.0

    def test_never_faults(self):
        rt = LocalRuntime()
        for i in range(100):
            rt.access(i * 4096)
        assert rt.metrics.major_faults == 0
        assert rt.metrics.remote_fetches == 0


class TestChe:
    def test_uniform_hit_rate_equals_capacity_fraction(self):
        masses = np.ones(100)
        hr = lru_hit_rate(masses, 50)
        # For uniform traffic, LRU ~= capacity/active-set.
        assert hr == pytest.approx(0.5, abs=0.1)

    def test_skew_beats_uniform(self):
        n = 1000
        uniform = np.ones(n)
        skewed = np.arange(1, n + 1, dtype=np.float64) ** -1.3
        assert lru_hit_rate(skewed, 50) > lru_hit_rate(uniform, 50)

    def test_zero_capacity(self):
        assert lru_hit_rate(np.ones(10), 0) == 0.0

    def test_capacity_exceeds_granules(self):
        assert lru_hit_rate(np.ones(10), 100) == 1.0

    def test_characteristic_time_increases_with_capacity(self):
        masses = np.arange(1, 101, dtype=np.float64) ** -1.1
        t_small = characteristic_time(masses / masses.sum(), 10)
        t_big = characteristic_time(masses / masses.sum(), 50)
        assert t_big > t_small

    def test_characteristic_time_infinite_when_everything_fits(self):
        assert characteristic_time(np.ones(4) / 4, 4) == float("inf")

    def test_per_granule_rates_shape(self):
        masses = np.ones(10)
        rates = per_granule_hit_rates(masses, 5)
        assert rates.shape == (10,)
        assert np.all((0 <= rates) & (rates <= 1))

    def test_errors(self):
        with pytest.raises(WorkloadError):
            characteristic_time(np.array([]), 1)
        with pytest.raises(WorkloadError):
            characteristic_time(np.zeros(5), 1)
        assert lru_hit_rate(np.zeros(5), 2) == 0.0
