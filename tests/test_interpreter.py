"""The IR interpreter: semantics, memory, libc, faults."""

import pytest

from repro.errors import InterpError, SegmentationFault
from repro.ir import IRBuilder, I32, I64, F64, PTR, VOID, Module
from repro.ir.values import Constant
from repro.sim.interpreter import Interpreter

from irprograms import build_sum_loop, build_write_then_sum


def run_expr(build):
    """Build main() with a single block via ``build(b)`` returning a value."""
    m = Module()
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    b.ret(build(b))
    return Interpreter(m).run("main").value


class TestArithmetic:
    def test_add_sub_mul(self):
        assert run_expr(lambda b: b.add(2, 3)) == 5
        assert run_expr(lambda b: b.sub(2, 3)) == -1
        assert run_expr(lambda b: b.mul(7, 6)) == 42

    def test_sdiv_truncates_toward_zero(self):
        assert run_expr(lambda b: b.sdiv(7, 2)) == 3
        assert run_expr(lambda b: b.sdiv(-7, 2)) == -3

    def test_srem_c_semantics(self):
        assert run_expr(lambda b: b.srem(7, 3)) == 1
        assert run_expr(lambda b: b.srem(-7, 3)) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            run_expr(lambda b: b.sdiv(1, 0))

    def test_bitwise(self):
        assert run_expr(lambda b: b.and_(0b1100, 0b1010)) == 0b1000
        assert run_expr(lambda b: b.or_(0b1100, 0b1010)) == 0b1110
        assert run_expr(lambda b: b.xor(0b1100, 0b1010)) == 0b0110
        assert run_expr(lambda b: b.shl(1, 10)) == 1024
        assert run_expr(lambda b: b.lshr(1024, 3)) == 128

    def test_overflow_wraps_at_64_bits(self):
        big = (1 << 63) - 1
        assert run_expr(lambda b: b.add(big, 1)) == -(1 << 63)

    def test_icmp_signed_unsigned(self):
        assert run_expr(lambda b: b.select(b.icmp("slt", -1, 1), Constant(I64, 10), Constant(I64, 20))) == 10
        assert run_expr(lambda b: b.select(b.icmp("ult", -1, 1), Constant(I64, 10), Constant(I64, 20))) == 20


class TestMemory:
    def test_alloca_store_load(self):
        def body(b):
            p = b.alloca(8)
            b.store(99, p)
            return b.load(I64, p)

        assert run_expr(body) == 99

    def test_i32_truncation_through_memory(self):
        def body(b):
            p = b.alloca(4)
            b.store(Constant(I32, -1), p)
            v = b.load(I32, p)
            return b.cast("sext", v, I64)

        assert run_expr(body) == -1

    def test_float_roundtrip(self):
        m = Module()
        f = m.add_function("main", F64)
        b = IRBuilder(f.add_block("entry"))
        p = b.alloca(8)
        b.store(3.25, p)
        b.ret(b.load(F64, p))
        assert Interpreter(m).run("main").value == 3.25

    def test_unmapped_access_segfaults(self):
        def body(b):
            bogus = b.inttoptr(b.add(0, 0xDEAD0000))
            return b.load(I64, bogus)

        with pytest.raises(SegmentationFault):
            run_expr(body)

    def test_gep_pointer_math(self):
        def body(b):
            p = b.call(PTR, "malloc", [Constant(I64, 64)])
            q = b.gep(p, 3, 8)
            b.store(7, q)
            return b.load(I64, b.gep(p, 3, 8))

        assert run_expr(body) == 7

    def test_stack_freed_on_return(self):
        m = Module()
        callee = m.add_function("leak", PTR)
        cb = IRBuilder(callee.add_block("entry"))
        slot = cb.alloca(8)
        cb.ret(slot)
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "leak")
        b.ret(b.load(I64, p))
        with pytest.raises(SegmentationFault):
            Interpreter(m).run("main")


class TestLibc:
    def test_malloc_free(self):
        def body(b):
            p = b.call(PTR, "malloc", [Constant(I64, 16)])
            b.store(5, p)
            v = b.load(I64, p)
            b.call(VOID, "free", [p])
            return v

        assert run_expr(body) == 5

    def test_use_after_free_segfaults(self):
        def body(b):
            p = b.call(PTR, "malloc", [Constant(I64, 16)])
            b.call(VOID, "free", [p])
            return b.load(I64, p)

        with pytest.raises(SegmentationFault):
            run_expr(body)

    def test_realloc_preserves_data(self):
        def body(b):
            p = b.call(PTR, "malloc", [Constant(I64, 8)])
            b.store(123, p)
            q = b.call(PTR, "realloc", [p, Constant(I64, 64)])
            return b.load(I64, q)

        assert run_expr(body) == 123

    def test_memset_memcpy(self):
        def body(b):
            p = b.call(PTR, "malloc", [Constant(I64, 8)])
            q = b.call(PTR, "malloc", [Constant(I64, 8)])
            b.call(PTR, "memset", [p, Constant(I64, 0xAB), Constant(I64, 8)])
            b.call(PTR, "memcpy", [q, p, Constant(I64, 8)])
            return b.load(I64, q)

        assert run_expr(body) == int.from_bytes(b"\xab" * 8, "little", signed=True)

    def test_double_free_raises(self):
        def body(b):
            p = b.call(PTR, "malloc", [Constant(I64, 8)])
            b.call(VOID, "free", [p])
            b.call(VOID, "free", [p])
            return Constant(I64, 0)

        with pytest.raises(InterpError):
            run_expr(body)

    def test_print_output_captured(self):
        m = Module()
        f = m.add_function("main", VOID)
        b = IRBuilder(f.add_block("entry"))
        b.call(VOID, "print_i64", [Constant(I64, 42)])
        b.ret()
        result = Interpreter(m).run("main")
        assert result.output == ["42"]

    def test_unresolved_call(self):
        m = Module()
        f = m.add_function("main", VOID)
        b = IRBuilder(f.add_block("entry"))
        b.call(VOID, "tfm_not_registered")
        b.ret()
        with pytest.raises(InterpError, match="unresolved"):
            Interpreter(m).run("main")


class TestControlFlow:
    def test_sum_loop(self):
        m = build_write_then_sum(50)
        assert Interpreter(m).run("main").value == 50 * 49 // 2

    def test_loop_over_zeroed_heap(self):
        m = build_sum_loop(20)
        assert Interpreter(m).run("main").value == 0

    def test_max_steps_guard(self):
        m = build_sum_loop(10_000)
        with pytest.raises(InterpError, match="max_steps"):
            Interpreter(m, max_steps=100).run("main")

    def test_function_calls_with_args(self):
        m = Module()
        sq = m.add_function("square", I64, [I64], ["x"])
        sb = IRBuilder(sq.add_block("entry"))
        sb.ret(sb.mul(sq.args[0], sq.args[0]))
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.call(I64, "square", [Constant(I64, 9)]))
        assert Interpreter(m).run("main").value == 81

    def test_wrong_arity(self):
        m = Module()
        g = m.add_function("g", I64, [I64])
        gb = IRBuilder(g.add_block("entry"))
        gb.ret(g.args[0])
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.call(I64, "g", []))
        with pytest.raises(InterpError, match="expects"):
            Interpreter(m).run("main")

    def test_block_hook_sees_every_block(self):
        m = build_sum_loop(5)
        seen = []
        Interpreter(m, block_hook=lambda f, name: seen.append(name)).run("main")
        assert seen.count("body") == 5
        assert seen.count("header") == 6
        assert seen[0] == "entry"

    def test_globals_mapped(self):
        m = Module()
        m.add_global("table", 64)
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        g = b.call(PTR, "global_addr.table")
        b.store(17, g)
        b.ret(b.load(I64, g))
        assert Interpreter(m).run("main").value == 17
