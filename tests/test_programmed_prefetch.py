"""ProgrammedPrefetchPass: exact schedules for oblivious chunked loops."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.aifm.prefetcher import ProgrammedSchedule
from repro.compiler import (
    ChunkingPolicy,
    CompilerConfig,
    TrackFMCompiler,
)
from repro.compiler.programmed_prefetch import PREFETCH_SCHED
from repro.ir.instructions import Call
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime

from irprograms import build_sum_loop, build_write_then_sum


def compile_module(module, programmed, object_size=256):
    cfg = CompilerConfig(
        object_size=object_size,
        chunking=ChunkingPolicy.ALL,
        enable_programmed_prefetch=programmed,
    )
    return TrackFMCompiler(cfg).compile(module)


def run_module(module, object_size=256, local_objects=16):
    pool = PoolConfig(
        object_size=object_size,
        local_memory=local_objects * object_size,
        heap_size=1 << 20,
    )
    runtime = TrackFMRuntime(pool)
    result = TrackFMProgram(module, runtime).run()
    return result, runtime.metrics


def sched_calls(module):
    return [
        i
        for i in module.get_function("main").instructions()
        if isinstance(i, Call) and i.callee == PREFETCH_SCHED
    ]


class TestSchedule:
    def test_prime_issues_distance_targets(self):
        s = ProgrammedSchedule(objects=[3, 4, 5, 6, 7], distance=2)
        assert s.prime() == [3, 4]
        assert s.prime() == []  # idempotent

    def test_observe_keeps_window_ahead(self):
        s = ProgrammedSchedule(objects=[3, 4, 5, 6, 7], distance=2)
        s.prime()
        assert s.observe(3) == [5]
        assert s.observe(4) == [6]
        assert s.observe(4) == []  # same object: no progress
        assert s.observe(5) == [7]
        assert s.observe(6) == []  # schedule exhausted
        assert s.observe(99) == []  # off-schedule object: no issue

    def test_short_schedule_primes_everything(self):
        s = ProgrammedSchedule(objects=[1, 2], distance=8)
        assert s.prime() == [1, 2]
        assert s.observe(1) == []


class TestPassEmission:
    def test_emits_on_oblivious_loop(self):
        m = build_sum_loop(n=512)
        result = compile_module(m, programmed=True)
        calls = sched_calls(m)
        assert len(calls) == 1
        assert result.ctx.get_stat("programmed-prefetch.schedules_emitted") == 1
        # base, offset, stride, trips, distance, stream
        _, offset, stride, trips, distance, stream = calls[0].args
        assert int(offset.value) == 0
        assert int(stride.value) == 8
        assert int(trips.value) == 512
        assert int(distance.value) >= 1

    def test_emits_one_schedule_per_stream(self):
        m = build_write_then_sum(n=512)
        compile_module(m, programmed=True)
        calls = sched_calls(m)
        assert len(calls) == 2
        streams = sorted(int(c.args[5].value) for c in calls)
        assert streams == [0, 1]

    def test_disabled_config_is_bit_identical(self):
        m_off = build_sum_loop(n=512)
        m_default = build_sum_loop(n=512)
        compile_module(m_off, programmed=False)
        cfg = CompilerConfig(object_size=256, chunking=ChunkingPolicy.ALL)
        TrackFMCompiler(cfg).compile(m_default)
        assert str(m_off) == str(m_default)
        assert not sched_calls(m_off)

    def test_no_schedule_for_opaque_stream(self):
        from repro.trace.drivers import _build_hashmap_module

        m = _build_hashmap_module(7)
        cfg = CompilerConfig(
            object_size=256,
            chunking=ChunkingPolicy.ALL,
            enable_programmed_prefetch=True,
        )
        TrackFMCompiler(cfg).compile(m)
        for func in m.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, Call) and inst.callee == PREFETCH_SCHED:
                    # Only the oblivious write loop may be scheduled;
                    # the hashed read loop must not be.
                    assert inst.parent is not None
                    assert "rh" not in inst.parent.name


class TestEndToEnd:
    def test_programmed_beats_stride_on_demand_misses(self):
        m_stride = build_sum_loop(n=512)
        m_prog = build_sum_loop(n=512)
        compile_module(m_stride, programmed=False)
        compile_module(m_prog, programmed=True)
        r0, metrics_stride = run_module(m_stride)
        r1, metrics_prog = run_module(m_prog)
        assert r0.value == r1.value
        # The stride prefetcher burns learning misses; the programmed
        # schedule primes before the first iteration.
        assert metrics_prog.remote_fetches < metrics_stride.remote_fetches
        assert metrics_prog.remote_fetches == 0
        assert metrics_prog.prefetches_useful >= metrics_stride.prefetches_useful
        assert metrics_prog.cycles < metrics_stride.cycles

    def test_semantics_preserved_on_write_then_sum(self):
        m_stride = build_write_then_sum(n=300)
        m_prog = build_write_then_sum(n=300)
        compile_module(m_stride, programmed=False)
        compile_module(m_prog, programmed=True)
        r0, _ = run_module(m_stride)
        r1, metrics = run_module(m_prog)
        assert r0.value == r1.value == sum(range(300))
        assert metrics.remote_fetches == 0

    def test_total_fetched_bytes_not_inflated(self):
        # The schedule is exact: it fetches the same objects a demand
        # run would, just earlier.
        m_prog = build_sum_loop(n=512)
        compile_module(m_prog, programmed=True)
        _, metrics = run_module(m_prog)
        assert metrics.bytes_fetched == 512 * 8  # 16 objects x 256B

    def test_runtime_install_clips_to_allocation(self):
        pool = PoolConfig(object_size=256, local_memory=4096, heap_size=1 << 20)
        rt = TrackFMRuntime(pool)
        ptr = rt.tfm_malloc(1024)  # objects 0..3
        # Schedule runs far past the allocation: targets must be clipped.
        rt.install_prefetch_schedule(
            stream=0, ptr=ptr, offset=0, stride=256, count=64, distance=64
        )
        sched = rt._psched[0]
        assert sched.objects == [0, 1, 2, 3]

    def test_chunk_end_drops_schedule(self):
        pool = PoolConfig(object_size=256, local_memory=4096, heap_size=1 << 20)
        rt = TrackFMRuntime(pool)
        ptr = rt.tfm_malloc(1024)
        rt.chunk_begin(0)
        rt.install_prefetch_schedule(
            stream=0, ptr=ptr, offset=0, stride=8, count=128, distance=4
        )
        assert 0 in rt._psched
        rt.chunk_end(0)
        assert 0 not in rt._psched


class TestCostModelDistance:
    def test_distance_scales_with_latency(self):
        from repro.compiler.cost_model import ChunkingCostModel

        model = ChunkingCostModel(object_size=256)
        near = model.prefetch_issue_distance(8, fetch_cycles=100)
        far = model.prefetch_issue_distance(8, fetch_cycles=100_000)
        assert 1 <= near <= far <= 64

    def test_denser_objects_need_less_distance(self):
        from repro.compiler.cost_model import ChunkingCostModel

        model = ChunkingCostModel(object_size=4096)
        dense = model.prefetch_issue_distance(8)  # 512 elems/object
        sparse = model.prefetch_issue_distance(2048)  # 2 elems/object
        assert dense <= sparse
