"""Workloads: dataframe, analytics, memcached, NAS."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import KB, MB
from repro.workloads.analytics import (
    AnalyticsChunking,
    AnalyticsWorkload,
    System,
    build_taxi_frame,
    run_taxi_pipeline,
)
from repro.workloads.dataframe import AccessPattern, Column, DataFrame
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.nas import NAS_SUITE, NasModel, build_nas_ir, nas_by_name


class TestDataFrame:
    def make(self, n=1000):
        rng = np.random.default_rng(0)
        return DataFrame(
            [
                Column("a", n, 8, rng.integers(0, 100, n).astype(np.float64)),
                Column("b", n, 8, rng.integers(0, 10, n).astype(np.int64)),
            ]
        )

    def test_scan_sum_value_and_plan(self):
        df = self.make()
        total = df.scan_sum("a")
        assert total == pytest.approx(float(np.sum(df.column("a").values)))
        plan = df.plans[-1]
        assert plan.pattern is AccessPattern.SEQUENTIAL
        assert plan.n_elems == 1000

    def test_filter_count(self):
        df = self.make()
        count = df.filter_count("a", lambda v: v > 50)
        assert count == int(np.count_nonzero(df.column("a").values > 50))

    def test_combine_creates_column(self):
        df = self.make()
        df.combine("a", "b", "c", lambda x, y: x + y)
        assert "c" in df.column_names()
        assert df.column("c").values[0] == df.column("a").values[0] + df.column("b").values[0]
        # Three plans: two reads + one write.
        writes = [p for p in df.plans if p.is_write]
        assert len(writes) == 1

    def test_groupby_agg_values(self):
        df = self.make()
        out = df.groupby_agg("b", "a", n_groups=10, agg="sum")
        assert len(out) == 10
        keys = df.column("b").values.astype(np.int64) % 10
        expected = float(np.sum(df.column("a").values[keys == 3]))
        assert out[3] == pytest.approx(expected)

    def test_groupby_logs_short_loops_plan(self):
        df = self.make()
        df.groupby_agg("b", "a", n_groups=50)
        short = [p for p in df.plans if p.pattern is AccessPattern.SHORT_LOOPS]
        assert len(short) == 1
        assert short[0].entries == 50
        assert short[0].iterations_per_entry == pytest.approx(1000 / 50)

    def test_agg_variants(self):
        df = self.make()
        assert df.groupby_agg("b", "a", 5, agg="mean")
        assert df.groupby_agg("b", "a", 5, agg="max")
        with pytest.raises(WorkloadError):
            df.groupby_agg("b", "a", 5, agg="median")

    def test_mismatched_column_length_rejected(self):
        df = self.make()
        with pytest.raises(WorkloadError):
            df.add_column(Column("short", 10, 8))

    def test_shape_only_columns(self):
        df = DataFrame([Column("x", 100, 8)])
        assert df.scan_sum("x") == 0.0  # no values: shape-only
        assert df.plans

    def test_reset_plans(self):
        df = self.make()
        df.scan_sum("a")
        plans = df.reset_plans()
        assert plans and df.plans == []


class TestAnalytics:
    def make(self):
        return AnalyticsWorkload(working_set=31 * MB)

    def test_taxi_pipeline_produces_both_patterns(self):
        frame = build_taxi_frame(10_000, with_values=True)
        plans = run_taxi_pipeline(frame)
        patterns = {p.pattern for p in plans}
        assert patterns == {AccessPattern.SEQUENTIAL, AccessPattern.SHORT_LOOPS}

    def test_system_ordering_at_low_memory(self):
        # Fig. 14: AIFM <= TrackFM << Fastswap.
        wl = self.make()
        local = wl.working_set // 10
        t, _ = wl.run(System.TRACKFM, local)
        f, _ = wl.run(System.FASTSWAP, local)
        a, _ = wl.run(System.AIFM, local)
        l, _ = wl.run(System.LOCAL, local)
        assert l < a < t < f

    def test_trackfm_within_25_percent_of_aifm(self):
        wl = self.make()
        local = wl.working_set // 10
        t, _ = wl.run(System.TRACKFM, local)
        a, _ = wl.run(System.AIFM, local)
        assert t / a < 1.25

    def test_chunking_policy_ordering(self):
        # Fig. 15: filtered < baseline < all-loops (at moderate memory).
        wl = self.make()
        local = wl.working_set // 2
        base, _ = wl.run_trackfm(local, AnalyticsChunking.BASELINE)
        alll, _ = wl.run_trackfm(local, AnalyticsChunking.ALL_LOOPS)
        filt, _ = wl.run_trackfm(local, AnalyticsChunking.HIGH_DENSITY)
        assert filt < base < alll

    def test_fastswap_converges_with_memory(self):
        wl = self.make()
        low, _ = wl.run_fastswap(wl.working_set // 10)
        high, _ = wl.run_fastswap(wl.working_set)
        assert high < low / 3

    def test_fault_counts_exceed_guard_counts(self):
        # Fig. 14b: Fastswap faults > TrackFM slow guards.
        wl = self.make()
        local = wl.working_set // 10
        _, tm = wl.run_trackfm(local)
        _, fm = wl.run_fastswap(local)
        assert fm.major_faults > tm.slow_path_guards

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AnalyticsWorkload(working_set=0)


class TestMemcached:
    def make(self, skew=1.05):
        return MemcachedWorkload(
            working_set=12 * MB, n_keys=100_000, n_ops=50_000, skew=skew
        )

    def test_trackfm_beats_fastswap_at_low_skew(self):
        wl = self.make(skew=1.0)
        local = 1 * MB
        tfm = wl.run_trackfm(64, local)
        fsw = wl.run_fastswap(local)
        assert tfm.cycles < fsw.cycles

    def test_gap_narrows_with_skew(self):
        # Fig. 16a: Fastswap converges as temporal locality rises.
        def ratio(skew):
            wl = self.make(skew=skew)
            return wl.run_fastswap(1 * MB).cycles / wl.run_trackfm(64, 1 * MB).cycles

        assert ratio(1.0) > ratio(1.3)

    def test_io_amplification_gap(self):
        # Fig. 16c: Fastswap moves far more data.
        wl = self.make(skew=1.0)
        tfm = wl.run_trackfm(64, 1 * MB)
        fsw = wl.run_fastswap(1 * MB)
        assert fsw.metrics.total_bytes_transferred > 20 * tfm.metrics.total_bytes_transferred

    def test_all_local_fastest(self):
        wl = self.make()
        assert wl.run_local().cycles < wl.run_trackfm(64, 1 * MB).cycles

    def test_slab_layout_groups_size_classes(self):
        wl = self.make()
        sizes = wl._item_sizes
        offsets = wl._item_offsets
        for cls in np.unique(sizes):
            cls_offsets = np.sort(offsets[sizes == cls])
            assert np.all(np.diff(cls_offsets) == cls)

    def test_throughput_unit(self):
        res = self.make().run_local()
        assert 0 < res.throughput_kops() < 1e6

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MemcachedWorkload(working_set=0, n_keys=1, n_ops=1)


class TestNas:
    def test_suite_matches_table3(self):
        names = [b.name for b in NAS_SUITE]
        assert names == ["CG", "FT", "IS", "MG", "SP"]
        ft = nas_by_name("FT")
        assert ft.paper_memory_gb == 6
        assert ft.klass == "C"
        assert nas_by_name("IS").paper_memory_gb == 34

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            nas_by_name("LU")

    def test_trackfm_wins_except_ft(self):
        # Fig. 17a at 25% local memory.
        for bench in NAS_SUITE:
            ws = bench.working_set(1024)
            model = NasModel(bench, working_set=ws)
            local = ws // 4
            tfm = model.slowdown("trackfm", local)
            fsw = model.slowdown("fastswap", local)
            if bench.name == "FT":
                assert tfm > fsw
            else:
                assert tfm < fsw

    def test_o1_rescues_ft(self):
        bench = nas_by_name("FT")
        ws = bench.working_set(1024)
        model = NasModel(bench, working_set=ws)
        assert model.slowdown("trackfm", ws // 4, o1=True) < model.slowdown(
            "trackfm", ws // 4, o1=False
        ) / 3

    def test_unknown_system(self):
        model = NasModel(nas_by_name("CG"), working_set=1 * MB)
        with pytest.raises(WorkloadError):
            model.slowdown("bogus", 1 * MB)

    def test_ir_kernels_execute(self):
        from repro.sim.interpreter import Interpreter

        for name in ("FT", "SP", "CG"):
            m = build_nas_ir(name, n=16)
            result = Interpreter(m).run("main")
            assert result.value == 0  # zeroed heap sums to zero

    def test_ir_kernels_redundancy_ordering(self):
        ft = build_nas_ir("FT", n=8).memory_access_count()
        sp = build_nas_ir("SP", n=8).memory_access_count()
        cg = build_nas_ir("CG", n=8).memory_access_count()
        assert ft > sp > cg
