"""Pointer-chase prefetching (§5 recursive-data-structure extension)."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.compiler.chase_prefetch import CHASED_MD, ChasePrefetchPass, _match_chase
from repro.compiler.guard_analysis import GuardAnalysisPass
from repro.compiler.pass_manager import PassContext, PassManager
from repro.analysis.loops import find_loops
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.instructions import Call
from repro.ir.values import Constant, null_ptr
from repro.machine.cache import AlwaysHitCache
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

NODE_BYTES = 16  # {i64 value, ptr next}


def build_list_walk(n_nodes: int = 256) -> Module:
    """Build a linked list (one node per iteration) and walk it.

    Nodes are 16 bytes {value, next}; the list is laid out in
    allocation order, one node per 16 bytes, so a walk crosses a 4 KB
    object every 256 nodes.  Returns sum of node values.
    """
    m = Module("listwalk")
    f = m.add_function("main", I64)
    entry, bh, bb, mid, wh, wb, done = (
        f.add_block(x) for x in ("entry", "bh", "bb", "mid", "wh", "wb", "done")
    )
    b = IRBuilder(entry)
    base = b.call(PTR, "malloc", [Constant(I64, n_nodes * NODE_BYTES)], name="base")
    b.br(bh)

    # Build loop: node[i].value = i; node[i].next = &node[i+1] (or null).
    b.set_block(bh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, n_nodes), bb, mid)
    b.set_block(bb)
    node = b.gep(base, i, NODE_BYTES, name="node")
    b.store(i, node)
    i2 = b.add(i, 1, name="i2")
    is_last = b.icmp("eq", i2, n_nodes)
    succ = b.gep(base, i2, NODE_BYTES)
    nxt = b.select(is_last, null_ptr(), succ)
    b.store(nxt, b.gep(node, 1, 8))
    b.br(bh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, bb)

    b.set_block(mid)
    b.br(wh)

    # Walk loop: while (p != null) { sum += p->value; p = p->next; }
    b.set_block(wh)
    p = b.phi(PTR, name="p")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("ne", p, null_ptr()), wb, done)
    b.set_block(wb)
    v = b.load(I64, p, name="v")
    s2 = b.add(s, v, name="s2")
    nextp = b.load(PTR, b.gep(p, 1, 8), name="nextp")
    b.br(wh)
    p.add_incoming(base, mid)
    p.add_incoming(nextp, wb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, wb)

    b.set_block(done)
    b.ret(s)
    return m


def make_runtime():
    # Room for the current object, the prefetched next one, and slack:
    # tighter budgets make the evacuator race the walk (as on real AIFM,
    # where the evacuator needs headroom to be effective).
    return TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=1 * MB),
        cache=AlwaysHitCache(),
    )


class TestPatternDetection:
    def test_chase_recurrence_found(self):
        m = build_list_walk(64)
        f = m.get_function("main")
        loops = find_loops(f)
        walk = next(l for l in loops if l.header.name == "wh")
        patterns = _match_chase(walk)
        assert len(patterns) == 1
        assert patterns[0].next_offset == 8
        assert patterns[0].phi.name == "p"

    def test_build_loop_not_matched(self):
        m = build_list_walk(64)
        f = m.get_function("main")
        loops = find_loops(f)
        build = next(l for l in loops if l.header.name == "bh")
        assert _match_chase(build) == []

    def test_pass_rewrites_walk_accesses(self):
        m = build_list_walk(64)
        ctx = PassContext(config=CompilerConfig())
        PassManager([GuardAnalysisPass(), ChasePrefetchPass()]).run(m, ctx)
        f = m.get_function("main")
        chases = [
            inst
            for inst in f.instructions()
            if isinstance(inst, Call) and inst.callee.startswith("tfm_chase_deref")
        ]
        # The value load and the next-pointer load are both rewritten.
        assert len(chases) == 2
        assert ctx.get_stat("chase-prefetch.accesses_rewritten") == 2
        verify_module(m)


class TestEndToEnd:
    def expected(self, n):
        return n * (n - 1) // 2

    def compile_run(self, enable_chase, n_nodes=4096):
        m = build_list_walk(n_nodes)
        config = CompilerConfig(
            chunking=ChunkingPolicy.NONE, enable_chase_prefetch=enable_chase
        )
        compiled = TrackFMCompiler(config).compile(m)
        rt = make_runtime()
        value = TrackFMProgram(compiled.module, rt).run("main").value
        return value, rt.metrics

    def test_semantics_preserved(self):
        plain = Interpreter(build_list_walk(128)).run("main").value
        assert plain == self.expected(128)
        chased, _ = self.compile_run(True, n_nodes=1024)
        unchased, _ = self.compile_run(False, n_nodes=1024)
        assert chased == unchased == self.expected(1024)

    def test_chase_prefetch_speeds_up_cold_walk(self):
        _, with_chase = self.compile_run(True)
        _, without = self.compile_run(False)
        assert with_chase.cycles < without.cycles
        assert with_chase.prefetches_issued > 0
        # Prefetched objects turn slow paths into fast paths.
        from repro.machine.costs import GuardKind

        assert with_chase.guard_count(GuardKind.FAST) > without.guard_count(
            GuardKind.FAST
        )

    def test_null_terminated_walk_handles_custody_miss(self):
        # The final iteration's next pointer is null: the chase deref
        # must pass it through without prefetching garbage.
        value, _metrics = self.compile_run(True, n_nodes=1024)
        assert value == self.expected(1024)
