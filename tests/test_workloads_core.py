"""Workloads: zipf, STREAM, hashmap, k-means."""

import numpy as np
import pytest

from repro.aifm.pool import PoolConfig
from repro.aifm.runtime import AIFMRuntime
from repro.errors import WorkloadError
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.sim.local import LocalRuntime
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import KB, MB
from repro.workloads.hashmap import HashmapWorkload
from repro.workloads.kmeans import ChunkMode, KMeansWorkload
from repro.workloads.stream import StreamKernel, StreamWorkload
from repro.workloads.zipf import ZipfGenerator


class TestZipf:
    def test_determinism(self):
        a = ZipfGenerator(1000, 1.02, seed=1).sample(100)
        b = ZipfGenerator(1000, 1.02, seed=1).sample(100)
        assert np.array_equal(a, b)

    def test_range(self):
        keys = ZipfGenerator(100, 1.1).sample(10_000)
        assert keys.min() >= 0
        assert keys.max() < 100

    def test_skew_concentrates_mass(self):
        low = ZipfGenerator(10_000, 1.01)
        high = ZipfGenerator(10_000, 1.5)
        assert high.hot_fraction(10) > low.hot_fraction(10)

    def test_head_dominates(self):
        gen = ZipfGenerator(100_000, 1.2, seed=3)
        keys = gen.sample(50_000)
        head = np.count_nonzero(keys < 1000) / len(keys)
        assert head > 0.5

    def test_expected_hit_rate_monotone(self):
        gen = ZipfGenerator(10_000, 1.05)
        rates = [gen.expected_hit_rate(k) for k in (10, 100, 1000, 10_000)]
        assert rates == sorted(rates)
        assert rates[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfGenerator(10, -1.0)
        with pytest.raises(WorkloadError):
            ZipfGenerator(10, 1.0).sample(0)


def tfm_runtime(working_set, frac, object_size=4 * KB):
    return TrackFMRuntime(
        PoolConfig(
            object_size=object_size,
            local_memory=max(object_size, int(working_set * frac)),
            heap_size=2 * working_set,
        )
    )


class TestStream:
    def test_local_baseline_cheapest(self):
        ws = 4 * MB
        wl = StreamWorkload(ws)
        local = wl.run_local(LocalRuntime())
        tfm = wl.run_trackfm(tfm_runtime(ws, 0.5), GuardStrategy.CHUNKED_PREFETCH)
        assert local < tfm

    def test_chunking_beats_naive(self):
        ws = 4 * MB
        naive = StreamWorkload(ws).run_trackfm(tfm_runtime(ws, 0.5), GuardStrategy.NAIVE)
        chunked = StreamWorkload(ws).run_trackfm(tfm_runtime(ws, 0.5), GuardStrategy.CHUNKED)
        assert 1.2 < naive / chunked < 2.5  # Fig. 7's band

    def test_prefetch_helps_more_at_low_memory(self):
        ws = 4 * MB

        def speedup(frac):
            plain = StreamWorkload(ws).run_trackfm(tfm_runtime(ws, frac), GuardStrategy.CHUNKED)
            pref = StreamWorkload(ws).run_trackfm(
                tfm_runtime(ws, frac), GuardStrategy.CHUNKED_PREFETCH
            )
            return plain / pref

        assert speedup(0.1) > speedup(0.9)  # Fig. 11's trend

    def test_trackfm_beats_fastswap(self):
        ws = 4 * MB
        tfm = StreamWorkload(ws).run_trackfm(
            tfm_runtime(ws, 0.25), GuardStrategy.CHUNKED_PREFETCH
        )
        fs = StreamWorkload(ws).run_fastswap(
            FastswapRuntime(FastswapConfig(local_memory=ws // 4, heap_size=2 * ws))
        )
        assert fs / tfm > 1.5  # Fig. 12's direction

    def test_copy_touches_twice_the_data(self):
        ws = 4 * MB
        s = StreamWorkload(ws, kernel=StreamKernel.SUM)
        c = StreamWorkload(ws, kernel=StreamKernel.COPY)
        assert c.elems_per_array == s.elems_per_array // 2

    def test_bandwidth_metric(self):
        wl = StreamWorkload(4 * MB)
        assert wl.bandwidth_mb_per_s(0) == 0.0
        bw = wl.bandwidth_mb_per_s(2.4e9)  # one second of cycles
        expected = wl.passes * wl.elems_per_array * wl.elem_size / 1e6
        assert bw == pytest.approx(expected)

    def test_aifm_runs(self):
        ws = 4 * MB
        rt = AIFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=ws // 2, heap_size=2 * ws)
        )
        cycles = StreamWorkload(ws).run_aifm(rt)
        assert cycles > 0
        assert rt.metrics.accesses > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StreamWorkload(0)
        with pytest.raises(WorkloadError):
            StreamWorkload(1 * MB, passes=0)


class TestHashmap:
    def make(self, ws=2 * MB, lookups=10_000):
        return HashmapWorkload(working_set=ws, n_lookups=lookups, trace_bytes=256 * KB)

    def test_smaller_objects_higher_throughput(self):
        # Fig. 9's claim at constrained local memory.
        wl = self.make()
        local = wl.working_set // 4
        t_small = wl.run_trackfm(256, local).throughput_mops()
        t_big = wl.run_trackfm(4 * KB, local).throughput_mops()
        assert t_small > t_big

    def test_trackfm_moves_less_data_than_fastswap(self):
        wl = self.make()
        local = wl.working_set // 4
        tfm = wl.run_trackfm(64, local)
        fsw = wl.run_fastswap(local)
        assert tfm.metrics.total_bytes_transferred < fsw.metrics.total_bytes_transferred / 10

    def test_trackfm_faster_than_fastswap(self):
        wl = self.make()
        local = wl.working_set // 4
        assert wl.run_trackfm(64, local).cycles < wl.run_fastswap(local).cycles

    def test_hit_rate_monotone_in_cache_size(self):
        wl = self.make()
        rates = [wl.hit_rate(64, c) for c in (10, 100, 1000, 10_000)]
        assert rates == sorted(rates)

    def test_local_run_has_no_faults(self):
        res = self.make().run_local()
        assert res.metrics.total_guards == 0
        assert res.metrics.major_faults == 0

    def test_more_local_memory_faster(self):
        wl = self.make()
        slow = wl.run_trackfm(256, wl.working_set // 20)
        fast = wl.run_trackfm(256, wl.working_set // 2)
        assert fast.cycles < slow.cycles

    def test_amplification_metric(self):
        wl = self.make()
        res = wl.run_fastswap(wl.working_set // 10)
        assert res.amplification(wl.working_set) > 1.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HashmapWorkload(working_set=0, n_lookups=10)


class TestKMeans:
    def make(self):
        return KMeansWorkload(n_points=20_000)

    def test_all_loops_slows_down(self):
        wl = self.make()
        s = wl.speedup_vs_baseline(ChunkMode.ALL_LOOPS, 4 * KB, wl.working_set // 4)
        assert s < 0.5  # the ~4x slowdown of Fig. 8

    def test_filtered_speeds_up(self):
        wl = self.make()
        s = wl.speedup_vs_baseline(ChunkMode.HIGH_DENSITY, 4 * KB, wl.working_set // 4)
        assert 1.5 < s < 3.5  # the ~2.5x speedup of Fig. 8

    def test_baseline_speedup_is_one(self):
        wl = self.make()
        assert wl.speedup_vs_baseline(ChunkMode.BASELINE, 4 * KB, wl.working_set) == 1.0

    def test_metrics_populated(self):
        wl = self.make()
        _, metrics = wl.run(ChunkMode.HIGH_DENSITY, 4 * KB, wl.working_set // 4)
        assert metrics.accesses == wl.accesses_per_iteration() * wl.iterations
        assert metrics.remote_fetches > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            KMeansWorkload(n_points=0)
