"""Sentence-level claims from the paper's prose, checked at paper scale.

Beyond the figures, the paper makes quantitative claims inline; the
closed-form accounting lets us check them at the *unscaled* sizes.
"""

import pytest

from repro.aifm.pool import PoolConfig
from repro.machine.costs import AccessKind, DEFAULT_COSTS, GuardKind
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import GB, KB, MB
from repro.workloads.stream import StreamKernel, StreamWorkload


class TestSection41GuardCounts:
    """§4.1: STREAM with a 9 GB working set "produces up to 56 million
    slow-path guards and ~10 billion fast-path guards"."""

    def test_stream_9gb_guard_magnitudes(self):
        working_set = 9 * GB
        runtime = TrackFMRuntime(
            PoolConfig(
                object_size=4 * KB,
                local_memory=working_set // 4,
                heap_size=2 * working_set,
            )
        )
        # STREAM's full four-kernel run over 4-byte elements, naive.
        wl = StreamWorkload(working_set, kernel=StreamKernel.SUM, passes=4)
        wl.run_trackfm(runtime, GuardStrategy.NAIVE)
        for kernel in (StreamKernel.COPY, StreamKernel.SCALE, StreamKernel.TRIAD):
            StreamWorkload(working_set, kernel=kernel, passes=4).run_trackfm(
                runtime, GuardStrategy.NAIVE
            )
        fast = runtime.metrics.guard_count(GuardKind.FAST)
        slow = runtime.metrics.guard_count(GuardKind.SLOW)
        # "~10 billion fast-path guards"
        assert 5e9 < fast < 5e10
        # "up to 56 million slow-path guards"
        assert 5e6 < slow < 1e8

    def test_chunking_eliminates_sum_fast_guards(self):
        """§4.2: for Sum "we reduce the fast-path guard count from ~1.6
        billion to zero"."""
        working_set = 12 * GB
        runtime = TrackFMRuntime(
            PoolConfig(
                object_size=4 * KB,
                local_memory=working_set // 4,
                heap_size=2 * working_set,
            )
        )
        wl = StreamWorkload(working_set, kernel=StreamKernel.SUM, passes=1)
        wl.run_trackfm(runtime, GuardStrategy.NAIVE)
        naive_fast = runtime.metrics.guard_count(GuardKind.FAST)
        assert 1e9 < naive_fast < 1e10  # ~1.6 billion per pass ballpark

        chunked_rt = TrackFMRuntime(
            PoolConfig(
                object_size=4 * KB,
                local_memory=working_set // 4,
                heap_size=2 * working_set,
            )
        )
        StreamWorkload(working_set, kernel=StreamKernel.SUM, passes=1).run_trackfm(
            chunked_rt, GuardStrategy.CHUNKED
        )
        assert chunked_rt.metrics.guard_count(GuardKind.FAST) == 0


class TestSection32StateTable:
    """§3.2: "if we have a 32 GB remote heap ... we would need 2^23
    entries in the table ... thus consuming 64 MB for the full table"."""

    def test_exact_numbers(self):
        from repro.aifm.pool import ObjectPool
        from repro.trackfm.state_table import ObjectStateTable

        pool = ObjectPool(
            PoolConfig(object_size=4 * KB, local_memory=1 * MB, heap_size=32 * GB)
        )
        table = ObjectStateTable(pool)
        assert table.num_entries == 2**23
        assert table.size_bytes == 64 * MB


class TestSection33InstructionCounts:
    """§3.3's instruction-count anatomy of the guard."""

    def test_fast_path_14_instructions(self):
        assert DEFAULT_COSTS.fast_guard_instrs == 14

    def test_boundary_check_3_instructions(self):
        assert DEFAULT_COSTS.boundary_check_instrs == 3

    def test_slow_path_at_least_144_instructions(self):
        assert DEFAULT_COSTS.slow_guard_instrs >= 144

    def test_custody_check_roughly_four_to_six(self):
        assert 4 <= DEFAULT_COSTS.custody_check_instrs <= 6


class TestTable2DerivedClaims:
    """§4.1: "Handling a page fault in the kernel incurs 2.9x the cost
    of handling a slow-path guard in TrackFM when the data is local"."""

    def test_kernel_vs_guard_ratio(self):
        kernel = DEFAULT_COSTS.fastswap_fault(AccessKind.READ, remote=False)
        guard = DEFAULT_COSTS.slow_guard_local(AccessKind.READ, cached=False)
        assert kernel / guard == pytest.approx(2.9, rel=0.02)

    def test_remote_parity(self):
        """Remote costs are near parity (both ~34-35K): "even with this
        high-performance networking layer, Fastswap still provides
        little benefit over our remote slow-path guard"."""
        from repro.net.backends import make_tcp_backend

        tfm_remote = (
            DEFAULT_COSTS.slow_guard_local(AccessKind.READ, cached=False)
            + make_tcp_backend().fetch_cost(4 * KB)
        )
        fs_remote = DEFAULT_COSTS.fastswap_fault(AccessKind.READ, remote=True)
        assert tfm_remote / fs_remote == pytest.approx(1.0, rel=0.1)


class TestSection42KmeansPointers:
    """§4.2: k-means "chunking optimization detects 103 array pointers,
    and after applying the cost model only 27 were optimized" — we check
    the *behavioural* consequence: the model must reject the short
    nested loops and accept the long scans."""

    def test_cost_model_split(self):
        from repro.compiler.cost_model import ChunkingCostModel, LoopShape

        model = ChunkingCostModel(4 * KB)
        # Inner distance loop: 8 coordinates, entered once per point.
        inner = LoopShape(iterations_per_entry=8, elem_size=4, entries=30_000_000)
        # Outer point sweep: millions of iterations, one entry.
        outer = LoopShape(iterations_per_entry=30_000_000, elem_size=32)
        assert not model.should_chunk(inner)
        assert model.should_chunk(outer)
