"""Golden-trace snapshot tests: the event *shape* must not drift.

Each golden file in ``tests/goldens/`` holds the normalized event
stream (:func:`repro.trace.normalize_events`: categories, names,
counts, run-length-encoded ordering — no timestamps, durations or
latencies) of one ``(workload, runtime, seed)`` trace, plus the
workload's computed value.  A behaviour change in the compiler or a
runtime shows up here as a sequence diff before it shows up in any
aggregate number.

When a change is *intended*, regenerate the files and review the diff
like any other code change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.trace import normalize_events, run_traced

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The snapshotted configurations: both workloads under the two
#: runtimes with the richest event vocabulary, at fixed seeds.
CASES = [
    ("stream", "trackfm", 0),
    ("hashmap", "trackfm", 0),
    ("stream", "fastswap", 0),
    ("hashmap", "aifm", 0),
]


def _golden_path(workload: str, runtime: str, seed: int) -> Path:
    return GOLDEN_DIR / f"{workload}_{runtime}_seed{seed}.json"


def _observe(workload: str, runtime: str, seed: int) -> dict:
    result = run_traced(workload, runtime, seed=seed)
    shape = normalize_events(result.tracer.events)
    return {
        "workload": workload,
        "runtime": runtime,
        "seed": seed,
        "value": result.value,
        **shape,
    }


class TestGoldenTraces:
    @pytest.mark.parametrize("workload,runtime,seed", CASES)
    def test_trace_shape_matches_golden(self, workload, runtime, seed, update_goldens):
        observed = _observe(workload, runtime, seed)
        path = _golden_path(workload, runtime, seed)
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(observed, indent=2) + "\n")
            pytest.skip(f"golden rewritten: {path}")
        assert path.exists(), (
            f"missing golden {path}; generate it with "
            "pytest tests/test_golden_traces.py --update-goldens"
        )
        golden = json.loads(path.read_text())
        assert observed["value"] == golden["value"], (
            f"{workload}/{runtime}: workload result changed "
            f"({golden['value']} -> {observed['value']})"
        )
        assert observed["totals"] == golden["totals"], (
            f"{workload}/{runtime}: per-event totals drifted; if intended, "
            "rerun with --update-goldens and review the diff"
        )
        assert observed["sequence"] == golden["sequence"], (
            f"{workload}/{runtime}: event ordering drifted; if intended, "
            "rerun with --update-goldens and review the diff"
        )

    def test_normalization_is_timestamp_free(self):
        """Same shape regardless of clock values: ts/dur never leak in."""
        result = run_traced("stream", "fastswap", seed=0)
        shape = normalize_events(result.tracer.events)
        for ev in result.tracer.events:
            ev.ts += 12345.0
            ev.dur += 99.0
        assert normalize_events(result.tracer.events) == shape

    def test_runs_are_reproducible(self):
        a = _observe("hashmap", "aifm", 3)
        b = _observe("hashmap", "aifm", 3)
        assert a == b

    def test_different_seeds_differ(self):
        a = _observe("hashmap", "aifm", 0)
        b = _observe("hashmap", "aifm", 1)
        # LCG probe order depends on the seed; the RLE sequence must too.
        assert a["sequence"] != b["sequence"]
