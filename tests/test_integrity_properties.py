"""Property-based tests for the integrity codec and journal replay.

Two of the subsystem's core guarantees are stated here as hypothesis
properties rather than examples:

* the checksum codec round-trips every payload and detects **any**
  single bit flip (CRC-32 detects all 1-bit errors by construction);
* folding the journal with ``replay_state`` is idempotent and
  order-insensitive to duplication — replaying a prefix twice recovers
  the same state as replaying it once, which is what makes crash
  recovery safe to re-run.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity import ChecksumCodec, flip_bit
from repro.integrity.journal import JournalRecord, RecordKind, replay_state

SEEDS = st.integers(min_value=0, max_value=2**64 - 1)
PAYLOADS = st.binary(min_size=1, max_size=256)


@given(seed=SEEDS, payload=st.binary(max_size=256))
@settings(max_examples=200, deadline=None)
def test_checksum_roundtrip(seed, payload):
    codec = ChecksumCodec(seed)
    assert codec.verify(payload, codec.checksum(payload))


@given(seed=SEEDS, payload=PAYLOADS, data=st.data())
@settings(max_examples=300, deadline=None)
def test_any_single_bit_flip_detected(seed, payload, data):
    codec = ChecksumCodec(seed)
    check = codec.checksum(payload)
    bit = data.draw(st.integers(min_value=0, max_value=len(payload) * 8 - 1))
    assert not codec.verify(flip_bit(payload, bit), check)


@given(seed=SEEDS, obj_id=st.integers(min_value=0, max_value=2**40))
@settings(max_examples=200, deadline=None)
def test_object_checksum_version_sensitive(seed, obj_id):
    codec = ChecksumCodec(seed)
    tags = [codec.object_checksum(obj_id, version) for version in range(6)]
    assert len(set(tags)) == len(tags)


def _records(draw_kinds):
    """Strategy for journal record sequences with well-formed seqs."""
    return st.lists(
        st.tuples(
            draw_kinds,
            st.integers(min_value=0, max_value=7),   # obj_id
            st.integers(min_value=1, max_value=5),   # version
        ),
        max_size=30,
    ).map(
        lambda triples: tuple(
            JournalRecord(seq, kind, obj_id, version)
            for seq, (kind, obj_id, version) in enumerate(triples)
        )
    )


RECORD_SEQS = _records(st.sampled_from(list(RecordKind)))


@given(records=RECORD_SEQS)
@settings(max_examples=200, deadline=None)
def test_replay_prefix_twice_is_idempotent(records):
    # Crash recovery may re-deliver any prefix of the journal; the fold
    # must land on the same state either way.
    for cut in range(len(records) + 1):
        prefix = records[:cut]
        assert replay_state(prefix + prefix) == replay_state(prefix)
        assert replay_state(prefix + records) == replay_state(records)


@given(records=RECORD_SEQS)
@settings(max_examples=200, deadline=None)
def test_replay_state_is_monotone_in_rank(records):
    # Appending records never regresses a writeback attempt to an
    # earlier protocol stage (the fold takes the max rank).
    rank = {
        RecordKind.INTENT: 0,
        RecordKind.PAYLOAD: 1,
        RecordKind.COMMIT: 2,
        RecordKind.ABORT: 3,
    }
    previous = {}
    for cut in range(len(records) + 1):
        state = replay_state(records[:cut])
        for key, stage in previous.items():
            assert rank[state[key]] >= rank[stage]
        previous = state


@given(records=RECORD_SEQS)
@settings(max_examples=100, deadline=None)
def test_replay_is_order_free_within_object_versions(records):
    # The fold commutes: shuffling records never changes the result
    # because max() over ranks is order-insensitive.
    assert replay_state(tuple(reversed(records))) == replay_state(records)
