"""Unusual loop shapes through the analyses and the full pipeline."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.analysis.cfg import CFG
from repro.analysis.induction import InductionAnalysis
from repro.analysis.loops import find_loops
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


def far_run(module, local=32 * KB):
    rt = TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=local, heap_size=1 * MB),
        cache=AlwaysHitCache(),
    )
    return TrackFMProgram(module, rt, max_steps=5_000_000).run("main").value


def build_self_loop(n=50):
    """A single block that is header, body and latch at once."""
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="p")
    b.br(loop)
    b.set_block(loop)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    v = b.load(I64, b.gep(p, i, 8))
    s2 = b.add(s, v)
    i2 = b.add(i, 1)
    b.condbr(b.icmp("slt", i2, n), loop, exit_)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, loop)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, loop)
    b.set_block(exit_)
    b.ret(s)
    return m


def build_two_latches(n=40):
    """An if/else body where both arms branch back to the header."""
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    even = f.add_block("even")
    odd = f.add_block("odd")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    in_loop = b.icmp("slt", i, n)
    check = f.add_block("check")
    b.condbr(in_loop, check, exit_)
    b.set_block(check)
    is_even = b.icmp("eq", b.srem(i, 2), 0)
    b.condbr(is_even, even, odd)
    b.set_block(even)
    v = b.load(I64, b.gep(p, i, 8))
    s_even = b.add(s, b.add(v, 1))
    i_even = b.add(i, 1)
    b.br(header)
    b.set_block(odd)
    s_odd = b.add(s, 2)
    i_odd = b.add(i, 1)
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i_even, even)
    i.add_incoming(i_odd, odd)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s_even, even)
    s.add_incoming(s_odd, odd)
    b.set_block(exit_)
    b.ret(s)
    return m


def build_break_loop(n=100, limit=25):
    """A while loop with a second (break) exit from the body."""
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    brk = f.add_block("brk")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, n), body, exit_)
    b.set_block(body)
    v = b.load(I64, b.gep(p, i, 8))
    s2 = b.add(s, b.add(v, 1))
    i2 = b.add(i, 1)
    b.condbr(b.icmp("sge", s2, limit), brk, header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(brk)
    b.br(exit_)
    b.set_block(exit_)
    phi = b.phi(I64, name="out")
    phi.add_incoming(s, header)
    phi.add_incoming(s2, brk)
    b.ret(phi)
    return m


class TestSelfLoop:
    def test_detected_with_self_latch(self):
        f = build_self_loop().get_function("main")
        loops = find_loops(f)
        assert len(loops) == 1
        loop = loops.loops[0]
        assert loop.header.name == "loop"
        assert loop.latches == [loop.header]
        assert loop.blocks == {loop.header}

    def test_iv_found(self):
        f = build_self_loop().get_function("main")
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        assert ivs.ivs(loops.loops[0])

    def test_compiles_and_runs(self):
        expected = Interpreter(build_self_loop()).run("main").value
        m = build_self_loop()
        TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.ALL)).compile(m)
        verify_module(m)
        assert far_run(m) == expected


class TestTwoLatches:
    def test_latch_count(self):
        f = build_two_latches().get_function("main")
        loops = find_loops(f)
        loop = loops.loops[0]
        assert len(loop.latches) == 2
        assert {b.name for b in loop.blocks} == {"header", "check", "even", "odd"}

    def test_header_phi_with_three_edges_not_an_iv(self):
        # i has three incoming edges: the simple two-edge IV pattern
        # must not misfire (no correctness issue, just a missed opt).
        f = build_two_latches().get_function("main")
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        assert ivs.governing_iv(loops.loops[0]) is None

    def test_compiles_and_runs(self):
        expected = Interpreter(build_two_latches()).run("main").value
        m = build_two_latches()
        TrackFMCompiler(CompilerConfig()).compile(m)
        verify_module(m)
        assert far_run(m) == expected
        assert expected == 40 + 20  # n even-steps +1, n/2 odd-steps +2... sanity
        # (zeroed heap: even arm adds 1 per even i, odd adds 2 per odd i)


class TestBreakLoop:
    def test_two_exit_edges(self):
        f = build_break_loop().get_function("main")
        loops = find_loops(f)
        cfg = CFG(f)
        assert len(loops.loops[0].exit_edges(cfg)) == 2

    def test_chunk_transform_closes_both_exits(self):
        m = build_break_loop()
        TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.ALL)).compile(m)
        verify_module(m)
        from repro.ir.instructions import Call

        f = m.get_function("main")
        ends = [
            i
            for i in f.instructions()
            if isinstance(i, Call) and i.callee == "tfm_chunk_end"
        ]
        assert len(ends) == 2  # one per exit edge

    def test_compiles_and_runs(self):
        expected = Interpreter(build_break_loop()).run("main").value
        m = build_break_loop()
        TrackFMCompiler(CompilerConfig(chunking=ChunkingPolicy.ALL)).compile(m)
        assert far_run(m) == expected == 25
