"""The benchmark harness and every figure/table entry point.

Each experiment is executed once and its *shape claims* — the paper's
C1..C11 from the artifact appendix — are asserted.
"""

import pytest

from repro.bench import (
    ExperimentResult,
    compile_costs,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17a,
    fig17b,
    geomean,
    table1,
    table2,
    table4,
)
from repro.bench.harness import Series, local_memory_sweep
from repro.errors import BenchError


class TestHarness:
    def test_series_length_checked(self):
        r = ExperimentResult("x", "t", "x", [1, 2, 3], "y")
        with pytest.raises(BenchError):
            r.add_series("bad", [1.0])

    def test_get_series(self):
        r = ExperimentResult("x", "t", "x", [1], "y")
        r.add_series("a", [2.0])
        assert r.get("a").values == [2.0]
        with pytest.raises(BenchError):
            r.get("missing")

    def test_to_text_renders_all_series(self):
        r = ExperimentResult("x", "title", "x", ["p1", "p2"], "y")
        r.add_series("s1", [1.0, 2.0])
        r.note("hello")
        text = r.to_text()
        assert "title" in text and "s1" in text and "hello" in text
        assert "p1" in text and "p2" in text

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)
        with pytest.raises(BenchError):
            geomean([])

    def test_local_memory_sweep(self):
        budgets = local_memory_sweep([0.1, 0.5, 1.0], 1 << 20)
        assert budgets == sorted(budgets)
        assert all(b % 4096 == 0 for b in budgets)
        with pytest.raises(BenchError):
            local_memory_sweep([0.0], 1 << 20)


class TestTables:
    def test_table1_matches_paper(self):
        r = table1()
        cached = r.get("Cached").values
        uncached = r.get("Uncached").values
        assert cached == [21, 21, 144, 159]
        assert uncached == [297, 309, 453, 432]

    def test_table2_matches_paper(self):
        r = table2()
        local = r.get("Local Cost").values
        remote = r.get("Remote Cost").values
        assert local == [1300, 1300, 453, 432]
        assert remote[0] == 34_000 and remote[1] == 35_000
        # TrackFM remote slow guards ~35K.
        assert remote[2] == pytest.approx(35_000, rel=0.02)
        assert remote[3] == pytest.approx(35_000, rel=0.02)

    def test_table2_kernel_fault_overhead_ratio(self):
        # "Handling a page fault in the kernel incurs 2.9x the cost of
        # handling a slow-path guard in TrackFM when the data is local."
        r = table2()
        local = r.get("Local Cost").values
        assert local[0] / local[2] == pytest.approx(2.9, rel=0.02)

    def test_table4_only_trackfm_has_all_features(self):
        r = table4()
        idx = r.x_values.index("TrackFM (this work)")
        assert all(s.values[idx] == 1 for s in r.series)
        for i, name in enumerate(r.x_values):
            if name != "TrackFM (this work)":
                assert any(s.values[i] == 0 for s in r.series)


class TestMicroFigures:
    def test_fig06_crossover_near_730(self):
        r = fig06()
        emp = r.get("empirical").values
        model = r.get("model").values
        xs = r.x_values
        # Below the crossover chunking loses, above it wins (C1 setup).
        assert emp[xs.index(512)] < 1.0
        assert emp[xs.index(896)] > 1.0
        # Model and empirical agree closely everywhere (Fig. 6's point).
        for e, m in zip(emp, model):
            assert e == pytest.approx(m, rel=0.08)

    def test_fig07_chunking_speedup_band(self):
        # C1: chunking speeds up STREAM, more at high local memory.
        r = fig07()
        for name in ("Sum", "Copy"):
            vals = r.get(name).values
            assert all(v > 1.2 for v in vals)
            assert vals[-1] > vals[0]

    def test_fig10_large_objects_win_stream(self):
        # C4: high spatial locality favours 4KB objects.
        r = fig10()
        for i in range(len(r.x_values)):
            assert r.get("4KB").values[i] > r.get("256B").values[i]

    def test_fig11_prefetch_speedup_shrinks_with_memory(self):
        # C5: prefetching matters most when remote costs dominate.
        r = fig11()
        for name in ("Sum", "Copy"):
            vals = r.get(name).values
            assert vals[0] > 2.0
            assert vals[0] > vals[-1]

    def test_fig12_trackfm_beats_fastswap(self):
        # C6: ~2-3x over Fastswap on STREAM.
        r = fig12()
        for name in ("Sum", "Copy"):
            assert r.get(name).values[0] > 2.0


class TestAppFigures:
    def test_fig08_selective_chunking(self):
        # C2: all-loops slows down ~4x; filtered speeds up ~2.5x.
        r = fig08()
        assert all(v < 0.4 for v in r.get("all loops").values)
        assert all(1.8 < v < 3.0 for v in r.get("high-density loops only").values)

    def test_fig09_small_objects_win_hashmap(self):
        # C3: fine-grained random access favours small objects.
        r = fig09()
        for i in range(len(r.x_values) - 1):  # skip the all-local point
            assert r.get("256B").values[i] > r.get("4KB").values[i]

    def test_fig13_io_amplification(self):
        # C7: Fastswap moves orders of magnitude more data.
        r = fig13()
        tfm = r.get("TrackFM 64B data (GB)").values
        fsw = r.get("Fastswap data (GB)").values
        for t, f in zip(tfm[:-1], fsw[:-1]):
            assert f > 20 * t
        # And it is slower for it.
        assert r.get("Fastswap time (s)").values[0] > r.get("TrackFM 64B time (s)").values[0]

    def test_fig14_three_system_comparison(self):
        # C8: TrackFM near AIFM, well ahead of Fastswap at low memory.
        r = fig14()
        tfm = r.get("TrackFM").values
        fsw = r.get("Fastswap").values
        aifm = r.get("AIFM").values
        assert fsw[0] > 1.8 * tfm[0]
        assert tfm[0] / aifm[0] < 1.3
        # Fastswap converges as memory grows.
        assert fsw[-1] < fsw[0] / 3
        # Fig. 14b: faults dominate guards under pressure.
        assert r.get("Fastswap faults (x10M)").values[0] > r.get("TrackFM guards (x10M)").values[0]

    def test_fig15_policy_ordering(self):
        # C9: chunking low-density loops hurts.
        r = fig15()
        filt = r.get("high-density loops only").values
        base = r.get("baseline").values
        alll = r.get("all loops").values
        assert all(f < b for f, b in zip(filt, base))
        assert alll[-1] > base[-1]

    def test_fig16_memcached(self):
        # C10: TrackFM above Fastswap, converging with skew; data gap.
        r = fig16()
        tfm = r.get("TrackFM KOps/s").values
        fsw = r.get("Fastswap KOps/s").values
        assert all(t > f for t, f in zip(tfm, fsw))
        assert tfm[0] / fsw[0] > tfm[-1] / fsw[-1]
        assert r.get("Fastswap data (GB)").values[0] > 20 * r.get("TrackFM data (GB)").values[0]

    def test_fig17a_nas(self):
        # C11: TrackFM wins at 25% local memory except FT.
        r = fig17a()
        fsw = r.get("Fastswap").values
        tfm = r.get("TrackFM").values
        for i, name in enumerate(r.x_values):
            if name == "FT":
                assert tfm[i] > fsw[i]
            elif name != "GeoM.":
                assert tfm[i] < fsw[i]
        gm = r.x_values.index("GeoM.")
        assert tfm[gm] < fsw[gm]

    def test_fig17b_o1_reductions(self):
        r = fig17b()
        tfm = r.get("TFM").values
        o1 = r.get("TFM/O1").values
        assert all(a > 3 * b for a, b in zip(tfm, o1))
        note = " ".join(r.notes)
        assert "FT 6.0x" in note and "SP 4.0x" in note

    def test_compile_costs(self):
        r = compile_costs()
        sizes = r.get("code size (x)").values
        times = r.get("compile time (x)").values
        assert all(s >= 1.0 for s in sizes)
        assert sizes[-1] < 3.0  # mean in the paper's ballpark (2.4x)
        assert times[-1] < 10.0
