"""The set-associative cache model behind cached/uncached guard costs."""

import pytest

from repro.errors import RuntimeConfigError
from repro.machine.cache import AlwaysHitCache, AlwaysMissCache, CacheModel


def test_first_access_misses_second_hits():
    cache = CacheModel()
    assert cache.access(0x1000) is False
    assert cache.access(0x1000) is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_shares_entry():
    cache = CacheModel(line_size=64)
    cache.access(0x100)
    assert cache.access(0x100 + 63) is True
    assert cache.access(0x100 + 64) is False


def test_lru_eviction_within_set():
    # Direct-mapped-ish: 2 ways, force 3 conflicting lines.
    cache = CacheModel(size_bytes=1024, line_size=64, ways=2)
    sets = cache.num_sets
    a, b, c = 0, sets * 64, 2 * sets * 64  # same set, different tags
    cache.access(a)
    cache.access(b)
    cache.access(c)  # evicts a
    assert cache.access(b) is True
    assert cache.access(a) is False


def test_flush_drops_lines_but_keeps_stats():
    cache = CacheModel()
    cache.access(0)
    cache.flush()
    assert cache.access(0) is False
    assert cache.stats.misses == 2


def test_reset_zeroes_counters():
    cache = CacheModel()
    cache.access(0)
    cache.reset()
    assert cache.stats.accesses == 0


def test_hit_rate():
    cache = CacheModel()
    assert cache.stats.hit_rate == 0.0
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_degenerate_caches():
    hit = AlwaysHitCache()
    miss = AlwaysMissCache()
    for addr in (0, 64, 1 << 40):
        assert hit.access(addr) is True
        assert miss.access(addr) is False


def test_invalid_configs_rejected():
    with pytest.raises(RuntimeConfigError):
        CacheModel(line_size=48)
    with pytest.raises(RuntimeConfigError):
        CacheModel(size_bytes=0)
    with pytest.raises(RuntimeConfigError):
        CacheModel(size_bytes=64, line_size=64, ways=8)


def test_associativity_prevents_conflict_thrash():
    # Two lines mapping to the same set coexist in a 2-way cache.
    cache = CacheModel(size_bytes=1024, line_size=64, ways=2)
    a, b = 0, cache.num_sets * 64
    cache.access(a)
    cache.access(b)
    assert cache.access(a) is True
    assert cache.access(b) is True
