"""O1 pre-optimization: mem2reg, folding, RLE, DCE (the Fig. 17b enabler)."""

import pytest

from repro.compiler.mem2reg import Mem2RegPass
from repro.compiler.optimize import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    O1Pipeline,
    RedundantLoadEliminationPass,
)
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.pipeline import CompilerConfig
from repro.ir import IRBuilder, I64, PTR, VOID, Module, verify_module
from repro.ir.instructions import BinOp, Load, Phi, Store
from repro.ir.values import Constant
from repro.sim.interpreter import Interpreter

from irprograms import build_write_then_sum


def ctx():
    return PassContext(config=CompilerConfig())


class TestConstantFolding:
    def test_folds_constants(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        x = b.add(2, 3)
        y = b.mul(x, 4)
        b.ret(y)
        ConstantFoldingPass().run(m, ctx())
        from repro.ir.instructions import Ret

        ret = f.entry.terminator
        assert isinstance(ret.value, Constant)
        assert ret.value.value == 20

    def test_identities(self):
        m = Module()
        f = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(f.add_block("entry"))
        v = b.add(f.args[0], 0)
        w = b.mul(v, 1)
        b.ret(w)
        ConstantFoldingPass().run(m, ctx())
        assert f.entry.terminator.value is f.args[0]

    def test_mul_by_zero(self):
        m = Module()
        f = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(f.add_block("entry"))
        v = b.mul(f.args[0], 0)
        b.ret(v)
        ConstantFoldingPass().run(m, ctx())
        assert f.entry.terminator.value.value == 0

    def test_preserves_division_by_zero(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        v = b.sdiv(1, 0)
        b.ret(v)
        ConstantFoldingPass().run(m, ctx())
        assert any(isinstance(i, BinOp) for i in f.instructions())


class TestDCE:
    def test_removes_unused(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.add(1, 2)  # dead
        live = b.add(3, 4)
        b.ret(live)
        c = ctx()
        DeadCodeEliminationPass().run(m, c)
        assert c.get_stat("dce.removed") == 1
        assert f.instruction_count() == 2

    def test_keeps_stores_and_calls(self):
        m = Module()
        f = m.add_function("main", VOID)
        b = IRBuilder(f.add_block("entry"))
        p = b.alloca(8)
        b.store(1, p)
        b.call(PTR, "malloc", [Constant(I64, 8)])
        b.ret()
        DeadCodeEliminationPass().run(m, ctx())
        assert any(isinstance(i, Store) for i in f.instructions())
        from repro.ir.instructions import Call

        assert any(isinstance(i, Call) for i in f.instructions())

    def test_cascading_removal(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        x = b.add(1, 2)
        y = b.add(x, 3)  # both dead after y unused
        b.ret(0)
        del y
        DeadCodeEliminationPass().run(m, ctx())
        assert f.instruction_count() == 1


class TestRLE:
    def test_duplicate_load_removed(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.alloca(8)
        v1 = b.load(I64, p)
        v2 = b.load(I64, p)
        b.ret(b.add(v1, v2))
        c = ctx()
        RedundantLoadEliminationPass().run(m, c)
        assert c.get_stat("redundant-load-elim.loads_removed") == 1
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert len(loads) == 1

    def test_store_to_load_forwarding(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.alloca(8)
        b.store(7, p)
        v = b.load(I64, p)
        b.ret(v)
        RedundantLoadEliminationPass().run(m, ctx())
        assert f.entry.terminator.value.value == 7

    def test_aliasing_store_kills_availability(self):
        m = Module()
        f = m.add_function("main", I64, [PTR, PTR], ["p", "q"])
        b = IRBuilder(f.add_block("entry"))
        v1 = b.load(I64, f.args[0])
        b.store(0, f.args[1])  # may alias p
        v2 = b.load(I64, f.args[0])
        b.ret(b.add(v1, v2))
        RedundantLoadEliminationPass().run(m, ctx())
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert len(loads) == 2  # conservatively kept

    def test_call_kills_availability(self):
        m = Module()
        f = m.add_function("main", I64, [PTR], ["p"])
        b = IRBuilder(f.add_block("entry"))
        v1 = b.load(I64, f.args[0])
        b.call(VOID, "free", [f.args[0]])
        v2 = b.load(I64, f.args[0])
        b.ret(b.add(v1, v2))
        RedundantLoadEliminationPass().run(m, ctx())
        assert len([i for i in f.instructions() if isinstance(i, Load)]) == 2


class TestMem2Reg:
    def build_counter(self, n=10):
        """Unoptimized-style counter: i and acc live in stack slots."""
        m = Module()
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        islot = b.alloca(8, name="islot")
        accslot = b.alloca(8, name="accslot")
        b.store(0, islot)
        b.store(0, accslot)
        b.br(header)
        b.set_block(header)
        i0 = b.load(I64, islot)
        b.condbr(b.icmp("slt", i0, n), body, exit_)
        b.set_block(body)
        a0 = b.load(I64, accslot)
        i1 = b.load(I64, islot)
        b.store(b.add(a0, i1), accslot)
        i2 = b.load(I64, islot)
        b.store(b.add(i2, 1), islot)
        b.br(header)
        b.set_block(exit_)
        b.ret(b.load(I64, accslot))
        return m

    def test_promotes_and_preserves_semantics(self):
        m = self.build_counter(10)
        expected = Interpreter(self.build_counter(10)).run("main").value
        c = ctx()
        PassManager([Mem2RegPass()]).run(m, c)
        assert c.get_stat("mem2reg.allocas_promoted") == 2
        assert Interpreter(m).run("main").value == expected == 45

    def test_removes_all_memory_ops(self):
        m = self.build_counter()
        PassManager([Mem2RegPass()]).run(m, ctx())
        assert m.memory_access_count() == 0

    def test_inserts_phis_at_loop_header(self):
        m = self.build_counter()
        PassManager([Mem2RegPass()]).run(m, ctx())
        header = m.get_function("main").get_block("header")
        assert len(header.phis()) >= 1

    def test_escaped_alloca_not_promoted(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        b.call(VOID, "llvm.escape", [slot])  # address escapes
        b.store(1, slot)
        b.ret(b.load(I64, slot))
        c = ctx()
        PassManager([Mem2RegPass()]).run(m, c)
        assert c.get_stat("mem2reg.allocas_promoted") == 0
        assert m.memory_access_count() == 2

    def test_load_before_store_yields_undef_but_runs(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        v = b.load(I64, slot)  # undefined read
        b.ret(v)
        PassManager([Mem2RegPass()]).run(m, ctx())
        assert Interpreter(m).run("main").value == 0  # undef reads as 0


class TestO1Pipeline:
    def test_preserves_program_output(self):
        m = build_write_then_sum(30)
        expected = Interpreter(build_write_then_sum(30)).run("main").value
        PassManager([O1Pipeline()]).run(m, ctx())
        assert Interpreter(m).run("main").value == expected

    def test_reduces_nas_ft_mem_instructions_6x(self):
        from repro.workloads.nas import build_nas_ir

        m = build_nas_ir("FT", n=64)
        before = m.memory_access_count()
        PassManager([O1Pipeline()]).run(m, ctx())
        after = m.memory_access_count()
        assert before / after >= 4  # static view; dynamic ratio is 6x

    def test_fixed_point_terminates(self):
        m = build_write_then_sum(5)
        PassManager([O1Pipeline(max_rounds=2)]).run(m, ctx())
        verify_module(m)
