"""Property-based tests for the replication layer.

Four groups of guarantees, all stated as hypothesis properties:

* **replica placement** — ``HashRing.place_n`` yields distinct shards,
  is a pure function of the shard set, has size ``min(R, N)``, and its
  first element is the key's primary (``place``);
* **movement laws** — exact (not statistical) leave/join laws for
  replica *sets*: a leave only touches sets containing the leaver (drop
  the leaver, gain at most one survivor), a join only adds the joiner;
* **quorum math** — ``resolve_quorums`` accepts exactly the pairs with
  ``1 <= W, Rq <= R`` and ``W + Rq > R``, and on a live cluster every
  committed write is visible to every subsequent quorum read;
* **repair idempotence** — anti-entropy converges: a sweep that healed
  everything reachable leaves nothing for the next sweep, and a repeat
  read after a read-repair finds no remaining staleness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeConfigError
from repro.net.faults import FaultPlan
from repro.serve.cluster import ClusterConfig, ShardedCluster, default_value, next_value
from repro.serve.replication import (
    FailureDetector,
    HeartbeatChannel,
    ReplicaTag,
    initial_tag,
    resolve_quorums,
)
from repro.serve.ring import HashRing, moved_replica_keys

SHARD_IDS = st.integers(min_value=0, max_value=0xFFFF)
SHARD_SETS = st.sets(SHARD_IDS, min_size=1, max_size=32)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
KEYS = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1, max_size=100, unique=True,
)
REPLICATION = st.integers(min_value=1, max_value=5)


# -- replica placement ------------------------------------------------------


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS, n=REPLICATION)
@settings(max_examples=60, deadline=None)
def test_replica_sets_distinct_sized_and_primary_first(shards, seed, keys, n):
    ring = HashRing(sorted(shards), seed=seed)
    for key in keys:
        reps = ring.place_n(key, n)
        assert len(reps) == len(set(reps)) == min(n, len(shards))
        assert all(sid in shards for sid in reps)
        assert reps[0] == ring.place(key)
    # n=1 degenerates to the historical single-owner placement.
    assert all(ring.place_n(k, 1) == (ring.place(k),) for k in keys)


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS, n=REPLICATION)
@settings(max_examples=60, deadline=None)
def test_replica_placement_pure_function_of_shard_set(shards, seed, keys, n):
    ordered = HashRing(sorted(shards), seed=seed)
    reversed_ = HashRing(sorted(shards, reverse=True), seed=seed)
    assert ordered.placement(keys, n=n) == reversed_.placement(keys, n=n)


# -- movement laws ----------------------------------------------------------


@given(shards=st.sets(SHARD_IDS, min_size=2, max_size=32), seed=SEEDS,
       keys=KEYS, n=REPLICATION, data=st.data())
@settings(max_examples=60, deadline=None)
def test_leave_law_for_replica_sets(shards, seed, keys, n, data):
    ring = HashRing(sorted(shards), seed=seed)
    before = {k: ring.place_n(k, n) for k in keys}
    leaver = data.draw(st.sampled_from(sorted(shards)))
    ring.remove_shard(leaver)
    after = {k: ring.place_n(k, n) for k in keys}
    moved = {key for key, _, _ in moved_replica_keys(before, after)}
    for key in keys:
        old, new = set(before[key]), set(after[key])
        if leaver not in old:
            assert new == old, f"key {key} moved but {leaver} was not a replica"
            assert key not in moved
        else:
            # Loses exactly the leaver; gains at most one survivor.
            assert leaver not in new
            assert old - {leaver} <= new
            assert len(new - old) <= 1


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS, n=REPLICATION,
       joiner=SHARD_IDS)
@settings(max_examples=60, deadline=None)
def test_join_law_for_replica_sets(shards, seed, keys, n, joiner):
    if joiner in shards:
        shards = shards - {joiner}
        if not shards:
            return
    ring = HashRing(sorted(shards), seed=seed)
    before = {k: ring.place_n(k, n) for k in keys}
    ring.add_shard(joiner)
    after = {k: ring.place_n(k, n) for k in keys}
    for key in keys:
        old, new = set(before[key]), set(after[key])
        assert new <= old | {joiner}
        if joiner not in new:
            assert new == old, f"key {key} reshuffled without adopting {joiner}"


@given(shards=SHARD_SETS, seed=SEEDS, keys=KEYS, n=REPLICATION,
       joiner=SHARD_IDS)
@settings(max_examples=40, deadline=None)
def test_moved_replica_keys_ignores_reordering(shards, seed, keys, n, joiner):
    ring = HashRing(sorted(shards), seed=seed)
    before = {k: ring.place_n(k, n) for k in keys}
    # Reordering a tuple is not movement: membership is what costs a copy.
    reordered = {k: tuple(reversed(v)) for k, v in before.items()}
    assert moved_replica_keys(before, reordered) == []
    if joiner not in shards:
        ring.add_shard(joiner)
        after = {k: ring.place_n(k, n) for k in keys}
        moved = {key for key, _, _ in moved_replica_keys(before, after)}
        assert moved == {
            k for k in keys if set(after[k]) != set(before[k])
        }


# -- quorum math ------------------------------------------------------------


@given(r=st.integers(min_value=1, max_value=8),
       w=st.integers(min_value=-1, max_value=10),
       rq=st.integers(min_value=-1, max_value=10))
@settings(max_examples=200, deadline=None)
def test_resolve_quorums_accepts_exactly_intersecting_pairs(r, w, rq):
    valid = 1 <= w <= r and 1 <= rq <= r and w + rq > r
    if valid:
        assert resolve_quorums(r, w, rq) == (w, rq)
    else:
        with pytest.raises(RuntimeConfigError):
            resolve_quorums(r, w, rq)


@given(r=st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_resolve_quorums_defaults_write_all_read_one(r):
    w, rq = resolve_quorums(r)
    assert (w, rq) == (r, 1)
    assert w + rq > r


def test_resolve_quorums_rejects_nonpositive_replication():
    with pytest.raises(RuntimeConfigError):
        resolve_quorums(0)
    with pytest.raises(RuntimeConfigError):
        resolve_quorums(-1)


@st.composite
def quorum_pairs(draw):
    """(replication, write_quorum, read_quorum) with W + Rq > R."""
    r = draw(st.integers(min_value=2, max_value=3))
    w = draw(st.integers(min_value=1, max_value=r))
    rq = draw(st.integers(min_value=r - w + 1, max_value=r))
    return r, w, rq


@given(pair=quorum_pairs(), seed=SEEDS,
       writes=st.lists(st.integers(min_value=0, max_value=31),
                       min_size=1, max_size=24))
@settings(max_examples=25, deadline=None)
def test_committed_writes_visible_to_quorum_reads(pair, seed, writes):
    r, w, rq = pair
    cluster = ShardedCluster(ClusterConfig(
        n_shards=3, n_keys=32, seed=seed,
        replication=r, write_quorum=w, read_quorum=rq,
    ))
    expected = {key: default_value(key) for key in range(32)}
    for key in writes:
        result = cluster.serve(key, write=True)
        assert result.acks >= w
        expected[key] = next_value(key, expected[key])
        assert result.value == expected[key]
    # Every read quorum intersects every committed write quorum, so the
    # freshest version — and with it the deterministic value chain — is
    # always visible, regardless of which Rq replicas answer.
    for key in range(32):
        read = cluster.serve(key, write=False)
        assert read.value == expected[key]
        assert cluster.read_value(key) == expected[key]


# -- repair idempotence -----------------------------------------------------


@given(seed=SEEDS,
       writes=st.lists(st.integers(min_value=0, max_value=31),
                       min_size=1, max_size=16),
       victim=st.integers(min_value=0, max_value=2))
@settings(max_examples=15, deadline=None)
def test_anti_entropy_is_idempotent_after_partition(seed, writes, victim):
    cluster = ShardedCluster(ClusterConfig(
        n_shards=3, n_keys=32, seed=seed,
        replication=2, write_quorum=1, read_quorum=2,
    ))
    cluster.partition_shard(victim)
    for key in writes:
        cluster.serve(key, write=True)
    cluster.heal_shard(victim)
    cluster.anti_entropy()
    # Converged: a second sweep finds nothing stale, and the healed
    # replicas now agree with the authoritative value chain.
    assert cluster.anti_entropy() == 0
    for key in set(writes):
        assert cluster.serve(key, write=False).value == cluster.read_value(key)


@given(seed=SEEDS, key=st.integers(min_value=0, max_value=31))
@settings(max_examples=15, deadline=None)
def test_read_repair_is_idempotent(seed, key):
    cluster = ShardedCluster(ClusterConfig(
        n_shards=3, n_keys=32, seed=seed,
        replication=2, write_quorum=1, read_quorum=2,
    ))
    victim = cluster.replicas(key)[1]
    cluster.partition_shard(victim)
    cluster.serve(key, write=True)
    cluster.heal_shard(victim)
    cluster.serve(key, write=False)  # quorum read repairs the stale copy
    repairs = cluster.merged_metrics().read_repairs
    cluster.serve(key, write=False)  # nothing left to repair
    assert cluster.merged_metrics().read_repairs == repairs
    assert cluster.anti_entropy() == 0


# -- tags and heartbeats ----------------------------------------------------


@given(key=st.integers(min_value=0, max_value=2**31 - 1),
       version=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=100, deadline=None)
def test_replica_tag_verify_roundtrip(key, version):
    tag = ReplicaTag.at(key, version)
    assert tag.verify(key)
    assert not ReplicaTag(version=version + 1, checksum=tag.checksum).verify(key)
    assert initial_tag(key) == ReplicaTag.at(key, 0)


@given(shard_id=st.integers(min_value=0, max_value=0xFFFF), seed=SEEDS,
       drop=st.floats(min_value=0.0, max_value=0.9),
       probes=st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_heartbeat_channels_deterministic_and_independent(
    shard_id, seed, drop, probes
):
    plan = FaultPlan(seed=seed, drop_rate=drop)
    a = HeartbeatChannel(shard_id, plan)
    b = HeartbeatChannel(shard_id, plan)
    assert [a.probe() for _ in range(probes)] == [b.probe() for _ in range(probes)]
    # Probe fates never consume the data plan's counter.
    assert plan.decide(0) == FaultPlan(seed=seed, drop_rate=drop).decide(0)


@given(threshold=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_detector_suspects_after_exactly_threshold_misses(threshold):
    detector = FailureDetector(threshold=threshold)
    channel = HeartbeatChannel(0, None)
    detector.watch(0, channel)
    channel.down = True
    for tick in range(1, threshold + 1):
        newly = detector.tick()
        assert newly == ([0] if tick == threshold else [])
    assert detector.is_suspected(0)
    assert detector.tick() == []  # suspicion is sticky, reported once
