"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.aifm.pool import PoolConfig
from repro.machine.cache import AlwaysHitCache
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current trace output "
        "instead of comparing against it",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def small_pool_config() -> PoolConfig:
    return PoolConfig(object_size=4 * KB, local_memory=64 * KB, heap_size=1 * MB)


@pytest.fixture
def trackfm_runtime(small_pool_config) -> TrackFMRuntime:
    return TrackFMRuntime(small_pool_config, cache=AlwaysHitCache())
