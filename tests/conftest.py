"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.aifm.pool import PoolConfig
from repro.machine.cache import AlwaysHitCache
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


@pytest.fixture
def small_pool_config() -> PoolConfig:
    return PoolConfig(object_size=4 * KB, local_memory=64 * KB, heap_size=1 * MB)


@pytest.fixture
def trackfm_runtime(small_pool_config) -> TrackFMRuntime:
    return TrackFMRuntime(small_pool_config, cache=AlwaysHitCache())
