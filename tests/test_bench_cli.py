"""The python -m repro.bench command-line entry point."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig06", "table1", "ablation_heap_pruning"):
        assert name in out


def test_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "fast-path read" in out


def test_multiple_experiments(capsys):
    assert main(["table1", "fig06"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig06" in out


def test_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_no_args_prints_help(capsys):
    assert main([]) == 2


def test_registry_covers_all_paper_experiments():
    for name in (
        "table1", "table2", "table4",
        "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "fig17a", "fig17b",
        "compile_costs",
    ):
        assert name in EXPERIMENTS
