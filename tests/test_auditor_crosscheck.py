"""Static-vs-dynamic cross-check: auditor predictions vs traced counters.

The auditor's whole point is that on *oblivious* workloads its static
predictions are the dynamic truth.  These tests compile each workload
at the same object size the runtime uses, replay it cold under a
tracer, and assert the traced remote-fetch and byte counters match the
static program prediction within 5% (they are exact in practice; the
tolerance absorbs boundary effects on other configurations).
"""

from repro.aifm.pool import PoolConfig
from repro.analysis.oblivious import audit_module
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.sim.irrun import TrackFMProgram
from repro.trace.drivers import _build_stream_module
from repro.trace.tracer import CAT_FETCH, Tracer
from repro.trackfm.runtime import TrackFMRuntime
from repro.workloads.nas import build_nas_ir

from irprograms import build_sum_loop, build_write_then_sum

OBJ = 256


def within(actual, predicted, tol=0.05):
    assert predicted > 0, "cross-check needs a nonzero prediction"
    assert abs(actual - predicted) <= tol * predicted, (
        f"dynamic {actual} vs static {predicted} off by more than {tol:.0%}"
    )


def crosscheck(build, programmed=False, local_objects=64):
    """Audit one copy, run another; return (prediction, metrics, tracer)."""
    audit = audit_module(build(), object_size=OBJ)
    pred = audit.program_prediction()
    assert pred.complete, "cross-check workloads must be fully oblivious"

    module = build()
    cfg = CompilerConfig(
        object_size=OBJ,
        chunking=ChunkingPolicy.ALL,
        enable_prefetch=False,
        enable_chase_prefetch=False,
        enable_programmed_prefetch=programmed,
    )
    TrackFMCompiler(cfg).compile(module)
    tracer = Tracer()
    pool = PoolConfig(
        object_size=OBJ, local_memory=local_objects * OBJ, heap_size=1 << 20
    )
    runtime = TrackFMRuntime(pool, tracer=tracer)
    TrackFMProgram(module, runtime).run()
    return pred, runtime.metrics, tracer


class TestStreamWorkloads:
    def test_sum_loop_misses_match(self):
        pred, metrics, _ = crosscheck(lambda: build_sum_loop(n=512))
        within(metrics.remote_fetches, pred.objects)
        within(metrics.bytes_fetched, pred.bytes_fetched)

    def test_write_then_sum_union_matches(self):
        # Two sweeps over one allocation: the program prediction unions
        # the object sets, and the warm second sweep fetches nothing.
        pred, metrics, _ = crosscheck(lambda: build_write_then_sum(n=512))
        within(metrics.remote_fetches, pred.objects)
        within(metrics.bytes_fetched, pred.bytes_fetched)

    def test_trace_stream_driver_matches(self):
        pred, metrics, tracer = crosscheck(_build_stream_module)
        within(metrics.remote_fetches, pred.objects)
        within(metrics.bytes_fetched, pred.bytes_fetched)
        # The tracer saw the same traffic the prediction promised.
        fetch_bytes = sum(
            e.args.get("bytes", 0) for e in tracer.events if e.cat == CAT_FETCH
        )
        within(fetch_bytes, pred.bytes_fetched)

    def test_nas_kernel_matches(self):
        pred, metrics, _ = crosscheck(lambda: build_nas_ir("CG", n=256))
        within(metrics.remote_fetches, pred.objects)
        within(metrics.bytes_fetched, pred.bytes_fetched)


class TestWithProgrammedPrefetch:
    def test_total_fetches_unchanged_by_scheduling(self):
        # Programmed prefetch moves fetches earlier, it must not add any:
        # demand misses + useful prefetches == predicted cold objects.
        pred, metrics, _ = crosscheck(
            lambda: build_sum_loop(n=512), programmed=True
        )
        total = metrics.remote_fetches + metrics.prefetches_useful
        within(total, pred.objects)
        within(metrics.bytes_fetched, pred.bytes_fetched)

    def test_demand_misses_eliminated(self):
        _, metrics, _ = crosscheck(lambda: build_sum_loop(n=512), programmed=True)
        assert metrics.remote_fetches == 0


class TestPredictionFailureModes:
    def test_opaque_workload_is_flagged_incomplete(self):
        from repro.trace.drivers import _build_hashmap_module

        audit = audit_module(_build_hashmap_module(7), object_size=OBJ)
        assert not audit.program_prediction().complete
