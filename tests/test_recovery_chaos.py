"""Crash-injection and corruption chaos tests for the integrity subsystem.

The invariant this suite pins, across all four runtime models: under
any seeded corruption or crash plan, a run either repairs every fault
(counted in the integrity counters) and computes values identical to a
fault-free run, or raises :class:`~repro.errors.DataIntegrityError` /
falls back to the page tier — it never silently returns wrong data.
Crash plans are deterministic (splitmix64 counters + an exact journal
record count), so every scenario here replays bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.aifm.pool import PoolConfig
from repro.aifm.runtime import AIFMRuntime
from repro.errors import DataIntegrityError, RuntimeConfigError, SimulatedCrashError
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.hybrid.runtime import HybridRuntime, Placement
from repro.integrity import IntegrityConfig, RecordKind, default_integrity_config
from repro.machine.costs import AccessKind
from repro.net.faults import FaultPlan
from repro.trace.drivers import run_traced
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

OBJ = 256
TERMINAL = (RecordKind.COMMIT, RecordKind.ABORT)


def _aifm_runtime() -> AIFMRuntime:
    # 4 resident objects: sequential writes evict (and write back) early.
    return AIFMRuntime(
        PoolConfig(object_size=OBJ, local_memory=1 * KB, heap_size=64 * KB),
        prefetch_depth=0,
    )


def _crash_run(config: IntegrityConfig, n_writes: int = 12) -> AIFMRuntime:
    """Drive sequential dirty writes into an injected crash."""
    rt = _aifm_runtime()
    rt.enable_integrity(config)
    with pytest.raises(SimulatedCrashError):
        for i in range(n_writes):
            rt.access(i * OBJ, AccessKind.WRITE)
        raise AssertionError("crash plan never fired")
    return rt


def _journal_fingerprint(rt: AIFMRuntime):
    checker = rt.pool.integrity
    return [
        (r.seq, r.kind, r.obj_id, r.version, r.check)
        for r in checker.journal.records
    ]


def _assert_recovered(rt: AIFMRuntime) -> None:
    """Post-recovery coherence: journal terminal, metadata == residency."""
    checker = rt.pool.integrity
    assert not checker._pending
    assert not checker.remote_damage
    state = checker.journal.state()
    for obj_id in checker.journal.objects():
        version = max(v for (o, v) in state if o == obj_id)
        assert state[(obj_id, version)] in TERMINAL
    pool = rt.pool
    for obj_id in range(pool.config.num_objects):
        assert pool.meta(obj_id).is_local == (obj_id in pool.residency)


class TestCrashDeterminism:
    def test_same_plan_crashes_identically(self):
        config = IntegrityConfig(seed=1, crash_at_record=7)
        a = _crash_run(config)
        b = _crash_run(config)
        assert _journal_fingerprint(a) == _journal_fingerprint(b)
        assert len(a.pool.integrity.journal) == 7
        assert a.metrics.cycles == b.metrics.cycles

    def test_crash_plan_fires_once(self):
        rt = _crash_run(IntegrityConfig(seed=1, crash_at_record=7))
        assert rt.pool.integrity.crash_plan.fired


class TestEvacuatorCrashRecovery:
    def test_intent_stage_crash_rolls_back(self):
        # Record 7 is the INTENT of the third writeback: the wire write
        # never started, so recovery must reinstate the object dirty.
        rt = _crash_run(IntegrityConfig(seed=1, crash_at_record=7))
        checker = rt.pool.integrity
        victim = checker.journal.records[6].obj_id
        report = rt.recover()
        assert report.rolled_back == 1
        assert report.replayed == 0
        meta = rt.pool.meta(victim)
        assert meta.is_local and meta.is_dirty
        _assert_recovered(rt)

    def test_payload_stage_crash_replays(self):
        # Record 8 is the PAYLOAD of the third writeback: durable but
        # uncommitted, so recovery re-drives it and commits.
        rt = _crash_run(IntegrityConfig(seed=1, crash_at_record=8))
        checker = rt.pool.integrity
        victim = checker.journal.records[7].obj_id
        cycles_before = rt.metrics.cycles
        report = rt.recover()
        assert report.replayed == 1
        assert report.rolled_back == 0
        assert checker.versions[victim] == checker.journal.records[7].version
        assert rt.metrics.journal_replays == 1
        # The re-driven wire write is charged to the run.
        assert rt.metrics.cycles > cycles_before
        _assert_recovered(rt)

    def test_farnode_crash_tears_inflight_copy(self):
        # Record 9 is the COMMIT of the third writeback; a farnode crash
        # there means the far node died applying it — committed in the
        # journal, damaged on the wire.  Recovery re-drives it.
        rt = _crash_run(
            IntegrityConfig(seed=1, crash_at_record=9, crash_kind="farnode")
        )
        checker = rt.pool.integrity
        assert checker.remote_damage  # torn by the crash
        report = rt.recover()
        assert report.repaired_remote == 1
        assert rt.metrics.journal_replays == 1
        _assert_recovered(rt)

    def test_recover_twice_equals_once(self):
        rt = _crash_run(IntegrityConfig(seed=1, crash_at_record=8))
        rt.recover()
        checker = rt.pool.integrity
        journal_len = len(checker.journal)
        versions = dict(checker.versions)
        second = rt.recover()
        assert second.total_actions == 0
        assert len(checker.journal) == journal_len
        assert checker.versions == versions

    def test_resumed_run_completes(self):
        rt = _crash_run(IntegrityConfig(seed=1, crash_at_record=7))
        rt.recover()
        # Re-drive the whole pattern: every access must succeed and the
        # journal must end terminal again.
        for i in range(12):
            rt.access(i * OBJ, AccessKind.WRITE)
        for i in range(12):
            rt.access(i * OBJ, AccessKind.READ)
        _assert_recovered(rt)

    def test_recover_without_integrity_raises(self):
        rt = _aifm_runtime()
        with pytest.raises(RuntimeConfigError):
            rt.recover()


class TestTrackFMCrashRecovery:
    def _compiled_stream(self):
        from repro.compiler import CompilerConfig, TrackFMCompiler
        from repro.trace.drivers import _build_stream_module

        module = _build_stream_module()
        TrackFMCompiler(CompilerConfig(object_size=OBJ)).compile(module)
        return module

    def _runtime(self) -> TrackFMRuntime:
        return TrackFMRuntime(
            PoolConfig(object_size=OBJ, local_memory=2 * KB, heap_size=1 * MB)
        )

    def test_recovered_interpreter_run_computes_clean_value(self):
        from repro.sim.irrun import TrackFMProgram

        module = self._compiled_stream()
        clean_rt = self._runtime()
        clean_rt.enable_integrity(IntegrityConfig(seed=2))
        clean = TrackFMProgram(module, clean_rt, max_steps=5_000_000).run("main")

        rt = self._runtime()
        rt.enable_integrity(IntegrityConfig(seed=2, crash_at_record=10))
        with pytest.raises(SimulatedCrashError):
            TrackFMProgram(module, rt, max_steps=5_000_000).run("main")
        report = rt.recover()
        assert report.total_actions >= 1
        # The state table aliases the pool metadata, so the recovered
        # words are what the guards now see: rerunning the program on
        # the recovered runtime must produce the crash-free value.
        rerun = TrackFMProgram(module, rt, max_steps=5_000_000).run("main")
        assert rerun.value == clean.value

    def test_trackfm_crash_journal_is_deterministic(self):
        from repro.sim.irrun import TrackFMProgram

        module = self._compiled_stream()
        fingerprints = []
        for _ in range(2):
            rt = self._runtime()
            rt.enable_integrity(IntegrityConfig(seed=2, crash_at_record=10))
            with pytest.raises(SimulatedCrashError):
                TrackFMProgram(module, rt, max_steps=5_000_000).run("main")
            fingerprints.append(
                [
                    (r.seq, r.kind, r.obj_id, r.version)
                    for r in rt.pool.integrity.journal.records
                ]
            )
        assert fingerprints[0] == fingerprints[1]


class TestFastswapCrashRecovery:
    def test_crash_recover_resume(self):
        rt = FastswapRuntime(
            FastswapConfig(local_memory=4 * KB, heap_size=64 * KB)
        )
        rt.enable_integrity(IntegrityConfig(seed=1, crash_at_record=4))
        rt.allocate(32 * KB)
        with pytest.raises(SimulatedCrashError):
            for page in range(8):
                rt.access(page * 4096, AccessKind.WRITE)
            raise AssertionError("crash plan never fired")
        report = rt.recover()
        assert report.total_actions >= 1
        checker = rt.integrity
        assert not checker._pending
        state = checker.journal.state()
        for obj_id in checker.journal.objects():
            version = max(v for (o, v) in state if o == obj_id)
            assert state[(obj_id, version)] in TERMINAL
        # Resume: the full pattern completes and the PTE view is sane.
        for page in range(8):
            rt.access(page * 4096, AccessKind.WRITE)
        for page in range(8):
            rt.access(page * 4096)
        resident, _dirty, check = rt.page_table_entry(7)
        assert resident
        assert check == checker.expected_check(7)

    def test_recover_without_integrity_raises(self):
        rt = FastswapRuntime(
            FastswapConfig(local_memory=4 * KB, heap_size=64 * KB)
        )
        with pytest.raises(RuntimeConfigError):
            rt.recover()


CORRUPTING = FaultPlan(
    seed=5,
    bitflip_rate=0.02,
    stale_read_rate=0.01,
    torn_write_rate=0.01,
    lost_writeback_rate=0.01,
)


class TestCorruptionDifferential:
    """Never-silently-wrong, pinned across all four runtime models."""

    @pytest.mark.parametrize("runtime", ["trackfm", "aifm", "fastswap", "hybrid"])
    def test_corrupted_run_matches_clean_or_raises(self, runtime):
        clean = run_traced("hashmap", runtime, seed=3)
        try:
            faulted = run_traced(
                "hashmap",
                runtime,
                seed=3,
                fault_plan=CORRUPTING,
                integrity=IntegrityConfig(seed=5, max_refetches=6),
            )
        except DataIntegrityError:
            return  # quarantine surfaced loudly — the allowed outcome
        assert faulted.value == clean.value
        m = faulted.metrics
        assert m.corruptions_detected > 0
        assert (
            m.corruptions_detected
            == m.corruptions_repaired + m.quarantined_objects
        )

    @pytest.mark.parametrize("runtime", ["trackfm", "aifm", "fastswap", "hybrid"])
    def test_integrity_without_faults_changes_no_values(self, runtime):
        clean = run_traced("stream", runtime, seed=1)
        checked = run_traced(
            "stream", runtime, seed=1, integrity=IntegrityConfig(seed=9)
        )
        assert checked.value == clean.value
        assert checked.metrics.corruptions_detected == 0
        # Verification cycles are charged, so runs are never cheaper.
        assert checked.cycles >= clean.cycles


class TestQuarantineEscalation:
    def _always_corrupt(self):
        return FaultPlan(seed=1, bitflip_rate=1.0).schedule()

    def test_trackfm_raises_and_unwinds(self):
        rt = TrackFMRuntime(
            PoolConfig(object_size=OBJ, local_memory=1 * KB, heap_size=64 * KB)
        )
        rt.enable_integrity(IntegrityConfig(max_refetches=1))
        rt.pool.backend.link.faults = self._always_corrupt()
        ptr = rt.tfm_malloc(4 * KB)
        with pytest.raises(DataIntegrityError):
            rt.access(ptr)
        assert rt.metrics.quarantined_objects == 1
        # The guard unwound: the object is still remote, not half-local.
        assert rt.pool.meta(0).is_remote
        assert rt.pool.resident_objects == 0

    def test_aifm_raises(self):
        rt = _aifm_runtime()
        rt.enable_integrity(IntegrityConfig(max_refetches=1))
        rt.pool.backend.link.faults = self._always_corrupt()
        with pytest.raises(DataIntegrityError) as err:
            rt.access(0)
        assert err.value.obj_id == 0
        assert rt.metrics.quarantined_objects == 1

    def test_fastswap_raises_and_discards_page(self):
        rt = FastswapRuntime(
            FastswapConfig(local_memory=4 * KB, heap_size=64 * KB)
        )
        rt.enable_integrity(IntegrityConfig(max_refetches=1))
        rt.backend.link.faults = self._always_corrupt()
        rt.allocate(16 * KB)
        with pytest.raises(DataIntegrityError):
            rt.access(0)
        resident, dirty, _check = rt.page_table_entry(0)
        assert not resident and not dirty
        assert rt.metrics.quarantined_objects == 1

    def test_hybrid_degrades_to_page_tier(self):
        hy = HybridRuntime(local_memory=8 * KB, heap_size=64 * KB, object_size=OBJ)
        hy.trackfm.enable_integrity(IntegrityConfig(max_refetches=0))
        hy.trackfm.pool.backend.link.faults = self._always_corrupt()
        handle = hy.allocate(4 * KB, Placement.OBJECTS)
        # Quarantine on the object tier is absorbed: the access is
        # served by the (independently verified) page tier instead.
        hy.access(handle, 0)
        assert hy.extra_metrics.degraded_accesses == 1
        assert hy.metrics.quarantined_objects == 1
        # The quarantined object keeps raising, so the shadow sticks.
        hy.access(handle, 0)
        assert hy.extra_metrics.degraded_accesses == 2


class TestIntegrityCLI:
    def test_trace_cli_reports_integrity_summary(self, tmp_path, capsys):
        from repro.trace.__main__ import main as trace_main

        rc = trace_main(
            [
                "--workload", "stream",
                "--runtime", "aifm",
                "--out", str(tmp_path / "t.json"),
                "--integrity", "seed=1,refetch=4",
                "--faults", "seed=3,bitflip=0.05",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "integrity = detected" in out
        # The installed config is scoped to the run, not the process.
        assert default_integrity_config() is None

    def test_trace_cli_integrity_off_prints_no_summary(self, tmp_path, capsys):
        from repro.trace.__main__ import main as trace_main

        rc = trace_main(
            [
                "--workload", "stream",
                "--runtime", "aifm",
                "--out", str(tmp_path / "t.json"),
                "--integrity", "off",
            ]
        )
        assert rc == 0
        assert "integrity =" not in capsys.readouterr().out
