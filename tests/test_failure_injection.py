"""Failure injection: the system's behaviour at its edges.

These tests pin down what happens when things go wrong — over-pinning,
heap exhaustion, use-after-free, evacuator deadlock — because a
production far-memory runtime's failure modes matter as much as its
fast paths.
"""

import pytest

from repro.aifm.pool import ObjectPool, PoolConfig
from repro.errors import (
    EvacuationError,
    OutOfMemoryError,
    PointerError,
    RuntimeConfigError,
)
from repro.machine.costs import AccessKind
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


def make_runtime(local_objects=2, heap_objects=16):
    return TrackFMRuntime(
        PoolConfig(
            object_size=4 * KB,
            local_memory=local_objects * 4 * KB,
            heap_size=heap_objects * 4 * KB,
        )
    )


class TestOverPinning:
    def test_pinning_beyond_capacity_fails_loudly(self):
        # The compile-time pin budget exists precisely because this
        # must never happen silently at run time.
        rt = make_runtime(local_objects=2)
        rt.tfm_malloc_pinned(2 * 4 * KB)  # fills local memory with pins
        with pytest.raises(EvacuationError):
            rt.tfm_malloc_pinned(4 * KB)

    def test_pinned_heap_starves_normal_traffic(self):
        rt = make_runtime(local_objects=2)
        rt.tfm_malloc_pinned(2 * 4 * KB)
        ptr = rt.tfm_malloc(4 * KB)
        with pytest.raises(EvacuationError):
            rt.access(ptr, AccessKind.READ)

    def test_stream_advancing_unpins_previous_object(self):
        # A chunk stream releases its previous object's pin when it
        # crosses to the next one, so two streams fit a 2-object budget.
        rt = make_runtime(local_objects=2)
        a = rt.tfm_malloc(4 * KB)
        b = rt.tfm_malloc(4 * KB)
        c = rt.tfm_malloc(4 * KB)
        rt.chunk_begin(0)
        rt.chunk_begin(1)
        rt.chunk_access(a, AccessKind.READ, stream=0)
        rt.chunk_access(b, AccessKind.READ, stream=1)
        rt.chunk_access(c, AccessKind.READ, stream=0)  # releases a's pin
        obj_a = rt.pool.object_of_offset(0)
        assert not rt.pool.residency.is_pinned(obj_a)
        rt.chunk_end(0)
        rt.chunk_end(1)

    def test_more_streams_than_local_objects_fails_loudly(self):
        # Three concurrent streams each pin one object; a 2-object
        # budget cannot satisfy the third.
        rt = make_runtime(local_objects=2)
        ptrs = [rt.tfm_malloc(4 * KB) for _ in range(3)]
        for stream in range(3):
            rt.chunk_begin(stream)
        rt.chunk_access(ptrs[0], AccessKind.READ, stream=0)
        rt.chunk_access(ptrs[1], AccessKind.READ, stream=1)
        with pytest.raises(EvacuationError):
            rt.chunk_access(ptrs[2], AccessKind.READ, stream=2)
        for stream in range(3):
            rt.chunk_end(stream)
        # After the streams close, the object is accessible again.
        rt.access(ptrs[2], AccessKind.READ)


class TestHeapExhaustion:
    def test_allocator_oom_propagates(self):
        rt = make_runtime(heap_objects=2)
        rt.tfm_malloc(2 * 4 * KB)
        with pytest.raises(OutOfMemoryError):
            rt.tfm_malloc(4 * KB)

    def test_free_then_reallocate(self):
        rt = make_runtime(heap_objects=2)
        p = rt.tfm_malloc(2 * 4 * KB)
        rt.tfm_free(p)
        q = rt.tfm_malloc(4 * KB)  # recycled
        rt.access(q)


class TestUseAfterFree:
    def test_guard_on_freed_pointer_does_not_crash(self):
        # Like real TrackFM: the guard cannot distinguish a dangling
        # TrackFM pointer from a live one — the access "succeeds"
        # against recycled/garbage memory.  This documents the (C-like)
        # semantics rather than pretending to detect it.
        rt = make_runtime()
        p = rt.tfm_malloc(64)
        rt.tfm_free(p)
        cycles = rt.access(p, AccessKind.READ)
        assert cycles > 0

    def test_double_free_detected(self):
        rt = make_runtime()
        p = rt.tfm_malloc(64)
        rt.tfm_free(p)
        with pytest.raises(PointerError):
            rt.tfm_free(p)

    def test_interior_pointer_free_rejected(self):
        rt = make_runtime()
        p = rt.tfm_malloc(4 * KB)
        with pytest.raises(PointerError):
            rt.tfm_free(p + 8)


class TestDegenerateConfigs:
    def test_one_object_of_local_memory_works(self):
        rt = make_runtime(local_objects=1)
        a = rt.tfm_malloc(4 * KB)
        b = rt.tfm_malloc(4 * KB)
        for _ in range(3):
            rt.access(a)
            rt.access(b)
        # Constant thrash, but correct: every switch is a slow path.
        assert rt.metrics.remote_fetches == 6

    def test_pool_rejects_zero_capacity(self):
        with pytest.raises(RuntimeConfigError):
            PoolConfig(object_size=4 * KB, local_memory=0, heap_size=1 * MB)

    def test_heap_smaller_than_object_rejected(self):
        with pytest.raises(RuntimeConfigError):
            PoolConfig(object_size=4 * KB, local_memory=4 * KB, heap_size=1 * KB)


class TestEvacuatorSafety:
    def test_flush_then_reuse(self):
        config = PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=64 * KB)
        pool = ObjectPool(config)
        pool.ensure_local(0, write=True)
        pool.ensure_local(1)
        flushed = pool.residency.flush()
        assert (0, True) in flushed
        # The pool keeps working after a full flush.
        hit, _ = pool.ensure_local(0)
        assert hit is False

    def test_materialize_respects_capacity(self):
        config = PoolConfig(object_size=4 * KB, local_memory=8 * KB, heap_size=64 * KB)
        pool = ObjectPool(config)
        pool.materialize(0, pinned=True)
        pool.materialize(1, pinned=True)
        with pytest.raises(EvacuationError):
            pool.materialize(2, pinned=True)
