"""Differential testing: random programs through the whole stack.

Hypothesis generates small (but arbitrary) loop programs in
*unoptimized style* — locals in stack slots, heap array accesses with
data-dependent indices — and asserts that three executions agree:

1. the untouched program under the plain interpreter;
2. after the O1 pipeline (mem2reg, folding, RLE, LICM, DCE, simplifycfg);
3. after the full TrackFM compilation, on a memory-constrained
   far-memory runtime.

Any divergence is a miscompile or a runtime-bridge bug.  This is the
strongest correctness net in the suite: it exercises every pass against
programs nobody hand-wrote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.aifm.pool import PoolConfig
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.values import Constant
from repro.machine.cache import AlwaysHitCache
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

ARRAY_ELEMS = 64  # heap array length; all indices are taken mod this

#: One abstract body operation: (kind, operand selector, constant).
Op = Tuple[str, int, int]

op_strategy = st.tuples(
    st.sampled_from(
        ["x_arith", "y_arith", "store_x", "load_x", "xy_mix", "store_y", "load_y"]
    ),
    st.integers(min_value=0, max_value=7),   # index multiplier selector
    st.integers(min_value=-50, max_value=50),  # arithmetic constant
)

program_strategy = st.tuples(
    st.integers(min_value=1, max_value=40),          # trip count
    st.lists(op_strategy, min_size=1, max_size=8),   # body ops
    st.sampled_from(["add", "sub", "mul", "xor"]),   # x's arithmetic op
)


def build_program(trip: int, ops: List[Op], x_op: str) -> Module:
    """Materialize one random program as unoptimized-style IR."""
    m = Module("fuzz")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")

    b = IRBuilder(entry)
    array = b.call(PTR, "malloc", [Constant(I64, ARRAY_ELEMS * 8)], name="arr")
    x_slot = b.alloca(8, name="x")
    y_slot = b.alloca(8, name="y")
    i_slot = b.alloca(8, name="islot")
    b.store(1, x_slot)
    b.store(2, y_slot)
    b.store(0, i_slot)
    b.br(header)

    b.set_block(header)
    i0 = b.load(I64, i_slot)
    b.condbr(b.icmp("slt", i0, trip), body, exit_)

    b.set_block(body)

    def index(selector: int):
        i = b.load(I64, i_slot)
        scaled = b.mul(i, selector + 1)
        return b.srem(scaled, ARRAY_ELEMS)

    for kind, selector, const in ops:
        if kind == "x_arith":
            x = b.load(I64, x_slot)
            b.store(getattr(b, x_op if x_op != "xor" else "xor")(x, const), x_slot)
        elif kind == "y_arith":
            y = b.load(I64, y_slot)
            b.store(b.add(y, const), y_slot)
        elif kind == "xy_mix":
            x = b.load(I64, x_slot)
            y = b.load(I64, y_slot)
            b.store(b.add(x, y), x_slot)
        elif kind == "store_x":
            x = b.load(I64, x_slot)
            b.store(x, b.gep(array, index(selector), 8))
        elif kind == "store_y":
            y = b.load(I64, y_slot)
            b.store(y, b.gep(array, index(selector), 8))
        elif kind == "load_x":
            v = b.load(I64, b.gep(array, index(selector), 8))
            b.store(v, x_slot)
        elif kind == "load_y":
            v = b.load(I64, b.gep(array, index(selector), 8))
            y = b.load(I64, y_slot)
            b.store(b.add(y, v), y_slot)
    i = b.load(I64, i_slot)
    b.store(b.add(i, 1), i_slot)
    b.br(header)

    b.set_block(exit_)
    xf = b.load(I64, x_slot)
    yf = b.load(I64, y_slot)
    b.ret(b.xor(xf, yf))
    return m


def far_run(module: Module) -> int:
    runtime = TrackFMRuntime(
        PoolConfig(object_size=256, local_memory=1 * KB, heap_size=1 * MB),
        cache=AlwaysHitCache(),
    )
    return TrackFMProgram(module, runtime, max_steps=5_000_000).run("main").value


class TestDifferential:
    @given(program_strategy)
    @settings(max_examples=60, deadline=None)
    def test_o1_preserves_semantics(self, program):
        trip, ops, x_op = program
        expected = Interpreter(build_program(trip, ops, x_op)).run("main").value
        module = build_program(trip, ops, x_op)
        from repro.compiler.optimize import O1Pipeline
        from repro.compiler.pass_manager import PassContext, PassManager

        PassManager([O1Pipeline()]).run(
            module, PassContext(config=CompilerConfig())
        )
        verify_module(module)
        assert Interpreter(module).run("main").value == expected

    @given(program_strategy)
    @settings(max_examples=40, deadline=None)
    def test_full_trackfm_compile_preserves_semantics(self, program):
        trip, ops, x_op = program
        expected = Interpreter(build_program(trip, ops, x_op)).run("main").value
        module = build_program(trip, ops, x_op)
        compiled = TrackFMCompiler(CompilerConfig()).compile(module)
        assert far_run(compiled.module) == expected

    @given(program_strategy)
    @settings(max_examples=25, deadline=None)
    def test_chunk_all_policy_preserves_semantics(self, program):
        trip, ops, x_op = program
        expected = Interpreter(build_program(trip, ops, x_op)).run("main").value
        module = build_program(trip, ops, x_op)
        compiled = TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.ALL)
        ).compile(module)
        assert far_run(compiled.module) == expected

    @given(program_strategy)
    @settings(max_examples=25, deadline=None)
    def test_naive_guards_preserve_semantics(self, program):
        trip, ops, x_op = program
        expected = Interpreter(build_program(trip, ops, x_op)).run("main").value
        module = build_program(trip, ops, x_op)
        compiled = TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.NONE, run_o1=False)
        ).compile(module)
        assert far_run(compiled.module) == expected

    @given(program_strategy)
    @settings(max_examples=20, deadline=None)
    def test_print_parse_roundtrip_preserves_semantics(self, program):
        from repro.ir import parse_module, print_module

        trip, ops, x_op = program
        original = build_program(trip, ops, x_op)
        expected = Interpreter(build_program(trip, ops, x_op)).run("main").value
        reparsed = parse_module(print_module(original))
        assert Interpreter(reparsed).run("main").value == expected
