"""Differential battery for the adaptive hybrid data plane.

The adaptive runtime's core contract is that the online path selector
is *invisible to program semantics*: whatever mix of object-tier and
page-tier service a run ends up with, the values a workload computes
are bit-identical to running the whole thing on either static tier.
This file pins that contract three ways —

* **replay differential**: every replayable workload in
  :mod:`repro.workloads` (stream, hashmap, graph BFS, external sort,
  phase) driven through the static object tier, the static page tier,
  and the adaptive runtime, with identical replay checksums;
* **IR differential**: the compiled workloads (stream, hashmap, chase)
  interpreted on the adaptive runtime, program values identical to the
  plain TrackFM runtime;
* **serving differential**: the webcache workload's completions
  fingerprint identical across runtime kinds.

Plus the migration ledger: ``tier_switches`` equals the decision flips
in the migration log, ``objects_migrated`` equals the objects those
flips moved, the phase-change workload forces at least one switch in
each direction, and everything replays bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import pytest

from repro.aifm.pool import PoolConfig
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.hybrid.placement import Placement
from repro.hybrid.runtime import AdaptiveHybridRuntime
from repro.hybrid.selector import SelectorConfig
from repro.machine.costs import AccessKind
from repro.trace.drivers import (
    ARRAY_BYTES,
    ELEM,
    HEAP,
    OBJECT_LOCAL,
    OBJECT_SIZE,
    PAGE_LOCAL,
    _PATTERNS,
    run_traced,
)
from repro.trackfm.runtime import TrackFMRuntime
from repro.workloads import (
    ExternalSortWorkload,
    GraphTraversalWorkload,
    PhaseShiftWorkload,
    WebCacheWorkload,
)

SEED = 5

#: A selector posture tight enough that the phase workload flips tiers
#: both ways (the wire-amplification margin on the sparse side is real
#: but modest — see docs/hybrid.md).
TIGHT = SelectorConfig(hysteresis=0.05, min_accesses=4)

PHASE = PhaseShiftWorkload(
    n_regions=4,
    region_bytes=4096,
    dense_stride=64,
    n_phases=4,
    dense_passes=16,
    sparse_probes=12,
    seed=3,
)


def _streams() -> dict:
    return {
        "stream": (ARRAY_BYTES, lambda: _PATTERNS["stream"](SEED)),
        "hashmap": (ARRAY_BYTES, lambda: _PATTERNS["hashmap"](SEED)),
        "graph": (
            GraphTraversalWorkload(seed=1).arena_bytes,
            lambda: GraphTraversalWorkload(seed=1).accesses(),
        ),
        "extsort": (
            ExternalSortWorkload(seed=2).arena_bytes,
            lambda: ExternalSortWorkload(seed=2).accesses(),
        ),
        "phase": (PHASE.arena_bytes, PHASE.accesses),
    }


def _checksum_replay(access, stream: Iterator[Tuple[int, AccessKind]]) -> int:
    checksum = 0
    for offset, kind in stream:
        access(offset, kind)
        checksum = (checksum * 31 + offset + 1) & 0xFFFFFFFF
    return checksum


def _object_tier(arena: int):
    rt = TrackFMRuntime(
        PoolConfig(object_size=OBJECT_SIZE, local_memory=OBJECT_LOCAL, heap_size=HEAP)
    )
    base = rt.tfm_malloc(arena)
    return rt, lambda off, kind: rt.access(base + off, kind, size=ELEM)


def _page_tier(arena: int):
    rt = FastswapRuntime(FastswapConfig(local_memory=PAGE_LOCAL, heap_size=HEAP))
    rt.allocate(arena)
    return rt, lambda off, kind: rt.access(off, kind, size=ELEM)


def _adaptive(arena: int, **overrides):
    rt = AdaptiveHybridRuntime(
        local_memory=OBJECT_LOCAL + PAGE_LOCAL,
        heap_size=HEAP,
        object_size=OBJECT_SIZE,
        epoch_accesses=overrides.pop("epoch_accesses", 128),
        selector_config=overrides.pop("selector_config", TIGHT),
        **overrides,
    )
    base = rt.tfm_malloc(arena)
    return rt, lambda off, kind: rt.access(base + off, kind, size=ELEM)


class TestReplayDifferential:
    """Adaptive replay checksums == both static tiers', per workload."""

    @pytest.mark.parametrize("workload", sorted(_streams()))
    def test_values_match_both_static_tiers(self, workload):
        arena, stream = _streams()[workload]
        obj_rt, obj_access = _object_tier(arena)
        page_rt, page_access = _page_tier(arena)
        ada_rt, ada_access = _adaptive(arena)
        obj_sum = _checksum_replay(obj_access, stream())
        page_sum = _checksum_replay(page_access, stream())
        ada_sum = _checksum_replay(ada_access, stream())
        assert ada_sum == obj_sum == page_sum
        # All three replays paid real far-memory traffic.
        assert obj_rt.metrics.remote_fetches > 0
        assert page_rt.metrics.major_faults > 0
        assert ada_rt.metrics.remote_fetches + ada_rt.metrics.major_faults > 0

    def test_driver_values_match_page_tier(self):
        # The trace drivers' own convention: replay drivers report the
        # offsets checksum, so adaptive must match fastswap exactly.
        for workload in ("stream", "hashmap"):
            ada = run_traced(workload, "adaptive", seed=SEED)
            fsw = run_traced(workload, "fastswap", seed=SEED)
            assert ada.value == fsw.value


class TestIRDifferential:
    """Compiled programs return identical values on the adaptive plane."""

    def _compiled(self, workload):
        from repro.compiler import CompilerConfig, TrackFMCompiler

        if workload == "chase":
            from repro.bench.regress import _build_chase_module

            module = _build_chase_module()
        else:
            from repro.trace.drivers import _IR_BUILDERS

            module = _IR_BUILDERS[workload](SEED)
        return TrackFMCompiler(CompilerConfig(object_size=OBJECT_SIZE)).compile(
            module
        ).module

    @pytest.mark.parametrize("workload", ["stream", "hashmap", "chase"])
    def test_program_value_matches_object_tier(self, workload):
        from repro.sim.irrun import TrackFMProgram

        static_rt = TrackFMRuntime(
            PoolConfig(
                object_size=OBJECT_SIZE, local_memory=OBJECT_LOCAL, heap_size=HEAP
            )
        )
        expected = (
            TrackFMProgram(self._compiled(workload), static_rt, max_steps=5_000_000)
            .run("main")
            .value
        )
        ada_rt = AdaptiveHybridRuntime(
            local_memory=OBJECT_LOCAL + PAGE_LOCAL,
            heap_size=HEAP,
            object_size=OBJECT_SIZE,
            epoch_accesses=128,
            selector_config=TIGHT,
        )
        got = (
            TrackFMProgram(self._compiled(workload), ada_rt, max_steps=5_000_000)
            .run("main")
            .value
        )
        assert got == expected


class TestServingDifferential:
    def test_webcache_fingerprint_matches_static_tiers(self):
        wl = WebCacheWorkload()
        adaptive = wl.value(runtime="adaptive")
        assert adaptive == wl.value(runtime="trackfm")
        assert adaptive == wl.value(runtime="fastswap")


class TestMigrationAccounting:
    def _phase_run(self, **overrides):
        rt, access = _adaptive(
            PHASE.arena_bytes, epoch_accesses=overrides.pop("epoch_accesses", 64)
        )
        checksum = _checksum_replay(access, PHASE.accesses())
        return rt, checksum

    def test_counters_equal_decision_flips_exactly(self):
        rt, _ = self._phase_run()
        assert rt.metrics.tier_switches == len(rt.migration_log)
        assert rt.metrics.objects_migrated == sum(
            event.objects for event in rt.migration_log
        )
        assert rt.metrics.tier_switches > 0
        assert rt.metrics.objects_migrated > 0

    def test_phase_change_switches_both_directions(self):
        rt, _ = self._phase_run()
        to_pages = [e for e in rt.migration_log if e.target is Placement.PAGES]
        to_objects = [e for e in rt.migration_log if e.target is Placement.OBJECTS]
        assert to_pages, "dense phases must move their hot region to pages"
        assert to_objects, "cooled regions must move back to object fetch"
        # Every event is internally consistent: a real flip of a real
        # region, at a recorded epoch, moving that region's objects.
        for event in rt.migration_log:
            assert event.source is not event.target
            assert 1 <= event.epoch <= rt.epochs
            assert event.objects > 0

    def test_final_placements_agree_with_log(self):
        rt, _ = self._phase_run()
        last: dict = {}
        for event in rt.migration_log:
            last[event.region] = event.target
        placements = rt.region_placements()
        for region, target in last.items():
            assert placements[region] is target

    def test_replay_is_bit_identical(self):
        a_rt, a_sum = self._phase_run()
        b_rt, b_sum = self._phase_run()
        assert a_sum == b_sum
        assert a_rt.migration_log == b_rt.migration_log
        assert a_rt.metrics.as_dict() == b_rt.metrics.as_dict()


class TestStaticEquivalence:
    """``adaptive=False`` is the plain TrackFM runtime, bit for bit."""

    def test_frozen_selector_matches_trackfm_exactly(self):
        arena, stream = _streams()["hashmap"]
        static_rt, static_access = _object_tier(arena)
        # The default split hands the object tier exactly OBJECT_LOCAL
        # bytes (page tier takes max(BASE_PAGE, half) = PAGE_LOCAL), so
        # the frozen hybrid and the static runtime are configured alike.
        frozen = AdaptiveHybridRuntime(
            local_memory=OBJECT_LOCAL + PAGE_LOCAL,
            heap_size=HEAP,
            object_size=OBJECT_SIZE,
            adaptive=False,
        )
        base = frozen.tfm_malloc(arena)
        frozen_access = lambda off, kind: frozen.access(base + off, kind, size=ELEM)
        static_sum = _checksum_replay(static_access, stream())
        frozen_sum = _checksum_replay(frozen_access, stream())
        assert frozen_sum == static_sum
        assert frozen.metrics.cycles == static_rt.metrics.cycles
        assert frozen.metrics.as_dict() == static_rt.metrics.as_dict()
        assert frozen.epochs == 0
        assert frozen.migration_log == []
