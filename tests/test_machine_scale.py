"""Working-set scaling preserves the quantities the figures plot."""

import pytest

from repro.errors import RuntimeConfigError
from repro.machine.scale import DEFAULT_SCALE, FINE_SCALE, ScaleModel
from repro.units import GB, MB


def test_default_scale_shrinks_gb_to_mb():
    assert DEFAULT_SCALE.bytes(12 * GB) == 12 * MB


def test_floor_prevents_degenerate_working_sets():
    model = ScaleModel(factor=1 << 30)
    assert model.bytes(1 * GB) >= model.floor_bytes


def test_bytes_aligned_to_granule():
    model = ScaleModel(factor=1000)
    assert model.bytes(10 * GB, granule=4096) % 4096 == 0


def test_count_scaling_with_floor():
    assert DEFAULT_SCALE.count(50_000_000) == 50_000_000 // 1024
    assert DEFAULT_SCALE.count(10, floor=1024) == 1024


def test_local_memory_fraction_preserved():
    ws = DEFAULT_SCALE.bytes(12 * GB)
    local = DEFAULT_SCALE.local_memory(ws, 0.25)
    assert abs(local / ws - 0.25) < 0.01


def test_local_memory_invalid_fraction():
    with pytest.raises(RuntimeConfigError):
        DEFAULT_SCALE.local_memory(1 * MB, 0.0)
    with pytest.raises(RuntimeConfigError):
        DEFAULT_SCALE.local_memory(1 * MB, 1.5)


def test_invalid_scale_rejected():
    with pytest.raises(RuntimeConfigError):
        ScaleModel(factor=0)
    with pytest.raises(RuntimeConfigError):
        ScaleModel(floor_bytes=100)


def test_fine_scale_larger_than_default():
    assert FINE_SCALE.bytes(12 * GB) > DEFAULT_SCALE.bytes(12 * GB)
