"""Seeded random IR program generator for differential fuzzing.

``generate_module(seed)`` builds one self-contained *unoptimized-style*
program (locals in ``alloca`` stack slots, so the O1 pipeline has real
work to do) that exercises every shape the TrackFM pipeline transforms:

* a heap **data array** scanned and updated with data-dependent indices;
* a heap **chase array** holding in-range indices, walked pointer-chase
  style (``j = C[j]``) so addresses depend on loaded values;
* **branches** — a diamond inside the loop body, picked per iteration
  from the running state;
* **calls** — a generated helper function with baked-in constants.

Everything is derived from ``random.Random(seed)`` at *build* time; the
emitted IR is deterministic, loop trips are bounded, and all indices are
reduced mod the array length, so any (seed, pipeline) pair terminates
with a defined result.  Differential tests interpret the raw module and
the fully compiled module and demand identical values.
"""

from __future__ import annotations

import random

from repro.ir import IRBuilder, I64, PTR, Module
from repro.ir.values import Constant

#: Heap array length (elements); every index is taken mod this.
ARRAY_ELEMS = 64
ELEM = 8

#: Body op kinds the generator draws from (weights roughly even, with
#: arithmetic slightly favoured so programs aren't all memory traffic).
_OP_KINDS = (
    "arith_x", "arith_x", "arith_y",
    "load_x", "load_y", "store_x", "store_y",
    "branch", "call", "chase",
)

_ARITH = ("add", "sub", "mul", "xor_")


def _arith(b: IRBuilder, op: str, a, c):
    if op == "xor_":
        return b.xor(a, c)
    return getattr(b, op)(a, c)


def _build_helper(m: Module, rng: random.Random) -> str:
    """A pure two-argument helper with seed-chosen constants."""
    name = "mix"
    f = m.add_function(name, I64, [I64, I64], ["a", "b"])
    b = IRBuilder(f.add_block("entry"))
    k1 = rng.randrange(1, 17)
    k2 = rng.randrange(-64, 64)
    op = rng.choice(_ARITH)
    t = _arith(b, op, b.mul(f.args[0], k1), f.args[1])
    b.ret(b.add(t, k2))
    return name


def generate_module(seed: int) -> Module:
    """One deterministic random program for ``seed``."""
    rng = random.Random(seed)
    m = Module(f"fuzz_seed{seed}")
    helper = _build_helper(m, rng)

    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    init_h = f.add_block("init_h")
    init_b = f.add_block("init_b")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")

    b = IRBuilder(entry)
    data = b.call(PTR, "malloc", [Constant(I64, ARRAY_ELEMS * ELEM)], name="data")
    chase = b.call(PTR, "malloc", [Constant(I64, ARRAY_ELEMS * ELEM)], name="chase")
    x_slot = b.alloca(8, name="x")
    y_slot = b.alloca(8, name="y")
    i_slot = b.alloca(8, name="islot")
    j_slot = b.alloca(8, name="jslot")
    b.store(rng.randrange(1, 8), x_slot)
    b.store(rng.randrange(1, 8), y_slot)
    b.store(0, i_slot)
    b.br(init_h)

    # Init loop: data[i] = i*k1 + k2; chase[i] = (i*stride + off) % N.
    k1 = rng.randrange(-16, 17)
    k2 = rng.randrange(-100, 101)
    stride = rng.choice((3, 5, 7, 11, 13, 19))
    off = rng.randrange(ARRAY_ELEMS)
    b.set_block(init_h)
    i0 = b.load(I64, i_slot)
    b.condbr(b.icmp("slt", i0, ARRAY_ELEMS), init_b, header)
    b.set_block(init_b)
    i = b.load(I64, i_slot)
    b.store(b.add(b.mul(i, k1), k2), b.gep(data, i, ELEM))
    target = b.srem(b.add(b.mul(i, stride), off), ARRAY_ELEMS)
    b.store(target, b.gep(chase, i, ELEM))
    b.store(b.add(i, 1), i_slot)
    b.br(init_h)

    # The main loop reuses the counter slot; its bound is seed-chosen.
    b.set_block(header)
    trip = rng.randrange(1, 49)
    b.store(0, i_slot)
    hdr_check = f.add_block("hdr_check")
    b.br(hdr_check)
    b.set_block(hdr_check)
    iv = b.load(I64, i_slot)
    b.condbr(b.icmp("slt", iv, trip), body, exit_)

    def index(selector: int):
        i = b.load(I64, i_slot)
        return b.srem(b.mul(i, selector), ARRAY_ELEMS)

    b.set_block(body)
    n_ops = rng.randrange(3, 11)
    for op_idx in range(n_ops):
        kind = rng.choice(_OP_KINDS)
        sel = rng.randrange(1, 9)
        const = rng.randrange(-50, 51)
        if kind == "arith_x":
            x = b.load(I64, x_slot)
            b.store(_arith(b, rng.choice(_ARITH), x, const), x_slot)
        elif kind == "arith_y":
            y = b.load(I64, y_slot)
            b.store(_arith(b, rng.choice(_ARITH), y, const), y_slot)
        elif kind == "load_x":
            v = b.load(I64, b.gep(data, index(sel), ELEM))
            b.store(v, x_slot)
        elif kind == "load_y":
            v = b.load(I64, b.gep(data, index(sel), ELEM))
            y = b.load(I64, y_slot)
            b.store(b.add(y, v), y_slot)
        elif kind == "store_x":
            x = b.load(I64, x_slot)
            b.store(x, b.gep(data, index(sel), ELEM))
        elif kind == "store_y":
            y = b.load(I64, y_slot)
            b.store(y, b.gep(data, index(sel), ELEM))
        elif kind == "branch":
            then_bb = f.add_block(f"then{op_idx}")
            else_bb = f.add_block(f"else{op_idx}")
            join_bb = f.add_block(f"join{op_idx}")
            x = b.load(I64, x_slot)
            b.condbr(b.icmp("eq", b.and_(x, 1), 0), then_bb, else_bb)
            b.set_block(then_bb)
            y = b.load(I64, y_slot)
            b.store(b.add(y, const), y_slot)
            b.br(join_bb)
            b.set_block(else_bb)
            y = b.load(I64, y_slot)
            b.store(b.xor(y, const), y_slot)
            b.br(join_bb)
            b.set_block(join_bb)
        elif kind == "call":
            x = b.load(I64, x_slot)
            y = b.load(I64, y_slot)
            b.store(b.call(I64, helper, [x, y]), x_slot)
        elif kind == "chase":
            # j = i % N; then j = chase[j] a few times, summing data[j].
            i = b.load(I64, i_slot)
            b.store(b.srem(i, ARRAY_ELEMS), j_slot)
            for _ in range(rng.randrange(2, 5)):
                j = b.load(I64, j_slot)
                b.store(b.load(I64, b.gep(chase, j, ELEM)), j_slot)
            j = b.load(I64, j_slot)
            v = b.load(I64, b.gep(data, j, ELEM))
            y = b.load(I64, y_slot)
            b.store(b.add(y, v), y_slot)
    i = b.load(I64, i_slot)
    b.store(b.add(i, 1), i_slot)
    b.br(hdr_check)

    b.set_block(exit_)
    xf = b.load(I64, x_slot)
    yf = b.load(I64, y_slot)
    b.ret(b.xor(xf, yf))
    return m
