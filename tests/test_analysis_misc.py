"""Def-use chains, call graph and the loop profiler."""

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.defuse import DefUse
from repro.analysis.profiler import profile_module
from repro.ir import IRBuilder, I64, PTR, VOID, Module
from repro.ir.instructions import Load
from repro.ir.values import Constant

from irprograms import build_sum_loop


class TestDefUse:
    def test_users(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        x = b.add(1, 2)
        y = b.add(x, 3)
        z = b.add(x, y)
        b.ret(z)
        uses = DefUse(f)
        assert len(uses.users(x)) == 2
        assert uses.has_users(y)
        assert {i.name for i in uses.users(y)} == {z.name}

    def test_transitive_users(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        x = b.add(1, 2)
        y = b.add(x, 3)
        z = b.add(y, 4)
        b.ret(z)
        uses = DefUse(f)
        trans = uses.transitive_users(x)
        assert y in trans and z in trans

    def test_is_dead(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        dead = b.add(1, 2)
        live = b.add(3, 4)
        b.ret(live)
        uses = DefUse(f)
        assert uses.is_dead(dead)
        assert not uses.is_dead(live)

    def test_calls_never_dead(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        c = b.call(PTR, "malloc", [Constant(I64, 8)])
        b.ret(0)
        assert not DefUse(f).is_dead(c)


class TestCallGraph:
    def build_module(self):
        m = Module()
        helper = m.add_function("helper", I64)
        hb = IRBuilder(helper.add_block("entry"))
        hb.ret(hb.call(I64, "leaf"))
        leaf = m.add_function("leaf", I64)
        lb = IRBuilder(leaf.add_block("entry"))
        lb.ret(1)
        other = m.add_function("unused", VOID)
        ob = IRBuilder(other.add_block("entry"))
        ob.ret()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.call(I64, "helper"))
        return m

    def test_callees(self):
        cg = CallGraph(self.build_module())
        assert cg.callees("main") == {"helper"}
        assert cg.callees("helper") == {"leaf"}
        assert cg.callees("leaf") == set()

    def test_reachability(self):
        cg = CallGraph(self.build_module())
        reach = cg.reachable_from("main")
        assert reach == {"main", "helper", "leaf"}
        assert "unused" not in reach

    def test_call_sites_of(self):
        cg = CallGraph(self.build_module())
        sites = cg.call_sites_of("leaf")
        assert len(sites) == 1
        assert sites[0].callee == "leaf"


class TestProfiler:
    def test_loop_profile_counts(self):
        m = build_sum_loop(n=50)
        data = profile_module(m)
        lp = data.profile_for("main", "header")
        assert lp is not None
        # Header runs n+1 times (n body trips + exit test), entered once.
        assert lp.header_executions == 51
        assert lp.entries == 1
        assert lp.average_trip_count == pytest.approx(51)
        assert lp.coverage > 0.5  # the loop dominates this program

    def test_block_counts(self):
        m = build_sum_loop(n=10)
        data = profile_module(m)
        assert data.count("main", "body") == 10
        assert data.count("main", "entry") == 1
        assert data.count("main", "nonexistent") == 0

    def test_hot_loops_sorted(self):
        m = build_sum_loop(n=30)
        data = profile_module(m)
        hot = data.hot_loops(min_coverage=0.01)
        assert hot and hot[0].header == "header"

    def test_total_dynamic_instructions_positive(self):
        data = profile_module(build_sum_loop(n=5))
        assert data.total_dynamic_instructions > 0
