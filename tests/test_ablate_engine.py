"""The ablation engine: registry, matrix, runner, scorer, report, gate.

The expensive end-to-end properties (bit-determinism of the full quick
report, agreement with the checked-in baseline) each run the matrix
once — a few seconds — and live in :class:`TestReportGate`; everything
else is unit-level and fast.
"""

import json
from pathlib import Path

import pytest

from repro.ablate.legacy import LEGACY_ABLATIONS, legacy_ablation, run_legacy
from repro.ablate.matrix import (
    CellSpec,
    IR_WORKLOADS,
    QUICK_RUNTIMES,
    WORKLOADS,
    applicable_components,
    cell_kind,
    generate_matrix,
    supported,
)
from repro.ablate.registry import (
    BASELINE,
    COMPONENTS,
    KNOB_NAMES,
    AblationError,
    component,
)
from repro.ablate.report import (
    baseline_path,
    build_report,
    check_baseline,
    dumps,
    render_markdown,
)
from repro.ablate.runner import CellRun, run_cell
from repro.ablate.score import (
    CRITICAL_SCORE,
    rank_components,
    score_pair,
    verdict_of,
)


class TestRegistry:
    def test_eleven_components_with_matching_knobs(self):
        assert len(COMPONENTS) == 11
        assert {c.name for c in COMPONENTS} == set(KNOB_NAMES)

    def test_baseline_all_on(self):
        assert all(BASELINE.enabled(name) for name in KNOB_NAMES)

    def test_off_flips_exactly_one(self):
        for name in KNOB_NAMES:
            knobs = BASELINE.off(name)
            assert not knobs.enabled(name)
            others = [n for n in KNOB_NAMES if n != name]
            assert all(knobs.enabled(n) for n in others)

    def test_off_unknown_raises(self):
        with pytest.raises(AblationError):
            BASELINE.off("warp_drive")

    def test_component_lookup(self):
        assert component("decode_cache").name == "decode_cache"
        with pytest.raises(AblationError):
            component("warp_drive")

    def test_knobs_frozen(self):
        with pytest.raises(Exception):
            BASELINE.decode_cache = False

    def test_predicates(self):
        ir = CellSpec("stream", "trackfm", "clean", "ir")
        assert component("decode_cache").applies(
            ir.kind, ir.workload, ir.runtime, ir.scenario
        )
        assert not component("decode_cache").applies(
            "pattern", "graph", "trackfm", "clean"
        )
        assert component("tenant_quotas").applies(
            "serving", "webcache", "trackfm", "clean"
        )
        assert not component("tenant_quotas").applies(
            "pattern", "graph", "trackfm", "clean"
        )
        assert component("retry_degrade").applies("pattern", "graph", "trackfm", "faulty")
        assert not component("retry_degrade").applies("pattern", "graph", "trackfm", "clean")
        assert component("adaptive_selector").applies(
            "pattern", "hashmap", "adaptive", "clean"
        )
        assert not component("adaptive_selector").applies(
            "pattern", "hashmap", "trackfm", "clean"
        )
        assert not component("adaptive_selector").applies(
            "serving", "webcache", "adaptive", "clean"
        )
        assert component("evacuation_policy").applies(
            "pattern", "graph", "fastswap", "clean"
        )
        assert component("evacuation_policy").applies("ir", "stream", "trackfm", "clean")
        assert not component("evacuation_policy").applies(
            "pattern", "graph", "adaptive", "clean"
        )


class TestMatrix:
    def test_quick_is_subset_of_full(self):
        quick = {spec.cell_id for spec in generate_matrix(quick=True)}
        full = {spec.cell_id for spec in generate_matrix(quick=False)}
        assert quick <= full
        assert len(quick) < len(full)

    def test_cell_ids_unique(self):
        for quick in (True, False):
            ids = [spec.cell_id for spec in generate_matrix(quick)]
            assert len(ids) == len(set(ids))

    def test_quick_covers_all_components_and_workloads(self):
        cells = generate_matrix(quick=True)
        covered = set()
        for spec in cells:
            covered |= {c.name for c in applicable_components(spec)}
        assert covered == {c.name for c in COMPONENTS}
        assert {spec.workload for spec in cells} == set(WORKLOADS)
        assert {spec.runtime for spec in cells} == set(QUICK_RUNTIMES)

    def test_chase_is_trackfm_only(self):
        assert supported("chase", "trackfm", "clean")
        for runtime in ("adaptive", "aifm", "fastswap", "hybrid"):
            assert not supported("chase", runtime, "clean")

    def test_webcache_has_no_corrupt_scenario(self):
        assert supported("webcache", "trackfm", "faulty")
        assert not supported("webcache", "trackfm", "corrupt")

    def test_cell_kinds(self):
        assert cell_kind("webcache", "trackfm") == "serving"
        for workload in IR_WORKLOADS:
            assert cell_kind(workload, "trackfm") == "ir"
        assert cell_kind("stream", "aifm") == "pattern"
        assert cell_kind("graph", "trackfm") == "pattern"

    def test_fault_plans_by_scenario(self):
        clean = CellSpec("graph", "trackfm", "clean", "pattern")
        faulty = CellSpec("graph", "trackfm", "faulty", "pattern")
        corrupt = CellSpec("graph", "trackfm", "corrupt", "pattern")
        assert clean.fault_plan() is None and clean.integrity_config() is None
        assert faulty.fault_plan().drop_rate > 0
        assert corrupt.fault_plan().bitflip_rate > 0
        assert corrupt.integrity_config() is not None


class TestRunner:
    def test_ir_cell_baseline(self):
        run = run_cell(CellSpec("stream", "trackfm", "clean", "ir"), BASELINE)
        assert run.ok
        assert run.cycles > 0
        assert run.host_units and run.host_units > 0
        assert run.metric("remote_fetches") > 0

    def test_decode_cache_off_costs_host_units(self):
        spec = CellSpec("stream", "trackfm", "clean", "ir")
        base = run_cell(spec, BASELINE)
        ablated = run_cell(spec, BASELINE.off("decode_cache"))
        assert ablated.host_units > base.host_units
        assert ablated.value == base.value
        # Engine choice never touches the simulated machine.
        assert ablated.cycles == base.cycles

    def test_chunking_off_costs_cycles(self):
        spec = CellSpec("stream", "trackfm", "clean", "ir")
        base = run_cell(spec, BASELINE)
        ablated = run_cell(spec, BASELINE.off("chunked_transforms"))
        assert ablated.cycles > base.cycles
        assert ablated.value == base.value

    def test_retry_degrade_off_costs_cycles_under_faults(self):
        spec = CellSpec("graph", "trackfm", "faulty", "pattern")
        base = run_cell(spec, BASELINE)
        ablated = run_cell(spec, BASELINE.off("retry_degrade"))
        assert base.ok and ablated.ok
        assert ablated.cycles > base.cycles

    def test_integrity_off_loses_detections(self):
        spec = CellSpec("hashmap", "trackfm", "corrupt", "ir")
        base = run_cell(spec, BASELINE)
        ablated = run_cell(spec, BASELINE.off("integrity_checking"))
        assert base.metric("corruptions_detected") > 0
        assert ablated.metric("corruptions_detected") == 0

    def test_adaptive_selector_off_costs_cycles(self):
        spec = CellSpec("hashmap", "adaptive", "clean", "pattern")
        base = run_cell(spec, BASELINE)
        ablated = run_cell(spec, BASELINE.off("adaptive_selector"))
        assert base.ok and ablated.ok
        assert ablated.value == base.value
        # Frozen selector = static object tier: no switches, more cycles.
        assert base.metric("tier_switches") > 0
        assert ablated.metric("tier_switches") == 0
        assert ablated.cycles > base.cycles

    def test_evacuation_policy_off_changes_reclaim_order(self):
        spec = CellSpec("graph", "trackfm", "clean", "pattern")
        base = run_cell(spec, BASELINE)
        ablated = run_cell(spec, BASELINE.off("evacuation_policy"))
        assert base.ok and ablated.ok
        assert ablated.value == base.value
        # LRU victims differ from CLOCK's second-chance picks here.
        assert ablated.cycles != base.cycles

    def test_run_is_deterministic(self):
        spec = CellSpec("graph", "hybrid", "faulty", "pattern")
        assert run_cell(spec, BASELINE).as_dict() == run_cell(spec, BASELINE).as_dict()

    def test_as_dict_sparse(self):
        run = CellRun(ok=True, value=1, cycles=2.0, host_units=None, metrics={})
        d = run.as_dict()
        assert "host_units" not in d and "latency" not in d and "error" not in d


class TestScorer:
    @staticmethod
    def _run(cycles, fetches=10.0, bytes_fetched=100.0, **kw):
        metrics = {"remote_fetches": fetches, "bytes_fetched": bytes_fetched}
        metrics.update(kw.pop("metrics", {}))
        return CellRun(
            ok=True, value=kw.pop("value", 1), cycles=cycles,
            host_units=kw.pop("host_units", None), metrics=metrics, **kw
        )

    def test_failed_run_is_critical(self):
        base = self._run(100.0)
        dead = CellRun(ok=False, value=None, cycles=0.0, host_units=None,
                       metrics={}, error="FarMemoryUnavailableError: gone")
        pair = score_pair(base, dead)
        assert pair["critical"] and pair["score"] == CRITICAL_SCORE

    def test_slower_ablated_scores_positive(self):
        pair = score_pair(self._run(100.0), self._run(200.0))
        assert pair["score"] > 0
        assert pair["deltas"]["cycles"] == pytest.approx(1.0)

    def test_faster_ablated_scores_negative(self):
        assert score_pair(self._run(100.0), self._run(50.0))["score"] < 0

    def test_value_divergence_penalized(self):
        same = score_pair(self._run(100.0), self._run(100.0))
        diverged = score_pair(self._run(100.0), self._run(100.0, value=2))
        assert diverged["score"] > same["score"]
        assert diverged.get("value_diverged")

    def test_lost_detections_penalized(self):
        base = self._run(100.0, metrics={"corruptions_detected": 5.0})
        ablated = self._run(100.0)
        assert score_pair(base, ablated)["protection"] > 0

    def test_verdicts(self):
        assert verdict_of(0.5, False) == "helps"
        assert verdict_of(-0.5, False) == "harmful"
        assert verdict_of(0.001, False) == "neutral"
        assert verdict_of(0.0, True) == "critical"

    def test_rank_orders_by_mean_score(self):
        per = {
            "a": [("cell", {"score": 1.0, "critical": False, "deltas": {}})],
            "b": [("cell", {"score": 3.0, "critical": False, "deltas": {}})],
        }
        rows = rank_components(per)
        assert [r["component"] for r in rows] == ["b", "a"]
        assert rows[0]["importance"] == pytest.approx(3.0)


class TestReportGate:
    def test_quick_report_matches_checked_in_baseline_bit_for_bit(self, tmp_path):
        # One measurement serves three assertions: the report is
        # bit-identical to the recorded baseline (determinism + gate),
        # ranks all ten components, and spans all six workloads.
        report = build_report(quick=True)
        recorded = baseline_path(Path("benchmarks/baselines"), quick=True)
        assert dumps(report) == recorded.read_text()
        ranked = [row["component"] for row in report["ranking"]]
        assert sorted(ranked) == sorted(c.name for c in COMPONENTS)
        cell_workloads = {cell.split("/")[0] for cell in report["cells"]}
        assert cell_workloads == set(WORKLOADS)

    def test_check_baseline_detects_drift(self, tmp_path):
        good = json.loads(
            (Path("benchmarks/baselines") / "ABLATION_quick.json").read_text()
        )
        good["weights"]["cycles"] = 999.0
        (tmp_path / "ABLATION_quick.json").write_text(dumps(good))
        result = check_baseline(tmp_path, quick=True)
        assert not result["ok"] and result["status"] == "mismatch"
        assert any("weights" in d["path"] for d in result["diff"])

    def test_check_baseline_missing(self, tmp_path):
        result = check_baseline(tmp_path / "nowhere", quick=True)
        assert not result["ok"] and result["status"] == "missing-baseline"
        assert "record" in result["hint"]

    def test_markdown_renders_every_component(self):
        report = json.loads(
            (Path("benchmarks/baselines") / "ABLATION_quick.json").read_text()
        )
        text = render_markdown(report)
        for comp in COMPONENTS:
            assert f"`{comp.name}`" in text


class TestLegacy:
    def test_nine_folded_ablations(self):
        assert len(LEGACY_ABLATIONS) == 9
        names = {spec.name for spec in LEGACY_ABLATIONS}
        assert "state_table" in names and "hybrid_memcached" in names

    def test_run_legacy_passes_its_check(self):
        result = run_legacy("heap_pruning")
        assert result is not None

    def test_unknown_legacy_raises(self):
        with pytest.raises(KeyError):
            legacy_ablation("warp_drive")


class TestCLI:
    def test_list_smoke(self, capsys):
        from repro.ablate.__main__ import main

        assert main(["--list", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "decode_cache" in out and "webcache/trackfm/clean" in out

    def test_bench_forwarding(self, capsys):
        from repro.bench.__main__ import main

        assert main(["ablate", "--list"]) == 0
        assert "tenant_quotas" in capsys.readouterr().out

    def test_check_missing_baseline_exits_nonzero(self, tmp_path, capsys):
        from repro.ablate.__main__ import main

        assert main(["--quick", "--check", "--baseline-dir", str(tmp_path)]) == 1
        assert "missing-baseline" in capsys.readouterr().err
