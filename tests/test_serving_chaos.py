"""Shard-knockout chaos tests for the sharded serving layer.

The serving layer's resilience contract, pinned end to end:

* a run that loses 1 of N shards mid-flight **completes** — no request
  raises, the lost shard's traffic degrades;
* keys placed on *surviving* shards finish with values **identical** to
  a fault-free run of the same schedule (shard = independent fault
  domain: the blast radius of a loss is exactly the lost shard's keys);
* the retry/degrade accounting is exact: every post-knockout remote
  access on the lost shard is counted, and fault-free shards count
  nothing;
* rebalancing removes the dead shard from the ring, re-seeds only its
  keys, and the cluster keeps serving.

Everything is deterministic, so equality assertions are exact.
"""

from __future__ import annotations

import os

import pytest

from repro.serve import (
    ChaosAction,
    ClusterConfig,
    ShardedCluster,
    TrafficConfig,
    default_value,
    generate_schedule,
    next_value,
    run_serving,
)
from repro.errors import RuntimeConfigError

N_KEYS = 256
N_SHARDS = 4
LOST = 1

#: Small local memory so the lost shard keeps taking cache misses after
#: the knockout — that is what exercises retries/timeouts/degrades.
TRAFFIC = TrafficConfig(
    clients=30, requests_per_client=40, n_keys=N_KEYS, seed=13
)


def _cluster(runtime: str = "aifm", **overrides) -> ShardedCluster:
    config = ClusterConfig(
        n_shards=N_SHARDS,
        n_keys=N_KEYS,
        runtime=runtime,
        local_memory=overrides.pop("local_memory", 512),
        **overrides,
    )
    return ShardedCluster(config)


def _knockout_chaos(schedule, rebalance: bool = True):
    mid = float(schedule.times[len(schedule) // 2])
    end = float(schedule.times[-1])
    chaos = [ChaosAction(mid, "lose", LOST)]
    if rebalance:
        chaos.append(ChaosAction((mid + end) / 2.0, "rebalance"))
    return chaos


@pytest.mark.parametrize(
    "runtime", ["aifm", "trackfm", "fastswap", "hybrid", "adaptive"]
)
def test_knockout_run_completes_every_request(runtime):
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster(runtime)
    report, _values = run_serving(cluster, schedule, _knockout_chaos(schedule))
    assert report.requests == len(schedule)
    assert report.cluster_stats["lost_shards"] == 1
    assert report.cluster_stats["rebalances"] == 1
    assert report.cluster_stats["reseeded_keys"] > 0


@pytest.mark.parametrize("runtime", ["aifm", "trackfm", "adaptive"])
def test_surviving_shard_values_identical_to_fault_free(runtime):
    schedule = generate_schedule(TRAFFIC)

    baseline_cluster = _cluster(runtime)
    _base_report, base_values = run_serving(baseline_cluster, schedule)
    # Original placement decides the blast radius.
    lost_keys = {
        k for k in range(N_KEYS) if baseline_cluster.place(k) == LOST
    }
    assert lost_keys, "schedule must place some keys on the lost shard"
    assert len(lost_keys) < N_KEYS

    chaos_cluster = _cluster(runtime)
    _chaos_report, chaos_values = run_serving(
        chaos_cluster, schedule, _knockout_chaos(schedule)
    )

    mismatched_survivors = [
        k for k in range(N_KEYS)
        if k not in lost_keys and base_values[k] != chaos_values[k]
    ]
    assert mismatched_survivors == [], (
        "shard loss leaked into surviving shards' values"
    )
    # Lost-shard keys re-seed to their initial values (cold-replica
    # restore) and only accumulate post-rebalance writes: their final
    # value must be reachable from the default by fewer writes than the
    # fault-free run applied (writes during the outage were lost).
    for k in lost_keys:
        writes_to_k = int(
            ((schedule.keys == k) & schedule.writes).sum()
        )
        reachable = set()
        v = default_value(k)
        for _ in range(writes_to_k + 1):
            reachable.add(v)
            v = next_value(k, v)
        assert chaos_values[k] in reachable
    # At least one lost key actually shed writes (the outage mattered).
    written_lost = [
        k for k in lost_keys
        if int(((schedule.keys == k) & schedule.writes).sum()) > 0
    ]
    assert any(chaos_values[k] != base_values[k] for k in written_lost)


def _adaptive_cluster_with_live_migrations() -> ShardedCluster:
    """An adaptive cluster whose shards hold page-tier regions.

    Each shard's selector is tightened (small hysteresis, short epochs)
    and fed a deterministic dense warmup sweep over its first slot
    region, flipping that region onto the page tier before any traffic
    lands — so knockout and ring rebalance hit shards with migrations
    already committed and a selector still watching.
    """
    from repro.hybrid.selector import SelectorConfig
    from repro.machine.costs import AccessKind

    cluster = _cluster("adaptive", local_memory=16 * 1024)
    for shard in cluster.shards.values():
        rt = shard.runtime
        rt.selector.config = SelectorConfig(hysteresis=0.05, min_accesses=4)
        rt.epoch_accesses = 64
        for _ in range(16):
            for off in range(0, 4096, 64):
                rt.access(shard._base + off, AccessKind.READ, size=8)
        rt.rebalance()
    return cluster


def test_adaptive_knockout_while_migrations_in_flight():
    from repro.hybrid.placement import Placement

    schedule = generate_schedule(TRAFFIC)
    base_cluster = _adaptive_cluster_with_live_migrations()
    # The warmup really moved regions onto the page tier, shard by shard.
    for shard in base_cluster.shards.values():
        assert shard.runtime.metrics.tier_switches >= 1
        assert Placement.PAGES in shard.runtime.region_placements().values()
    _base_report, base_values = run_serving(base_cluster, schedule)
    lost_keys = {k for k in range(N_KEYS) if base_cluster.place(k) == LOST}
    assert lost_keys and len(lost_keys) < N_KEYS

    chaos_cluster = _adaptive_cluster_with_live_migrations()
    report, chaos_values = run_serving(
        chaos_cluster, schedule, _knockout_chaos(schedule)
    )
    # Losing a shard with page-tier regions live completes the run ...
    assert report.requests == len(schedule)
    assert report.cluster_stats["lost_shards"] == 1
    assert report.cluster_stats["rebalances"] == 1
    # ... and the blast radius is still exactly the lost shard's keys.
    mismatched_survivors = [
        k for k in range(N_KEYS)
        if k not in lost_keys and base_values[k] != chaos_values[k]
    ]
    assert mismatched_survivors == []


def test_adaptive_knockout_run_is_deterministic():
    schedule = generate_schedule(TRAFFIC)
    chaos = _knockout_chaos(schedule)
    r1, v1 = run_serving(_adaptive_cluster_with_live_migrations(), schedule, chaos)
    r2, v2 = run_serving(_adaptive_cluster_with_live_migrations(), schedule, chaos)
    assert r1.to_dict() == r2.to_dict()
    assert v1 == v2


def test_exact_retry_and_degrade_accounting():
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster("aifm")
    report, _ = run_serving(cluster, schedule, _knockout_chaos(schedule))

    lost_metrics = cluster.shards[LOST].metrics
    survivors = [s for sid, s in cluster.shards.items() if sid != LOST]
    # Every drop/timeout/retry/degrade in the whole cluster happened on
    # the lost shard: shards are independent fault domains and the
    # survivors ran fault-free.
    for shard in survivors:
        m = shard.metrics
        assert m.drops == 0 and m.timeouts == 0 and m.retries == 0
        assert m.degraded_accesses == 0
    merged = report.metrics
    assert merged.get("drops", 0) == lost_metrics.drops
    assert merged.get("timeouts", 0) == lost_metrics.timeouts
    assert merged.get("retries", 0) == lost_metrics.retries
    assert merged.get("degraded_accesses", 0) == lost_metrics.degraded_accesses
    # The knockout actually bit: remote misses on the dead shard were
    # dropped, timed out, retried, and finally served degraded.
    assert lost_metrics.drops > 0
    assert lost_metrics.timeouts > 0
    assert lost_metrics.degraded_accesses > 0
    # Retry policy grants max_attempts-1 = 3 retries per exhausted
    # access until the breaker opens, then fails fast: retries are
    # bounded by 3 per degraded access.
    assert lost_metrics.retries <= 3 * lost_metrics.degraded_accesses


def test_rebalance_moves_only_lost_shard_keys():
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster("aifm")
    # Warm placement for every key, then snapshot it.
    before = {k: cluster.place(k) for k in range(N_KEYS)}
    cluster.lose_shard(LOST)
    moved = cluster.rebalance()
    after = {k: cluster.place(k) for k in range(N_KEYS)}
    changed = {k for k in range(N_KEYS) if before[k] != after[k]}
    assert changed == {k for k in range(N_KEYS) if before[k] == LOST}
    assert moved == len(changed)
    assert LOST not in cluster.ring
    assert all(after[k] != LOST for k in range(N_KEYS))
    # The cluster still serves every key.
    for k in sorted(changed)[:8]:
        result = cluster.serve(k)
        assert result.shard_id != LOST


def test_chaos_run_is_deterministic():
    schedule = generate_schedule(TRAFFIC)
    chaos = _knockout_chaos(schedule)
    r1, v1 = run_serving(_cluster("aifm"), schedule, chaos)
    r2, v2 = run_serving(_cluster("aifm"), schedule, chaos)
    assert r1.to_dict() == r2.to_dict()
    assert v1 == v2


def test_degraded_writes_are_not_durable():
    cluster = _cluster("aifm")
    key = next(k for k in range(N_KEYS) if cluster.place(k) == LOST)
    first = cluster.serve(key, write=True)
    assert not first.degraded
    durable = cluster.read_value(key)
    cluster.lose_shard(LOST)
    lost_write = cluster.serve(key, write=True)
    assert lost_write.degraded
    # The acknowledged value diverges from the durable store.
    assert cluster.read_value(key) == durable


def test_cannot_lose_the_last_shard():
    cluster = ShardedCluster(ClusterConfig(n_shards=1, n_keys=16))
    with pytest.raises(RuntimeConfigError):
        cluster.lose_shard(0)
    multi = _cluster("aifm")
    multi.lose_shard(0)
    multi.lose_shard(2)
    multi.lose_shard(3)
    with pytest.raises(RuntimeConfigError):
        multi.lose_shard(1)


def test_join_shard_migrates_with_evacuator():
    cluster = _cluster("aifm", local_memory=8 * 1024)
    schedule = generate_schedule(
        TrafficConfig(clients=10, requests_per_client=30, n_keys=N_KEYS, seed=5)
    )
    report, values_before = run_serving(cluster, schedule)
    del report
    placement_before = {k: cluster.place(k) for k in range(N_KEYS)}
    new_sid = cluster.join_shard()
    assert new_sid == N_SHARDS
    moved = {
        k for k in range(N_KEYS) if cluster.place(k) != placement_before[k]
    }
    assert moved, "a joining shard must take over some keys"
    # Every moved key kept its durable value through the migration.
    for k in moved:
        assert cluster.read_value(k) == values_before[k]
    assert cluster.stats.migrated_keys == len(moved)


# -- replicated clusters (R >= 2): lossless knockout survival ---------------


def test_replicated_knockout_loses_no_data():
    """The headline replication guarantee: with R=2, a single-shard
    knockout re-seeds **zero** keys and every final value — including
    the dead shard's — is identical to the fault-free run.  Detection
    is heartbeat-driven (the scripted rebalance arrives after failover
    already happened and becomes a no-op)."""
    schedule = generate_schedule(TRAFFIC)
    _base_report, base_values = run_serving(
        _cluster("aifm", replication=2), schedule
    )
    cluster = _cluster("aifm", replication=2)
    report, values = run_serving(cluster, schedule, _knockout_chaos(schedule))
    assert report.requests == len(schedule)
    stats = report.cluster_stats
    assert stats["lost_shards"] == 1
    assert stats["reseeded_keys"] == 0
    assert stats["failovers"] == 1
    assert stats["promoted_keys"] > 0
    assert stats["rebalances"] == 0  # detection beat the scripted rebalance
    mismatched = [k for k in range(N_KEYS) if values[k] != base_values[k]]
    assert mismatched == [], "replication must make shard loss invisible"


def test_replicated_failover_accounting_exact():
    cluster = _cluster("aifm", replication=2)
    affected = [k for k in range(N_KEYS) if LOST in cluster.replicas(k)]
    assert affected and len(affected) < N_KEYS
    for k in range(N_KEYS):
        cluster.serve(k, write=True)
    cluster.lose_shard(LOST)
    moved = cluster.failover([LOST])
    # Exactly the keys replicated on the dead shard move, each promoting
    # one fresh copy onto its replacement replica (R=2: one survivor).
    assert moved == len(affected)
    assert cluster.stats.failovers == 1
    assert cluster.stats.promoted_keys == len(affected)
    assert cluster.stats.reseeded_keys == 0
    assert LOST not in cluster.ring
    merged = cluster.merged_metrics()
    assert merged.failovers == 1
    assert merged.replica_writes > 0
    # Every key — the dead shard's included — kept its one-write chain.
    for k in range(N_KEYS):
        assert cluster.read_value(k) == next_value(k, default_value(k))
    # Failover left nothing stale behind.
    assert cluster.anti_entropy() == 0


def test_gray_partition_heals_via_anti_entropy():
    """A partitioned shard keeps answering heartbeats, so the detector
    stays silent and its replicas silently go stale; after the links
    heal, one anti-entropy sweep reconciles them and the run's final
    values match fault-free exactly."""
    schedule = generate_schedule(TRAFFIC)
    end = float(schedule.times[-1])
    victim = 2
    chaos = [
        ChaosAction(end * 0.25, "partition", victim),
        ChaosAction(end * 0.70, "heal", victim),
        ChaosAction(end * 0.75, "anti_entropy"),
    ]
    _base_report, base_values = run_serving(
        _cluster("aifm", replication=2), schedule
    )
    cluster = _cluster("aifm", replication=2)
    report, values = run_serving(cluster, schedule, chaos)
    stats = report.cluster_stats
    assert stats["partitions"] == 1
    assert stats["healed_stale_replicas"] > 0
    assert "failovers" not in stats, "a gray partition must not trip failover"
    assert values == base_values
    assert cluster.anti_entropy() == 0  # converged


def test_replicated_chaos_run_is_deterministic():
    schedule = generate_schedule(TRAFFIC)
    chaos = _knockout_chaos(schedule)
    r1, v1 = run_serving(_cluster("aifm", replication=2), schedule, chaos)
    r2, v2 = run_serving(_cluster("aifm", replication=2), schedule, chaos)
    assert r1.to_dict() == r2.to_dict()
    assert v1 == v2


def test_unreplicated_path_untouched_by_replication_plumbing():
    """R=1 reports keep their historical exact shape: no replication
    counters appear anywhere in a plain knockout run's report."""
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster("aifm")
    report, _ = run_serving(cluster, schedule, _knockout_chaos(schedule))
    stats = report.cluster_stats
    for key in ("failovers", "promoted_keys", "healed_stale_replicas",
                "partitions"):
        assert key not in stats
    for key in ("replica_writes", "quorum_reads", "read_repairs",
                "failovers", "stale_replicas_healed"):
        assert key not in report.metrics


#: Seeded chaos-schedule fuzzing: ``REPRO_SERVE_CHAOS_SEEDS`` widens the
#: corpus (the nightly fuzz workflow runs 25); the PR gate runs 3.
SERVE_CHAOS_SEEDS = list(
    range(int(os.environ.get("REPRO_SERVE_CHAOS_SEEDS", "3")))
)


@pytest.mark.parametrize("seed", SERVE_CHAOS_SEEDS)
def test_fuzz_replicated_partition_then_knockout(seed):
    """Seeded knockout+partition schedules: every combination of a gray
    partition (healed and reconciled) followed by a detector-driven
    knockout must re-seed nothing and end bit-identical to fault-free."""
    traffic = TrafficConfig(
        clients=20, requests_per_client=30, n_keys=N_KEYS, seed=101 + seed
    )
    schedule = generate_schedule(traffic)
    end = float(schedule.times[-1])
    victim = seed % N_SHARDS
    partitioned = (victim + 1 + seed // N_SHARDS) % N_SHARDS
    if partitioned == victim:
        partitioned = (victim + 1) % N_SHARDS
    chaos = [
        ChaosAction(end * 0.15, "partition", partitioned),
        ChaosAction(end * 0.35, "heal", partitioned),
        ChaosAction(end * 0.40, "anti_entropy"),
        ChaosAction(end * 0.60, "lose", victim),
    ]
    _base_report, base_values = run_serving(
        _cluster("aifm", replication=2), schedule
    )
    cluster = _cluster("aifm", replication=2)
    report, values = run_serving(cluster, schedule, chaos)
    assert report.requests == len(schedule)
    stats = report.cluster_stats
    assert stats["reseeded_keys"] == 0
    assert stats["failovers"] == 1
    assert stats["partitions"] == 1
    assert values == base_values
    assert cluster.anti_entropy() == 0
