"""Shard-knockout chaos tests for the sharded serving layer.

The serving layer's resilience contract, pinned end to end:

* a run that loses 1 of N shards mid-flight **completes** — no request
  raises, the lost shard's traffic degrades;
* keys placed on *surviving* shards finish with values **identical** to
  a fault-free run of the same schedule (shard = independent fault
  domain: the blast radius of a loss is exactly the lost shard's keys);
* the retry/degrade accounting is exact: every post-knockout remote
  access on the lost shard is counted, and fault-free shards count
  nothing;
* rebalancing removes the dead shard from the ring, re-seeds only its
  keys, and the cluster keeps serving.

Everything is deterministic, so equality assertions are exact.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    ChaosAction,
    ClusterConfig,
    ShardedCluster,
    TrafficConfig,
    default_value,
    generate_schedule,
    next_value,
    run_serving,
)
from repro.errors import RuntimeConfigError

N_KEYS = 256
N_SHARDS = 4
LOST = 1

#: Small local memory so the lost shard keeps taking cache misses after
#: the knockout — that is what exercises retries/timeouts/degrades.
TRAFFIC = TrafficConfig(
    clients=30, requests_per_client=40, n_keys=N_KEYS, seed=13
)


def _cluster(runtime: str = "aifm", **overrides) -> ShardedCluster:
    config = ClusterConfig(
        n_shards=N_SHARDS,
        n_keys=N_KEYS,
        runtime=runtime,
        local_memory=overrides.pop("local_memory", 512),
        **overrides,
    )
    return ShardedCluster(config)


def _knockout_chaos(schedule, rebalance: bool = True):
    mid = float(schedule.times[len(schedule) // 2])
    end = float(schedule.times[-1])
    chaos = [ChaosAction(mid, "lose", LOST)]
    if rebalance:
        chaos.append(ChaosAction((mid + end) / 2.0, "rebalance"))
    return chaos


@pytest.mark.parametrize(
    "runtime", ["aifm", "trackfm", "fastswap", "hybrid", "adaptive"]
)
def test_knockout_run_completes_every_request(runtime):
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster(runtime)
    report, _values = run_serving(cluster, schedule, _knockout_chaos(schedule))
    assert report.requests == len(schedule)
    assert report.cluster_stats["lost_shards"] == 1
    assert report.cluster_stats["rebalances"] == 1
    assert report.cluster_stats["reseeded_keys"] > 0


@pytest.mark.parametrize("runtime", ["aifm", "trackfm", "adaptive"])
def test_surviving_shard_values_identical_to_fault_free(runtime):
    schedule = generate_schedule(TRAFFIC)

    baseline_cluster = _cluster(runtime)
    _base_report, base_values = run_serving(baseline_cluster, schedule)
    # Original placement decides the blast radius.
    lost_keys = {
        k for k in range(N_KEYS) if baseline_cluster.place(k) == LOST
    }
    assert lost_keys, "schedule must place some keys on the lost shard"
    assert len(lost_keys) < N_KEYS

    chaos_cluster = _cluster(runtime)
    _chaos_report, chaos_values = run_serving(
        chaos_cluster, schedule, _knockout_chaos(schedule)
    )

    mismatched_survivors = [
        k for k in range(N_KEYS)
        if k not in lost_keys and base_values[k] != chaos_values[k]
    ]
    assert mismatched_survivors == [], (
        "shard loss leaked into surviving shards' values"
    )
    # Lost-shard keys re-seed to their initial values (cold-replica
    # restore) and only accumulate post-rebalance writes: their final
    # value must be reachable from the default by fewer writes than the
    # fault-free run applied (writes during the outage were lost).
    for k in lost_keys:
        writes_to_k = int(
            ((schedule.keys == k) & schedule.writes).sum()
        )
        reachable = set()
        v = default_value(k)
        for _ in range(writes_to_k + 1):
            reachable.add(v)
            v = next_value(k, v)
        assert chaos_values[k] in reachable
    # At least one lost key actually shed writes (the outage mattered).
    written_lost = [
        k for k in lost_keys
        if int(((schedule.keys == k) & schedule.writes).sum()) > 0
    ]
    assert any(chaos_values[k] != base_values[k] for k in written_lost)


def _adaptive_cluster_with_live_migrations() -> ShardedCluster:
    """An adaptive cluster whose shards hold page-tier regions.

    Each shard's selector is tightened (small hysteresis, short epochs)
    and fed a deterministic dense warmup sweep over its first slot
    region, flipping that region onto the page tier before any traffic
    lands — so knockout and ring rebalance hit shards with migrations
    already committed and a selector still watching.
    """
    from repro.hybrid.selector import SelectorConfig
    from repro.machine.costs import AccessKind

    cluster = _cluster("adaptive", local_memory=16 * 1024)
    for shard in cluster.shards.values():
        rt = shard.runtime
        rt.selector.config = SelectorConfig(hysteresis=0.05, min_accesses=4)
        rt.epoch_accesses = 64
        for _ in range(16):
            for off in range(0, 4096, 64):
                rt.access(shard._base + off, AccessKind.READ, size=8)
        rt.rebalance()
    return cluster


def test_adaptive_knockout_while_migrations_in_flight():
    from repro.hybrid.placement import Placement

    schedule = generate_schedule(TRAFFIC)
    base_cluster = _adaptive_cluster_with_live_migrations()
    # The warmup really moved regions onto the page tier, shard by shard.
    for shard in base_cluster.shards.values():
        assert shard.runtime.metrics.tier_switches >= 1
        assert Placement.PAGES in shard.runtime.region_placements().values()
    _base_report, base_values = run_serving(base_cluster, schedule)
    lost_keys = {k for k in range(N_KEYS) if base_cluster.place(k) == LOST}
    assert lost_keys and len(lost_keys) < N_KEYS

    chaos_cluster = _adaptive_cluster_with_live_migrations()
    report, chaos_values = run_serving(
        chaos_cluster, schedule, _knockout_chaos(schedule)
    )
    # Losing a shard with page-tier regions live completes the run ...
    assert report.requests == len(schedule)
    assert report.cluster_stats["lost_shards"] == 1
    assert report.cluster_stats["rebalances"] == 1
    # ... and the blast radius is still exactly the lost shard's keys.
    mismatched_survivors = [
        k for k in range(N_KEYS)
        if k not in lost_keys and base_values[k] != chaos_values[k]
    ]
    assert mismatched_survivors == []


def test_adaptive_knockout_run_is_deterministic():
    schedule = generate_schedule(TRAFFIC)
    chaos = _knockout_chaos(schedule)
    r1, v1 = run_serving(_adaptive_cluster_with_live_migrations(), schedule, chaos)
    r2, v2 = run_serving(_adaptive_cluster_with_live_migrations(), schedule, chaos)
    assert r1.to_dict() == r2.to_dict()
    assert v1 == v2


def test_exact_retry_and_degrade_accounting():
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster("aifm")
    report, _ = run_serving(cluster, schedule, _knockout_chaos(schedule))

    lost_metrics = cluster.shards[LOST].metrics
    survivors = [s for sid, s in cluster.shards.items() if sid != LOST]
    # Every drop/timeout/retry/degrade in the whole cluster happened on
    # the lost shard: shards are independent fault domains and the
    # survivors ran fault-free.
    for shard in survivors:
        m = shard.metrics
        assert m.drops == 0 and m.timeouts == 0 and m.retries == 0
        assert m.degraded_accesses == 0
    merged = report.metrics
    assert merged.get("drops", 0) == lost_metrics.drops
    assert merged.get("timeouts", 0) == lost_metrics.timeouts
    assert merged.get("retries", 0) == lost_metrics.retries
    assert merged.get("degraded_accesses", 0) == lost_metrics.degraded_accesses
    # The knockout actually bit: remote misses on the dead shard were
    # dropped, timed out, retried, and finally served degraded.
    assert lost_metrics.drops > 0
    assert lost_metrics.timeouts > 0
    assert lost_metrics.degraded_accesses > 0
    # Retry policy grants max_attempts-1 = 3 retries per exhausted
    # access until the breaker opens, then fails fast: retries are
    # bounded by 3 per degraded access.
    assert lost_metrics.retries <= 3 * lost_metrics.degraded_accesses


def test_rebalance_moves_only_lost_shard_keys():
    schedule = generate_schedule(TRAFFIC)
    cluster = _cluster("aifm")
    # Warm placement for every key, then snapshot it.
    before = {k: cluster.place(k) for k in range(N_KEYS)}
    cluster.lose_shard(LOST)
    moved = cluster.rebalance()
    after = {k: cluster.place(k) for k in range(N_KEYS)}
    changed = {k for k in range(N_KEYS) if before[k] != after[k]}
    assert changed == {k for k in range(N_KEYS) if before[k] == LOST}
    assert moved == len(changed)
    assert LOST not in cluster.ring
    assert all(after[k] != LOST for k in range(N_KEYS))
    # The cluster still serves every key.
    for k in sorted(changed)[:8]:
        result = cluster.serve(k)
        assert result.shard_id != LOST


def test_chaos_run_is_deterministic():
    schedule = generate_schedule(TRAFFIC)
    chaos = _knockout_chaos(schedule)
    r1, v1 = run_serving(_cluster("aifm"), schedule, chaos)
    r2, v2 = run_serving(_cluster("aifm"), schedule, chaos)
    assert r1.to_dict() == r2.to_dict()
    assert v1 == v2


def test_degraded_writes_are_not_durable():
    cluster = _cluster("aifm")
    key = next(k for k in range(N_KEYS) if cluster.place(k) == LOST)
    first = cluster.serve(key, write=True)
    assert not first.degraded
    durable = cluster.read_value(key)
    cluster.lose_shard(LOST)
    lost_write = cluster.serve(key, write=True)
    assert lost_write.degraded
    # The acknowledged value diverges from the durable store.
    assert cluster.read_value(key) == durable


def test_cannot_lose_the_last_shard():
    cluster = ShardedCluster(ClusterConfig(n_shards=1, n_keys=16))
    with pytest.raises(RuntimeConfigError):
        cluster.lose_shard(0)
    multi = _cluster("aifm")
    multi.lose_shard(0)
    multi.lose_shard(2)
    multi.lose_shard(3)
    with pytest.raises(RuntimeConfigError):
        multi.lose_shard(1)


def test_join_shard_migrates_with_evacuator():
    cluster = _cluster("aifm", local_memory=8 * 1024)
    schedule = generate_schedule(
        TrafficConfig(clients=10, requests_per_client=30, n_keys=N_KEYS, seed=5)
    )
    report, values_before = run_serving(cluster, schedule)
    del report
    placement_before = {k: cluster.place(k) for k in range(N_KEYS)}
    new_sid = cluster.join_shard()
    assert new_sid == N_SHARDS
    moved = {
        k for k in range(N_KEYS) if cluster.place(k) != placement_before[k]
    }
    assert moved, "a joining shard must take over some keys"
    # Every moved key kept its durable value through the migration.
    for k in moved:
        assert cluster.read_value(k) == values_before[k]
    assert cluster.stats.migrated_keys == len(moved)
