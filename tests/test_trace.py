"""Unit tests for the trace layer: tracer, exporters, CLI, wiring."""

from __future__ import annotations

import json

import pytest

from repro.aifm.pool import PoolConfig
from repro.errors import TraceError
from repro.machine.costs import AccessKind, GuardKind
from repro.trace import (
    CAT_FETCH,
    CAT_GUARD,
    CAT_PASS,
    NULL_TRACER,
    NullTracer,
    StreamingHistogram,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    normalize_events,
    run_traced,
    to_chrome_events,
)
from repro.trace.export import PID_COMPILER, PID_RUNTIME
from repro.units import KB, MB


class TestNullTracer:
    def test_disabled_and_shared(self):
        from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
        from repro.trackfm.runtime import TrackFMRuntime

        assert NULL_TRACER.enabled is False
        rt = TrackFMRuntime(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=1 * MB)
        )
        fs = FastswapRuntime(FastswapConfig(local_memory=16 * KB, heap_size=1 * MB))
        assert rt.tracer is NULL_TRACER
        assert rt.guards.tracer is NULL_TRACER
        assert fs.tracer is NULL_TRACER

    def test_all_methods_are_noops(self):
        t = NullTracer()
        t.emit("cat", "name", 0.0)
        t.guard(GuardKind.FAST, 1, AccessKind.READ, 0.0, 21.0)
        t.fetch(256, 1000.0, 0.0)
        t.evict(256, 0.0)
        t.prefetch(256, 0.0, useful=True)
        t.pass_event("p", 0.0, 1.0, 10, 12)
        t.counter("c", 0.0, x=1)
        with t.phase("p"):
            pass
        # Histogram sink is a throwaway, not shared state.
        t.histogram("h").record(5)
        assert t.histogram("h").count == 0


class TestTracer:
    def test_categories_and_counts(self):
        t = Tracer()
        t.guard(GuardKind.FAST, 3, AccessKind.READ, 100.0, 21.0)
        t.guard(GuardKind.SLOW, 3, AccessKind.WRITE, 200.0, 700.0)
        t.fetch(256, 31000.0, 300.0, obj_id=3)
        t.evict(256, 400.0, dirty=1)
        t.prefetch(512, 500.0, useful=False, n=2)
        counts = t.category_counts()
        assert counts == {"guard": 2, "fetch": 1, "evict": 1, "prefetch": 1}
        assert t.events[0].name == GuardKind.FAST.value

    def test_fetch_feeds_histograms(self):
        t = Tracer()
        t.fetch(512, 30000.0, 0.0, n=2)
        t.fetch(256, 50000.0, 1.0)
        lat = t.histograms["fetch_latency_cycles"]
        assert lat.count == 3
        assert t.histograms["fetch_bytes"].count == 3

    def test_max_events_drops_not_grows(self):
        t = Tracer(max_events=3)
        for i in range(10):
            t.counter("c", float(i), x=i)
        assert len(t.events) == 3
        assert t.dropped == 7
        assert t.summary()["dropped"] == 7

    def test_phase_stamps_event_count_without_clock(self):
        t = Tracer()
        with t.phase("span"):
            t.counter("inside", 1.0)
        names = [(e.name, e.ph) for e in t.events]
        assert names == [("span", "B"), ("inside", "C"), ("span", "E")]


class TestHistogram:
    def test_small_values_exact(self):
        h = StreamingHistogram()
        for v in (1, 2, 3, 3, 3, 10):
            h.record(v)
        assert h.percentile(50) == 3
        assert h.min == 1 and h.max == 10

    def test_bad_merge_rejected(self):
        with pytest.raises(TraceError):
            StreamingHistogram(sub_bits=4).merge(StreamingHistogram(sub_bits=5))


class TestChromeExport:
    def _trace(self):
        t = Tracer()
        t.pass_event("mem2reg", 1000.0, 250.0, 100, 80)
        t.guard(GuardKind.FAST, 0, AccessKind.READ, 10.0, 21.0)
        t.fetch(256, 31000.0, 20.0, obj_id=1)
        t.counter("residency", 30.0, resident=4)
        return t

    def test_two_clock_domains_as_processes(self):
        rows = to_chrome_events(self._trace().events)
        meta = [r for r in rows if r["ph"] == "M"]
        assert {r["pid"] for r in meta} == {PID_RUNTIME, PID_COMPILER}
        pass_rows = [r for r in rows if r.get("cat") == CAT_PASS]
        assert pass_rows[0]["pid"] == PID_COMPILER
        assert pass_rows[0]["ph"] == "X"
        assert pass_rows[0]["dur"] == 250.0
        guard_rows = [r for r in rows if r.get("cat") == CAT_GUARD]
        assert guard_rows[0]["pid"] == PID_RUNTIME

    def test_file_is_valid_json_with_summary(self, tmp_path):
        out = tmp_path / "trace.json"
        export_chrome_trace(self._trace(), str(out), metadata={"seed": 1})
        data = json.loads(out.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["otherData"]["seed"] == 1
        assert data["otherData"]["summary"]["events"] == 4

    def test_jsonl_round_trips(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        n = export_jsonl(self._trace(), str(out))
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == n == 4
        assert lines[1]["cat"] == CAT_GUARD

    def test_none_args_dropped(self):
        t = Tracer()
        t.fetch(256, 100.0, 0.0, obj_id=None)
        rows = to_chrome_events(t.events)
        fetch = [r for r in rows if r.get("cat") == CAT_FETCH][0]
        assert "obj" not in fetch["args"]


class TestNormalization:
    def test_rle_and_totals(self):
        t = Tracer()
        for _ in range(3):
            t.guard(GuardKind.FAST, 0, AccessKind.READ, 0.0, 21.0)
        t.fetch(256, 100.0, 0.0)
        t.guard(GuardKind.FAST, 1, AccessKind.READ, 0.0, 21.0)
        shape = normalize_events(t.events)
        assert shape["sequence"] == [
            ["guard", "fast", 3], ["fetch", "fetch", 1], ["guard", "fast", 1],
        ]
        assert shape["totals"] == {"fetch:fetch": 1, "guard:fast": 4}


class TestDrivers:
    def test_unknown_names_rejected(self):
        with pytest.raises(TraceError, match="workload"):
            run_traced("nope", "trackfm")
        with pytest.raises(TraceError, match="runtime"):
            run_traced("stream", "nope")

    def test_trackfm_stream_has_acceptance_categories(self):
        result = run_traced("stream", "trackfm", seed=0)
        cats = result.tracer.category_counts()
        assert cats.get("pass", 0) > 0
        assert cats.get("guard", 0) > 0
        assert cats.get("fetch", 0) > 0
        assert result.value == 1024 * 1023 // 2

    @pytest.mark.parametrize("runtime", ["aifm", "fastswap", "hybrid"])
    def test_replay_runtimes_emit_fetches(self, runtime):
        result = run_traced("hashmap", runtime, seed=0)
        cats = result.tracer.category_counts()
        assert cats.get("fetch", 0) > 0
        assert cats.get("phase", 0) == 2
        assert result.metrics.remote_fetches > 0

    def test_metadata_uses_canonical_metrics_dict(self):
        result = run_traced("stream", "fastswap", seed=0)
        meta = result.metadata()
        assert meta["metrics"] == result.metrics.as_dict()
        json.dumps(meta)  # JSON-safe end to end


class TestCLI:
    def test_main_writes_both_formats(self, tmp_path, capsys):
        from repro.trace.__main__ import main

        out = tmp_path / "t.json"
        rc = main([
            "--workload", "stream", "--runtime", "trackfm",
            "--out", str(out), "--seed", "0",
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        cats = {e.get("cat") for e in data["traceEvents"]}
        assert {"pass", "guard", "fetch"} <= cats
        jsonl = tmp_path / "t.jsonl"
        assert jsonl.exists()
        assert len(jsonl.read_text().splitlines()) == len(
            [e for e in data["traceEvents"] if e["ph"] != "M"]
        )
        assert "chrome trace" in capsys.readouterr().out


class TestInstrumentation:
    def test_compiler_pass_events_carry_stat_deltas(self):
        from repro.compiler import CompilerConfig, TrackFMCompiler
        from tests.irprograms import build_sum_loop

        t = Tracer()
        TrackFMCompiler(CompilerConfig()).compile(build_sum_loop(32), tracer=t)
        passes = [e for e in t.events if e.cat == CAT_PASS]
        assert len(passes) >= 5
        guard_transform = [e for e in passes if e.name == "guard-transform"]
        assert guard_transform, [e.name for e in passes]
        stats = guard_transform[0].args["stats"]
        assert stats.get("guard-transform.guards_inserted", 0) > 0

    def test_guard_events_name_object_and_kind(self):
        from repro.trackfm.runtime import TrackFMRuntime

        rt = TrackFMRuntime(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=1 * MB)
        )
        t = Tracer()
        rt.set_tracer(t)
        ptr = rt.tfm_malloc(1024)
        rt.access(ptr, AccessKind.READ)
        rt.access(ptr, AccessKind.READ)
        guards = [e for e in t.events if e.cat == CAT_GUARD]
        assert guards[0].name in (GuardKind.SLOW.value, GuardKind.CUSTODY_MISS.value)
        assert any(e.name == GuardKind.FAST.value for e in guards)
        assert all("obj" in e.args for e in guards)
