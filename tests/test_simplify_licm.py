"""SimplifyCFG and LICM passes."""

import pytest

from repro.compiler.licm import LICMPass
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.pipeline import CompilerConfig
from repro.compiler.simplify_cfg import SimplifyCFGPass
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.instructions import Br, CondBr, Load
from repro.ir.values import Constant
from repro.sim.interpreter import Interpreter

from irprograms import build_sum_loop, build_write_then_sum


def ctx():
    return PassContext(config=CompilerConfig())


class TestSimplifyCFG:
    def test_unreachable_block_removed(self):
        m = Module()
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        orphan = f.add_block("orphan")
        b = IRBuilder(entry)
        b.ret(1)
        b.set_block(orphan)
        b.ret(2)
        c = ctx()
        PassManager([SimplifyCFGPass()]).run(m, c)
        assert c.get_stat("simplifycfg.blocks_removed") == 1
        assert len(f.blocks) == 1
        assert Interpreter(m).run("main").value == 1

    def test_constant_branch_folded(self):
        m = Module()
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        yes = f.add_block("yes")
        no = f.add_block("no")
        b = IRBuilder(entry)
        from repro.ir.types import I1

        b.condbr(Constant(I1, 1), yes, no)
        b.set_block(yes)
        b.ret(10)
        b.set_block(no)
        b.ret(20)
        c = ctx()
        PassManager([SimplifyCFGPass()]).run(m, c)
        assert c.get_stat("simplifycfg.branches_folded") == 1
        # The dead arm is removed too.
        assert all(blk.name != "no" for blk in f.blocks)
        assert Interpreter(m).run("main").value == 10

    def test_chain_merge(self):
        m = Module()
        f = m.add_function("main", I64)
        a = f.add_block("a")
        bb = f.add_block("b")
        cc = f.add_block("c")
        b = IRBuilder(a)
        x = b.add(1, 2)
        b.br(bb)
        b.set_block(bb)
        y = b.add(x, 3)
        b.br(cc)
        b.set_block(cc)
        b.ret(y)
        c = ctx()
        PassManager([SimplifyCFGPass()]).run(m, c)
        assert len(f.blocks) == 1
        assert Interpreter(m).run("main").value == 6

    def test_loop_structure_untouched(self):
        m = build_sum_loop(50)
        expected = Interpreter(build_sum_loop(50)).run("main").value
        PassManager([SimplifyCFGPass()]).run(m, ctx())
        verify_module(m)
        assert Interpreter(m).run("main").value == expected

    def test_merge_rewrites_phi_of_single_pred(self):
        m = Module()
        f = m.add_function("main", I64)
        a = f.add_block("a")
        bb = f.add_block("b")
        b = IRBuilder(a)
        v = b.add(4, 5)
        b.br(bb)
        b.set_block(bb)
        phi = b.phi(I64, name="x")
        phi.add_incoming(v, a)
        b.ret(phi)
        PassManager([SimplifyCFGPass()]).run(m, ctx())
        verify_module(m)
        assert Interpreter(m).run("main").value == 9

    def test_full_pipeline_semantics_preserved(self):
        expected = Interpreter(build_write_then_sum(200)).run("main").value
        m = build_write_then_sum(200)
        PassManager([SimplifyCFGPass()]).run(m, ctx())
        assert Interpreter(m).run("main").value == expected


class TestLICM:
    def build_invariant_load_loop(self, n=100):
        """sum += table[0] inside a loop: the load is invariant."""
        m = Module()
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        table = b.call(PTR, "malloc", [Constant(I64, 64)], name="table")
        b.store(7, table)
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        s = b.phi(I64, name="s")
        v = b.load(I64, table, name="inv")  # loop-invariant load in header
        b.condbr(b.icmp("slt", i, n), body, exit_)
        b.set_block(body)
        s2 = b.add(s, v)
        i2 = b.add(i, 1)
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        s.add_incoming(Constant(I64, 0), entry)
        s.add_incoming(s2, body)
        b.set_block(exit_)
        b.ret(s)
        return m

    def test_invariant_load_hoisted(self):
        m = self.build_invariant_load_loop()
        c = ctx()
        PassManager([LICMPass()]).run(m, c)
        assert c.get_stat("licm.loads_hoisted") == 1
        f = m.get_function("main")
        entry = f.entry
        assert any(isinstance(i, Load) for i in entry.instructions)
        header = f.get_block("header")
        assert not any(isinstance(i, Load) for i in header.instructions)

    def test_semantics_preserved(self):
        expected = Interpreter(self.build_invariant_load_loop()).run("main").value
        m = self.build_invariant_load_loop()
        PassManager([LICMPass()]).run(m, ctx())
        assert Interpreter(m).run("main").value == expected == 700

    def test_load_not_hoisted_past_store(self):
        # write_then_sum's write loop stores: its loads must stay put.
        m = build_write_then_sum(50)
        c = ctx()
        PassManager([LICMPass()]).run(m, c)
        assert c.get_stat("licm.loads_hoisted") == 0
        assert Interpreter(m).run("main").value == 50 * 49 // 2

    def test_variant_load_not_hoisted(self):
        # a[i] depends on the IV: not invariant.
        m = build_sum_loop(50)
        c = ctx()
        PassManager([LICMPass()]).run(m, c)
        assert c.get_stat("licm.loads_hoisted") == 0

    def test_invariant_arithmetic_hoisted(self):
        m = Module()
        f = m.add_function("main", I64, [I64], ["k"])
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        s = b.phi(I64, name="s")
        b.condbr(b.icmp("slt", i, 10), body, exit_)
        b.set_block(body)
        expensive = b.mul(f.args[0], 1000, name="inv_math")
        s2 = b.add(s, expensive)
        i2 = b.add(i, 1)
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        s.add_incoming(Constant(I64, 0), entry)
        s.add_incoming(s2, body)
        b.set_block(exit_)
        b.ret(s)
        c = ctx()
        PassManager([LICMPass()]).run(m, c)
        assert c.get_stat("licm.hoisted") >= 1
        assert Interpreter(m).run("main", [3]).value == 30_000

    def test_hoisting_reduces_guard_count(self):
        # The §6 connection: one guard per loop entry, not per iteration.
        from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
        from repro.aifm.pool import PoolConfig
        from repro.sim.irrun import TrackFMProgram
        from repro.trackfm.runtime import TrackFMRuntime
        from repro.units import KB, MB

        def run(with_licm):
            m = self.build_invariant_load_loop(n=500)
            config = CompilerConfig(chunking=ChunkingPolicy.NONE, run_o1=False)
            if with_licm:
                PassManager([LICMPass()]).run(m, ctx())
            compiled = TrackFMCompiler(config).compile(m)
            rt = TrackFMRuntime(
                PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=1 * MB)
            )
            value = TrackFMProgram(compiled.module, rt).run("main").value
            return value, rt.metrics.total_guards

        base_value, base_guards = run(False)
        licm_value, licm_guards = run(True)
        assert base_value == licm_value
        assert licm_guards < base_guards / 100
