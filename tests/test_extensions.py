"""The §5 extensions: autotuning, heap pruning, hybrid placement."""

import pytest

from repro.aifm.pool import PoolConfig
from repro.analysis.profiler import profile_module
from repro.compiler.autotune import autotune_object_size
from repro.compiler.heap_pruning import (
    ELIDED_MD,
    HeapPruningPass,
    PINNED_MD,
    trace_allocation_sites,
)
from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.errors import PassError, PointerError, RuntimeConfigError
from repro.hybrid.runtime import HybridRuntime, Placement
from repro.ir import IRBuilder, I64, PTR, Module, verify_module
from repro.ir.instructions import Call, Load
from repro.ir.values import Constant
from repro.machine.costs import AccessKind, GuardKind
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB

from irprograms import build_sum_loop


def build_hot_cold(hot=32, cold=2048):
    """Loop doing one hot-table lookup + one cold-array read per trip."""
    m = Module("hotcold")
    f = m.add_function("main", I64)
    entry, header, body, done = (
        f.add_block(n) for n in ("entry", "header", "body", "done")
    )
    b = IRBuilder(entry)
    hotp = b.call(PTR, "malloc", [Constant(I64, hot * 8)], name="hot")
    coldp = b.call(PTR, "malloc", [Constant(I64, cold * 8)], name="cold")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, cold), body, done)
    b.set_block(body)
    hv = b.load(I64, b.gep(hotp, b.srem(i, hot), 8))
    cv = b.load(I64, b.gep(coldp, i, 8))
    s2 = b.add(s, b.add(hv, cv))
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(done)
    b.ret(s)
    return m


class TestAutotune:
    def test_picks_best_size_and_reports_trials(self):
        result = autotune_object_size(
            lambda: build_sum_loop(n=2048, elem=8),
            local_memory=8 * KB,
            heap_size=1 * MB,
            sizes=(256, 1024, 4096),
        )
        assert result.best_size in (256, 1024, 4096)
        assert len(result.trials) == 3
        assert result.best_trial.cycles == min(t.cycles for t in result.trials.values())
        assert result.speedup_over_worst() >= 1.0
        assert "best object size" in result.summary()

    def test_sequential_probe_prefers_large_objects(self):
        result = autotune_object_size(
            lambda: build_sum_loop(n=4096, elem=8),
            local_memory=8 * KB,
            heap_size=1 * MB,
            sizes=(64, 4096),
        )
        assert result.best_size == 4096

    def test_empty_sizes_rejected(self):
        with pytest.raises(PassError):
            autotune_object_size(
                lambda: build_sum_loop(), local_memory=8 * KB, heap_size=1 * MB, sizes=()
            )


class TestTraceAllocationSites:
    def test_direct_and_gep(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        p = b.call(PTR, "malloc", [Constant(I64, 64)])
        q = b.gep(p, 2, 8)
        v = b.load(I64, q)
        b.ret(v)
        sites = trace_allocation_sites(q)
        assert sites == {p}

    def test_phi_merge(self):
        m = build_hot_cold()
        f = m.get_function("main")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        for load in loads:
            sites = trace_allocation_sites(load.pointer)
            assert sites is not None and len(sites) == 1

    def test_unknown_for_argument(self):
        m = Module()
        f = m.add_function("main", I64, [PTR], ["p"])
        b = IRBuilder(f.add_block("entry"))
        v = b.load(I64, f.args[0])
        b.ret(v)
        assert trace_allocation_sites(f.args[0]) is None

    def test_unknown_for_loaded_pointer(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(8)
        loaded = b.load(PTR, slot)
        b.ret(Constant(I64, 0))
        assert trace_allocation_sites(loaded) is None


class TestHeapPruning:
    def compile_pruned(self, budget=1024):
        module = build_hot_cold()
        profile = profile_module(build_hot_cold())
        config = CompilerConfig(
            chunking=ChunkingPolicy.NONE, pin_budget_bytes=budget
        )
        compiled = TrackFMCompiler(config).compile(module, profile=profile)
        return compiled

    def test_hot_site_pinned_cold_not(self):
        compiled = self.compile_pruned()
        calls = [
            i
            for i in compiled.module.get_function("main").instructions()
            if isinstance(i, Call) and i.callee in ("tfm_malloc", "tfm_malloc_pinned")
        ]
        by_name = {c.name: c for c in calls}
        assert by_name["hot"].callee == "tfm_malloc_pinned"
        assert by_name["cold"].callee == "tfm_malloc"
        assert by_name["hot"].metadata.get(PINNED_MD)

    def test_guards_elided_on_pinned_accesses(self):
        compiled = self.compile_pruned()
        loads = [
            i
            for i in compiled.module.get_function("main").instructions()
            if isinstance(i, Load)
        ]
        elided = [l for l in loads if l.metadata.get(ELIDED_MD)]
        assert len(elided) == 1
        assert compiled.ctx.get_stat("heap-pruning.guards_elided") == 1
        verify_module(compiled.module)

    def test_pruned_program_correct_and_cheaper(self):
        def run(budget):
            module = build_hot_cold()
            profile = profile_module(build_hot_cold())
            config = CompilerConfig(
                chunking=ChunkingPolicy.NONE, pin_budget_bytes=budget
            )
            compiled = TrackFMCompiler(config).compile(module, profile=profile)
            rt = TrackFMRuntime(
                PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=1 * MB)
            )
            value = TrackFMProgram(compiled.module, rt).run("main").value
            return value, rt.metrics

        base_value, base_metrics = run(0)
        pruned_value, pruned_metrics = run(1024)
        assert pruned_value == base_value  # semantics preserved
        assert pruned_metrics.cycles < base_metrics.cycles
        assert pruned_metrics.total_guards < base_metrics.total_guards

    def test_budget_respected(self):
        # A 1-byte budget pins nothing.
        compiled = self.compile_pruned(budget=1)
        assert compiled.ctx.get_stat("heap-pruning.sites_pinned") == 0

    def test_zero_budget_disables(self):
        compiled = self.compile_pruned(budget=0)
        assert compiled.ctx.get_stat("heap-pruning.sites_pinned") == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            HeapPruningPass(-1)


class TestPinnedRuntime:
    def test_pinned_objects_never_evicted(self):
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=8 * KB, heap_size=1 * MB)
        )
        offset = rt.tfm_malloc_pinned(4 * KB)
        obj = rt.pool.object_of_offset(offset)
        assert rt.pool.residency.is_pinned(obj)
        # Pressure the pool: the pinned object must survive.
        ptr = rt.tfm_malloc(16 * 4 * KB)
        for i in range(16):
            rt.access(ptr + i * 4 * KB, AccessKind.READ)
        assert obj in rt.pool.residency
        assert rt.pool.meta(obj).is_local

    def test_pinned_allocation_costs_no_fetch(self):
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=32 * KB, heap_size=1 * MB)
        )
        rt.tfm_malloc_pinned(8 * KB)
        assert rt.metrics.remote_fetches == 0
        assert rt.metrics.bytes_fetched == 0


class TestHybridRuntime:
    def make(self):
        return HybridRuntime(
            local_memory=64 * KB, heap_size=1 * MB, object_size=256
        )

    def test_placement_routing(self):
        rt = self.make()
        obj_handle = rt.allocate(512, Placement.OBJECTS)
        page_handle = rt.allocate(512, Placement.PAGES)
        rt.access(obj_handle)
        rt.access(page_handle)
        tfm, fsw = rt.split()
        assert tfm.total_guards > 0
        assert fsw.major_faults == 1

    def test_merged_metrics(self):
        rt = self.make()
        a = rt.allocate(64, Placement.OBJECTS)
        b = rt.allocate(64, Placement.PAGES)
        rt.access(a)
        rt.access(b)
        merged = rt.metrics
        assert merged.accesses == 2
        assert merged.remote_fetches == 2

    def test_page_hits_cost_nothing_extra(self):
        rt = self.make()
        h = rt.allocate(64, Placement.PAGES)
        rt.access(h)
        hot = rt.access(h)
        assert hot == rt.fastswap.config.costs.local_access

    def test_bounds_checked(self):
        rt = self.make()
        h = rt.allocate(64, Placement.OBJECTS)
        with pytest.raises(PointerError):
            rt.access(h, offset=60, size=8)

    def test_invalid_fraction(self):
        with pytest.raises(RuntimeConfigError):
            HybridRuntime(64 * KB, 1 * MB, page_fraction=0.0)
