"""IR types, values and instruction construction."""

import pytest

from repro.errors import IRTypeError
from repro.ir import (
    BasicBlock,
    Constant,
    F64,
    I1,
    I32,
    I64,
    PTR,
    VOID,
    Module,
)
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IntType
from repro.ir.values import Argument, const_f64, const_int, null_ptr


class TestTypes:
    def test_sizes(self):
        assert I64.size_bytes() == 8
        assert I32.size_bytes() == 4
        assert I1.size_bytes() == 1
        assert F64.size_bytes() == 8
        assert PTR.size_bytes() == 8
        assert VOID.size_bytes() == 0

    def test_equality_and_hash(self):
        assert IntType(64) == I64
        assert hash(IntType(64)) == hash(I64)
        assert IntType(32) != I64
        assert not (PTR == I64)

    def test_invalid_width(self):
        with pytest.raises(IRTypeError):
            IntType(13)

    def test_predicates(self):
        assert I64.is_int() and not I64.is_pointer()
        assert PTR.is_pointer()
        assert F64.is_float()
        assert VOID.is_void()


class TestConstants:
    def test_int_wrapping(self):
        c = Constant(I64, (1 << 64) + 5)
        assert c.value == 5
        neg = Constant(I64, -1)
        assert neg.value == -1

    def test_i32_wrap_to_signed(self):
        c = Constant(I32, 0xFFFFFFFF)
        assert c.value == -1

    def test_float_constant(self):
        assert const_f64(2.5).value == 2.5

    def test_null_pointer_only(self):
        assert null_ptr().value == 0
        with pytest.raises(IRTypeError):
            Constant(PTR, 42)

    def test_constant_equality(self):
        assert const_int(3, I64) == const_int(3, I64)
        assert const_int(3, I64) != const_int(3, I32)


class TestInstructions:
    def test_load_requires_pointer(self):
        with pytest.raises(IRTypeError):
            Load(I64, const_int(0, I64))

    def test_store_requires_pointer(self):
        with pytest.raises(IRTypeError):
            Store(const_int(1, I64), const_int(0, I64))

    def test_gep_validates(self):
        p = Alloca(8)
        with pytest.raises(IRTypeError):
            Gep(const_int(0, I64), const_int(0, I64), 8)
        with pytest.raises(IRTypeError):
            Gep(p, null_ptr(), 8)
        with pytest.raises(IRTypeError):
            Gep(p, const_int(0, I64), 0)

    def test_binop_type_check(self):
        with pytest.raises(IRTypeError):
            BinOp("add", const_int(1, I64), const_int(1, I32))
        with pytest.raises(IRTypeError):
            BinOp("fadd", const_int(1, I64), const_int(1, I64))
        with pytest.raises(IRTypeError):
            BinOp("bogus", const_int(1, I64), const_int(1, I64))

    def test_icmp_result_is_i1(self):
        cmp = ICmp("slt", const_int(1, I64), const_int(2, I64))
        assert cmp.type == I1
        with pytest.raises(IRTypeError):
            ICmp("weird", const_int(1, I64), const_int(2, I64))

    def test_fcmp(self):
        cmp = FCmp("olt", const_f64(1.0), const_f64(2.0))
        assert cmp.type == I1

    def test_condbr_needs_i1(self):
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        with pytest.raises(IRTypeError):
            CondBr(const_int(1, I64), b1, b2)
        br = CondBr(Constant(I1, 1), b1, b2)
        assert br.successors() == (b1, b2)

    def test_br_successors(self):
        b = BasicBlock("t")
        assert Br(b).successors() == (b,)

    def test_terminator_classification(self):
        assert Ret().is_terminator()
        assert Br(BasicBlock("x")).is_terminator()
        assert not Alloca(8).is_terminator()

    def test_phi_incoming_type_check(self):
        phi = Phi(I64)
        block = BasicBlock("pred")
        phi.add_incoming(const_int(1, I64), block)
        with pytest.raises(IRTypeError):
            phi.add_incoming(const_f64(1.0), block)
        assert phi.incoming_for(block).value == 1
        with pytest.raises(IRTypeError):
            phi.incoming_for(BasicBlock("other"))

    def test_select_arms_must_match(self):
        with pytest.raises(IRTypeError):
            Select(Constant(I1, 1), const_int(1, I64), const_f64(1.0))

    def test_casts(self):
        c = Cast("trunc", const_int(300, I64), I32)
        assert c.type == I32
        with pytest.raises(IRTypeError):
            Cast("nope", const_int(1, I64), I32)
        with pytest.raises(IRTypeError):
            PtrToInt(const_int(1, I64))
        with pytest.raises(IRTypeError):
            IntToPtr(const_int(1, I32))

    def test_call_requires_name(self):
        with pytest.raises(IRTypeError):
            Call(I64, "", [])

    def test_replace_uses_of(self):
        a, b = const_int(1, I64), const_int(2, I64)
        inst = BinOp("add", a, a)
        assert inst.replace_uses_of(a, b) == 2
        assert inst.operands == [b, b]

    def test_memory_access_classification(self):
        p = Alloca(8)
        assert Load(I64, p).is_memory_access()
        assert Store(const_int(1, I64), p).is_memory_access()
        assert not BinOp("add", const_int(1, I64), const_int(1, I64)).is_memory_access()


class TestBlocksFunctionsModules:
    def test_block_rejects_instructions_after_terminator(self):
        m = Module()
        f = m.add_function("f", VOID)
        blk = f.add_block("entry")
        blk.append(Ret())
        from repro.errors import IRError

        with pytest.raises(IRError):
            blk.append(Ret())

    def test_insert_before(self):
        m = Module()
        f = m.add_function("f", VOID)
        blk = f.add_block("entry")
        ret = blk.append(Ret())
        a = Alloca(8)
        blk.insert_before(ret, a)
        assert blk.instructions[0] is a

    def test_phis_and_first_non_phi(self):
        m = Module()
        f = m.add_function("f", VOID)
        blk = f.add_block("entry")
        phi = Phi(I64)
        blk.insert(0, phi)
        blk.append(Ret())
        assert blk.phis() == [phi]
        assert blk.first_non_phi_index() == 1

    def test_function_args(self):
        m = Module()
        f = m.add_function("g", I64, [I64, PTR], ["n", "p"])
        assert isinstance(f.args[0], Argument)
        assert f.args[1].name == "p"
        assert f.args[1].type == PTR

    def test_duplicate_function_rejected(self):
        m = Module()
        m.add_function("f", VOID)
        from repro.errors import IRError

        with pytest.raises(IRError):
            m.add_function("f", VOID)

    def test_declare_is_idempotent(self):
        m = Module()
        d1 = m.declare_function("ext", I64)
        d2 = m.declare_function("ext", I64)
        assert d1 is d2
        assert d1.is_declaration

    def test_globals(self):
        m = Module()
        g = m.add_global("table", 128)
        assert m.get_global("table") is g
        from repro.errors import IRError

        with pytest.raises(IRError):
            m.add_global("table", 64)

    def test_instruction_counts(self):
        m = Module()
        f = m.add_function("f", I64)
        blk = f.add_block("entry")
        p = blk.append(Alloca(8))
        blk.append(Store(const_int(1, I64), p))
        blk.append(Load(I64, p))
        blk.append(Ret(const_int(0, I64)))
        assert f.instruction_count() == 4
        assert f.memory_access_count() == 2
        assert m.memory_access_count() == 2

    def test_unique_names(self):
        m = Module()
        f = m.add_function("f", VOID)
        names = {f.unique_name("v") for _ in range(100)}
        assert len(names) == 100
