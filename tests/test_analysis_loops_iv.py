"""Natural loop detection and induction-variable analysis."""

import pytest

from repro.analysis.cfg import CFG
from repro.analysis.induction import InductionAnalysis
from repro.analysis.loops import find_loops
from repro.ir import IRBuilder, I64, PTR, Module
from repro.ir.values import Constant

from irprograms import build_sum_loop


def build_nested_loops(outer_n=4, inner_n=3):
    """for i<outer: for j<inner: acc += 1."""
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    oh = f.add_block("outer_header")
    ih = f.add_block("inner_header")
    ib = f.add_block("inner_body")
    olatch = f.add_block("outer_latch")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    b.br(oh)
    b.set_block(oh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, outer_n), ih, exit_)
    b.set_block(ih)
    j = b.phi(I64, name="j")
    b.condbr(b.icmp("slt", j, inner_n), ib, olatch)
    b.set_block(ib)
    j2 = b.add(j, 1, name="j2")
    b.br(ih)
    j.add_incoming(Constant(I64, 0), oh)
    j.add_incoming(j2, ib)
    b.set_block(olatch)
    i2 = b.add(i, 1, name="i2")
    b.br(oh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, olatch)
    b.set_block(exit_)
    b.ret(0)
    return m, f


def build_pointer_iv_loop(n=16, elem=8):
    """Pointer-stepping loop: while (p != end) sum += *p; p = gep p, 1."""
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    base = b.call(PTR, "malloc", [Constant(I64, n * elem)], name="base")
    end = b.gep(base, n, elem, name="end")
    b.br(header)
    b.set_block(header)
    p = b.phi(PTR, name="p")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("ne", p, end), body, exit_)
    b.set_block(body)
    v = b.load(I64, p, name="v")
    s2 = b.add(s, v, name="s2")
    p2 = b.gep(p, 1, elem, name="p2")
    b.br(header)
    p.add_incoming(base, entry)
    p.add_incoming(p2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(exit_)
    b.ret(s)
    return m, f


class TestLoops:
    def test_single_loop_detected(self):
        f = build_sum_loop().get_function("main")
        loops = find_loops(f)
        assert len(loops) == 1
        loop = loops.loops[0]
        assert loop.header.name == "header"
        assert {b.name for b in loop.blocks} == {"header", "body"}
        assert [l.name for l in loop.latches] == ["body"]

    def test_preheader_and_exits(self):
        f = build_sum_loop().get_function("main")
        loop = find_loops(f).loops[0]
        cfg = CFG(f)
        assert loop.preheader(cfg).name == "entry"
        assert [b.name for b in loop.exit_blocks(cfg)] == ["exit"]
        assert loop.exit_edges(cfg) == [(f.get_block("header"), f.get_block("exit"))]

    def test_nested_loop_structure(self):
        _, f = build_nested_loops()
        loops = find_loops(f)
        assert len(loops) == 2
        inner = next(l for l in loops if l.header.name == "inner_header")
        outer = next(l for l in loops if l.header.name == "outer_header")
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 1
        assert inner.depth == 2
        assert loops.innermost() == [inner]
        assert loops.top_level() == [outer]

    def test_loop_of_block(self):
        _, f = build_nested_loops()
        loops = find_loops(f)
        ib = f.get_block("inner_body")
        assert loops.loop_of(ib).header.name == "inner_header"
        assert loops.loop_of(f.get_block("entry")) is None

    def test_straightline_has_no_loops(self):
        m = Module()
        f = m.add_function("main", I64)
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.add(1, 2))
        assert len(find_loops(f)) == 0


class TestInductionVariables:
    def test_integer_iv_detected(self):
        f = build_sum_loop(n=100).get_function("main")
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        loop = loops.loops[0]
        found = ivs.ivs(loop)
        iv_names = {iv.phi.name for iv in found}
        assert "i" in iv_names
        i_iv = next(iv for iv in found if iv.phi.name == "i")
        assert i_iv.step == 1
        assert not i_iv.is_pointer

    def test_governing_iv_and_trip_count(self):
        f = build_sum_loop(n=100).get_function("main")
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        gov = ivs.governing_iv(loops.loops[0])
        assert gov is not None
        assert gov.phi.name == "i"
        assert gov.trip_count == 100

    def test_pointer_iv_detected(self):
        _, f = build_pointer_iv_loop(n=16, elem=8)
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        loop = loops.loops[0]
        piv = next(iv for iv in ivs.ivs(loop) if iv.is_pointer)
        assert piv.step == 8  # byte stride
        assert piv.governs_loop

    def test_accumulator_not_an_iv_with_nonconst_step(self):
        # s += v (v loaded from memory) must not be classified as IV.
        f = build_sum_loop(n=10).get_function("main")
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        names = {iv.phi.name for iv in ivs.ivs(loops.loops[0])}
        assert "s" not in names

    def test_nested_ivs_found_per_loop(self):
        _, f = build_nested_loops()
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        for loop in loops:
            gov = ivs.governing_iv(loop)
            assert gov is not None
            assert gov.step == 1

    def test_iv_for_value(self):
        f = build_sum_loop(n=10).get_function("main")
        loops = find_loops(f)
        ivs = InductionAnalysis(f, loops)
        loop = loops.loops[0]
        phi = loop.header.phis()[0]
        assert ivs.iv_for_value(loop, phi) is not None
        assert ivs.iv_for_value(loop, Constant(I64, 0)) is None
