"""CFG, reverse postorder, and dominator tree."""

import pytest

from repro.analysis.cfg import CFG, reverse_postorder
from repro.analysis.dominators import DominatorTree
from repro.errors import AnalysisError
from repro.ir import IRBuilder, I64, Module
from repro.ir.values import Constant

from irprograms import build_sum_loop


def build_diamond():
    """entry -> (left | right) -> join."""
    m = Module()
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    join = f.add_block("join")
    b = IRBuilder(entry)
    b.condbr(b.icmp("slt", 1, 2), left, right)
    b.set_block(left)
    lv = b.add(1, 0, name="lv")
    b.br(join)
    b.set_block(right)
    rv = b.add(2, 0, name="rv")
    b.br(join)
    b.set_block(join)
    phi = b.phi(I64, name="x")
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    b.ret(phi)
    return m, f, (entry, left, right, join)


class TestCFG:
    def test_diamond_edges(self):
        _, f, (entry, left, right, join) = build_diamond()
        cfg = CFG(f)
        assert set(cfg.succs(entry)) == {left, right}
        assert cfg.preds(join) == [left, right] or set(cfg.preds(join)) == {left, right}
        assert cfg.preds(entry) == []

    def test_reachable_excludes_orphans(self):
        m, f, blocks = build_diamond()
        orphan = f.add_block("orphan")
        b = IRBuilder(orphan)
        b.ret(0)
        cfg = CFG(f)
        assert orphan not in cfg.reachable()
        assert set(blocks) <= cfg.reachable()

    def test_declaration_has_no_cfg(self):
        m = Module()
        d = m.declare_function("ext", I64)
        with pytest.raises(AnalysisError):
            CFG(d)

    def test_reverse_postorder_entry_first(self):
        _, f, (entry, left, right, join) = build_diamond()
        rpo = reverse_postorder(CFG(f))
        assert rpo[0] is entry
        assert rpo[-1] is join
        assert rpo.index(left) < rpo.index(join)
        assert rpo.index(right) < rpo.index(join)

    def test_rpo_on_loop(self):
        f = build_sum_loop().get_function("main")
        rpo = reverse_postorder(CFG(f))
        names = [b.name for b in rpo]
        assert names.index("entry") < names.index("header") < names.index("body")


class TestDominators:
    def test_diamond_idoms(self):
        _, f, (entry, left, right, join) = build_diamond()
        dom = DominatorTree(CFG(f))
        assert dom.idom[left] is entry
        assert dom.idom[right] is entry
        assert dom.idom[join] is entry
        assert dom.idom[entry] is None

    def test_dominates_reflexive_and_transitive(self):
        _, f, (entry, left, right, join) = build_diamond()
        dom = DominatorTree(CFG(f))
        assert dom.dominates(entry, join)
        assert dom.dominates(join, join)
        assert not dom.dominates(left, join)
        assert dom.strictly_dominates(entry, left)
        assert not dom.strictly_dominates(entry, entry)

    def test_loop_header_dominates_body(self):
        f = build_sum_loop().get_function("main")
        dom = DominatorTree(CFG(f))
        header = f.get_block("header")
        body = f.get_block("body")
        exit_ = f.get_block("exit")
        assert dom.dominates(header, body)
        assert dom.dominates(header, exit_)
        assert not dom.dominates(body, exit_)

    def test_dominator_chain(self):
        f = build_sum_loop().get_function("main")
        dom = DominatorTree(CFG(f))
        body = f.get_block("body")
        chain = [b.name for b in dom.dominator_chain(body)]
        assert chain == ["body", "header", "entry"]

    def test_children(self):
        _, f, (entry, left, right, join) = build_diamond()
        dom = DominatorTree(CFG(f))
        kids = set(dom.children(entry))
        assert kids == {left, right, join}
