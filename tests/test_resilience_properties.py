"""Property-based tests for the resilience primitives.

Hypothesis drives :class:`RetryPolicy` (backoff monotone non-decreasing
and capped, jitter inside its band, retry budget never exceeded,
seed-determinism) and the :class:`CircuitBreaker` state machine
(closed → open → half-open transitions; an open breaker never serves).
"""

from __future__ import annotations

import enum

from hypothesis import given, settings, strategies as st

from repro.net.faults import BreakerState, CircuitBreaker, RetryPolicy

policy_strategy = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=16),
    timeout_cycles=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    base_backoff_cycles=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    backoff_multiplier=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    max_backoff_cycles=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    jitter_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32),
)


class TestRetryPolicyProperties:
    @given(policy_strategy)
    @settings(max_examples=100, deadline=None)
    def test_base_backoff_monotone_and_capped(self, policy):
        series = [policy.base_backoff(a) for a in range(1, 20)]
        assert series == sorted(series)
        assert all(b <= policy.max_backoff_cycles for b in series)
        assert all(b >= 0.0 for b in series)

    @given(policy_strategy, st.integers(min_value=1, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_jitter_stays_in_band(self, policy, attempt):
        base = policy.base_backoff(attempt)
        jittered = policy.backoff_cycles(attempt)
        assert base <= jittered <= base * (1.0 + policy.jitter_fraction)

    @given(policy_strategy)
    @settings(max_examples=100, deadline=None)
    def test_never_retries_past_max_attempts(self, policy):
        assert not policy.should_retry(policy.max_attempts)
        assert not policy.should_retry(policy.max_attempts + 5)

    @given(
        policy_strategy,
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_budget_never_exceeded(self, policy, budget, demands):
        policy.retry_budget = budget
        granted = 0
        for _ in range(demands):
            # Model a fresh request whose first attempt failed.
            if policy.should_retry(1) and policy.max_attempts > 1:
                policy.consume_retry()
                granted += 1
        assert policy.retries_used <= budget
        assert granted == policy.retries_used

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_seeded_jitter_is_deterministic(self, seed, attempts):
        def sequence():
            p = RetryPolicy(max_attempts=16, jitter_fraction=0.3, seed=seed)
            out = []
            for a in range(1, attempts + 1):
                out.append(p.backoff_cycles(a))
                p.consume_retry()
            return out

        assert sequence() == sequence()


class _Op(enum.Enum):
    ALLOW = "allow"
    SUCCESS = "success"
    FAILURE = "failure"


ops_strategy = st.lists(st.sampled_from(list(_Op)), min_size=0, max_size=200)


class TestCircuitBreakerProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_threshold_failures_trip_the_breaker(self, threshold, cooldown):
        b = CircuitBreaker(failure_threshold=threshold, cooldown_rejections=cooldown)
        for _ in range(threshold - 1):
            b.record_failure()
            assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.trips == 1

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_open_rejects_until_cooldown_then_probes(self, threshold, cooldown):
        b = CircuitBreaker(failure_threshold=threshold, cooldown_rejections=cooldown)
        for _ in range(threshold):
            b.record_failure()
        # The first cooldown-1 requests bounce; the next is the probe.
        for _ in range(cooldown - 1):
            assert not b.allow()
            assert b.state is BreakerState.OPEN
        assert b.allow()
        assert b.state is BreakerState.HALF_OPEN

    def test_half_open_probe_outcomes(self):
        def tripped():
            b = CircuitBreaker(failure_threshold=1, cooldown_rejections=1)
            b.record_failure()
            assert b.allow()  # straight to the probe (cooldown=1)
            assert b.state is BreakerState.HALF_OPEN
            return b

        good = tripped()
        good.record_success()
        assert good.state is BreakerState.CLOSED

        bad = tripped()
        bad.record_failure()
        assert bad.state is BreakerState.OPEN
        assert bad.trips == 2

    @given(
        ops_strategy,
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_serves_while_open(self, ops, threshold, cooldown):
        """Model check over arbitrary op interleavings."""
        b = CircuitBreaker(failure_threshold=threshold, cooldown_rejections=cooldown)
        for op in ops:
            if op is _Op.ALLOW:
                served = b.allow()
                # An open breaker never serves: if the request went
                # through, the breaker is closed or probing.
                assert served == (b.state is not BreakerState.OPEN)
            elif op is _Op.SUCCESS:
                b.record_success()
                assert b.state is BreakerState.CLOSED
                assert b.consecutive_failures == 0
            else:
                b.record_failure()
            # Global invariants.
            assert b.state in BreakerState
            if b.state is BreakerState.CLOSED:
                assert b.consecutive_failures < b.failure_threshold or b.trips == 0
            assert b.rejections_while_open <= b.cooldown_rejections

    @given(ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_trips_counts_open_transitions(self, ops):
        b = CircuitBreaker(failure_threshold=2, cooldown_rejections=2)
        opens = 0
        for op in ops:
            before = b.state
            if op is _Op.ALLOW:
                b.allow()
            elif op is _Op.SUCCESS:
                b.record_success()
            else:
                b.record_failure()
            if before is not BreakerState.OPEN and b.state is BreakerState.OPEN:
                opens += 1
        assert b.trips == opens
