"""System-level property tests: invariants the figures quietly rely on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aifm.pool import PoolConfig
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.machine.costs import AccessKind
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import KB, MB
from repro.workloads.stream import StreamKernel, StreamWorkload

fractions = st.floats(min_value=0.05, max_value=1.0)
strategies = st.sampled_from(list(GuardStrategy))
object_sizes = st.sampled_from([256, 1024, 4096])


def tfm(ws, frac, object_size=4 * KB):
    return TrackFMRuntime(
        PoolConfig(
            object_size=object_size,
            local_memory=max(object_size, int(ws * frac)),
            heap_size=2 * ws,
        )
    )


class TestMonotonicity:
    @given(st.tuples(fractions, fractions), strategies)
    @settings(max_examples=40, deadline=None)
    def test_more_local_memory_never_slower(self, fracs, strategy):
        lo, hi = sorted(fracs)
        ws = 4 * MB
        slow = StreamWorkload(ws).run_trackfm(tfm(ws, lo), strategy)
        fast = StreamWorkload(ws).run_trackfm(tfm(ws, hi), strategy)
        assert fast <= slow + 1e-6

    @given(fractions)
    @settings(max_examples=25, deadline=None)
    def test_fastswap_monotone_too(self, frac):
        ws = 4 * MB
        base = StreamWorkload(ws).run_fastswap(
            FastswapRuntime(FastswapConfig(local_memory=max(4096, int(ws * frac)), heap_size=2 * ws))
        )
        full = StreamWorkload(ws).run_fastswap(
            FastswapRuntime(FastswapConfig(local_memory=ws, heap_size=2 * ws))
        )
        assert full <= base + 1e-6

    @given(object_sizes, fractions)
    @settings(max_examples=25, deadline=None)
    def test_prefetch_never_hurts_streams(self, object_size, frac):
        ws = 4 * MB
        plain = StreamWorkload(ws).run_trackfm(
            tfm(ws, frac, object_size), GuardStrategy.CHUNKED
        )
        pref = StreamWorkload(ws).run_trackfm(
            tfm(ws, frac, object_size), GuardStrategy.CHUNKED_PREFETCH
        )
        assert pref <= plain + 1e-6


class TestConservation:
    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_bytes_fetched_equals_fetch_count_times_object(self, objects, capacity):
        rt = TrackFMRuntime(
            PoolConfig(
                object_size=4 * KB,
                local_memory=capacity * 4 * KB,
                heap_size=64 * KB,
            )
        )
        ptr = rt.tfm_malloc(64 * KB)
        for obj in objects:
            rt.access(ptr + obj * 4 * KB, AccessKind.READ)
        m = rt.metrics
        assert m.bytes_fetched == m.remote_fetches * 4 * KB
        # Reads never produce writebacks.
        assert m.bytes_evacuated == 0

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_guard_count_equals_access_count(self, objects):
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=64 * KB)
        )
        ptr = rt.tfm_malloc(64 * KB)
        for obj in objects:
            rt.access(ptr + obj * 4 * KB, AccessKind.READ)
        m = rt.metrics
        assert m.total_guards == len(objects)
        assert m.accesses == len(objects)

    @given(
        st.lists(st.tuples(st.integers(0, 15), st.booleans()), min_size=1, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_dirty_writeback_bounded_by_writes(self, ops):
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=8 * KB, heap_size=64 * KB)
        )
        ptr = rt.tfm_malloc(64 * KB)
        writes = 0
        for obj, is_write in ops:
            kind = AccessKind.WRITE if is_write else AccessKind.READ
            writes += int(is_write)
            rt.access(ptr + obj * 4 * KB, kind)
        # At most one writeback per write (an object written once can be
        # evacuated at most once while dirty).
        assert rt.metrics.bytes_evacuated <= writes * 4 * KB


class TestCrossSystemOrdering:
    @given(fractions)
    @settings(max_examples=20, deadline=None)
    def test_local_baseline_is_a_lower_bound(self, frac):
        from repro.sim.local import LocalRuntime

        ws = 4 * MB
        local = StreamWorkload(ws).run_local(LocalRuntime())
        far = StreamWorkload(ws).run_trackfm(
            tfm(ws, frac), GuardStrategy.CHUNKED_PREFETCH
        )
        assert local <= far

    @given(st.sampled_from([StreamKernel.SUM, StreamKernel.COPY, StreamKernel.TRIAD]))
    @settings(max_examples=10, deadline=None)
    def test_trackfm_beats_fastswap_under_pressure(self, kernel):
        ws = 4 * MB
        frac = 0.2
        tfm_cycles = StreamWorkload(ws, kernel=kernel).run_trackfm(
            tfm(ws, frac), GuardStrategy.CHUNKED_PREFETCH
        )
        fs_cycles = StreamWorkload(ws, kernel=kernel).run_fastswap(
            FastswapRuntime(
                FastswapConfig(local_memory=int(ws * frac), heap_size=2 * ws)
            )
        )
        assert tfm_cycles < fs_cycles
