"""Report generation and run-to-run determinism of the experiments."""

import pytest

from repro.bench import fig06, fig08, fig16, table1
from repro.bench.report import render_markdown, run_all, write_report


class TestDeterminism:
    @pytest.mark.parametrize("fn", [fig06, fig08, fig16, table1])
    def test_experiments_are_deterministic(self, fn):
        a = fn()
        b = fn()
        assert a.x_values == b.x_values
        for sa, sb in zip(a.series, b.series):
            assert sa.name == sb.name
            assert sa.values == sb.values


class TestReport:
    def test_render_markdown_structure(self):
        results = run_all(["table1", "fig06"])
        text = render_markdown(results)
        assert "## table1" in text
        assert "## fig06" in text
        assert "| guard type | Cached | Uncached |" in text
        assert text.count("|---|") >= 2

    def test_write_report(self, tmp_path):
        out = write_report(tmp_path / "r.md", names=["table1"])
        content = out.read_text()
        assert "fast-path read" in content
        assert "Reproduced experiments" in content

    def test_run_all_default_covers_registry(self):
        from repro.bench.__main__ import EXPERIMENTS

        names = list(EXPERIMENTS)
        # Not executing everything here (the CLI test suite does);
        # just check the registry wiring is intact.
        assert "fig14" in names and "ablation_offload" in names
