"""Negative-stride / non-unit-step IVs and predicate-aware trip counts."""

import pytest

from repro.analysis.induction import InductionAnalysis
from repro.analysis.loops import find_loops
from repro.ir import IRBuilder, Module
from repro.ir.types import I64, PTR
from repro.ir.values import Constant


def build_counting_loop(start, step, bound, pred, use_sub=False, cmp_update=False):
    """for (i = start; i <pred> bound; i += step) — or i -= step with sub."""
    m = Module("count")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    if not cmp_update:
        b.condbr(b.icmp(pred, i, bound), body, exit_)
        b.set_block(body)
        if use_sub:
            i2 = b.sub(i, -step, name="i2")
        else:
            i2 = b.add(i, step, name="i2")
        b.br(header)
    else:
        # Rotated shape: the exit test reads the *updated* value.
        b.br(body)
        b.set_block(body)
        i2 = b.add(i, step, name="i2")
        b.condbr(b.icmp(pred, i2, bound), header, exit_)
    i.add_incoming(Constant(I64, start), entry)
    i.add_incoming(i2, body)
    b.set_block(exit_)
    b.ret(0)
    return m


def governing_iv(m):
    f = m.get_function("main")
    info = find_loops(f)
    analysis = InductionAnalysis(f, info)
    loops = list(info)
    assert len(loops) == 1
    return analysis.governing_iv(loops[0])


def python_trips(start, step, bound, pred):
    """Ground truth by direct simulation."""
    ops = {
        "slt": lambda a, b: a < b,
        "sle": lambda a, b: a <= b,
        "sgt": lambda a, b: a > b,
        "sge": lambda a, b: a >= b,
        "ne": lambda a, b: a != b,
    }
    i, trips = start, 0
    while ops[pred](i, bound) and trips < 10_000:
        trips += 1
        i += step
    return trips


CASES = [
    (0, 1, 100, "slt"),
    (0, 1, 100, "sle"),
    (0, 3, 100, "slt"),
    (0, 3, 100, "sle"),
    (5, 7, 100, "slt"),
    (100, -1, 0, "sgt"),
    (100, -1, 0, "sge"),
    (100, -4, 0, "sgt"),
    (100, -4, 3, "sge"),
    (0, 2, 100, "ne"),
    (50, -5, 0, "ne"),
]


class TestTripCounts:
    @pytest.mark.parametrize("start,step,bound,pred", CASES)
    def test_matches_simulation(self, start, step, bound, pred):
        iv = governing_iv(build_counting_loop(start, step, bound, pred))
        assert iv is not None and iv.governs_loop
        assert iv.step == step
        assert iv.trip_count == python_trips(start, step, bound, pred)

    def test_sub_update_negative_stride(self):
        iv = governing_iv(
            build_counting_loop(100, -2, 0, "sgt", use_sub=True)
        )
        assert iv is not None and iv.step == -2
        assert iv.trip_count == python_trips(100, -2, 0, "sgt")

    def test_ne_with_non_dividing_step_unknown(self):
        # i != 99 stepping by 2 from 0 never hits 99: no static count.
        iv = governing_iv(build_counting_loop(0, 2, 99, "ne"))
        assert iv is not None and iv.trip_count is None

    def test_wrong_direction_step_unknown(self):
        # i < 100 stepping -1 from 0: exits only by wraparound.
        iv = governing_iv(build_counting_loop(0, -1, 100, "slt"))
        assert iv is not None and iv.trip_count is None

    def test_already_false_is_zero(self):
        iv = governing_iv(build_counting_loop(100, 1, 50, "slt"))
        assert iv is not None and iv.trip_count == 0

    def test_unsigned_predicate_unknown(self):
        iv = governing_iv(build_counting_loop(0, 1, 100, "ult"))
        assert iv is not None and iv.trip_count is None

    def test_compare_on_update_counts_the_first_trip(self):
        # do { i += 1 } while (i < 100) from 0 runs the body 100 times.
        iv = governing_iv(build_counting_loop(0, 1, 100, "slt", cmp_update=True))
        assert iv is not None and iv.governs_loop
        assert iv.trip_count == 100

    def test_compare_on_update_sle(self):
        # do { i += 3 } while (i <= 30) from 0: i2 = 3,6,...,33 -> 11 trips.
        iv = governing_iv(build_counting_loop(0, 3, 30, "sle", cmp_update=True))
        assert iv is not None and iv.trip_count == 11

    def test_swapped_operand_compare(self):
        """bound <pred> iv instead of iv <pred> bound."""
        m = Module("swapped")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        # 100 > i  <=>  i < 100
        b.condbr(b.icmp("sgt", Constant(I64, 100), i), body, exit_)
        b.set_block(body)
        i2 = b.add(i, 1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        b.set_block(exit_)
        b.ret(0)
        iv = governing_iv(m)
        assert iv is not None and iv.trip_count == 100


class TestNegativeStridePointerIV:
    def test_backward_pointer_walk(self):
        m = Module("backward")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        base = b.call(PTR, "malloc", [Constant(I64, 512)], name="base")
        last = b.gep(base, 63, 8, name="last")
        b.br(header)
        b.set_block(header)
        p = b.phi(PTR, name="p")
        b.condbr(b.icmp("ne", p, base), body, exit_)
        b.set_block(body)
        v = b.load(I64, p, name="v")
        del v
        p2 = b.gep(p, -1, 8, name="p2")
        b.br(header)
        p.add_incoming(last, entry)
        p.add_incoming(p2, body)
        b.set_block(exit_)
        b.ret(0)
        f2 = m.get_function("main")
        info = find_loops(f2)
        analysis = InductionAnalysis(f2, info)
        iv = analysis.governing_iv(list(info)[0])
        assert iv is not None and iv.is_pointer
        assert iv.step == -8


class TestDownwardCountingEndToEnd:
    def test_reverse_sum_runs_and_audits(self):
        """for (i = n-1; i >= 0; i--) sum += p[i] — interpreted vs audit."""
        from repro.analysis.oblivious import LoopClass, audit_module

        n = 64
        m = Module("revsum")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        s = b.phi(I64, name="s")
        b.condbr(b.icmp("sge", i, 0), body, exit_)
        b.set_block(body)
        b.store(i, b.gep(p, i, 8))
        v = b.load(I64, b.gep(p, i, 8), name="v")
        s2 = b.add(s, v)
        i2 = b.add(i, -1, name="i2")
        b.br(header)
        i.add_incoming(Constant(I64, n - 1), entry)
        i.add_incoming(i2, body)
        s.add_incoming(Constant(I64, 0), entry)
        s.add_incoming(s2, body)
        b.set_block(exit_)
        b.ret(s)

        audit = audit_module(m, object_size=256)
        la = audit.loops[0]
        assert la.classification is LoopClass.OBLIVIOUS
        assert la.trips == n
        # Streams walk downward: negative stride, exact interval.
        strides = sorted(s.stride for s in la.streams)
        assert strides == [-8, -8]
        assert la.prediction.objects == n * 8 // 256
