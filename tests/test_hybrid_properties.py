"""Hypothesis properties of the adaptive path selector.

The selector's docstring promises two structural properties; this file
makes hypothesis hunt for counterexamples over the whole input space
instead of trusting a few hand-picked windows:

* **Monotone in density** — the object-tier cost is linear in a
  window's access count while the page-tier cost is flat, so raising
  density over a fixed footprint can only move a decision *toward*
  pages.  In particular a higher-density window never flips an
  established page placement back to objects.
* **Crossover continuity** — ``crossover_density`` really is the
  break-even point: evaluating both tier costs at exactly that density
  lands them on the same cycle count (no jump at the boundary).
* **Idempotence** — hysteresis makes ``decide`` a projection: feeding
  its own output back as the current placement never flips again, for
  *any* window, so migration replay is stable.

These are pure-function properties (the selector holds no state), plus
one runtime-level corollary: a second ``rebalance()`` over an empty
window migrates nothing.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.compiler.cost_model import ChunkingCostModel
from repro.hybrid.placement import Placement
from repro.hybrid.profiler import RegionStats
from repro.hybrid.selector import PathSelector, SelectorConfig

OBJECT_SIZE = 256

#: Footprints stay physical: a region's touched objects and pages are
#: both positive, and a page can hold several objects.
ACCESSES = st.integers(min_value=1, max_value=200_000)
OBJECTS = st.integers(min_value=1, max_value=512)
PAGES = st.integers(min_value=1, max_value=64)
PLACEMENTS = st.sampled_from([Placement.OBJECTS, Placement.PAGES])
HYSTERESIS = st.floats(
    min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
)


def _selector(hysteresis: float = 0.25, min_accesses: int = 1) -> PathSelector:
    return PathSelector(
        ChunkingCostModel(OBJECT_SIZE),
        SelectorConfig(hysteresis=hysteresis, min_accesses=min_accesses),
    )


def _stats(accesses: int, objects: int, pages: int) -> RegionStats:
    return RegionStats(
        region=0,
        accesses=accesses,
        distinct_objects=objects,
        distinct_pages=pages,
        writes=0,
    )


class TestMonotonicity:
    @given(
        low=ACCESSES,
        extra=st.integers(min_value=1, max_value=200_000),
        objects=OBJECTS,
        pages=PAGES,
        hysteresis=HYSTERESIS,
        current=PLACEMENTS,
    )
    @settings(max_examples=200)
    def test_more_density_never_moves_toward_objects(
        self, low, extra, objects, pages, hysteresis, current
    ):
        """Once a window prefers pages, a denser window still does."""
        selector = _selector(hysteresis=hysteresis)
        sparse = selector.decide(_stats(low, objects, pages), current)
        dense = selector.decide(_stats(low + extra, objects, pages), current)
        if sparse is Placement.PAGES:
            assert dense is Placement.PAGES
        if dense is Placement.OBJECTS:
            assert sparse is Placement.OBJECTS

    @given(
        accesses=ACCESSES,
        objects=OBJECTS,
        pages=PAGES,
        hysteresis=HYSTERESIS,
    )
    @settings(max_examples=200)
    def test_page_placement_survives_any_density_increase(
        self, accesses, objects, pages, hysteresis
    ):
        """Higher density never flips page -> object, full stop."""
        selector = _selector(hysteresis=hysteresis)
        stats = _stats(accesses, objects, pages)
        assume(selector.decide(stats, Placement.OBJECTS) is Placement.PAGES)
        # The window was dense enough to *leave* the object tier; every
        # denser window must keep the page placement it produced.
        for factor in (2, 10, 100):
            denser = _stats(accesses * factor, objects, pages)
            assert selector.decide(denser, Placement.PAGES) is Placement.PAGES

    @given(accesses=ACCESSES, objects=OBJECTS, pages=PAGES)
    @settings(max_examples=200)
    def test_object_cost_linear_page_cost_flat(self, accesses, objects, pages):
        selector = _selector()
        obj_lo, page_lo = selector.tier_costs(_stats(accesses, objects, pages))
        obj_hi, page_hi = selector.tier_costs(
            _stats(accesses * 2, objects, pages)
        )
        assert obj_hi > obj_lo
        assert page_hi == page_lo


@st.composite
def sparse_footprints(draw):
    """Footprints with at most one touched object per touched page.

    The crossover exists only while the per-page object fixed cost
    stays below the page-fault cost — with the default cost table that
    means fewer than ~1.11 objects per page.  Denser object footprints
    make paging cheaper at *any* access count (crossover clamps to 0),
    which is its own branch of the selector, tested separately.
    """
    pages = draw(PAGES)
    objects = draw(st.integers(min_value=1, max_value=pages))
    return objects, pages


class TestCrossoverContinuity:
    @given(footprint=sparse_footprints(), hysteresis=HYSTERESIS)
    @settings(max_examples=200)
    def test_tier_costs_meet_at_the_crossover(self, footprint, hysteresis):
        """At ``crossover_density`` accesses/page the costs are equal."""
        objects, pages = footprint
        selector = _selector(hysteresis=hysteresis)
        probe = _stats(1, objects, pages)
        density = selector.crossover_density(probe)
        assert density > 0.0
        at_crossover = RegionStats(
            region=0,
            accesses=density * pages,  # break-even accesses for the window
            distinct_objects=objects,
            distinct_pages=pages,
            writes=0,
        )
        object_cost, page_cost = selector.tier_costs(at_crossover)
        assert page_cost > 0.0
        assert abs(object_cost - page_cost) <= 1e-6 * page_cost

    @given(footprint=sparse_footprints())
    @settings(max_examples=200)
    def test_decision_brackets_the_crossover(self, footprint):
        """Just below the crossover objects win; well above, pages win.

        With zero hysteresis the decision must agree with the cost
        comparison on both sides of the break-even density.
        """
        objects, pages = footprint
        selector = _selector(hysteresis=0.0)
        density = selector.crossover_density(_stats(1, objects, pages))
        assume(density > 2.0)
        below = _stats(int(density * pages * 0.5), objects, pages)
        above = _stats(int(density * pages * 2.0) + 1, objects, pages)
        assume(below.accesses >= 1)
        assert selector.decide(below, Placement.PAGES) is Placement.OBJECTS
        assert selector.decide(above, Placement.OBJECTS) is Placement.PAGES

    @given(
        accesses=ACCESSES,
        pages=PAGES,
        multiplier=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=200)
    def test_dense_object_footprints_always_prefer_pages(
        self, accesses, pages, multiplier
    ):
        """Past the ratio bound the crossover clamps to 0: pages win.

        When a window touches ~2x more objects than pages, the object
        tier pays its per-object fixed cost more often than the page
        tier pays faults, so paging is cheaper at any density and the
        break-even point vanishes.
        """
        selector = _selector(hysteresis=0.0)
        stats = _stats(accesses, pages * multiplier, pages)
        assert selector.crossover_density(stats) == 0.0
        assert selector.decide(stats, Placement.PAGES) is Placement.PAGES


class TestIdempotence:
    @given(
        accesses=st.integers(min_value=0, max_value=200_000),
        objects=OBJECTS,
        pages=PAGES,
        hysteresis=HYSTERESIS,
        current=PLACEMENTS,
    )
    @settings(max_examples=200)
    def test_decide_is_a_projection(
        self, accesses, objects, pages, hysteresis, current
    ):
        """decide(stats, decide(stats, current)) == decide(stats, current)."""
        selector = _selector(hysteresis=hysteresis, min_accesses=8)
        stats = _stats(accesses, objects, pages)
        first = selector.decide(stats, current)
        assert selector.decide(stats, first) is first

    @given(
        accesses=ACCESSES,
        objects=OBJECTS,
        pages=PAGES,
        current=PLACEMENTS,
    )
    @settings(max_examples=200)
    def test_decision_is_pure(self, accesses, objects, pages, current):
        selector = _selector()
        stats = _stats(accesses, objects, pages)
        assert selector.decide(stats, current) is selector.decide(stats, current)

    @given(
        accesses=st.integers(min_value=0, max_value=7),
        objects=OBJECTS,
        pages=PAGES,
        current=PLACEMENTS,
    )
    @settings(max_examples=100)
    def test_noisy_windows_never_migrate(self, accesses, objects, pages, current):
        """Below ``min_accesses`` the selector always stands pat."""
        selector = _selector(min_accesses=8)
        assert selector.decide(_stats(accesses, objects, pages), current) is current


class TestRuntimeIdempotence:
    def test_empty_window_rebalance_migrates_nothing(self):
        from repro.hybrid.runtime import AdaptiveHybridRuntime
        from repro.machine.costs import AccessKind
        from repro.units import KB

        rt = AdaptiveHybridRuntime(
            local_memory=16 * KB,
            heap_size=64 * KB,
            object_size=256,
            epoch_accesses=64,
            selector_config=SelectorConfig(hysteresis=0.05, min_accesses=4),
        )
        base = rt.tfm_malloc(16 * KB)
        for _ in range(16):
            for off in range(0, 4096, 64):
                rt.access(base + off, AccessKind.READ, size=8)
        rt.rebalance()  # drain whatever the tail window held
        settled = len(rt.migration_log)
        assert rt.metrics.tier_switches == settled
        # No further accesses: every subsequent rebalance sees an empty
        # window, and the migration log must not grow.
        rt.rebalance()
        rt.rebalance()
        assert len(rt.migration_log) == settled
        assert rt.metrics.tier_switches == settled
