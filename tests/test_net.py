"""Network link model, the calibrated backends, and fault-spec parsing."""

import pytest

from repro.errors import RuntimeConfigError
from repro.net.backends import make_rdma_backend, make_tcp_backend
from repro.net.faults import FAULT_SPEC_KEYS, FaultPlan, parse_fault_spec
from repro.net.link import (
    BYTES_PER_CYCLE_25G,
    NetworkLink,
    TransferDirection,
)


class TestLink:
    def test_bandwidth_constant(self):
        # 25 Gb/s at 2.4 GHz ~= 1.30 bytes per cycle.
        assert BYTES_PER_CYCLE_25G == pytest.approx(1.302, rel=0.01)

    def test_transfer_cycles_components(self):
        link = NetworkLink(latency_cycles=1000, bytes_per_cycle=1.0, per_message_cycles=100)
        assert link.transfer_cycles(500) == 1000 + 100 + 500

    def test_pipelining_amortizes_latency(self):
        link = NetworkLink(latency_cycles=10_000, bytes_per_cycle=1.0, per_message_cycles=0)
        blocking = link.transfer_cycles(100)
        deep = link.pipelined_cycles(100, depth=16)
        assert deep < blocking
        # At infinite depth the cost approaches pure wire time.
        assert link.pipelined_cycles(100, depth=10_000) == pytest.approx(100, rel=0.2)

    def test_pipelined_bandwidth_bound(self):
        link = NetworkLink(latency_cycles=100, bytes_per_cycle=1.0, per_message_cycles=0)
        # Large messages: wire time dominates regardless of depth.
        assert link.pipelined_cycles(100_000, depth=8) >= 100_000

    def test_accounting(self):
        link = NetworkLink(latency_cycles=10, bytes_per_cycle=1.0)
        link.transfer(100, TransferDirection.FETCH)
        link.transfer(50, TransferDirection.EVICT)
        assert link.stats.messages == 2
        assert link.stats.bytes_fetched == 100
        assert link.stats.bytes_evicted == 50
        assert link.stats.total_bytes == 150
        assert link.stats.busy_cycles > 0
        link.stats.reset()
        assert link.stats.messages == 0

    def test_invalid_configs(self):
        with pytest.raises(RuntimeConfigError):
            NetworkLink(latency_cycles=-1)
        with pytest.raises(RuntimeConfigError):
            NetworkLink(latency_cycles=0, bytes_per_cycle=0)
        link = NetworkLink(latency_cycles=0)
        with pytest.raises(RuntimeConfigError):
            link.pipelined_cycles(10, depth=0)
        with pytest.raises(RuntimeConfigError):
            link.transfer(-1, TransferDirection.FETCH)


class TestLinkEdgeCases:
    """Pins for the ``reset()``/``pipelined_cycles`` corner cases."""

    def _link(self):
        return NetworkLink(
            latency_cycles=1000, bytes_per_cycle=1.0, per_message_cycles=100
        )

    def test_reset_clears_busy_cycles(self):
        link = self._link()
        link.transfer(100, TransferDirection.FETCH)
        assert link.stats.busy_cycles > 0
        link.stats.reset()
        assert link.stats.busy_cycles == 0.0
        assert link.stats.total_bytes == 0

    def test_depth_one_pipeline_is_blocking(self):
        # depth=1 means no overlap at all: the "pipelined" cost must be
        # exactly the blocking cost (the old formula double-counted the
        # per-message overhead: max(wire, lat+pm) + pm).
        link = self._link()
        assert link.pipelined_cycles(500, depth=1) == link.transfer_cycles(500)

    def test_transfer_rejects_nonpositive_depth(self):
        # depth=0 used to silently fall into the blocking branch.
        link = self._link()
        for depth in (0, -1, -8):
            with pytest.raises(RuntimeConfigError):
                link.transfer(100, TransferDirection.FETCH, depth=depth)
        assert link.stats.messages == 0  # nothing was accounted

    def test_zero_byte_transfer(self):
        # A zero-byte message still pays latency + per-message overhead
        # and counts as one message moving no bytes.
        link = self._link()
        cost = link.transfer(0, TransferDirection.FETCH)
        assert cost == 1000 + 100
        assert link.stats.messages == 1
        assert link.stats.bytes_fetched == 0

    def test_zero_byte_pipelined(self):
        link = self._link()
        assert link.pipelined_cycles(0, depth=8) == (1000 + 100) / 8 + 100 / 8

    def test_pipelined_monotone_in_depth(self):
        link = self._link()
        costs = [link.pipelined_cycles(500, d) for d in (1, 2, 4, 8, 16)]
        assert costs == sorted(costs, reverse=True)
        # And never better than the bandwidth bound.
        assert costs[-1] >= link.wire_cycles(500)


class TestBackendsCalibration:
    def test_tcp_4kb_fetch_near_34_5k(self):
        # Table 2: TrackFM remote slow path ~35K incl. ~450-cycle guard.
        tcp = make_tcp_backend()
        assert tcp.fetch_cost(4096) == pytest.approx(34_500, rel=0.01)

    def test_rdma_4kb_fetch_near_32_7k(self):
        # Table 2: Fastswap fault 34K incl. ~1.3K kernel overhead.
        rdma = make_rdma_backend()
        assert rdma.fetch_cost(4096) == pytest.approx(32_700, rel=0.01)

    def test_small_fetches_latency_dominated(self):
        tcp = make_tcp_backend()
        assert tcp.fetch_cost(64) > 0.85 * tcp.fetch_cost(4096)

    def test_fetch_and_evict_account_bytes(self):
        tcp = make_tcp_backend()
        tcp.fetch(4096)
        tcp.evict(64)
        assert tcp.bytes_fetched == 4096
        assert tcp.bytes_evicted == 64

    def test_pipelined_fetch_cheaper(self):
        tcp = make_tcp_backend()
        assert tcp.fetch_cost(4096, depth=8) < tcp.fetch_cost(4096)

    def test_fetch_cost_does_not_account(self):
        tcp = make_tcp_backend()
        tcp.fetch_cost(4096)
        assert tcp.bytes_fetched == 0


class TestFaultSpecParsing:
    def test_corruption_keys_parse_into_rates(self):
        plan = parse_fault_spec("seed=2,bitflip=0.1,stale=0.2,torn=0.3,lostwb=0.4")
        assert plan == FaultPlan(
            seed=2,
            bitflip_rate=0.1,
            stale_read_rate=0.2,
            torn_write_rate=0.3,
            lost_writeback_rate=0.4,
        )
        assert plan.has_data_faults

    def test_unknown_key_error_enumerates_valid_keys(self):
        # The error message is the discovery surface for the spec
        # grammar: every key — including the corruption kinds — must be
        # listed, so a typo tells the operator what exists.
        with pytest.raises(RuntimeConfigError) as err:
            parse_fault_spec("bitflips=0.1")
        message = str(err.value)
        assert "valid keys" in message
        for key in FAULT_SPEC_KEYS:
            assert key in message
        for corruption_key in ("bitflip", "stale", "torn", "lostwb"):
            assert corruption_key in message

    def test_out_of_range_corruption_rate_rejected(self):
        with pytest.raises(RuntimeConfigError):
            parse_fault_spec("bitflip=1.5")
