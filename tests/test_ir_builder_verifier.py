"""IRBuilder ergonomics and the structural verifier."""

import pytest

from repro.errors import IRError, IRTypeError, IRVerifyError
from repro.ir import (
    IRBuilder,
    I64,
    F64,
    PTR,
    VOID,
    Module,
    print_function,
    print_module,
    verify_function,
    verify_module,
)
from repro.ir.instructions import Br, Ret
from repro.ir.values import Constant

from irprograms import build_sum_loop


class TestBuilder:
    def test_literal_coercion(self):
        m = Module()
        f = m.add_function("f", I64)
        b = IRBuilder(f.add_block("entry"))
        v = b.add(1, 2)
        assert v.type == I64
        b.ret(v)
        verify_module(m)

    def test_float_ops(self):
        m = Module()
        f = m.add_function("f", F64)
        b = IRBuilder(f.add_block("entry"))
        x = b.fadd(1.0, 2.0)
        y = b.fmul(x, 3.0)
        b.ret(y)
        verify_module(m)

    def test_no_insertion_point(self):
        b = IRBuilder()
        with pytest.raises(IRError):
            b.add(1, 2)

    def test_phi_inserted_at_top(self):
        m = Module()
        f = m.add_function("f", I64)
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        v = b.add(1, 2)
        phi = b.phi(I64)
        assert entry.instructions[0] is phi
        del v

    def test_store_int_literal(self):
        m = Module()
        f = m.add_function("f", VOID)
        b = IRBuilder(f.add_block("entry"))
        p = b.alloca(8)
        b.store(42, p)
        b.ret()
        verify_module(m)

    def test_bad_coercion(self):
        m = Module()
        f = m.add_function("f", I64)
        b = IRBuilder(f.add_block("entry"))
        with pytest.raises(IRTypeError):
            b._coerce(object(), I64)


class TestVerifier:
    def test_valid_loop_module_passes(self):
        verify_module(build_sum_loop())

    def test_missing_terminator(self):
        m = Module()
        f = m.add_function("f", VOID)
        f.add_block("entry")
        with pytest.raises(IRVerifyError, match="missing terminator"):
            verify_function(f)

    def test_phi_after_non_phi(self):
        m = Module()
        f = m.add_function("f", I64)
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        v = b.add(1, 2)
        from repro.ir.instructions import Phi

        phi = Phi(I64)
        phi.name = "late"
        entry.append(phi)
        entry.append(Ret(v))
        with pytest.raises(IRVerifyError, match="phi after non-phi"):
            verify_function(f)

    def test_branch_to_foreign_block(self):
        m = Module()
        f = m.add_function("f", VOID)
        g = m.add_function("g", VOID)
        foreign = g.add_block("gb")
        entry = f.add_block("entry")
        entry.append(Br(foreign))
        foreign.append(Ret())
        with pytest.raises(IRVerifyError, match="foreign block"):
            verify_function(f)

    def test_phi_edges_must_match_preds(self):
        m = build_sum_loop()
        f = m.get_function("main")
        header = f.get_block("header")
        phi = header.phis()[0]
        phi.incoming.pop()
        with pytest.raises(IRVerifyError, match="phi"):
            verify_function(f)

    def test_unknown_callee_rejected(self):
        m = Module()
        f = m.add_function("f", VOID)
        b = IRBuilder(f.add_block("entry"))
        b.call(VOID, "mystery_function")
        b.ret()
        with pytest.raises(IRVerifyError, match="unknown"):
            verify_function(f)

    def test_intrinsic_callees_allowed(self):
        m = Module()
        f = m.add_function("f", VOID)
        b = IRBuilder(f.add_block("entry"))
        b.call(PTR, "tfm_malloc", [Constant(I64, 8)])
        b.call(PTR, "malloc", [Constant(I64, 8)])
        b.ret()
        verify_function(f)

    def test_use_of_foreign_value(self):
        m = Module()
        f = m.add_function("f", I64)
        g = m.add_function("g", I64)
        gb = g.add_block("entry")
        bg = IRBuilder(gb)
        foreign = bg.add(1, 2)
        bg.ret(foreign)
        fb = f.add_block("entry")
        fb.append(Ret(foreign))
        with pytest.raises(IRVerifyError, match="not defined in this function"):
            verify_function(f)

    def test_terminator_not_last(self):
        m = Module()
        f = m.add_function("f", VOID)
        entry = f.add_block("entry")
        entry.append(Ret())
        # Bypass the append guard to build a malformed block.
        entry.instructions.append(Ret())
        with pytest.raises(IRVerifyError):
            verify_function(f)


class TestPrinter:
    def test_prints_all_blocks_and_metadata(self):
        m = build_sum_loop()
        f = m.get_function("main")
        for inst in f.instructions():
            if inst.is_memory_access():
                inst.metadata["tfm.guard"] = True
        text = print_module(m)
        assert "define i64 @main()" in text
        assert "header:" in text
        assert "phi i64" in text
        assert "tfm.guard" in text
        assert "call ptr @malloc(" in text

    def test_prints_declarations(self):
        m = Module()
        m.declare_function("ext", I64, [I64])
        assert "declare i64 @ext" in print_module(m)

    def test_function_render_roundtrip_smoke(self):
        m = build_sum_loop()
        text = print_function(m.get_function("main"))
        assert text.count("ret") == 1
        assert "condbr" in text
