"""Seeded differential fuzzing: generated programs through the stack.

Complements the hypothesis-driven ``test_differential.py`` with fixed,
reproducible seeds over a *richer* program space (branches, calls,
pointer chases — see :mod:`tests.irgen`).  Each seed's program runs

1. untouched, under the plain interpreter (ground truth);
2. fully TrackFM-compiled — with the guard-safety sanitizer verifying
   every pipeline stage — on a memory-constrained far-memory runtime;
3. TrackFM-compiled on the *adaptive hybrid* runtime, whose online
   selector migrates regions between the object and page tiers while
   the program runs (the fuzz oracle for the migration protocol);

and the results must be identical.  The seed is in the test id and the
assertion message: ``generate_module(<seed>)`` reproduces any failure
exactly.
"""

from __future__ import annotations

import os

import pytest

from repro.aifm.pool import PoolConfig
from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.hybrid.runtime import AdaptiveHybridRuntime
from repro.integrity import IntegrityConfig
from repro.ir import verify_module
from repro.machine.cache import AlwaysHitCache
from repro.net.faults import FaultPlan, RetryPolicy
from repro.sim.interpreter import Interpreter
from repro.sim.irrun import TrackFMProgram
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import BASE_PAGE, KB, MB

from tests.irgen import generate_module

#: Seed corpus: fixed seeds (reproducible; no time/randomness here).
#: PR CI runs the default 50; the nightly fuzz workflow widens the
#: corpus via ``REPRO_FUZZ_SEEDS=500``.
SEEDS = list(range(int(os.environ.get("REPRO_FUZZ_SEEDS", "50"))))

#: Opt-in network fault injection for the far-memory side of every
#: differential run (the nightly fuzz workflow sets e.g.
#: ``REPRO_FUZZ_FAULT_RATE=0.01``).  The retry policy absorbs losses at
#: these rates, so program values must *still* match the raw
#: interpreter — which is exactly what makes it a fuzz oracle for the
#: resilience layer.
FAULT_RATE = float(os.environ.get("REPRO_FUZZ_FAULT_RATE", "0"))

#: Opt-in payload corruption for the same runs (nightly sets e.g.
#: ``REPRO_FUZZ_CORRUPT_RATE=0.01``).  Corrupted fetches are detected
#: and repaired by the integrity checker — values must still match the
#: raw interpreter, making this the fuzz oracle for the integrity layer.
CORRUPT_RATE = float(os.environ.get("REPRO_FUZZ_CORRUPT_RATE", "0"))


def far_run(
    module,
    fault_rate: float = FAULT_RATE,
    fault_seed: int = 0,
    corrupt_rate: float = CORRUPT_RATE,
) -> int:
    """Interpret under a runtime too small to hold the working set."""
    runtime = TrackFMRuntime(
        PoolConfig(object_size=256, local_memory=1 * KB, heap_size=1 * MB),
        cache=AlwaysHitCache(),
    )
    if fault_rate > 0.0 or corrupt_rate > 0.0:
        backend = runtime.pool.backend
        plan = FaultPlan(
            seed=fault_seed,
            drop_rate=fault_rate,
            jitter_cycles=200.0 if fault_rate > 0.0 else 0.0,
            bitflip_rate=corrupt_rate,
            stale_read_rate=corrupt_rate,
            torn_write_rate=corrupt_rate,
            lost_writeback_rate=corrupt_rate,
        )
        backend.link.faults = plan.schedule()
        if fault_rate > 0.0:
            backend.retry_policy = RetryPolicy(max_attempts=8, seed=fault_seed)
    if corrupt_rate > 0.0:
        # A deep repair budget: at these rates quarantine would need
        # many consecutive corrupt re-fetches of one object.
        runtime.enable_integrity(
            IntegrityConfig(seed=fault_seed, max_refetches=4)
        )
    return TrackFMProgram(module, runtime, max_steps=5_000_000).run("main").value


def adaptive_far_run(
    module,
    fault_rate: float = FAULT_RATE,
    fault_seed: int = 0,
    corrupt_rate: float = CORRUPT_RATE,
) -> int:
    """The fifth engine: the adaptive hybrid, selector live, both tiers.

    Same memory-starved posture as :func:`far_run`, but region accesses
    flow through the online path selector — regions migrate between the
    object tier and the shadow page tier mid-program, and faults /
    corruption land on both tiers' links.
    """
    runtime = AdaptiveHybridRuntime(
        local_memory=2 * BASE_PAGE,
        heap_size=1 * MB,
        object_size=256,
        epoch_accesses=64,
        cache=AlwaysHitCache(),
    )
    if fault_rate > 0.0 or corrupt_rate > 0.0:
        plan = FaultPlan(
            seed=fault_seed,
            drop_rate=fault_rate,
            jitter_cycles=200.0 if fault_rate > 0.0 else 0.0,
            bitflip_rate=corrupt_rate,
            stale_read_rate=corrupt_rate,
            torn_write_rate=corrupt_rate,
            lost_writeback_rate=corrupt_rate,
        )
        for backend in runtime.remote_backends():
            backend.link.faults = plan.schedule()
            if fault_rate > 0.0:
                backend.retry_policy = RetryPolicy(max_attempts=8, seed=fault_seed)
    if corrupt_rate > 0.0:
        runtime.enable_integrity(IntegrityConfig(seed=fault_seed, max_refetches=4))
    return TrackFMProgram(module, runtime, max_steps=5_000_000).run("main").value


class TestSeededDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_pipeline_matches_raw_interpreter(self, seed):
        raw = generate_module(seed)
        verify_module(raw)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value

        module = generate_module(seed)
        config = CompilerConfig(verify_guards=True)
        compiled = TrackFMCompiler(config).compile(module)
        got = far_run(compiled.module)
        assert got == expected, (
            f"seed {seed}: far-memory TrackFM run returned {got}, raw "
            f"interpreter returned {expected}; reproduce with "
            f"tests.irgen.generate_module({seed})"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adaptive_hybrid_matches_raw_interpreter(self, seed):
        raw = generate_module(seed)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value

        module = generate_module(seed)
        compiled = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        got = adaptive_far_run(compiled.module)
        assert got == expected, (
            f"seed {seed}: adaptive-hybrid run returned {got}, raw "
            f"interpreter returned {expected}; reproduce with "
            f"tests.irgen.generate_module({seed})"
        )

    @pytest.mark.parametrize("seed", SEEDS[::10])
    def test_chunk_all_policy_matches(self, seed):
        raw = generate_module(seed)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value
        module = generate_module(seed)
        compiled = TrackFMCompiler(
            CompilerConfig(chunking=ChunkingPolicy.ALL, verify_guards=True)
        ).compile(module)
        got = far_run(compiled.module)
        assert got == expected, f"seed {seed}: chunk-all diverged"

    def test_generator_is_deterministic(self):
        from repro.ir import print_module

        assert print_module(generate_module(7)) == print_module(generate_module(7))
        assert print_module(generate_module(7)) != print_module(generate_module(8))


class TestFaultedDifferential:
    """A small always-on slice of the fault-injected differential.

    The full corpus only runs faulted when ``REPRO_FUZZ_FAULT_RATE`` is
    set (nightly); these pinned seeds keep the retry path exercised on
    every PR run regardless.
    """

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_low_rate_faults_do_not_change_values(self, seed):
        raw = generate_module(seed)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value
        module = generate_module(seed)
        compiled = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        got = far_run(compiled.module, fault_rate=0.02, fault_seed=seed)
        assert got == expected, (
            f"seed {seed}: faulted far-memory run returned {got}, raw "
            f"interpreter returned {expected}"
        )

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_low_rate_faults_do_not_change_adaptive_values(self, seed):
        raw = generate_module(seed)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value
        module = generate_module(seed)
        compiled = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        got = adaptive_far_run(compiled.module, fault_rate=0.02, fault_seed=seed)
        assert got == expected, (
            f"seed {seed}: faulted adaptive-hybrid run returned {got}, "
            f"raw interpreter returned {expected}"
        )


class TestCorruptedDifferential:
    """A small always-on slice of the corruption-injected differential.

    The full corpus only runs corrupted when ``REPRO_FUZZ_CORRUPT_RATE``
    is set (nightly); these pinned seeds keep the detect → repair path
    exercised on every PR run regardless.
    """

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_low_rate_corruption_does_not_change_values(self, seed):
        raw = generate_module(seed)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value
        module = generate_module(seed)
        compiled = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        got = far_run(compiled.module, fault_rate=0.0, fault_seed=seed, corrupt_rate=0.02)
        assert got == expected, (
            f"seed {seed}: corruption-injected far-memory run returned "
            f"{got}, raw interpreter returned {expected}"
        )

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_low_rate_corruption_does_not_change_adaptive_values(self, seed):
        raw = generate_module(seed)
        expected = Interpreter(raw, max_steps=5_000_000).run("main").value
        module = generate_module(seed)
        compiled = TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
        got = adaptive_far_run(
            compiled.module, fault_rate=0.0, fault_seed=seed, corrupt_rate=0.02
        )
        assert got == expected, (
            f"seed {seed}: corruption-injected adaptive-hybrid run "
            f"returned {got}, raw interpreter returned {expected}"
        )
