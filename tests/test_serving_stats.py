"""Statistics plumbing of the serving layer: histograms, arrivals, quotas.

Three satellite guarantees:

* **histogram merge semantics** — folding per-shard latency histograms
  into a global one is exact counter addition: the merged percentile
  equals the percentile of recording the concatenated stream, and the
  merged percentile is bracketed by the per-shard min/max (hypothesis
  properties + the live cluster's merged histogram);
* **open-loop arrival determinism** — the same ``TrafficConfig``
  generates a bit-identical schedule (fingerprint-stable), different
  seeds diverge, and arrival times are sorted with a total order;
* **sparse metrics aggregation** — merging per-shard ``Metrics`` keeps
  absent-when-zero counters absent, so the serialization of aggregated
  fault-free metrics is exactly a fresh bundle's (the regression that
  would otherwise silently rewrite every ``BENCH_*.json`` fingerprint).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costs import GuardKind
from repro.serve import (
    ClusterConfig,
    ShardedCluster,
    TrafficConfig,
    generate_schedule,
    run_serving,
)
from repro.sim.metrics import Metrics
from repro.trace.histogram import StreamingHistogram

SAMPLES = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=120,
)


# -- histogram merge ---------------------------------------------------------


@given(shards=st.lists(SAMPLES, min_size=1, max_size=8))
@settings(max_examples=80, deadline=None)
def test_merged_histogram_equals_concatenated_stream(shards):
    merged = StreamingHistogram()
    flat = StreamingHistogram()
    for samples in shards:
        per_shard = StreamingHistogram()
        for v in samples:
            per_shard.record(v)
            flat.record(v)
        merged.merge(per_shard)
    assert merged.count == flat.count
    assert merged.buckets == flat.buckets
    for p in (50.0, 90.0, 95.0, 99.0, 100.0):
        assert merged.percentile(p) == flat.percentile(p)


@given(shards=st.lists(SAMPLES, min_size=2, max_size=8))
@settings(max_examples=80, deadline=None)
def test_merged_percentiles_bracketed_by_shard_extremes(shards):
    hists = []
    for samples in shards:
        h = StreamingHistogram()
        for v in samples:
            h.record(v)
        hists.append(h)
    merged = StreamingHistogram()
    for h in hists:
        merged.merge(h)
    lo = min(h.percentile(0.0) for h in hists)
    hi = max(h.percentile(100.0) for h in hists)
    for p in (50.0, 95.0, 99.0):
        assert lo <= merged.percentile(p) <= hi


def test_cluster_merged_latency_is_per_shard_sum():
    config = ClusterConfig(n_shards=4, n_keys=128, runtime="aifm")
    cluster = ShardedCluster(config)
    schedule = generate_schedule(
        TrafficConfig(clients=16, requests_per_client=25, n_keys=128, seed=3)
    )
    report, _ = run_serving(cluster, schedule)
    merged = cluster.merged_latency()
    assert merged.count == sum(s.latency.count for s in cluster.shards.values())
    assert merged.count == report.requests
    by_hand = StreamingHistogram()
    for _sid, shard in sorted(cluster.shards.items()):
        by_hand.merge(shard.latency)
    assert by_hand.buckets == merged.buckets
    assert report.latency_percentiles["p50"] == merged.percentile(50.0)
    assert report.latency_percentiles["p99"] == merged.percentile(99.0)


# -- open-loop arrival determinism -------------------------------------------


def test_schedule_bit_identical_under_fixed_seed():
    config = TrafficConfig(clients=50, requests_per_client=20, n_keys=512, seed=42)
    a = generate_schedule(config)
    b = generate_schedule(config)
    assert a.fingerprint() == b.fingerprint()
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.keys, b.keys)
    assert np.array_equal(a.writes, b.writes)
    assert np.array_equal(a.tenants, b.tenants)


def test_schedule_diverges_across_seeds():
    base = TrafficConfig(clients=50, requests_per_client=20, n_keys=512, seed=42)
    other = TrafficConfig(clients=50, requests_per_client=20, n_keys=512, seed=43)
    assert generate_schedule(base).fingerprint() != generate_schedule(other).fingerprint()


def test_schedule_is_time_sorted_and_open_loop():
    config = TrafficConfig(
        clients=20, requests_per_client=50, n_keys=256, seed=9,
        mean_interarrival_cycles=10_000.0,
    )
    schedule = generate_schedule(config)
    assert len(schedule) == config.total_requests
    assert np.all(np.diff(schedule.times) >= 0.0)
    # Open loop: per-client arrivals are strictly increasing cumulative
    # exponential sums, independent of any service feedback.
    for client in (0, 7, 19):
        mine = schedule.times[schedule.clients == client]
        assert len(mine) == config.requests_per_client
        assert np.all(np.diff(mine) > 0.0)
    # Tenant assignment is positional, not random.
    assert np.array_equal(schedule.tenants, schedule.clients % config.tenants)
    # The mean inter-arrival tracks the configured rate (law of large
    # numbers at this sample size; deterministic given the seed).
    gaps = np.diff(np.sort(schedule.times[schedule.clients == 0]))
    assert 0.5 * config.mean_interarrival_cycles < gaps.mean() < 2.0 * config.mean_interarrival_cycles


def test_serving_report_deterministic_end_to_end():
    config = ClusterConfig(n_shards=4, n_keys=128, runtime="trackfm")
    schedule = generate_schedule(
        TrafficConfig(clients=16, requests_per_client=25, n_keys=128, seed=3)
    )
    r1, _ = run_serving(ShardedCluster(config), schedule)
    r2, _ = run_serving(ShardedCluster(config), schedule)
    assert r1.to_dict() == r2.to_dict()


# -- sparse metrics aggregation (the BENCH fingerprint regression) -----------


def test_aggregate_keeps_sparse_counters_sparse():
    shards = []
    for _ in range(4):
        m = Metrics()
        m.cycles = 100.0
        m.accesses = 10
        m.count_guard(GuardKind.FAST, 5)
        shards.append(m)
    total = Metrics.aggregate(shards)
    d = total.as_dict()
    # Fault-free aggregation must serialize exactly like a fresh
    # fault-free bundle: no resilience keys, no zero guard entries.
    for key in ("drops", "timeouts", "retries", "degraded_accesses",
                "deferred_writebacks", "corruptions_detected",
                "corruptions_repaired", "quarantined_objects",
                "journal_replays"):
        assert key not in d
    assert d["guards"] == {"fast": 20}


def test_merge_does_not_materialize_zero_guard_entries():
    target = Metrics()
    source = Metrics()
    source.guards[GuardKind.SLOW] = 0  # an explicit zero entry
    source.count_guard(GuardKind.FAST, 3)
    target.merge(source)
    assert GuardKind.SLOW not in target.guards
    assert target.as_dict()["guards"] == {"fast": 3}


def test_aggregated_fault_free_serialization_matches_fresh_bundle():
    fresh = Metrics()
    fresh.cycles = 40.0
    fresh.accesses = 4
    parts = []
    for _ in range(4):
        m = Metrics()
        m.cycles = 10.0
        m.accesses = 1
        parts.append(m)
    assert Metrics.aggregate(parts).as_dict() == fresh.as_dict()


def test_cluster_fault_free_metrics_stay_sparse():
    cluster = ShardedCluster(ClusterConfig(n_shards=4, n_keys=64, runtime="aifm"))
    schedule = generate_schedule(
        TrafficConfig(clients=8, requests_per_client=10, n_keys=64, seed=1)
    )
    run_serving(cluster, schedule)
    d = cluster.merged_metrics().as_dict()
    assert "drops" not in d and "retries" not in d
    assert "degraded_accesses" not in d
    assert all(n > 0 for n in d["guards"].values())


def test_from_dict_drops_zero_guard_entries():
    m = Metrics.from_dict({"cycles": 1.0, "guards": {"fast": 2, "slow": 0}})
    assert m.guards == {GuardKind.FAST: 2}


# -- tenant quotas ------------------------------------------------------------


def test_tenant_quota_bounds_residency_and_expels():
    config = ClusterConfig(
        n_shards=1, n_keys=512, runtime="aifm",
        local_memory=16 * 1024, tenant_quota_bytes=1024,  # 4 objects
    )
    cluster = ShardedCluster(config)
    quota = config.tenant_quota_objects
    # One tenant streams over far more objects than its quota allows:
    # slots pack 32 keys per 256-byte object, so 512 keys = 16 objects
    # against a 4-object budget.
    for key in range(512):
        cluster.serve(key, tenant=0)
        assert cluster.shards[0].tenant_residency(0) <= quota
    shard = cluster.shards[0]
    assert shard.metrics.evictions > 0, "quota breaches must expel"
    # A second tenant gets its own budget, unaffected by the first.
    for key in range(3, 64, 8):
        cluster.serve(key, tenant=1)
    assert shard.tenant_residency(1) <= quota
