"""TFM-P3xx perf diagnostics, report filtering, and CLI output modes."""

import json

from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
from repro.ir import IRBuilder, Module, print_module
from repro.ir.types import I64, PTR, VOID
from repro.ir.values import Constant
from repro.sanitizer import (
    HIGH_FETCH_AMPLIFICATION,
    INVARIANT_GUARD_IN_LOOP,
    OBLIVIOUS_NOT_PREFETCHED,
    SCHEDULE_FOR_OPAQUE_STREAM,
    UNGUARDED_DEREF,
    Sanitizer,
    SanitizerReport,
    Severity,
    Diagnostic,
)
from repro.sanitizer.__main__ import main as sanitizer_cli

from irprograms import build_sum_loop
from test_symbolic_streams import build_strided_loop


def perf_codes(module, object_size=256):
    report = Sanitizer(strict=False, perf=True, object_size=object_size).run(module)
    return [d.code for d in report.diagnostics if d.code.startswith("TFM-P")]


def build_invariant_guard_loop():
    """for (i...) sum += *p — the same heap address every iteration."""
    m = Module("invariant")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, 64)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, 100), body, exit_)
    b.set_block(body)
    v = b.load(I64, p, name="v")
    del v
    i2 = b.add(i, 1, name="i2")
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    b.set_block(exit_)
    b.ret(0)
    return m


class TestP301ObliviousNotPrefetched:
    def test_fires_on_unprefetched_oblivious_loop(self):
        assert OBLIVIOUS_NOT_PREFETCHED in perf_codes(build_sum_loop(n=100))

    def test_silent_when_schedule_emitted(self):
        m = build_sum_loop(n=512)
        cfg = CompilerConfig(
            object_size=256,
            chunking=ChunkingPolicy.ALL,
            enable_programmed_prefetch=True,
        )
        TrackFMCompiler(cfg).compile(m)
        assert OBLIVIOUS_NOT_PREFETCHED not in perf_codes(m)

    def test_silent_for_tiny_loops(self):
        assert OBLIVIOUS_NOT_PREFETCHED not in perf_codes(build_sum_loop(n=2))

    def test_perf_off_by_default(self):
        report = Sanitizer(strict=False).run(build_sum_loop(n=100))
        assert not [d for d in report.diagnostics if d.code.startswith("TFM-P")]


class TestP302FetchAmplification:
    def test_fires_on_sparse_stride(self):
        # stride 32B over 256B objects: 4x amplification.
        m = build_strided_loop(n=64, scale=4)
        assert HIGH_FETCH_AMPLIFICATION in perf_codes(m)

    def test_silent_on_dense_stream(self):
        assert HIGH_FETCH_AMPLIFICATION not in perf_codes(build_sum_loop(n=512))


class TestP303InvariantGuard:
    def test_fires_on_loop_invariant_heap_access(self):
        assert INVARIANT_GUARD_IN_LOOP in perf_codes(build_invariant_guard_loop())

    def test_silent_on_strided_access(self):
        assert INVARIANT_GUARD_IN_LOOP not in perf_codes(build_sum_loop(n=100))


class TestP304ScheduleForOpaqueStream:
    def _loop_with_sched(self, sched_stream):
        """A chunked loop whose preheader carries a hand-planted sched."""
        m = build_sum_loop(n=512)
        cfg = CompilerConfig(
            object_size=256,
            chunking=ChunkingPolicy.ALL,
            enable_programmed_prefetch=True,
        )
        TrackFMCompiler(cfg).compile(m)
        # Retarget the emitted schedule at a stream no access consumes.
        from repro.compiler.programmed_prefetch import PREFETCH_SCHED
        from repro.ir.instructions import Call

        main = m.get_function("main")
        for inst in main.instructions():
            if isinstance(inst, Call) and inst.callee == PREFETCH_SCHED:
                inst.operands[5] = Constant(I64, sched_stream)
        return m

    def test_valid_schedule_is_silent(self):
        assert SCHEDULE_FOR_OPAQUE_STREAM not in perf_codes(self._loop_with_sched(0))

    def test_unmatched_stream_fires(self):
        codes = perf_codes(self._loop_with_sched(7))
        assert SCHEDULE_FOR_OPAQUE_STREAM in codes

    def test_schedule_outside_preheader_fires(self):
        m = build_sum_loop(n=512)
        f = m.get_function("main")
        entry = f.blocks[0]
        term = entry.terminator
        from repro.ir.instructions import Call

        # entry is a preheader here, but stream 9 matches nothing.
        sched = Call(
            VOID,
            "tfm_prefetch_sched",
            [f.blocks[0].instructions[0]] + [Constant(I64, x) for x in (0, 8, 512, 4, 9)],
        )
        entry.insert_before(term, sched)
        assert SCHEDULE_FOR_OPAQUE_STREAM in perf_codes(m)


class TestReportFiltering:
    def _report(self):
        return SanitizerReport(
            module_name="m",
            strict=True,
            diagnostics=[
                Diagnostic("TFM-S101", Severity.ERROR, "a", "main"),
                Diagnostic("TFM-S201", Severity.WARNING, "b", "main"),
                Diagnostic("TFM-P301", Severity.WARNING, "c", "main"),
            ],
        )

    def test_select_prefix(self):
        kept = self._report().filtered(select=["TFM-P"])
        assert [d.code for d in kept.diagnostics] == ["TFM-P301"]

    def test_ignore_prefix(self):
        kept = self._report().filtered(ignore=["TFM-S2", "TFM-P"])
        assert [d.code for d in kept.diagnostics] == ["TFM-S101"]

    def test_ignore_changes_ok(self):
        report = self._report()
        assert not report.ok
        assert report.filtered(ignore=["TFM-S101"]).ok

    def test_as_dict_round_trips_through_json(self):
        blob = json.loads(json.dumps(self._report().as_dict()))
        assert blob["errors"] == 1
        assert blob["diagnostics"][0]["code"] == "TFM-S101"
        assert blob["diagnostics"][0]["severity"] == "error"


class TestCLI:
    def _write(self, tmp_path, module, name="m.ir"):
        path = tmp_path / name
        path.write_text(print_module(module))
        return str(path)

    def _bad_module(self):
        """A heap load with no guard: strict-mode TFM-S101."""
        m = Module("bad")
        f = m.add_function("main", I64)
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, 64)], name="p")
        v = b.load(I64, p, name="v")
        b.ret(v)
        return m

    def test_ignore_silences_exit_code(self, tmp_path, capsys):
        path = self._write(tmp_path, self._bad_module())
        assert sanitizer_cli([path]) == 1
        capsys.readouterr()
        assert sanitizer_cli(["--ignore", UNGUARDED_DEREF, path]) == 0

    def test_select_keeps_only_matching(self, tmp_path, capsys):
        path = self._write(tmp_path, self._bad_module())
        rc = sanitizer_cli(["--select", "TFM-S2", path])
        out = capsys.readouterr().out
        assert rc == 0  # the S101 error is filtered out
        assert UNGUARDED_DEREF not in out

    def test_json_format(self, tmp_path, capsys):
        path = self._write(tmp_path, self._bad_module())
        rc = sanitizer_cli(["--format", "json", path])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert blob[0]["file"] == path
        assert blob[0]["errors"] >= 1
        codes = {d["code"] for d in blob[0]["diagnostics"]}
        assert UNGUARDED_DEREF in codes

    def test_perf_flag_via_cli(self, tmp_path, capsys):
        m = build_sum_loop(n=100)
        path = self._write(tmp_path, m, "oblivious.ir")
        rc = sanitizer_cli(
            ["--no-strict", "--perf", "--object-size", "256", path]
        )
        out = capsys.readouterr().out
        assert rc == 0  # perf findings are warnings, not errors
        assert OBLIVIOUS_NOT_PREFETCHED in out

    def test_explain_includes_perf_codes(self, capsys):
        assert sanitizer_cli(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in (
            OBLIVIOUS_NOT_PREFETCHED,
            HIGH_FETCH_AMPLIFICATION,
            INVARIANT_GUARD_IN_LOOP,
            SCHEDULE_FOR_OPAQUE_STREAM,
        ):
            assert code in out

    def test_select_perf_only_json(self, tmp_path, capsys):
        m = build_sum_loop(n=100)
        path = self._write(tmp_path, m, "oblivious.ir")
        rc = sanitizer_cli(
            [
                "--no-strict",
                "--perf",
                "--object-size",
                "256",
                "--select",
                "TFM-P",
                "--format",
                "json",
                path,
            ]
        )
        blob = json.loads(capsys.readouterr().out)
        assert rc == 0
        codes = {d["code"] for d in blob[0]["diagnostics"]}
        assert codes and all(c.startswith("TFM-P") for c in codes)
