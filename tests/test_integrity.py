"""Unit tests for the data-integrity subsystem.

Covers the seeded checksum codec, the deterministic data-fault schedule
(payload corruption rolls on counters independent of message fates),
fetch-time verify → repair → quarantine on the backend, the write-ahead
journal protocol driven by the evacuator, the metadata sidecar tag, and
the sparse metrics contract (integrity counters only appear once
nonzero).  Crash injection and recovery live in
``test_recovery_chaos.py``; hypothesis properties in
``test_integrity_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.aifm.evacuator import Evacuator
from repro.aifm.pool import ObjectPool, PoolConfig
from repro.errors import (
    DataIntegrityError,
    JournalError,
    RemoteBackendError,
    RuntimeConfigError,
)
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.integrity import (
    ChecksumCodec,
    EvacuationJournal,
    IntegrityConfig,
    RecordKind,
    attach_integrity,
    default_integrity_config,
    flip_bit,
    installed_integrity_config,
    parse_integrity_spec,
)
from repro.integrity.config import INTEGRITY_SPEC_KEYS
from repro.net.backends import make_tcp_backend
from repro.net.faults import CORRUPTION_KINDS, FaultPlan
from repro.sim.metrics import Metrics
from repro.units import KB

#: The sparse counters the integrity layer owns.
INTEGRITY_COUNTERS = (
    "corruptions_detected",
    "corruptions_repaired",
    "quarantined_objects",
    "journal_replays",
)


def _armed_backend(plan: FaultPlan, config: IntegrityConfig):
    """A TCP backend with ``plan`` data faults and a wired checker."""
    backend = make_tcp_backend()
    backend.link.faults = plan.schedule()
    checker = attach_integrity(backend, config)
    metrics = Metrics()
    backend.metrics = metrics
    checker.metrics = metrics
    return backend, checker, metrics


class TestChecksumCodec:
    def test_crc_roundtrip_and_seed_keying(self):
        a, b = ChecksumCodec(seed=1), ChecksumCodec(seed=2)
        payload = b"far memory payload"
        assert a.verify(payload, a.checksum(payload))
        assert not b.verify(payload, a.checksum(payload))

    def test_single_bit_flip_detected(self):
        codec = ChecksumCodec(seed=7)
        payload = bytes(range(64))
        check = codec.checksum(payload)
        for bit in (0, 1, 17, 511):
            assert not codec.verify(flip_bit(payload, bit), check)

    def test_flip_bit_is_involutive(self):
        payload = b"\x00\xff\x42"
        assert flip_bit(flip_bit(payload, 9), 9) == payload
        with pytest.raises(ValueError):
            flip_bit(b"", 0)

    def test_object_checksum_distinguishes_versions(self):
        codec = ChecksumCodec(seed=0)
        tags = {codec.object_checksum(obj, v) for obj in range(8) for v in range(8)}
        assert len(tags) == 64  # no collisions in the test universe

    def test_object_checksum_deterministic(self):
        assert ChecksumCodec(3).object_checksum(5, 2) == ChecksumCodec(
            3
        ).object_checksum(5, 2)


class TestIntegritySpecParsing:
    def test_off_and_empty(self):
        assert parse_integrity_spec("off") is None
        assert parse_integrity_spec("") is None

    def test_on_is_defaults(self):
        assert parse_integrity_spec("on") == IntegrityConfig()

    def test_full_spec(self):
        config = parse_integrity_spec("seed=3,refetch=5,verify=40,crash=12:farnode")
        assert config == IntegrityConfig(
            seed=3,
            max_refetches=5,
            verify_cycles=40.0,
            crash_at_record=12,
            crash_kind="farnode",
        )

    def test_crash_without_kind_defaults_to_evacuator(self):
        config = parse_integrity_spec("crash=4")
        assert config.crash_at_record == 4
        assert config.crash_kind == "evacuator"

    def test_unknown_key_enumerates_valid_keys(self):
        with pytest.raises(RuntimeConfigError) as err:
            parse_integrity_spec("bogus=1")
        message = str(err.value)
        for key in INTEGRITY_SPEC_KEYS:
            assert key in message

    def test_bad_values(self):
        for spec in ("seed=x", "refetch=-1", "crash=0", "crash=3:bogus", "seed"):
            with pytest.raises(RuntimeConfigError):
                parse_integrity_spec(spec)


class TestDataFaultSchedule:
    def test_payload_rolls_are_deterministic(self):
        plan = FaultPlan(seed=9, bitflip_rate=0.3, torn_write_rate=0.2)
        a, b = plan.schedule(), plan.schedule()
        assert [a.roll_fetch_payload() for _ in range(200)] == [
            b.roll_fetch_payload() for _ in range(200)
        ]
        assert [a.roll_evict_payload() for _ in range(200)] == [
            b.roll_evict_payload() for _ in range(200)
        ]
        assert a.stats.bitflips == b.stats.bitflips > 0
        assert a.stats.torn_writes == b.stats.torn_writes > 0

    def test_arming_data_faults_preserves_message_fates(self):
        # Corruption rolls live on separate counters: the loss/latency
        # schedule must be bit-identical with and without them.
        plain = FaultPlan(seed=4, drop_rate=0.1, jitter_cycles=300.0)
        armed = FaultPlan(
            seed=4,
            drop_rate=0.1,
            jitter_cycles=300.0,
            bitflip_rate=0.5,
            lost_writeback_rate=0.5,
        )
        assert [plain.decide(i) for i in range(500)] == [
            armed.decide(i) for i in range(500)
        ]

    def test_data_faults_make_plan_non_noop(self):
        assert FaultPlan().is_noop
        for kind in (
            "bitflip_rate",
            "stale_read_rate",
            "torn_write_rate",
            "lost_writeback_rate",
        ):
            plan = FaultPlan(**{kind: 0.01})
            assert plan.has_data_faults
            assert not plan.is_noop

    def test_rate_validation(self):
        with pytest.raises(RuntimeConfigError):
            FaultPlan(bitflip_rate=1.5)
        with pytest.raises(RuntimeConfigError):
            FaultPlan(torn_write_rate=-0.1)

    def test_corruption_stats_rollup(self):
        sched = FaultPlan(seed=2, bitflip_rate=1.0, torn_write_rate=1.0).schedule()
        sched.roll_fetch_payload()
        sched.roll_evict_payload()
        assert sched.stats.corruptions == 2

    def test_corruption_kinds_constant(self):
        assert set(CORRUPTION_KINDS) == {
            "bitflip",
            "torn_write",
            "lost_writeback",
            "stale_read",
        }


class TestBackendVerification:
    def test_clean_fetch_charges_verify_cycles_only(self):
        backend, _checker, metrics = _armed_backend(
            FaultPlan(seed=1), IntegrityConfig(verify_cycles=25.0)
        )
        plain = make_tcp_backend()
        assert backend.fetch(256, obj_id=0) == plain.fetch(256) + 25.0
        assert metrics.corruptions_detected == 0

    def test_fetch_without_obj_id_skips_verification(self):
        backend, _checker, _metrics = _armed_backend(
            FaultPlan(seed=1, bitflip_rate=1.0), IntegrityConfig()
        )
        assert backend.fetch(256) == make_tcp_backend().fetch(256)

    def test_corruption_repaired_by_refetch(self):
        # Rate 0.4 at this seed corrupts some fetches but never enough
        # in a row to exhaust the budget: everything must repair.
        backend, checker, metrics = _armed_backend(
            FaultPlan(seed=3, bitflip_rate=0.4), IntegrityConfig(max_refetches=4)
        )
        for obj in range(40):
            backend.fetch(256, obj_id=obj)
        assert metrics.corruptions_detected > 0
        assert metrics.corruptions_repaired == metrics.corruptions_detected
        assert metrics.quarantined_objects == 0
        assert not checker.quarantined

    def test_repair_costs_more_than_clean(self):
        clean_backend, _c, _m = _armed_backend(
            FaultPlan(seed=11), IntegrityConfig(max_refetches=4)
        )
        dirty_backend, _c2, metrics = _armed_backend(
            FaultPlan(seed=11, bitflip_rate=1.0), IntegrityConfig(max_refetches=4)
        )
        clean = clean_backend.fetch(256, obj_id=0)
        with pytest.raises(DataIntegrityError):
            dirty_backend.fetch(256, obj_id=0)
        # The failed repair attempts were still paid for on the wire.
        assert metrics.remote_fetches == 4
        assert metrics.bytes_fetched == 4 * 256
        assert clean > 0

    def test_quarantine_raises_and_sticks(self):
        backend, checker, metrics = _armed_backend(
            FaultPlan(seed=1, bitflip_rate=1.0), IntegrityConfig(max_refetches=2)
        )
        with pytest.raises(DataIntegrityError) as err:
            backend.fetch(256, obj_id=5)
        assert err.value.obj_id == 5
        assert isinstance(err.value, RemoteBackendError)
        assert checker.quarantined == {5}
        assert metrics.quarantined_objects == 1
        # Every later touch raises immediately, with no new detection.
        detected = metrics.corruptions_detected
        with pytest.raises(DataIntegrityError) as err2:
            backend.fetch(256, obj_id=5)
        assert err2.value.kind == "quarantined"
        assert metrics.corruptions_detected == detected

    def test_detected_equals_repaired_plus_quarantined(self):
        backend, _checker, metrics = _armed_backend(
            FaultPlan(seed=3, bitflip_rate=0.6, stale_read_rate=0.2),
            IntegrityConfig(max_refetches=1),
        )
        for obj in range(60):
            try:
                backend.fetch(256, obj_id=obj)
            except DataIntegrityError:
                pass
        assert metrics.corruptions_detected > 0
        assert metrics.quarantined_objects > 0
        assert (
            metrics.corruptions_detected
            == metrics.corruptions_repaired + metrics.quarantined_objects
        )

    def test_zero_refetch_budget_quarantines_immediately(self):
        backend, _checker, metrics = _armed_backend(
            FaultPlan(seed=1, bitflip_rate=1.0), IntegrityConfig(max_refetches=0)
        )
        with pytest.raises(DataIntegrityError):
            backend.fetch(256, obj_id=0)
        assert metrics.remote_fetches == 0  # no repair traffic at all


class TestJournalProtocol:
    def _evacuator(self, plan: FaultPlan, config: IntegrityConfig):
        backend, checker, metrics = _armed_backend(plan, config)
        evac = Evacuator(backend=backend, object_size=256)
        return evac, checker, metrics

    def test_committed_writeback_journals_three_records(self):
        evac, checker, metrics = self._evacuator(FaultPlan(seed=1), IntegrityConfig())
        evac.process([(7, True)], metrics)
        kinds = [r.kind for r in checker.journal.records]
        assert kinds == [RecordKind.INTENT, RecordKind.PAYLOAD, RecordKind.COMMIT]
        assert checker.versions[7] == 1
        assert checker.journal.records[0].obj_id == 7

    def test_clean_eviction_journals_nothing(self):
        evac, checker, metrics = self._evacuator(FaultPlan(seed=1), IntegrityConfig())
        evac.process([(7, False)], metrics)
        assert len(checker.journal) == 0

    def test_deferred_writeback_journals_abort(self):
        evac, checker, metrics = self._evacuator(
            FaultPlan(seed=0, drop_rate=1.0), IntegrityConfig()
        )
        from repro.net.faults import RetryPolicy

        evac.backend.retry_policy = RetryPolicy(max_attempts=2)
        evac.process([(3, True)], metrics)
        kinds = [r.kind for r in checker.journal.records]
        assert kinds == [RecordKind.INTENT, RecordKind.PAYLOAD, RecordKind.ABORT]
        assert 3 not in checker.versions  # never committed
        assert metrics.deferred_writebacks == 1

    def test_reattempted_writeback_gets_fresh_version(self):
        # An aborted attempt must not shadow a later commit in the fold.
        evac, checker, metrics = self._evacuator(
            FaultPlan(seed=0, drop_rate=1.0), IntegrityConfig()
        )
        from repro.net.faults import RetryPolicy

        evac.backend.retry_policy = RetryPolicy(max_attempts=2)
        evac.process([(3, True)], metrics)
        evac.backend.link.faults = None  # heal
        evac.drain_deferred(metrics)
        state = checker.journal.state()
        assert state[(3, 1)] is RecordKind.ABORT
        assert state[(3, 2)] is RecordKind.COMMIT
        assert checker.versions[3] == 2

    def test_torn_writeback_marks_remote_damage(self):
        evac, checker, metrics = self._evacuator(
            FaultPlan(seed=1, torn_write_rate=1.0), IntegrityConfig()
        )
        evac.process([(9, True)], metrics)
        assert checker.remote_damage == {9: "torn_write"}

    def test_damaged_copy_repaired_from_journal_on_fetch(self):
        # Tear exactly one writeback (the first evict-payload roll),
        # then fetch the object back: repair must re-drive the journal
        # payload, clear the damage, and count a replay.
        evac, checker, metrics = self._evacuator(
            FaultPlan(seed=1, torn_write_rate=0.999), IntegrityConfig(max_refetches=4)
        )
        evac.process([(9, True)], metrics)
        assert checker.remote_damage
        # Heal the writeback path so the re-drive lands intact.
        evac.backend.link.faults = FaultPlan(seed=1).schedule()
        evac.backend.fetch(256, obj_id=9)
        assert not checker.remote_damage
        assert metrics.journal_replays == 1
        assert metrics.corruptions_repaired == 1

    def test_finish_without_begin_raises(self):
        _evac, checker, _metrics = self._evacuator(FaultPlan(seed=1), IntegrityConfig())
        with pytest.raises(JournalError):
            checker.finish_writeback(1)

    def test_journal_append_validation(self):
        journal = EvacuationJournal()
        with pytest.raises(JournalError):
            journal.append(RecordKind.INTENT, -1, 1)
        with pytest.raises(JournalError):
            journal.append(RecordKind.INTENT, 0, 0)


class TestMetadataSidecar:
    def _pool(self, config: IntegrityConfig = None):
        backend = make_tcp_backend()
        if config is not None:
            attach_integrity(backend, config)
        return ObjectPool(
            PoolConfig(object_size=256, local_memory=1 * KB, heap_size=16 * KB),
            backend=backend,
        )

    def test_meta_carries_check_when_armed(self):
        pool = self._pool(IntegrityConfig(seed=5))
        meta = pool.meta(3)
        assert meta.check == pool.integrity.expected_check(3)
        assert meta.check is not None

    def test_meta_check_none_when_off(self):
        assert self._pool().meta(3).check is None

    def test_check_survives_word_transitions(self):
        pool = self._pool(IntegrityConfig(seed=5))
        pool.ensure_local(3)
        meta = pool.meta(3)
        assert meta.with_dirty().check == meta.check
        assert meta.with_hot().check == meta.check
        assert meta.with_evacuating().check == meta.check

    def test_check_advances_with_writeback_version(self):
        pool = self._pool(IntegrityConfig(seed=5))
        before = pool.meta(0).check
        pool.integrity.begin_writeback(0)
        pool.integrity.finish_writeback(0)
        assert pool.meta(0).check != before

    def test_pool_wires_checker_metrics(self):
        pool = self._pool(IntegrityConfig())
        assert pool.integrity.metrics is pool.metrics

    def test_fastswap_page_table_entry(self):
        rt = FastswapRuntime(FastswapConfig(local_memory=8 * KB, heap_size=64 * KB))
        assert rt.page_table_entry(0) == (False, False, None)
        rt.enable_integrity(IntegrityConfig(seed=2))
        off = rt.allocate(4096)
        rt.access(off)
        resident, dirty, check = rt.page_table_entry(rt.page_of(off))
        assert resident and not dirty
        assert check == rt.integrity.expected_check(rt.page_of(off))
        from repro.errors import PointerError

        with pytest.raises(PointerError):
            rt.page_table_entry(10**9)


class TestSparseCounters:
    def test_fresh_metrics_emit_no_integrity_keys(self):
        emitted = Metrics().as_dict()
        for key in INTEGRITY_COUNTERS:
            assert key not in emitted

    def test_nonzero_counters_round_trip(self):
        m = Metrics()
        m.corruptions_detected = 3
        m.corruptions_repaired = 2
        m.quarantined_objects = 1
        m.journal_replays = 4
        wire = m.as_dict()
        for key in INTEGRITY_COUNTERS:
            assert key in wire
        back = Metrics.from_dict(wire)
        assert back.as_dict() == wire
        merged = Metrics()
        merged.merge(m)
        assert merged.corruptions_detected == 3
        m.reset()
        assert m.journal_replays == 0


class TestDefaultConfigHook:
    def test_installed_config_arms_factory_backends(self):
        assert default_integrity_config() is None
        with installed_integrity_config(IntegrityConfig(seed=8)):
            backend = make_tcp_backend()
            assert backend.integrity is not None
            assert backend.integrity.config.seed == 8
        assert default_integrity_config() is None
        assert make_tcp_backend().integrity is None

    def test_disabled_config_is_not_attached(self):
        with installed_integrity_config(IntegrityConfig(enabled=False)):
            assert make_tcp_backend().integrity is None
