"""Property-based tests for Metrics and the streaming histogram.

Hypothesis-generated counter bundles and sample streams check the
algebra the observability layer leans on: ``merge`` is associative and
commutative, ``snapshot`` isolates, ``as_dict``/``from_dict`` round-trip
losslessly, histogram percentiles are monotone, and merging histograms
equals recording the concatenated stream.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings, strategies as st

from repro.machine.costs import GuardKind
from repro.sim.metrics import Metrics
from repro.trace import StreamingHistogram

_COUNTER_FIELDS = (
    "accesses", "minor_faults", "major_faults", "remote_fetches",
    "bytes_fetched", "bytes_evacuated", "evictions",
    "prefetches_issued", "prefetches_useful",
    "drops", "timeouts", "retries", "degraded_accesses",
    "deferred_writebacks",
    "corruptions_detected", "corruptions_repaired",
    "quarantined_objects", "journal_replays",
)

metrics_strategy = st.builds(
    lambda cycles, counters, guards: _make_metrics(cycles, counters, guards),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.lists(
        st.integers(min_value=0, max_value=1_000_000),
        min_size=len(_COUNTER_FIELDS), max_size=len(_COUNTER_FIELDS),
    ),
    st.dictionaries(
        st.sampled_from(list(GuardKind)),
        st.integers(min_value=1, max_value=1_000_000),
        max_size=len(GuardKind),
    ),
)


def _make_metrics(cycles, counters, guards) -> Metrics:
    m = Metrics(cycles=cycles)
    for field, value in zip(_COUNTER_FIELDS, counters):
        setattr(m, field, value)
    for kind, n in guards.items():
        m.count_guard(kind, n)
    return m


def _equal(a: Metrics, b: Metrics) -> bool:
    return a.as_dict() == b.as_dict()


samples_strategy = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=0, max_size=200
)


class TestMetricsAlgebra:
    @given(metrics_strategy, metrics_strategy)
    @settings(max_examples=50, deadline=None)
    def test_merge_commutes(self, a, b):
        ab = a.snapshot()
        ab.merge(b)
        ba = b.snapshot()
        ba.merge(a)
        assert _equal(ab, ba)

    @given(metrics_strategy, metrics_strategy, metrics_strategy)
    @settings(max_examples=50, deadline=None)
    def test_merge_associates(self, a, b, c):
        left = a.snapshot()
        left.merge(b)
        left.merge(c)
        bc = b.snapshot()
        bc.merge(c)
        right = a.snapshot()
        right.merge(bc)
        # Integer counters associate exactly; the float cycle total only
        # up to rounding (IEEE addition is not associative).
        ld, rd = left.as_dict(), right.as_dict()
        assert math.isclose(ld.pop("cycles"), rd.pop("cycles"), rel_tol=1e-12)
        assert ld == rd

    @given(metrics_strategy)
    @settings(max_examples=50, deadline=None)
    def test_snapshot_isolates(self, m):
        snap = m.snapshot()
        before = snap.as_dict()
        m.cycles += 1000.0
        m.accesses += 5
        m.count_guard(GuardKind.SLOW, 3)
        assert snap.as_dict() == before

    @given(metrics_strategy)
    @settings(max_examples=50, deadline=None)
    def test_reset_zeroes_everything(self, m):
        m.reset()
        assert _equal(m, Metrics())
        assert m.total_guards == 0

    @given(metrics_strategy)
    @settings(max_examples=50, deadline=None)
    def test_as_dict_roundtrips_through_json(self, m):
        wire = json.dumps(m.as_dict())
        back = Metrics.from_dict(json.loads(wire))
        assert _equal(m, back)
        assert back.guards == m.guards


class TestHistogramProperties:
    @given(samples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_percentiles_monotone(self, samples):
        h = StreamingHistogram()
        for s in samples:
            h.record(s)
        if h.count == 0:
            return
        values = [h.percentile(p) for p in (1, 10, 25, 50, 75, 90, 99, 100)]
        assert values == sorted(values)

    @given(samples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_percentile_brackets_extremes(self, samples):
        h = StreamingHistogram()
        for s in samples:
            h.record(s)
        if h.count == 0:
            return
        # Bucket representatives sit within one bucket of the true
        # extremes; min/max themselves are tracked exactly.
        assert h.min == min(samples)
        assert h.max == max(samples)

    @given(samples_strategy, samples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, xs, ys):
        separate = StreamingHistogram()
        for s in xs:
            separate.record(s)
        other = StreamingHistogram()
        for s in ys:
            other.record(s)
        separate.merge(other)

        together = StreamingHistogram()
        for s in xs + ys:
            together.record(s)
        assert separate.to_dict() == together.to_dict()

    @given(samples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip_lossless(self, samples):
        h = StreamingHistogram()
        for s in samples:
            h.record(s)
        wire = json.dumps(h.to_dict())
        back = StreamingHistogram.from_dict(json.loads(wire))
        assert back.to_dict() == h.to_dict()
        if h.count:
            assert back.percentile(50) == h.percentile(50)
            assert back.mean == h.mean
