#!/usr/bin/env python3
"""Pointer-chase prefetching on a far-memory linked list (§5 extension).

The paper's future work: "We expect greater benefits when we can
capture information about recursive data structures."  The reproduction
implements it — the compiler detects the ``node = node->next``
recurrence and rewrites the walk to greedily prefetch each node's
successor while the current node is being processed.

Run:  python examples/linked_list.py
"""

from repro import CompilerConfig, PoolConfig, TrackFMProgram, TrackFMRuntime, TrackFMCompiler
from repro.compiler import ChunkingPolicy
from repro.ir import IRBuilder, I64, PTR, Module
from repro.ir.values import Constant, null_ptr
from repro.machine.costs import GuardKind
from repro.units import KB, MB, fmt_cycles

N_NODES = 8192
NODE_BYTES = 64  # {i64 value, ptr next, payload...}: one cache line


def build_list_program() -> Module:
    """Builds an N-node list, then walks it summing values."""
    m = Module("list")
    f = m.add_function("main", I64)
    entry, bh, bb, mid, wh, wb, done = (
        f.add_block(x) for x in ("entry", "bh", "bb", "mid", "wh", "wb", "done")
    )
    b = IRBuilder(entry)
    base = b.call(PTR, "malloc", [Constant(I64, N_NODES * NODE_BYTES)], name="base")
    b.br(bh)
    b.set_block(bh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, N_NODES), bb, mid)
    b.set_block(bb)
    node = b.gep(base, i, NODE_BYTES)
    b.store(i, node)
    i2 = b.add(i, 1)
    nxt = b.select(
        b.icmp("eq", i2, N_NODES), null_ptr(), b.gep(base, i2, NODE_BYTES)
    )
    b.store(nxt, b.gep(node, 1, 8))
    b.br(bh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, bb)
    b.set_block(mid)
    b.br(wh)
    b.set_block(wh)
    p = b.phi(PTR, name="p")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("ne", p, null_ptr()), wb, done)
    b.set_block(wb)
    s2 = b.add(s, b.load(I64, p))
    nextp = b.load(PTR, b.gep(p, 1, 8))
    b.br(wh)
    p.add_incoming(base, mid)
    p.add_incoming(nextp, wb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, wb)
    b.set_block(done)
    b.ret(s)
    return m


def run(chase: bool) -> None:
    config = CompilerConfig(
        chunking=ChunkingPolicy.NONE, enable_chase_prefetch=chase
    )
    compiled = TrackFMCompiler(config).compile(build_list_program())
    runtime = TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=2 * MB)
    )
    result = TrackFMProgram(compiled.module, runtime).run("main")
    expected = N_NODES * (N_NODES - 1) // 2
    m = runtime.metrics
    label = "with chase prefetch" if chase else "plain guards       "
    print(
        f"{label}: sum={result.value} ({'ok' if result.value == expected else 'WRONG'}), "
        f"{fmt_cycles(m.cycles)} cycles, slow guards {m.guard_count(GuardKind.SLOW)}, "
        f"useful prefetches {m.prefetches_useful}"
    )
    return m.cycles


def main() -> None:
    print(f"walking a {N_NODES}-node far-memory linked list "
          f"({N_NODES * NODE_BYTES // 1024}KB of nodes, 16KB local)\n")
    without = run(chase=False)
    with_chase = run(chase=True)
    print(f"\nchase prefetching speedup: {without / with_chase:.2f}x")


if __name__ == "__main__":
    main()
