#!/usr/bin/env python3
"""Object-size autotuning — the §3.2/§5 future-work idea, implemented.

The paper: "the small search space suggests that an autotuning approach
is feasible ... an exhaustive search involving recompilation and a
short-term execution would simply expand the short compile times."

This example does exactly that: for each plausible object size (powers
of two, 64 B .. 4 KB) it recompiles a probe program, runs a short
execution under the far-memory runtime, and picks the fastest size —
once for a sequential (STREAM-like) probe and once for a random
(hashmap-like) probe, landing on the paper's Fig. 9/10 conclusions
automatically.

Run:  python examples/object_size_autotune.py
"""

from repro import CompilerConfig, PoolConfig, TrackFMCompiler, TrackFMProgram, TrackFMRuntime
from repro.ir import IRBuilder, I64, PTR, Module
from repro.ir.values import Constant
from repro.units import KB, MB, PLAUSIBLE_OBJECT_SIZES, fmt_bytes, fmt_cycles

HEAP = 2 * MB
LOCAL = 8 * KB
N = 8192


def build_probe(sequential: bool) -> Module:
    """A short-term execution probe.

    Sequential: a plain array sweep (spatial locality, Fig. 10).
    Random: a key-value-style pattern — 90% of accesses hit a *hot set*
    of elements scattered across the array (hashing scatters hot keys),
    10% go anywhere.  Large objects dilute the hot set: each hot element
    drags a whole object of cold neighbours into local memory (Fig. 9).
    """
    m = Module("probe")
    f = m.add_function("main", I64)
    entry, header, body, done = (
        f.add_block(n) for n in ("entry", "header", "body", "done")
    )
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, N * 8)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, N), body, done)
    b.set_block(body)
    if sequential:
        idx = b.add(i, 0)
    else:
        # hot: one of 64 elements spread N/64 apart; cold: hashed anywhere.
        hot = b.mul(b.srem(b.mul(i, 7), 64), N // 64)
        cold = b.srem(b.mul(i, 2654435761), N)
        is_cold = b.icmp("eq", b.srem(i, 10), 0)
        idx = b.select(is_cold, cold, hot)
    v = b.load(I64, b.gep(p, idx, 8))
    s2 = b.add(s, v)
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(done)
    b.ret(s)
    return m


def autotune(sequential: bool) -> int:
    kind = "sequential" if sequential else "random"
    print(f"\nautotuning for a {kind} probe:")
    best_size, best_cycles = None, float("inf")
    for size in PLAUSIBLE_OBJECT_SIZES:
        module = build_probe(sequential)
        compiled = TrackFMCompiler(CompilerConfig(object_size=size)).compile(module)
        runtime = TrackFMRuntime(
            PoolConfig(object_size=size, local_memory=LOCAL, heap_size=HEAP)
        )
        TrackFMProgram(compiled.module, runtime).run("main")
        cycles = runtime.metrics.cycles
        marker = ""
        if cycles < best_cycles:
            best_size, best_cycles = size, cycles
            marker = "  <- best so far"
        print(f"  {fmt_bytes(size):>6} objects: {fmt_cycles(cycles):>8} cycles{marker}")
    print(f"  chosen object size: {fmt_bytes(best_size)}")
    return best_size


def main() -> None:
    print(
        f"probe: {N} accesses over {fmt_bytes(N * 8)} of heap, "
        f"{fmt_bytes(LOCAL)} local memory"
    )
    seq = autotune(sequential=True)
    rnd = autotune(sequential=False)
    print(
        f"\nconclusion: sequential -> {fmt_bytes(seq)} (spatial locality pays "
        f"for big objects, Fig. 10); random -> {fmt_bytes(rnd)} (small objects "
        "avoid I/O amplification, Fig. 9)."
    )


if __name__ == "__main__":
    main()
