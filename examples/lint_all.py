"""Lint every example-built IR module: guard safety + access audit.

Two gates in one script, both exercised over the same module set (the
shipped examples, the NAS suite, and the shared IR test programs from
``tests/irprograms.py``):

1. **Guard safety** — build each module, push it through the default
   TrackFM pipeline, print it to ``.ir`` text, and run the sanitizer
   CLI over the result — the same path a user takes when saving
   pipeline output to disk.
2. **Access audit** — run the far-memory access auditor and the
   TFM-P3xx perf sanitizer over each *untransformed* module and compare
   loop classifications and diagnostic codes against the checked-in
   baseline ``examples/lint_baseline.json``.  Any drift — a loop that
   stops classifying oblivious, a new perf diagnostic, one that
   silently disappears — fails the gate.

Exits non-zero if any module fails either gate.  After an intentional
analysis change, refresh the baseline with ``--record-baseline``.

Run from the repository root (after ``pip install -e .``)::

    python examples/lint_all.py
    python examples/lint_all.py --record-baseline   # refresh baseline
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

# Sibling example modules are imported by file location, so the script
# works under a plain ``pip install -e .`` with no PYTHONPATH set.
HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))
sys.path.insert(1, str(HERE.parent / "tests"))

from linked_list import build_list_program
from object_size_autotune import build_probe
from quickstart import build_unmodified_program

from irprograms import build_sum_loop, build_write_then_sum
from repro import CompilerConfig, TrackFMCompiler
from repro.analysis.oblivious import audit_module
from repro.ir import print_module
from repro.sanitizer import Sanitizer
from repro.sanitizer.__main__ import main as sanitizer_main
from repro.workloads.nas import NAS_SUITE, build_nas_ir

BASELINE = HERE / "lint_baseline.json"
#: Object size the audit assumes; matches the trace/bench drivers.
AUDIT_OBJECT_SIZE = 256

BUILDERS = {
    "quickstart": build_unmodified_program,
    "linked_list": build_list_program,
    "probe_sequential": lambda: build_probe(sequential=True),
    "probe_random": lambda: build_probe(sequential=False),
    "sum_loop": lambda: build_sum_loop(n=512),
    "write_then_sum": lambda: build_write_then_sum(n=512),
}
BUILDERS.update(
    {f"nas_{b.name.lower()}": (lambda name=b.name: build_nas_ir(name, n=32))
     for b in NAS_SUITE}
)


def audit_summary(module) -> dict:
    """Stable, diffable facts the baseline freezes for one module."""
    audit = audit_module(module, object_size=AUDIT_OBJECT_SIZE)
    classes = {}
    for la in audit.loops:
        key = f"{la.function}:{la.loop.header.name}"
        classes[key] = la.classification.value
    report = Sanitizer(strict=False, perf=True, object_size=AUDIT_OBJECT_SIZE).run(
        module
    )
    codes = sorted(d.code for d in report.diagnostics)
    return {"loops": classes, "diagnostics": codes}


def run_audit_gate(record: bool) -> int:
    summaries = {name: audit_summary(builder()) for name, builder in
                 sorted(BUILDERS.items())}
    if record:
        BASELINE.write_text(json.dumps(summaries, indent=2, sort_keys=True) + "\n")
        print(f"[audit] recorded baseline for {len(summaries)} modules -> {BASELINE}")
        return 0
    if not BASELINE.exists():
        print(f"[audit] missing baseline {BASELINE}; "
              "run: python examples/lint_all.py --record-baseline")
        return 1
    baseline = json.loads(BASELINE.read_text())
    failures = 0
    for name, summary in summaries.items():
        expected = baseline.get(name)
        if summary == expected:
            print(f"[audit] {name}: ok")
            continue
        failures += 1
        if expected is None:
            print(f"[audit] {name}: FAILED (not in baseline)")
            continue
        print(f"[audit] {name}: FAILED (audit drift)")
        for key in sorted(set(summary["loops"]) | set(expected["loops"])):
            got = summary["loops"].get(key, "<gone>")
            want = expected["loops"].get(key, "<new>")
            if got != want:
                print(f"[audit]   loop {key}: {want} -> {got}")
        if summary["diagnostics"] != expected["diagnostics"]:
            print(f"[audit]   diagnostics: expected {expected['diagnostics']}, "
                  f"got {summary['diagnostics']}")
    stale = sorted(set(baseline) - set(summaries))
    if stale:
        failures += 1
        print(f"[audit] baseline has modules that no longer build: {stale}")
    return 1 if failures else 0


def run_guard_gate() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="tfm-lint-") as tmp:
        for name, builder in sorted(BUILDERS.items()):
            module = builder()
            # verify_guards already sanitizes between passes and
            # post-pipeline; the CLI run below additionally covers the
            # print -> parse path.
            TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
            path = Path(tmp) / f"{name}.ir"
            path.write_text(print_module(module))
            rc = sanitizer_main([str(path)])
            status = "ok" if rc == 0 else f"FAILED (exit {rc})"
            print(f"[lint] {name}: {status}")
            if rc != 0:
                failures += 1
    if failures:
        print(f"[lint] {failures} module(s) failed guard-safety linting")
        return 1
    print(f"[lint] all {len(BUILDERS)} modules guard-safe")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    record = "--record-baseline" in argv
    audit_rc = run_audit_gate(record)
    if record:
        return audit_rc
    guard_rc = run_guard_gate()
    return max(audit_rc, guard_rc)


if __name__ == "__main__":
    sys.exit(main())
