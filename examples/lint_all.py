"""Lint every example-built IR module for guard safety.

Builds each IR-producing example module, pushes it through the default
TrackFM pipeline, prints it to ``.ir`` text, and runs the sanitizer CLI
over the result — the same path a user takes when saving pipeline
output to disk.  Exits non-zero if any module fails, which makes this
the CI gate for "the shipped examples stay guard-safe".

Run from the repository root (after ``pip install -e .``)::

    python examples/lint_all.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

# Sibling example modules are imported by file location, so the script
# works under a plain ``pip install -e .`` with no PYTHONPATH set.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from linked_list import build_list_program
from object_size_autotune import build_probe
from quickstart import build_unmodified_program

from repro import CompilerConfig, TrackFMCompiler
from repro.ir import print_module
from repro.sanitizer.__main__ import main as sanitizer_main
from repro.workloads.nas import NAS_SUITE, build_nas_ir

BUILDERS = {
    "quickstart": build_unmodified_program,
    "linked_list": build_list_program,
    "probe_sequential": lambda: build_probe(sequential=True),
    "probe_random": lambda: build_probe(sequential=False),
}
BUILDERS.update(
    {f"nas_{b.name.lower()}": (lambda name=b.name: build_nas_ir(name, n=32))
     for b in NAS_SUITE}
)


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="tfm-lint-") as tmp:
        for name, builder in sorted(BUILDERS.items()):
            module = builder()
            # verify_guards already sanitizes between passes and
            # post-pipeline; the CLI run below additionally covers the
            # print -> parse path.
            TrackFMCompiler(CompilerConfig(verify_guards=True)).compile(module)
            path = Path(tmp) / f"{name}.ir"
            path.write_text(print_module(module))
            rc = sanitizer_main([str(path)])
            status = "ok" if rc == 0 else f"FAILED (exit {rc})"
            print(f"[lint] {name}: {status}")
            if rc != 0:
                failures += 1
    if failures:
        print(f"[lint] {failures} module(s) failed guard-safety linting")
        return 1
    print(f"[lint] all {len(BUILDERS)} modules guard-safe")
    return 0


if __name__ == "__main__":
    sys.exit(main())
