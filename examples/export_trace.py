#!/usr/bin/env python3
"""Export a Chrome trace of one full compile-and-run, ready for Perfetto.

Runs the ``stream`` workload through the complete TrackFM pipeline with
tracing on and writes:

* ``trace_stream_trackfm.json``  — Chrome ``trace_event`` JSON: open it
  at https://ui.perfetto.dev or ``chrome://tracing``.  Process 2 shows
  the compiler passes on the wall clock; process 1 shows guards,
  fetches and evictions on the simulated-cycle timeline.
* ``trace_stream_trackfm.jsonl`` — the same events, one JSON object per
  line, for grep/jq pipelines.

Run:  python examples/export_trace.py [output-directory]

Equivalent CLI:  python -m repro.trace --workload stream \\
                     --runtime trackfm --out trace_stream_trackfm.json
"""

import sys
from pathlib import Path

from repro.trace import export_chrome_trace, export_jsonl, run_traced


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    result = run_traced("stream", "trackfm", seed=0)
    chrome = out_dir / "trace_stream_trackfm.json"
    jsonl = out_dir / "trace_stream_trackfm.jsonl"
    export_chrome_trace(result.tracer, chrome, metadata=result.metadata())
    lines = export_jsonl(result.tracer, jsonl)

    summary = result.tracer.summary()
    print(f"stream under trackfm: value={result.value}, "
          f"{summary['events']} events {summary['by_category']}")
    for name, stats in summary["histograms"].items():
        print(f"  {name}: p50={stats['p50']:.0f} p95={stats['p95']:.0f} "
              f"p99={stats['p99']:.0f} (n={stats['count']})")
    print(f"wrote {chrome} and {jsonl} ({lines} lines)")
    print("load the .json in https://ui.perfetto.dev to explore it")
    return 0


if __name__ == "__main__":
    sys.exit(main())
