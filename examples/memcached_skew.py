#!/usr/bin/env python3
"""memcached on far memory: skew sweep and page-size sensitivity.

Reproduces the Fig. 16 story interactively: a USR-sized key/value store
with 12x more data than local memory, GET traffic skewed by a zipf
parameter.  TrackFM's sub-page objects avoid the I/O amplification that
throttles Fastswap at low skew; at high skew Fastswap's faults amortize
over the hot set and the two converge.

Run:  python examples/memcached_skew.py
"""

from repro.bench.harness import CPU_HZ
from repro.machine.scale import ScaleModel
from repro.units import GB, fmt_bytes
from repro.workloads.memcached import MemcachedWorkload

SCALE = ScaleModel(factor=512)
WORKING_SET = SCALE.bytes(12 * GB)
LOCAL = SCALE.bytes(1 * GB)
N_OPS = SCALE.count(100_000_000, floor=100_000)


def main() -> None:
    print(
        f"memcached: {fmt_bytes(WORKING_SET)} of USR-sized items, "
        f"{fmt_bytes(LOCAL)} local memory, {N_OPS:,} GETs\n"
    )
    header = (
        f"{'skew':>5} | {'TrackFM':>9} {'Fastswap':>9} {'local':>9} | "
        f"{'TFM data':>9} {'FS data':>9}"
    )
    print(header)
    print("-" * len(header))
    for skew in (1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3):
        wl = MemcachedWorkload(
            working_set=WORKING_SET, n_keys=N_OPS, n_ops=N_OPS, skew=skew
        )
        tfm = wl.run_trackfm(object_size=64, local_memory=LOCAL)
        fsw = wl.run_fastswap(local_memory=LOCAL)
        loc = wl.run_local()
        print(
            f"{skew:>5.2f} | "
            f"{tfm.throughput_kops(CPU_HZ):>7.1f}K {fsw.throughput_kops(CPU_HZ):>7.1f}K "
            f"{loc.throughput_kops(CPU_HZ):>7.1f}K | "
            f"{fmt_bytes(tfm.metrics.total_bytes_transferred):>9} "
            f"{fmt_bytes(fsw.metrics.total_bytes_transferred):>9}"
        )
    print(
        "\nTrackFM wins where amplification dominates (low skew) and "
        "Fastswap converges as temporal locality amortizes its faults."
    )

    print("\nobject-size sensitivity at skew 1.05:")
    wl = MemcachedWorkload(working_set=WORKING_SET, n_keys=N_OPS, n_ops=N_OPS, skew=1.05)
    for size in (64, 256, 1024, 4096):
        res = wl.run_trackfm(object_size=size, local_memory=LOCAL)
        print(
            f"  {size:>5}B objects: {res.throughput_kops(CPU_HZ):6.1f} KOps/s, "
            f"{fmt_bytes(res.metrics.total_bytes_transferred)} moved"
        )


if __name__ == "__main__":
    main()
