#!/usr/bin/env python3
"""Quickstart: compile an unmodified program for far memory.

This is the paper's core demo (§2): the same source program — a loop
summing a heap array — runs on far memory after *recompilation only*.
Compare with AIFM's library approach (Listing 1), where the developer
must rewrite the loop against ``RemoteArray`` and thread a DerefScope
through every access.

Run:  python examples/quickstart.py
"""

from repro import (
    ChunkingPolicy,
    CompilerConfig,
    PoolConfig,
    TrackFMCompiler,
    TrackFMProgram,
    TrackFMRuntime,
)
from repro.aifm import AIFMRuntime, DerefScope, RemoteArray
from repro.ir import IRBuilder, I64, PTR, Module, print_module
from repro.ir.values import Constant
from repro.sim.interpreter import Interpreter
from repro.units import KB, MB, fmt_bytes, fmt_cycles

N = 4096  # array elements


def build_unmodified_program() -> Module:
    """The 'C program': p = malloc(N*8); p[i] = i; return sum(p)."""
    m = Module("quickstart")
    f = m.add_function("main", I64)
    entry, wh, wb, mid, rh, rb, done = (
        f.add_block(n) for n in ("entry", "wh", "wb", "mid", "rh", "rb", "done")
    )
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, N * 8)], name="p")
    b.br(wh)
    b.set_block(wh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, N), wb, mid)
    b.set_block(wb)
    b.store(i, b.gep(p, i, 8))
    i2 = b.add(i, 1)
    b.br(wh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, wb)
    b.set_block(mid)
    b.br(rh)
    b.set_block(rh)
    j = b.phi(I64, name="j")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", j, N), rb, done)
    b.set_block(rb)
    s2 = b.add(s, b.load(I64, b.gep(p, j, 8)))
    j2 = b.add(j, 1)
    b.br(rh)
    j.add_incoming(Constant(I64, 0), mid)
    j.add_incoming(j2, rb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, rb)
    b.set_block(done)
    b.ret(s)
    return m


def main() -> None:
    expected = N * (N - 1) // 2

    # 1. The unmodified program runs fine with everything local.
    local_result = Interpreter(build_unmodified_program()).run("main")
    print(f"local-only run:     sum = {local_result.value} (expected {expected})")

    # 2. Recompile it with TrackFM: no source changes.
    module = build_unmodified_program()
    compiler = TrackFMCompiler(
        CompilerConfig(object_size=4 * KB, chunking=ChunkingPolicy.COST_MODEL)
    )
    compiled = compiler.compile(module)
    print(f"\ncompiler report:    {compiled.summary()}")

    # 3. Run it on a far-memory "cluster": 8 KB local, rest remote.
    runtime = TrackFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=8 * KB, heap_size=1 * MB)
    )
    program = TrackFMProgram(compiled.module, runtime)
    far_result = program.run("main")
    print(f"far-memory run:     sum = {far_result.value} (expected {expected})")

    m = runtime.metrics
    print(
        f"\nfar-memory metrics: {fmt_cycles(m.cycles)} cycles, "
        f"{m.remote_fetches} remote fetches, "
        f"{fmt_bytes(m.bytes_fetched)} fetched, "
        f"guards = { {k.value: v for k, v in m.guards.items()} }"
    )

    # 4. The AIFM alternative: rewrite the loop by hand (Listing 1).
    aifm = AIFMRuntime(
        PoolConfig(object_size=4 * KB, local_memory=8 * KB, heap_size=1 * MB)
    )
    array = RemoteArray(aifm, length=N, elem_size=8)
    cycles = 0.0
    for idx in range(N):
        with DerefScope(aifm.pool) as scope:  # the scope AIFM forces on you
            cycles += array.at(scope, idx)
    print(
        f"\nAIFM (hand-ported): {fmt_cycles(cycles)} cycles for the same scan — "
        "but you had to rewrite the loop."
    )

    print("\ntransformed IR:\n")
    print(print_module(compiled.module))


if __name__ == "__main__":
    main()
