#!/usr/bin/env python3
"""The NAS mini-kernels under the TrackFM compiler (§4.5 in miniature).

Each kernel is real IR with the suite's defining access pattern; this
script compiles all five, runs them on far memory, verifies the results
against pure-Python references, and shows *what the compiler did* to
each — the per-pattern story behind Fig. 17:

* MG's unit-stride stencil gets chunked;
* CG's gather and IS's scatter stay under full guards;
* FT's column-major traversal confounds the loop analysis entirely.

Run:  python examples/nas_kernels.py
"""

from repro import CompilerConfig, PoolConfig, TrackFMCompiler, TrackFMProgram, TrackFMRuntime
from repro.machine.costs import GuardKind
from repro.units import KB, MB, fmt_cycles
from repro.workloads.nas_kernels import (
    build_cg_kernel,
    build_ft_kernel,
    build_is_kernel,
    build_mg_kernel,
    build_sp_kernel,
    cg_reference,
    ft_reference,
    is_reference,
    mg_reference,
    sp_reference,
)

#: Sizes big enough that the chunking cost model has something to chunk.
KERNELS = {
    "CG": (lambda: build_cg_kernel(2048, 4), lambda: cg_reference(2048, 4)),
    "IS": (lambda: build_is_kernel(8192, 64), lambda: is_reference(8192, 64)),
    "MG": (lambda: build_mg_kernel(16384), lambda: mg_reference(16384)),
    "SP": (lambda: build_sp_kernel(8192), lambda: sp_reference(8192)),
    "FT": (lambda: build_ft_kernel(64, 64), lambda: ft_reference(64, 64)),
}


def main() -> None:
    header = (
        f"{'kernel':<7} {'result':>10} {'ok':>3} {'chunked':>8} {'guards':>7} "
        f"{'fast':>7} {'slow':>6} {'boundary':>9} {'cycles':>9}"
    )
    print("NAS mini-kernels, compiled for far memory (32KB local)\n")
    print(header)
    print("-" * len(header))
    for name, (build, reference) in KERNELS.items():
        module = build()
        compiled = TrackFMCompiler(CompilerConfig()).compile(module)
        runtime = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=32 * KB, heap_size=2 * MB)
        )
        result = TrackFMProgram(
            compiled.module, runtime, max_steps=20_000_000
        ).run("main")
        m = runtime.metrics
        ok = "yes" if result.value == reference() else "NO!"
        print(
            f"{name:<7} {result.value:>10} {ok:>3} "
            f"{compiled.loops_chunked:>8} {compiled.guards_inserted:>7} "
            f"{m.guard_count(GuardKind.FAST):>7} {m.guard_count(GuardKind.SLOW):>6} "
            f"{m.guard_count(GuardKind.BOUNDARY):>9} {fmt_cycles(m.cycles):>9}"
        )
    print(
        "\n'chunked' includes each kernel's sequential data-fill loops; the\n"
        "kernel-specific accesses split exactly as §4.5 describes: MG/SP's\n"
        "IV-strided sweeps chunk, CG's gather and IS's scatter keep full\n"
        "guards ('guards' column), and FT's affine column-major index\n"
        "escapes the loop analysis — every one of its traversal accesses\n"
        "runs a full guard ('fast' column)."
    )


if __name__ == "__main__":
    main()
