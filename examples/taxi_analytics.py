#!/usr/bin/env python3
"""Taxi-trip analytics on far memory (the paper's §4.5 application).

Runs a real (synthetic-data) analysis with the columnar dataframe
substrate, then costs the *same access plans* under the four systems of
Fig. 14 — local-only, TrackFM, Fastswap, AIFM — across a local-memory
sweep, and shows the Fig. 15 chunking-policy comparison.

Run:  python examples/taxi_analytics.py
"""

from repro.bench.harness import CPU_HZ
from repro.units import MB, fmt_bytes
from repro.workloads.analytics import (
    AnalyticsChunking,
    AnalyticsWorkload,
    System,
    build_taxi_frame,
    run_taxi_pipeline,
)

WORKING_SET = 31 * MB  # the paper's 31 GB, scaled 1024x
SWEEP = (0.1, 0.25, 0.5, 0.75, 1.0)


def run_real_analysis() -> None:
    """The actual data analysis, on a small frame with real values."""
    frame = build_taxi_frame(n_rows=50_000, with_values=True)
    print("== the analysis itself (50K synthetic trips) ==")
    mean_dist = frame.scan_mean("trip_distance")
    long_trips = frame.filter_count("trip_distance", lambda d: d > 5.0)
    frame.combine("fare", "trip_distance", "fare_per_mile", lambda f, d: f / (d + 1e-9))
    mean_fpm = frame.scan_mean("fare_per_mile")
    hourly = frame.groupby_agg("pickup_hour", "fare", n_groups=24)
    busiest = max(hourly, key=hourly.get)
    print(f"  mean trip distance : {mean_dist:.2f} miles")
    print(f"  trips over 5 miles : {long_trips}")
    print(f"  mean fare per mile : ${mean_fpm:.2f}")
    print(f"  priciest hour      : {busiest}:00 (avg fare ${hourly[busiest]:.2f})")


def run_far_memory_comparison() -> None:
    print(f"\n== far-memory comparison ({fmt_bytes(WORKING_SET)} working set) ==")
    wl = AnalyticsWorkload(working_set=WORKING_SET)
    local_cycles, _ = wl.run_local()
    header = f"{'local mem':>10} | {'TrackFM':>8} {'Fastswap':>9} {'AIFM':>7}"
    print(header)
    print("-" * len(header))
    for frac in SWEEP:
        local = max(4096, int(WORKING_SET * frac))
        row = [f"{frac:>9.0%}"]
        for system in (System.TRACKFM, System.FASTSWAP, System.AIFM):
            cycles, _ = wl.run(system, local)
            row.append(f"{cycles / local_cycles:>8.2f}x")
        print(" | ".join([row[0], " ".join(row[1:])]))
    print("(slowdown vs local-only; paper: TrackFM within 10% of AIFM)")


def run_chunking_policy_study() -> None:
    print("\n== chunking policy (Fig. 15) at 25% local memory ==")
    wl = AnalyticsWorkload(working_set=WORKING_SET)
    local_cycles, _ = wl.run_local()
    local = WORKING_SET // 4
    for policy in AnalyticsChunking:
        cycles, metrics = wl.run_trackfm(local, policy)
        print(
            f"  {policy.value:<24}: {cycles / local_cycles:5.2f}x slowdown, "
            f"{metrics.slow_path_guards:,} slow/locality guards"
        )
    print("(chunking the low-density aggregation loops is a loss)")


def main() -> None:
    run_real_analysis()
    run_far_memory_comparison()
    run_chunking_policy_study()


if __name__ == "__main__":
    main()
