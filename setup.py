"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments whose setuptools
predates PEP 660 editable installs (and offline boxes without the
``wheel`` package, via ``python setup.py develop``).  Configuration
lives in pyproject.toml.
"""

from setuptools import setup

setup()
