"""repro — a Python reproduction of TrackFM (ASPLOS 2024).

TrackFM is a *compiler-based* far-memory system: unmodified programs
are recompiled so that heap memory becomes remotable at AIFM-object
granularity, with compiler-injected guards, loop chunking and
prefetching recovering the performance that kernel-paging approaches
give up.  This package rebuilds the whole stack as a calibrated
simulation: the IR + compiler passes are real program transformations;
the runtimes (TrackFM, AIFM, Fastswap) are cycle-cost simulators
anchored to the paper's measurements.

Quick start::

    from repro import (
        CompilerConfig, TrackFMCompiler, PoolConfig, TrackFMRuntime,
        TrackFMProgram,
    )
    # build a Module with repro.ir, compile it, run it:
    result = TrackFMCompiler(CompilerConfig(object_size=4096)).compile(module)
    runtime = TrackFMRuntime(PoolConfig(object_size=4096,
                                        local_memory=8 << 20,
                                        heap_size=64 << 20))
    program = TrackFMProgram(result.module, runtime)
    program.run("main")

See ``examples/`` for complete programs and ``benchmarks/`` for the
scripts that regenerate every table and figure of the paper.
"""

from repro.machine import (
    AccessKind,
    CostTable,
    DEFAULT_COSTS,
    GuardKind,
    ScaleModel,
)
from repro.ir import IRBuilder, Module
from repro.compiler import (
    ChunkingPolicy,
    CompilerConfig,
    CompileResult,
    TrackFMCompiler,
    ChunkingCostModel,
    LoopShape,
)
from repro.aifm import AIFMRuntime, PoolConfig, RemoteArray, RemoteHashMap
from repro.trackfm import TrackFMRuntime, GuardStrategy, MultiPoolRuntime
from repro.fastswap import FastswapConfig, FastswapRuntime
from repro.hybrid import HybridRuntime, Placement
from repro.integrity import (
    ChecksumCodec,
    EvacuationJournal,
    IntegrityChecker,
    IntegrityConfig,
    RecoveryManager,
    RecoveryReport,
    parse_integrity_spec,
)
from repro.sim import LocalRuntime, Metrics
from repro.sim.irrun import TrackFMProgram
from repro.analysis import DataflowAnalysis, profile_module
from repro.sanitizer import Diagnostic, Sanitizer, SanitizerReport, sanitize_module
from repro.trace import (
    NULL_TRACER,
    StreamingHistogram,
    Tracer,
    export_chrome_trace,
    export_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "CostTable",
    "DEFAULT_COSTS",
    "GuardKind",
    "ScaleModel",
    "IRBuilder",
    "Module",
    "ChunkingPolicy",
    "CompilerConfig",
    "CompileResult",
    "TrackFMCompiler",
    "ChunkingCostModel",
    "LoopShape",
    "AIFMRuntime",
    "PoolConfig",
    "RemoteArray",
    "RemoteHashMap",
    "TrackFMRuntime",
    "GuardStrategy",
    "MultiPoolRuntime",
    "FastswapConfig",
    "FastswapRuntime",
    "HybridRuntime",
    "Placement",
    "ChecksumCodec",
    "EvacuationJournal",
    "IntegrityChecker",
    "IntegrityConfig",
    "RecoveryManager",
    "RecoveryReport",
    "parse_integrity_spec",
    "LocalRuntime",
    "Metrics",
    "TrackFMProgram",
    "DataflowAnalysis",
    "profile_module",
    "Sanitizer",
    "SanitizerReport",
    "Diagnostic",
    "sanitize_module",
    "Tracer",
    "NULL_TRACER",
    "StreamingHistogram",
    "export_chrome_trace",
    "export_jsonl",
    "__version__",
]
