"""Streaming histograms with percentile queries (HdrHistogram-lite).

The trace layer needs latency/size distributions (p50/p95/p99 fetch
latency, bytes-per-fetch) without storing one float per sample — a
traced STREAM run fetches hundreds of thousands of objects.  The
classic answer is a log-bucketed histogram: exact counts for small
values, then power-of-two ranges split into ``2**sub_bits`` linear
sub-buckets, giving a bounded relative error of ``2**-sub_bits`` with
O(1) record cost and O(buckets) memory.

Histograms merge (counter addition — associative and commutative) and
round-trip losslessly through ``to_dict``/``from_dict``, which is what
lets per-runtime traces be folded into one report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import TraceError


class StreamingHistogram:
    """Log2-bucketed histogram over non-negative values."""

    __slots__ = ("sub_bits", "_base", "buckets", "count", "total", "min", "max")

    def __init__(self, sub_bits: int = 4) -> None:
        if not 1 <= sub_bits <= 12:
            raise TraceError(f"sub_bits must be in [1, 12], got {sub_bits}")
        self.sub_bits = sub_bits
        self._base = 1 << sub_bits
        #: Sparse bucket index -> sample count.
        self.buckets: Dict[int, int] = {}
        self.count = 0
        #: Exact running sum of the raw (unquantized) values.
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- indexing ---------------------------------------------------------

    def _index(self, n: int) -> int:
        """Bucket index of quantized value ``n >= 0`` (monotone in n)."""
        if n < self._base:
            return n
        shift = n.bit_length() - (self.sub_bits + 1)
        sub = n >> shift  # in [base, 2*base)
        return shift * self._base + sub

    def _representative(self, idx: int) -> float:
        """Midpoint of the bucket's value range (inverse of ``_index``)."""
        if idx < self._base:
            return float(idx)
        shift = idx // self._base - 1
        sub = idx - shift * self._base
        lo = sub << shift
        return float(lo + ((1 << shift) >> 1))

    # -- recording --------------------------------------------------------

    def record(self, value: float, count: int = 1) -> None:
        """Record ``count`` samples of ``value`` (clamped at zero)."""
        if count <= 0:
            return
        v = float(value)
        if v < 0.0:
            v = 0.0
        idx = self._index(int(round(v)))
        self.buckets[idx] = self.buckets.get(idx, 0) + count
        self.count += count
        self.total += v * count
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]; 0.0 when empty.

        Monotone in ``p`` by construction: the cumulative target rank is
        monotone and buckets are walked in value order.
        """
        if not 0.0 <= p <= 100.0:
            raise TraceError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return 0.0
        target = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * count)
        cumulative = 0
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= target:
                return self._representative(idx)
        return self._representative(max(self.buckets))  # pragma: no cover

    def percentiles(self, ps: Iterable[float] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
        """The standard summary block: ``{"p50": ..., "p95": ..., ...}``."""
        return {f"p{g:g}": self.percentile(g) for g in ps}

    # -- merge / serialization ------------------------------------------------

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram (counter addition)."""
        if other.sub_bits != self.sub_bits:
            raise TraceError(
                f"cannot merge histograms with sub_bits {self.sub_bits} != "
                f"{other.sub_bits}"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (lossless round trip via ``from_dict``)."""
        return {
            "sub_bits": self.sub_bits,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingHistogram":
        hist = cls(sub_bits=int(data["sub_bits"]))  # type: ignore[arg-type]
        hist.count = int(data["count"])  # type: ignore[arg-type]
        hist.total = float(data["total"])  # type: ignore[arg-type]
        hist.min = float("inf") if data["min"] is None else float(data["min"])  # type: ignore[arg-type]
        hist.max = float("-inf") if data["max"] is None else float(data["max"])  # type: ignore[arg-type]
        hist.buckets = {int(k): int(v) for k, v in data["buckets"].items()}  # type: ignore[union-attr]
        return hist

    def items(self) -> List[Tuple[float, int]]:
        """(representative value, count) pairs in value order."""
        return [(self._representative(i), self.buckets[i]) for i in sorted(self.buckets)]

    def __repr__(self) -> str:  # pragma: no cover - debug only
        return (
            f"StreamingHistogram(count={self.count}, mean={self.mean:.1f}, "
            f"p50={self.percentile(50):.1f}, p99={self.percentile(99):.1f})"
        )
