"""repro.trace — structured event tracing across compiler and runtime.

The observability layer: a :class:`Tracer` threads through the compiler
pipeline (per-pass events on the wall clock) and the runtime simulators
(guard/fetch/evict/prefetch/phase events on the simulated-cycle clock),
feeds streaming histograms (p50/p95/p99 fetch latency, bytes-per-fetch),
and exports Chrome ``trace_event`` JSON (Perfetto-loadable) plus compact
JSONL.

Quick start::

    from repro.trace import Tracer, export_chrome_trace

    tracer = Tracer()
    runtime = TrackFMRuntime(config, tracer=tracer)
    compiled = TrackFMCompiler(cfg).compile(module, tracer=tracer)
    TrackFMProgram(compiled.module, runtime).run("main")
    export_chrome_trace(tracer, "trace.json")

or from the shell::

    python -m repro.trace --workload stream --runtime trackfm --out t.json

Disabled tracing costs one attribute check per instrumentation site: the
default tracer everywhere is the shared :data:`NULL_TRACER` no-op.

See ``docs/observability.md`` for the event schema and the golden-trace
testing workflow.
"""

from repro.trace.events import (
    ALL_CATEGORIES,
    CAT_CORRUPT,
    CAT_COUNTER,
    CAT_DEGRADE,
    CAT_EVICT,
    CAT_FAULT,
    CAT_FETCH,
    CAT_GUARD,
    CAT_JOURNAL,
    CAT_META,
    CAT_PASS,
    CAT_PHASE,
    CAT_PREFETCH,
    CAT_REPAIR,
    CAT_RETRY,
    TRACK_CYCLES,
    TRACK_WALL,
    TraceEvent,
)
from repro.trace.histogram import StreamingHistogram
from repro.trace.tracer import (
    HIST_FETCH_BYTES,
    HIST_FETCH_LATENCY,
    NULL_TRACER,
    NullTracer,
    Tracer,
)
from repro.trace.export import (
    export_chrome_trace,
    export_jsonl,
    normalize_events,
    to_chrome_events,
)
# The driver layer imports the runtimes, which themselves import
# repro.trace.tracer — load it lazily (PEP 562) to keep the instrumented
# hot paths free of import cycles.
_DRIVER_EXPORTS = ("RUNTIMES", "WORKLOADS", "TraceRunResult", "run_traced")


def __getattr__(name: str):
    if name in _DRIVER_EXPORTS:
        from repro.trace import drivers

        return getattr(drivers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALL_CATEGORIES",
    "CAT_CORRUPT",
    "CAT_COUNTER",
    "CAT_DEGRADE",
    "CAT_EVICT",
    "CAT_FAULT",
    "CAT_FETCH",
    "CAT_GUARD",
    "CAT_JOURNAL",
    "CAT_META",
    "CAT_PASS",
    "CAT_PHASE",
    "CAT_PREFETCH",
    "CAT_REPAIR",
    "CAT_RETRY",
    "TRACK_CYCLES",
    "TRACK_WALL",
    "TraceEvent",
    "StreamingHistogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "HIST_FETCH_BYTES",
    "HIST_FETCH_LATENCY",
    "export_chrome_trace",
    "export_jsonl",
    "normalize_events",
    "to_chrome_events",
    "RUNTIMES",
    "WORKLOADS",
    "TraceRunResult",
    "run_traced",
]
