"""Traceable workload drivers: what ``python -m repro.trace`` runs.

Each registered workload is a small, deterministic program shape —
``stream`` (sequential write-then-sum passes) and ``hashmap`` (an
LCG-scattered probe loop) — runnable under any of the four runtime
models.  Under ``trackfm`` the workload is built as IR, compiled
through the full pipeline (so the trace carries ``pass`` events), and
interpreted on a far-memory runtime (``guard``/``fetch`` events).
The other runtimes replay the same access pattern through their
``access()`` paths.

Everything here is deterministic for a given ``(workload, runtime,
seed)``: no wall-clock or ``random`` state leaks into the simulated
event stream, which is what makes golden-trace snapshots possible.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import TraceError
from repro.integrity import IntegrityConfig, installed_integrity_config
from repro.machine.costs import AccessKind
from repro.net.faults import FaultPlan, default_fault_plan, installed_fault_plan
from repro.sim.metrics import Metrics
from repro.trace.tracer import Tracer
from repro.units import KB, MB

#: Elements per workload array (power of two: the hashmap IR masks).
N_ELEMS = 1024
ELEM = 8
ARRAY_BYTES = N_ELEMS * ELEM

#: Compile-time object size for object-granular runtimes.
OBJECT_SIZE = 256
#: Local memory small enough that the array does not fit (forces
#: fetch/evict traffic, which is the point of a trace).
OBJECT_LOCAL = 2 * KB
PAGE_LOCAL = 4 * KB
HEAP = 1 * MB

#: LCG constants for the hashmap probe stream (Knuth's MMIX multiplier
#: truncated; any odd multiplier works — determinism is what matters).
_LCG_MUL = 2654435761
_LCG_ADD = 40503

#: Stall charged per degraded access when a fault plan is active.  The
#: drivers enable degraded mode so a harsh ``--faults`` plan (long pause
#: windows) degrades the run instead of killing it; program values are
#: computed in host memory either way, so this only affects cost/metrics.
DEGRADED_STALL_CYCLES = 1_000.0


# -- access-pattern generators ---------------------------------------------


def _stream_pattern(seed: int) -> Iterator[Tuple[int, AccessKind]]:
    """Write pass then read pass over the whole array, in order."""
    del seed  # the stream shape is seed-independent
    for i in range(N_ELEMS):
        yield i * ELEM, AccessKind.WRITE
    for i in range(N_ELEMS):
        yield i * ELEM, AccessKind.READ


def _hashmap_pattern(seed: int) -> Iterator[Tuple[int, AccessKind]]:
    """Sequential init writes, then 2N LCG-scattered probe reads."""
    for i in range(N_ELEMS):
        yield i * ELEM, AccessKind.WRITE
    state = seed & 0xFFFFFFFF
    for _ in range(2 * N_ELEMS):
        state = (state * _LCG_MUL + _LCG_ADD) & 0xFFFFFFFF
        yield (state & (N_ELEMS - 1)) * ELEM, AccessKind.READ


_PATTERNS: Dict[str, Callable[[int], Iterator[Tuple[int, AccessKind]]]] = {
    "stream": _stream_pattern,
    "hashmap": _hashmap_pattern,
}


# -- IR builders (the trackfm path compiles and interprets these) -----------


def _build_stream_module():
    """``p[i] = i`` for all i, then ``sum p[i]``; returns n*(n-1)/2."""
    from repro.ir import IRBuilder, Module
    from repro.ir.types import I64, PTR
    from repro.ir.values import Constant

    n = N_ELEMS
    m = Module("trace_stream")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    wh, wb = f.add_block("wh"), f.add_block("wb")
    mid = f.add_block("mid")
    rh, rb = f.add_block("rh"), f.add_block("rb")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * ELEM)], name="p")
    b.br(wh)
    b.set_block(wh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, n), wb, mid)
    b.set_block(wb)
    b.store(i, b.gep(p, i, ELEM))
    i2 = b.add(i, 1)
    b.br(wh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, wb)
    b.set_block(mid)
    b.br(rh)
    b.set_block(rh)
    j = b.phi(I64, name="j")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", j, n), rb, exit_)
    b.set_block(rb)
    v = b.load(I64, b.gep(p, j, ELEM))
    s2 = b.add(s, v)
    j2 = b.add(j, 1)
    b.br(rh)
    j.add_incoming(Constant(I64, 0), mid)
    j.add_incoming(j2, rb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, rb)
    b.set_block(exit_)
    b.ret(s)
    return m


def _build_hashmap_module(seed: int):
    """Init ``p[i] = 3i+1``, then sum N LCG-probed slots.

    The probe index is ``((j*MUL + seed') & (n-1))`` — the same family
    of indices :func:`_hashmap_pattern` replays on the other runtimes.
    """
    from repro.ir import IRBuilder, Module
    from repro.ir.types import I64, PTR
    from repro.ir.values import Constant

    n = N_ELEMS
    m = Module("trace_hashmap")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    wh, wb = f.add_block("wh"), f.add_block("wb")
    mid = f.add_block("mid")
    rh, rb = f.add_block("rh"), f.add_block("rb")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * ELEM)], name="p")
    b.br(wh)
    b.set_block(wh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, n), wb, mid)
    b.set_block(wb)
    b.store(b.add(b.mul(i, 3), 1), b.gep(p, i, ELEM))
    i2 = b.add(i, 1)
    b.br(wh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, wb)
    b.set_block(mid)
    b.br(rh)
    b.set_block(rh)
    j = b.phi(I64, name="j")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", j, n), rb, exit_)
    b.set_block(rb)
    h = b.add(b.mul(j, _LCG_MUL), (seed & 0xFFFFFFFF) + _LCG_ADD)
    idx = b.and_(h, n - 1)
    v = b.load(I64, b.gep(p, idx, ELEM))
    s2 = b.add(s, v)
    j2 = b.add(j, 1)
    b.br(rh)
    j.add_incoming(Constant(I64, 0), mid)
    j.add_incoming(j2, rb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, rb)
    b.set_block(exit_)
    b.ret(s)
    return m


_IR_BUILDERS = {
    "stream": lambda seed: _build_stream_module(),
    "hashmap": _build_hashmap_module,
}


# -- result ------------------------------------------------------------------


@dataclass
class TraceRunResult:
    """One traced run: the tracer plus what the workload computed."""

    workload: str
    runtime: str
    seed: int
    tracer: Tracer
    #: Program result (trackfm interprets real IR; replay drivers
    #: report the checksum of touched offsets).
    value: Optional[int]
    cycles: float
    #: Final runtime counters (the canonical ``Metrics.as_dict`` form
    #: lands in the Chrome trace's ``otherData``).
    metrics: Metrics

    def metadata(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "runtime": self.runtime,
            "seed": self.seed,
            "value": self.value,
            "cycles": self.cycles,
            "metrics": self.metrics.as_dict(),
        }


# -- per-runtime drivers ------------------------------------------------------


def _run_trackfm(workload: str, seed: int, tracer: Tracer) -> TraceRunResult:
    from repro.aifm.pool import PoolConfig
    from repro.compiler.pipeline import CompilerConfig, TrackFMCompiler
    from repro.sim.irrun import TrackFMProgram
    from repro.trackfm.runtime import TrackFMRuntime

    module = _IR_BUILDERS[workload](seed)
    config = CompilerConfig(object_size=OBJECT_SIZE)
    TrackFMCompiler(config).compile(module, tracer=tracer)
    runtime = TrackFMRuntime(
        PoolConfig(
            object_size=OBJECT_SIZE, local_memory=OBJECT_LOCAL, heap_size=HEAP
        )
    )
    runtime.set_tracer(tracer)
    if default_fault_plan() is not None:
        runtime.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
    with tracer.phase(f"workload:{workload}", lambda: runtime.metrics.cycles):
        result = TrackFMProgram(module, runtime, max_steps=5_000_000).run("main")
    return TraceRunResult(
        workload, "trackfm", seed, tracer, result.value,
        runtime.metrics.cycles, runtime.metrics.snapshot(),
    )


def _replay(runtime_name: str, workload: str, seed: int, tracer: Tracer,
            access: Callable[[int, AccessKind], float],
            cycles_of: Callable[[], float],
            metrics_of: Callable[[], Metrics]) -> TraceRunResult:
    """Drive one access-pattern replay with phase bracketing."""
    checksum = 0
    with tracer.phase(f"workload:{workload}", cycles_of):
        for offset, kind in _PATTERNS[workload](seed):
            access(offset, kind)
            checksum = (checksum * 31 + offset + 1) & 0xFFFFFFFF
    return TraceRunResult(
        workload, runtime_name, seed, tracer, checksum, cycles_of(),
        metrics_of().snapshot(),
    )


def _run_aifm(workload: str, seed: int, tracer: Tracer) -> TraceRunResult:
    from repro.aifm.pool import PoolConfig
    from repro.aifm.runtime import AIFMRuntime

    runtime = AIFMRuntime(
        PoolConfig(
            object_size=OBJECT_SIZE, local_memory=OBJECT_LOCAL, heap_size=HEAP
        )
    )
    runtime.set_tracer(tracer)
    if default_fault_plan() is not None:
        runtime.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
    runtime.allocate(ARRAY_BYTES)
    return _replay(
        "aifm", workload, seed, tracer,
        lambda off, kind: runtime.access(off, kind, size=ELEM),
        lambda: runtime.metrics.cycles,
        lambda: runtime.metrics,
    )


def _run_fastswap(workload: str, seed: int, tracer: Tracer) -> TraceRunResult:
    from repro.fastswap.runtime import FastswapConfig, FastswapRuntime

    runtime = FastswapRuntime(
        FastswapConfig(local_memory=PAGE_LOCAL, heap_size=HEAP)
    )
    runtime.set_tracer(tracer)
    if default_fault_plan() is not None:
        runtime.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
    runtime.allocate(ARRAY_BYTES)
    return _replay(
        "fastswap", workload, seed, tracer,
        lambda off, kind: runtime.access(off, kind, size=ELEM),
        lambda: runtime.metrics.cycles,
        lambda: runtime.metrics,
    )


def _run_hybrid(workload: str, seed: int, tracer: Tracer) -> TraceRunResult:
    from repro.hybrid.runtime import HybridRuntime, Placement

    runtime = HybridRuntime(
        local_memory=OBJECT_LOCAL + PAGE_LOCAL,
        heap_size=HEAP,
        object_size=OBJECT_SIZE,
    )
    runtime.set_tracer(tracer)
    # Under faults, the hybrid's own fallback (object tier → page tier)
    # handles object-side outages; the page tier still needs a local
    # degraded mode so a total outage degrades instead of raising.
    if default_fault_plan() is not None:
        runtime.fastswap.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
    # Half the array on guarded objects, half on kernel pages — the
    # §5 split this runtime exists to model.
    half = ARRAY_BYTES // 2
    objects = runtime.allocate(half, Placement.OBJECTS)
    pages = runtime.allocate(half, Placement.PAGES)

    def access(offset: int, kind: AccessKind) -> float:
        if offset < half:
            return runtime.access(objects, offset, kind, size=ELEM)
        return runtime.access(pages, offset - half, kind, size=ELEM)

    return _replay(
        "hybrid", workload, seed, tracer, access,
        lambda: runtime.metrics.cycles,
        lambda: runtime.metrics,
    )


def _run_adaptive(workload: str, seed: int, tracer: Tracer) -> TraceRunResult:
    from repro.hybrid.runtime import AdaptiveHybridRuntime

    runtime = AdaptiveHybridRuntime(
        local_memory=OBJECT_LOCAL + PAGE_LOCAL,
        heap_size=HEAP,
        object_size=OBJECT_SIZE,
    )
    runtime.set_tracer(tracer)
    if default_fault_plan() is not None:
        runtime.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
    runtime.initialize()
    ptr = runtime.tfm_malloc(ARRAY_BYTES)
    return _replay(
        "adaptive", workload, seed, tracer,
        lambda off, kind: runtime.access(ptr + off, kind, size=ELEM),
        lambda: runtime.metrics.cycles,
        lambda: runtime.metrics,
    )


def _run_serve(
    runtime_name: str, seed: int, tracer: Tracer, replication: int = 1
) -> TraceRunResult:
    """The ``serve`` workload: a small sharded cluster under chaos.

    Unlike the replay workloads, this one is not an access pattern over
    one runtime — it stands up a 3-shard cluster of ``runtime_name``
    shards, drives seeded open-loop traffic through the discrete-event
    simulation, and knocks a shard out (then rebalances) mid-run, so
    the trace shows the whole serving story: ``serve`` request
    completions, ``shard_lost``/``rebalance`` markers, and the
    per-shard ``retry``/``degrade`` storms a knockout causes.  With
    ``replication > 1`` the knockout exercises the quorum path instead:
    the trace gains ``replica`` events (suspect, failover, read repair)
    and the failed shard's keys survive with their write history.
    """
    from repro.serve.cluster import ClusterConfig, ShardedCluster
    from repro.serve.simulation import ChaosAction, ServingSimulation
    from repro.serve.traffic import TrafficConfig, generate_schedule

    cluster = ShardedCluster(
        ClusterConfig(
            n_shards=3,
            n_keys=96,
            runtime=runtime_name,
            local_memory=OBJECT_LOCAL,
            seed=seed,
            fault_plan=default_fault_plan(),
            replication=replication,
        ),
        tracer=tracer,
    )
    schedule = generate_schedule(
        TrafficConfig(clients=12, requests_per_client=20, n_keys=96, seed=seed)
    )
    mid = float(schedule.times[len(schedule) // 2])
    end = float(schedule.times[-1])
    chaos = (
        ChaosAction(mid, "lose", 1),
        ChaosAction((mid + end) / 2.0, "rebalance"),
    )
    with tracer.phase("workload:serve", lambda: cluster.merged_metrics().cycles):
        report = ServingSimulation(cluster, schedule, chaos).run()
    return TraceRunResult(
        "serve", runtime_name, seed, tracer,
        report.completions_fingerprint & 0xFFFFFFFF,
        report.makespan_cycles, cluster.merged_metrics(),
    )


RUNTIMES: Dict[str, Callable[[str, int, Tracer], TraceRunResult]] = {
    "trackfm": _run_trackfm,
    "aifm": _run_aifm,
    "fastswap": _run_fastswap,
    "hybrid": _run_hybrid,
    "adaptive": _run_adaptive,
}

WORKLOADS: Tuple[str, ...] = tuple(sorted((*_PATTERNS, "serve")))


def run_traced(
    workload: str,
    runtime: str,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    fault_plan: Optional[FaultPlan] = None,
    integrity: Optional[IntegrityConfig] = None,
    replication: int = 1,
) -> TraceRunResult:
    """Run ``workload`` under ``runtime`` with tracing on; returns the run.

    With ``fault_plan`` set, the plan is installed as the process
    default for the duration of the run: the runtime's backends come up
    fault-injected with a retry policy and breaker, and the runtimes run
    in degraded mode (losses never change program values — only cost
    and resilience counters).

    With ``integrity`` set, it is installed the same way: every backend
    the run builds comes up with an attached
    :class:`~repro.integrity.IntegrityChecker`, so fetched payloads are
    checksum-verified (and, with data-fault rates in the plan,
    corrupted / repaired / quarantined deterministically).

    ``replication`` only applies to the ``serve`` workload (it sizes
    the cluster's replica sets); the replay workloads run on a single
    runtime and reject any other value.
    """
    if workload not in WORKLOADS:
        raise TraceError(
            f"unknown workload {workload!r}; have {sorted(WORKLOADS)}"
        )
    if runtime not in RUNTIMES:
        raise TraceError(
            f"unknown runtime {runtime!r}; have {sorted(RUNTIMES)}"
        )
    if replication != 1 and workload != "serve":
        raise TraceError(
            f"--replication applies only to the 'serve' workload, not {workload!r}"
        )
    if tracer is None:
        tracer = Tracer()
    with ExitStack() as stack:
        if fault_plan is not None:
            stack.enter_context(installed_fault_plan(fault_plan))
        if integrity is not None:
            stack.enter_context(installed_integrity_config(integrity))
        if workload == "serve":
            return _run_serve(runtime, seed, tracer, replication=replication)
        return RUNTIMES[runtime](workload, seed, tracer)
