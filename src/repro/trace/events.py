"""Trace event model: a small, Chrome-`trace_event`-shaped record.

One :class:`TraceEvent` is one row on a timeline.  Two timelines
(tracks) exist because the system spans two worlds with incompatible
clocks:

* ``cycles`` — the *simulated*-cycle clock of the runtime simulators
  (guards, fetches, evictions, prefetches, workload phases);
* ``wall``   — the host wall clock, used for compiler passes, which are
  real Python computations with real durations.

Event categories mirror where TrackFM's performance comes from:

=========== ==============================================================
category    meaning
=========== ==============================================================
``pass``    one compiler pass: duration, IR instruction delta, stats
``guard``   one guard execution: path taken (fast/slow/...), object id
``fetch``   object/page pulled from the remote node (bytes, latency)
``evict``   objects/pages displaced (bytes, dirty writeback or clean)
``prefetch`` prefetch issued (bytes, useful vs wasted)
``fault``   injected network fault observed (drop, pause, spike)
``retry``   backend retry after a transient fault (attempt, backoff)
``degrade`` access served in degraded mode (far memory unavailable)
``corrupt`` payload failed checksum verification (kind, object)
``repair``  corrupted payload repaired by re-fetch / journal re-drive
``journal`` evacuation-journal event (replay, rollback, crash)
``serve``   serving-layer event (request done, shard lost, rebalance)
``replica`` replication event (read repair, suspect, failover, sweep)
``tier``    adaptive-hybrid tier event (selector flip, object migration)
``phase``   workload-defined span (``B``/``E`` pairs)
``counter`` point-in-time counter sample (Chrome ``C`` events)
``meta``    process/track naming metadata
=========== ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Track (clock-domain) names.
TRACK_CYCLES = "cycles"
TRACK_WALL = "wall"

#: Event categories (the ``cat`` field).
CAT_PASS = "pass"
CAT_GUARD = "guard"
CAT_FETCH = "fetch"
CAT_EVICT = "evict"
CAT_PREFETCH = "prefetch"
CAT_FAULT = "fault"
CAT_RETRY = "retry"
CAT_DEGRADE = "degrade"
CAT_CORRUPT = "corrupt"
CAT_REPAIR = "repair"
CAT_JOURNAL = "journal"
CAT_SERVE = "serve"
CAT_REPLICA = "replica"
CAT_TIER = "tier"
CAT_PHASE = "phase"
CAT_COUNTER = "counter"
CAT_META = "meta"

ALL_CATEGORIES = (
    CAT_PASS,
    CAT_GUARD,
    CAT_FETCH,
    CAT_EVICT,
    CAT_PREFETCH,
    CAT_FAULT,
    CAT_RETRY,
    CAT_DEGRADE,
    CAT_CORRUPT,
    CAT_REPAIR,
    CAT_JOURNAL,
    CAT_SERVE,
    CAT_REPLICA,
    CAT_TIER,
    CAT_PHASE,
    CAT_COUNTER,
    CAT_META,
)

#: Chrome trace_event phase codes used by the exporter.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_BEGIN = "B"
PH_END = "E"
PH_COUNTER = "C"
PH_METADATA = "M"


@dataclass
class TraceEvent:
    """One timeline record.

    ``ts``/``dur`` are in the track's native unit: simulated cycles on
    the ``cycles`` track, microseconds on the ``wall`` track.  The
    Chrome exporter rescales both into the microsecond timebase Perfetto
    expects.
    """

    name: str
    cat: str
    ts: float
    ph: str = PH_INSTANT
    dur: float = 0.0
    track: str = TRACK_CYCLES
    args: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        """Stable ``cat:name`` label used by golden-trace normalization."""
        return f"{self.cat}:{self.name}"
