"""Trace exporters: Chrome ``trace_event`` JSON, compact JSONL, goldens.

The Chrome format is the JSON object form (``{"traceEvents": [...]}``)
that Perfetto and ``chrome://tracing`` both load.  Each clock domain
becomes its own process row:

* pid 1 — ``runtime (simulated cycles)``: guards, fetches, evictions,
  prefetches and workload phases, with 1 simulated cycle rendered as
  1 µs so relative durations survive the timebase;
* pid 2 — ``compiler (wall clock)``: one complete (``X``) slice per
  pass, in real microseconds.

JSONL is one event object per line — cheap to stream, grep and diff.

``normalize_events`` is the substrate of the golden-trace tests: it
reduces an event list to its *behavioural shape* — categories, names,
counts and ordering, run-length encoded — and drops every
non-deterministic field (timestamps, durations, latencies).
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, Iterable, List, Optional, Sequence, Union

from repro.trace.events import (
    CAT_META,
    PH_BEGIN,
    PH_COUNTER,
    PH_END,
    PH_METADATA,
    TRACK_CYCLES,
    TRACK_WALL,
    TraceEvent,
)
from repro.trace.tracer import Tracer

#: Process ids of the two clock domains in the Chrome export.
PID_RUNTIME = 1
PID_COMPILER = 2

_TRACK_PIDS = {TRACK_CYCLES: PID_RUNTIME, TRACK_WALL: PID_COMPILER}
_TRACK_LABELS = {
    TRACK_CYCLES: "runtime (simulated cycles)",
    TRACK_WALL: "compiler (wall clock)",
}


def _sanitize_args(args: Dict[str, object]) -> Dict[str, object]:
    """JSON-safe argument dict (drops Nones, stringifies odd types)."""
    out: Dict[str, object] = {}
    for key, value in args.items():
        if value is None:
            continue
        if isinstance(value, (bool, int, float, str, list, dict)):
            out[key] = value
        else:
            out[key] = str(value)
    return out


def to_chrome_events(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    """Convert to Chrome ``trace_event`` dicts (metadata rows included)."""
    rows: List[Dict[str, object]] = []
    tracks_seen = []
    for track in (TRACK_CYCLES, TRACK_WALL):
        if any(ev.track == track for ev in events):
            tracks_seen.append(track)
    for track in tracks_seen:
        rows.append(
            {
                "name": "process_name",
                "ph": PH_METADATA,
                "pid": _TRACK_PIDS[track],
                "tid": 0,
                "args": {"name": _TRACK_LABELS[track]},
            }
        )
    for ev in events:
        pid = _TRACK_PIDS.get(ev.track, PID_RUNTIME)
        row: Dict[str, object] = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": float(ev.ts),
            "pid": pid,
            "tid": 0,
        }
        if ev.ph == "X":
            row["dur"] = float(ev.dur)
        if ev.ph == PH_COUNTER:
            # Chrome counters carry their series directly in args.
            row["args"] = _sanitize_args(ev.args)
        elif ev.ph == "i":
            row["s"] = "t"  # instant scope: thread
            row["args"] = _sanitize_args(ev.args)
        else:
            row["args"] = _sanitize_args(ev.args)
        rows.append(row)
    return rows


def export_chrome_trace(
    tracer: Tracer,
    out: Union[str, IO[str]],
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write a Perfetto-loadable Chrome trace; returns the trace dict."""
    trace: Dict[str, object] = {
        "traceEvents": to_chrome_events(tracer.events),
        "displayTimeUnit": "ms",
        "otherData": {
            "summary": tracer.summary(),
            **(metadata or {}),
        },
    }
    if isinstance(out, (str, os.PathLike)):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=None, separators=(",", ":"))
    else:
        json.dump(trace, out, indent=None, separators=(",", ":"))
    return trace


def export_jsonl(tracer: Tracer, out: Union[str, IO[str]]) -> int:
    """Write one compact JSON object per event; returns the line count."""

    def _write(fh: IO[str]) -> int:
        n = 0
        for ev in tracer.events:
            fh.write(
                json.dumps(
                    {
                        "cat": ev.cat,
                        "name": ev.name,
                        "ph": ev.ph,
                        "ts": ev.ts,
                        "dur": ev.dur,
                        "track": ev.track,
                        "args": _sanitize_args(ev.args),
                    },
                    separators=(",", ":"),
                )
            )
            fh.write("\n")
            n += 1
        return n

    if isinstance(out, (str, os.PathLike)):
        with open(out, "w", encoding="utf-8") as fh:
            return _write(fh)
    return _write(out)


# -- golden-trace normalization -------------------------------------------


def normalize_events(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """The deterministic behavioural shape of an event stream.

    Returns::

        {"sequence": [[cat, name, count], ...],   # RLE over (cat, name)
         "totals":   {"cat:name": count, ...}}

    Timestamps, durations, latencies and wall-clock pass times are all
    excluded; phase begin/end markers keep their ordering (``B``/``E``
    suffix) so span nesting is part of the shape.
    """
    sequence: List[List[object]] = []
    totals: Dict[str, int] = {}
    for ev in events:
        if ev.cat == CAT_META:
            continue
        name = ev.name
        if ev.ph == PH_BEGIN:
            name += "/B"
        elif ev.ph == PH_END:
            name += "/E"
        totals[f"{ev.cat}:{name}"] = totals.get(f"{ev.cat}:{name}", 0) + 1
        if sequence and sequence[-1][0] == ev.cat and sequence[-1][1] == name:
            sequence[-1][2] += 1  # type: ignore[operator]
        else:
            sequence.append([ev.cat, name, 1])
    return {"sequence": sequence, "totals": dict(sorted(totals.items()))}
