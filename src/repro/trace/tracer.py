"""The tracer: structured event recording across compiler and runtime.

Two implementations share one interface:

* :class:`Tracer` — records :class:`~repro.trace.events.TraceEvent`
  rows and feeds the streaming histograms;
* :class:`NullTracer` — the disabled singleton (:data:`NULL_TRACER`).

**The hot-path contract.**  Instrumented code must gate every emission
on the ``enabled`` flag::

    tracer = self.tracer
    if tracer.enabled:
        tracer.guard(kind, obj_id, access, ts, cycles)

so a disabled tracer costs exactly one attribute check per
instrumentation site (verified by ``benchmarks/bench_trace_overhead.py``).
:class:`NullTracer` still implements the full interface as no-ops, so
un-gated cold-path calls (CLI plumbing, phase spans) are safe either way.

Timestamps are the caller's business because the two halves of the
system live on different clocks: runtimes pass their simulated-cycle
counter (``metrics.cycles``), the compiler passes wall-clock
microseconds.  Events land on the matching *track*.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.machine.costs import AccessKind, GuardKind
from repro.trace.events import (
    CAT_CORRUPT,
    CAT_COUNTER,
    CAT_DEGRADE,
    CAT_EVICT,
    CAT_FAULT,
    CAT_FETCH,
    CAT_GUARD,
    CAT_JOURNAL,
    CAT_PASS,
    CAT_PHASE,
    CAT_PREFETCH,
    CAT_REPAIR,
    CAT_REPLICA,
    CAT_RETRY,
    CAT_SERVE,
    CAT_TIER,
    PH_BEGIN,
    PH_COMPLETE,
    PH_COUNTER,
    PH_END,
    PH_INSTANT,
    TRACK_CYCLES,
    TRACK_WALL,
    TraceEvent,
)
from repro.trace.histogram import StreamingHistogram

#: Histogram names the fetch/prefetch helpers feed.
HIST_FETCH_LATENCY = "fetch_latency_cycles"
HIST_FETCH_BYTES = "fetch_bytes"


class NullTracer:
    """The disabled tracer: every method is a no-op, ``enabled`` is False.

    A single shared instance (:data:`NULL_TRACER`) is the default
    ``tracer`` attribute of every instrumented object, so "tracing off"
    costs one attribute load + truth test on hot paths and nothing else.
    """

    __slots__ = ()

    enabled = False

    def emit(self, *args: Any, **kwargs: Any) -> None:
        pass

    def guard(self, *args: Any, **kwargs: Any) -> None:
        pass

    def fetch(self, *args: Any, **kwargs: Any) -> None:
        pass

    def evict(self, *args: Any, **kwargs: Any) -> None:
        pass

    def prefetch(self, *args: Any, **kwargs: Any) -> None:
        pass

    def fault(self, *args: Any, **kwargs: Any) -> None:
        pass

    def retry(self, *args: Any, **kwargs: Any) -> None:
        pass

    def degrade(self, *args: Any, **kwargs: Any) -> None:
        pass

    def corrupt(self, *args: Any, **kwargs: Any) -> None:
        pass

    def repair(self, *args: Any, **kwargs: Any) -> None:
        pass

    def journal(self, *args: Any, **kwargs: Any) -> None:
        pass

    def serve(self, *args: Any, **kwargs: Any) -> None:
        pass

    def replica(self, *args: Any, **kwargs: Any) -> None:
        pass

    def tier(self, *args: Any, **kwargs: Any) -> None:
        pass

    def pass_event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def counter(self, *args: Any, **kwargs: Any) -> None:
        pass

    def begin_phase(self, *args: Any, **kwargs: Any) -> None:
        pass

    def end_phase(self, *args: Any, **kwargs: Any) -> None:
        pass

    @contextmanager
    def phase(self, name: str, clock: Optional[Callable[[], float]] = None) -> Iterator[None]:
        yield

    def histogram(self, name: str) -> StreamingHistogram:
        # Cold path only (reports); hand out a throwaway sink.
        return StreamingHistogram()


#: The shared disabled tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Records structured events plus streaming distributions.

    ``max_events`` bounds memory on pathological runs; once hit, further
    events are counted in ``dropped`` instead of stored (histograms keep
    recording — they are O(1) per sample).
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.events: List[TraceEvent] = []
        self.histograms: Dict[str, StreamingHistogram] = {}
        self.max_events = max_events
        self.dropped = 0

    # -- core emission -----------------------------------------------------

    def emit(
        self,
        cat: str,
        name: str,
        ts: float,
        ph: str = PH_INSTANT,
        dur: float = 0.0,
        track: str = TRACK_CYCLES,
        **args: Any,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(name=name, cat=cat, ts=ts, ph=ph, dur=dur, track=track, args=args)
        )

    # -- category helpers (the instrumentation API) -------------------------

    def guard(
        self,
        kind: GuardKind,
        obj_id: Optional[int],
        access: AccessKind,
        ts: float,
        cycles: float,
    ) -> None:
        """One guard execution: which path fired, on which object."""
        self.emit(
            CAT_GUARD,
            kind.value,
            ts,
            obj=obj_id,
            access=access.value,
            cycles=cycles,
        )

    def fetch(
        self,
        nbytes: int,
        latency: float,
        ts: float,
        obj_id: Optional[int] = None,
        n: int = 1,
        name: str = "fetch",
    ) -> None:
        """``n`` remote fetches totalling ``nbytes`` at ``latency`` each."""
        self.emit(CAT_FETCH, name, ts, bytes=nbytes, latency=latency, n=n, obj=obj_id)
        self.histogram(HIST_FETCH_LATENCY).record(latency, n)
        if n > 0:
            self.histogram(HIST_FETCH_BYTES).record(nbytes / n, n)

    def evict(
        self,
        nbytes: int,
        ts: float,
        n: int = 1,
        dirty: int = 0,
        name: str = "evict",
    ) -> None:
        """``n`` displacements totalling ``nbytes`` (``dirty`` written back)."""
        self.emit(CAT_EVICT, name, ts, bytes=nbytes, n=n, dirty=dirty)

    def prefetch(
        self,
        nbytes: int,
        ts: float,
        useful: bool,
        n: int = 1,
        name: str = "prefetch",
    ) -> None:
        """Prefetch issued: ``useful`` means it brought in non-local data."""
        self.emit(CAT_PREFETCH, name, ts, bytes=nbytes, n=n, useful=bool(useful))

    def fault(self, kind: str, message_index: int, ts: float) -> None:
        """One injected fault observed on the wire (a lost message)."""
        self.emit(CAT_FAULT, kind, ts, message_index=message_index)

    def retry(self, attempt: int, backoff: float, ts: float, name: str = "retry") -> None:
        """Backend granted a retry after failed attempt ``attempt``."""
        self.emit(CAT_RETRY, name, ts, attempt=attempt, backoff=backoff)

    def degrade(self, name: str, ts: float, **args: Any) -> None:
        """An access served in degraded mode (remote tier unavailable)."""
        self.emit(CAT_DEGRADE, name, ts, **args)

    def corrupt(self, kind: str, obj_id: int, ts: float) -> None:
        """A payload failed checksum verification (or was quarantined)."""
        self.emit(CAT_CORRUPT, kind, ts, obj=obj_id)

    def repair(self, obj_id: int, attempts: int, ts: float, name: str = "refetch") -> None:
        """A corrupted payload was repaired after ``attempts`` attempts."""
        self.emit(CAT_REPAIR, name, ts, obj=obj_id, attempts=attempts)

    def journal(self, action: str, obj_id: int, ts: float) -> None:
        """An evacuation-journal event (``replay``/``rollback``/``crash``)."""
        self.emit(CAT_JOURNAL, action, ts, obj=obj_id)

    def serve(self, name: str, ts: float, **args: Any) -> None:
        """A serving-layer event: ``request`` completions (with shard,
        tenant and end-to-end latency), ``shard_lost``, ``rebalance``."""
        self.emit(CAT_SERVE, name, ts, **args)

    def replica(self, name: str, ts: float, **args: Any) -> None:
        """A replication event: ``read_repair``, ``suspect`` (failure
        detector), ``failover`` (with promoted/reseeded counts),
        ``partition``/``heal``, or an ``anti_entropy`` sweep."""
        self.emit(CAT_REPLICA, name, ts, **args)

    def tier(self, name: str, ts: float, **args: Any) -> None:
        """An adaptive-hybrid tier event: ``switch`` (selector flip with
        region + direction) or ``migrate`` (objects moved at a rebalance
        epoch)."""
        self.emit(CAT_TIER, name, ts, **args)

    def pass_event(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        inst_before: int,
        inst_after: int,
        stats: Optional[Dict[str, int]] = None,
    ) -> None:
        """One compiler pass (wall-clock track): duration + IR delta."""
        self.emit(
            CAT_PASS,
            name,
            ts_us,
            ph=PH_COMPLETE,
            dur=dur_us,
            track=TRACK_WALL,
            instructions_before=inst_before,
            instructions_after=inst_after,
            instruction_delta=inst_after - inst_before,
            stats=dict(stats or {}),
        )

    def counter(self, name: str, ts: float, track: str = TRACK_CYCLES, **values: float) -> None:
        """Point-in-time counter sample (renders as a Chrome counter row)."""
        self.emit(CAT_COUNTER, name, ts, ph=PH_COUNTER, track=track, **values)

    # -- phases -----------------------------------------------------------

    def begin_phase(self, name: str, ts: float, track: str = TRACK_CYCLES, **args: Any) -> None:
        self.emit(CAT_PHASE, name, ts, ph=PH_BEGIN, track=track, **args)

    def end_phase(self, name: str, ts: float, track: str = TRACK_CYCLES, **args: Any) -> None:
        self.emit(CAT_PHASE, name, ts, ph=PH_END, track=track, **args)

    @contextmanager
    def phase(self, name: str, clock: Optional[Callable[[], float]] = None) -> Iterator[None]:
        """Span a workload-defined phase; ``clock`` supplies timestamps.

        With no clock the span is stamped with the event count — ordering
        is preserved even when no natural timeline exists.
        """
        read = clock if clock is not None else (lambda: float(len(self.events)))
        self.begin_phase(name, read())
        try:
            yield
        finally:
            self.end_phase(name, read())

    # -- distributions -----------------------------------------------------

    def histogram(self, name: str) -> StreamingHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = StreamingHistogram()
        return hist

    # -- summaries ---------------------------------------------------------

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ev in self.events:
            counts[ev.cat] = counts.get(ev.cat, 0) + 1
        return counts

    def summary(self) -> Dict[str, object]:
        """Percentile summary of every histogram plus event totals."""
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "by_category": self.category_counts(),
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean,
                    **h.percentiles((50.0, 95.0, 99.0)),
                }
                for name, h in sorted(self.histograms.items())
            },
        }
