"""``python -m repro.trace``: run a workload under tracing, export both formats.

Examples::

    python -m repro.trace --workload stream --runtime trackfm --out /tmp/t.json
    python -m repro.trace --workload hashmap --runtime fastswap \\
        --out hashmap.json --jsonl hashmap.jsonl --seed 3

The ``--out`` file is Chrome ``trace_event`` JSON (load it in
``chrome://tracing`` or https://ui.perfetto.dev); the JSONL sibling
(``--jsonl``, default ``<out>.jsonl``) is one compact event per line
for grep/jq pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.trace.drivers import RUNTIMES, WORKLOADS, run_traced
from repro.trace.export import export_chrome_trace, export_jsonl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a registered workload under a runtime with tracing on.",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="stream",
        help="which workload shape to run (default: stream)",
    )
    parser.add_argument(
        "--runtime", choices=sorted(RUNTIMES), default="trackfm",
        help="which runtime model to run it under (default: trackfm)",
    )
    parser.add_argument(
        "--out", type=Path, required=True,
        help="Chrome trace_event JSON output path",
    )
    parser.add_argument(
        "--jsonl", type=Path, default=None,
        help="compact JSONL output path (default: <out>.jsonl)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (default: 0)",
    )
    parser.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help=(
            "inject network faults, e.g. "
            "'seed=3,drop=0.02,spike=0.05:20000,jitter=500,pause=100:140' "
            "(see docs/resilience.md)"
        ),
    )
    parser.add_argument(
        "--integrity", type=str, default=None, metavar="SPEC",
        help=(
            "checksum-verify fetched payloads: 'on', 'off', or "
            "'seed=1,refetch=2,verify=25,crash=40:farnode' "
            "(see docs/resilience.md); corruption rates come from "
            "--faults keys bitflip/stale/torn/lostwb"
        ),
    )
    parser.add_argument(
        "--replication", type=int, default=1, metavar="N",
        help=(
            "replica count for the 'serve' workload (default 1; N>=2 "
            "turns the knockout into a quorum failover — see "
            "docs/serving.md)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary printed to stdout",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    fault_plan = None
    if args.faults is not None:
        from repro.net.faults import parse_fault_spec

        fault_plan = parse_fault_spec(args.faults)
    integrity = None
    if args.integrity is not None:
        from repro.integrity import parse_integrity_spec

        integrity = parse_integrity_spec(args.integrity)
    result = run_traced(
        args.workload, args.runtime, seed=args.seed, fault_plan=fault_plan,
        integrity=integrity, replication=args.replication,
    )
    export_chrome_trace(result.tracer, args.out, metadata=result.metadata())
    jsonl_path = args.jsonl
    if jsonl_path is None:
        jsonl_path = args.out.with_suffix(args.out.suffix + "l")
    lines = export_jsonl(result.tracer, jsonl_path)
    if not args.quiet:
        summary = result.tracer.summary()
        print(f"{args.workload} under {args.runtime} (seed {args.seed}):")
        print(f"  value   = {result.value}")
        print(f"  cycles  = {result.cycles:.0f}")
        m = result.metrics
        if m.drops or m.retries or m.degraded_accesses or m.deferred_writebacks:
            print(
                f"  faults  = drops {m.drops}, timeouts {m.timeouts}, "
                f"retries {m.retries}, degraded {m.degraded_accesses}, "
                f"deferred writebacks {m.deferred_writebacks}"
            )
        if m.corruptions_detected or m.quarantined_objects or m.journal_replays:
            print(
                f"  integrity = detected {m.corruptions_detected}, "
                f"repaired {m.corruptions_repaired}, "
                f"quarantined {m.quarantined_objects}, "
                f"journal replays {m.journal_replays}"
            )
        print(f"  events  = {summary['events']} ({summary['by_category']})")
        for name, stats in summary["histograms"].items():
            print(f"  {name}: {json.dumps(stats)}")
        print(f"  chrome trace -> {args.out}")
        print(f"  jsonl ({lines} lines) -> {jsonl_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
