"""Size and time units used throughout the reproduction.

All memory quantities are plain ``int`` bytes and all simulated times are
plain ``float`` cycles; these helpers exist so the code reads like the
paper ("a 32 GB remote heap", "object sizes from 64B to 4KB").
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

CACHE_LINE = 64
BASE_PAGE = 4 * KB

#: Object sizes the paper considers plausible (powers of two, cache line
#: up to base page — see §3.2 "Object size selection").
PLAUSIBLE_OBJECT_SIZES = (64, 128, 256, 512, 1 * KB, 2 * KB, 4 * KB)


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return log2(n) for an exact power of two, else raise ValueError."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return value // alignment * alignment


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def fmt_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(3 * GB) == '3.0GB'``."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_cycles(c: float) -> str:
    """Human-readable cycle count, e.g. ``fmt_cycles(34_000) == '34.0K'``."""
    if abs(c) >= 1e9:
        return f"{c / 1e9:.1f}G"
    if abs(c) >= 1e6:
        return f"{c / 1e6:.1f}M"
    if abs(c) >= 1e3:
        return f"{c / 1e3:.1f}K"
    return f"{c:.0f}"
