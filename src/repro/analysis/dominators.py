"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG, reverse_postorder
from repro.ir.basicblock import BasicBlock


class DominatorTree:
    """Immediate-dominator map and dominance queries for one function."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._rpo = reverse_postorder(cfg)
        self._rpo_index = {b: i for i, b in enumerate(self._rpo)}
        self._compute()

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[a] > self._rpo_index[b]:
                parent = self.idom[a]
                assert parent is not None
                a = parent
            while self._rpo_index[b] > self._rpo_index[a]:
                parent = self.idom[b]
                assert parent is not None
                b = parent
        return a

    def _compute(self) -> None:
        entry = self.cfg.entry
        for block in self._rpo:
            self.idom[block] = None
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self._rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in self.cfg.preds(block):
                    if pred not in self._rpo_index:
                        continue  # unreachable predecessor
                    if self.idom.get(pred) is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom)
                if new_idom is not None and self.idom[block] is not new_idom:
                    self.idom[block] = new_idom
                    changed = True
        # Root's idom is conventionally None for clients.
        self.idom[entry] = None

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexively)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominator_chain(self, block: BasicBlock) -> List[BasicBlock]:
        """Blocks dominating ``block``, from itself up to the entry."""
        chain: List[BasicBlock] = []
        node: Optional[BasicBlock] = block
        while node is not None:
            chain.append(node)
            node = self.idom.get(node)
        return chain

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        """Immediate children of ``block`` in the dominator tree."""
        return [b for b, parent in self.idom.items() if parent is block]
