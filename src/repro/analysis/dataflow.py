"""A generic worklist dataflow engine over :mod:`repro.ir`.

TrackFM's correctness tooling needs several classic dataflow problems
(reaching guards, live localized addresses), and earlier passes each
hand-rolled their own fixpoints.  This module factors the machinery out
once: a :class:`DataflowAnalysis` subclass supplies the lattice (a
``join``), the boundary state, and a per-instruction ``transfer``
function; the engine runs the standard iterative worklist algorithm to
a fixed point and exposes per-block in/out states plus exact states at
individual instructions.

States are treated as immutable values: ``transfer`` must return a new
state rather than mutate its argument, and states are compared with
``==`` to detect convergence.  ``frozenset`` is the usual choice.

Blocks that have not been reached yet hold the distinguished :data:`TOP`
sentinel; the engine joins only non-TOP predecessor states, which makes
both may- (union) and must- (intersection) analyses come out right under
optimistic iteration without the subclass having to model a synthetic
universal set.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.cfg import CFG, reverse_postorder
from repro.errors import AnalysisError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction


class _Top:
    """Sentinel for 'not yet computed' (the lattice top)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TOP"


#: The unreached-state sentinel shared by every analysis instance.
TOP = _Top()


class Direction(enum.Enum):
    """Which way information flows through the CFG."""

    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowAnalysis:
    """Iterative worklist dataflow over one function.

    Subclasses set :attr:`direction` and implement:

    * :meth:`boundary_state` — the state at the entry block's start
      (forward) or at every exit block's end (backward);
    * :meth:`join` — combine two states at a control-flow merge;
    * :meth:`transfer` — the effect of one instruction on a state.

    After :meth:`run`, :meth:`in_state`/:meth:`out_state` give the fixed
    point at block boundaries and :meth:`state_before`/
    :meth:`state_after` recover the state at an individual instruction.
    """

    direction: Direction = Direction.FORWARD

    def __init__(self, func: Function, cfg: Optional[CFG] = None) -> None:
        if func.is_declaration:
            raise AnalysisError(f"@{func.name} is a declaration; no dataflow")
        self.function = func
        self.cfg = cfg if cfg is not None else CFG(func)
        self._rpo = reverse_postorder(self.cfg)
        self._in: Dict[BasicBlock, Any] = {b: TOP for b in self._rpo}
        self._out: Dict[BasicBlock, Any] = {b: TOP for b in self._rpo}
        self._ran = False

    # -- subclass API ---------------------------------------------------

    def boundary_state(self) -> Any:
        """State at the analysis boundary (entry or exits)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        """Lattice join of two (non-TOP) states."""
        raise NotImplementedError

    def transfer(self, inst: Instruction, state: Any) -> Any:
        """State after (forward) / before (backward) ``inst``."""
        raise NotImplementedError

    def transfer_block(self, block: BasicBlock, state: Any) -> Any:
        """Fold :meth:`transfer` across the block; override for speed."""
        insts: Iterable[Instruction] = block.instructions
        if self.direction is Direction.BACKWARD:
            insts = reversed(block.instructions)
        for inst in insts:
            state = self.transfer(inst, state)
        return state

    # -- driver ---------------------------------------------------------

    def run(self) -> "DataflowAnalysis":
        """Iterate to a fixed point; returns ``self`` for chaining."""
        forward = self.direction is Direction.FORWARD
        order = self._rpo if forward else list(reversed(self._rpo))
        entry = self.cfg.entry
        exits = [b for b in self._rpo if not self.cfg.succs(b)]
        worklist: List[BasicBlock] = list(order)
        pending = set(worklist)
        while worklist:
            block = worklist.pop(0)
            pending.discard(block)
            if forward:
                start = self._meet_over(self.cfg.preds(block), self._out)
                if block is entry:
                    start = (
                        self.boundary_state()
                        if start is TOP
                        else self.join(start, self.boundary_state())
                    )
                self._in[block] = start
                end = TOP if start is TOP else self.transfer_block(block, start)
                if end == self._out[block]:
                    continue
                self._out[block] = end
                nexts = self.cfg.succs(block)
            else:
                start = self._meet_over(self.cfg.succs(block), self._in)
                if block in exits or not self.cfg.succs(block):
                    start = (
                        self.boundary_state()
                        if start is TOP
                        else self.join(start, self.boundary_state())
                    )
                self._out[block] = start
                end = TOP if start is TOP else self.transfer_block(block, start)
                if end == self._in[block]:
                    continue
                self._in[block] = end
                nexts = self.cfg.preds(block)
            for nxt in nexts:
                if nxt in self._in and nxt not in pending:
                    pending.add(nxt)
                    worklist.append(nxt)
        self._ran = True
        return self

    def _meet_over(self, blocks: Iterable[BasicBlock], table: Dict) -> Any:
        state: Any = TOP
        for b in blocks:
            other = table.get(b, TOP)
            if other is TOP:
                continue
            state = other if state is TOP else self.join(state, other)
        return state

    # -- queries --------------------------------------------------------

    def _require_run(self) -> None:
        if not self._ran:
            self.run()

    def in_state(self, block: BasicBlock) -> Any:
        """Fixed-point state at ``block``'s start (TOP if unreachable)."""
        self._require_run()
        return self._in.get(block, TOP)

    def out_state(self, block: BasicBlock) -> Any:
        """Fixed-point state at ``block``'s end (TOP if unreachable)."""
        self._require_run()
        return self._out.get(block, TOP)

    def state_before(self, inst: Instruction) -> Any:
        """The state holding just before ``inst`` executes."""
        return self._state_at(inst, before=True)

    def state_after(self, inst: Instruction) -> Any:
        """The state holding just after ``inst`` executes."""
        return self._state_at(inst, before=False)

    def _state_at(self, inst: Instruction, before: bool) -> Any:
        self._require_run()
        block = inst.parent
        if block is None:
            raise AnalysisError(f"instruction {inst.render()} has no block")
        forward = self.direction is Direction.FORWARD
        state = self._in[block] if forward else self._out[block]
        if state is TOP:
            return TOP
        insts = block.instructions if forward else list(reversed(block.instructions))
        # In a forward analysis the pre-state is what holds *before* the
        # instruction; in a backward one it is the post-state.
        stop_early = before if forward else not before
        for cur in insts:
            if cur is inst and stop_early:
                return state
            state = self.transfer(cur, state)
            if cur is inst:
                return state
        raise AnalysisError(f"instruction not found in %{block.name}")


class LiveVariables(DataflowAnalysis):
    """Classic backward liveness over SSA values (a reference client).

    ``in_state(block)`` is the frozenset of values live on entry.  Phi
    operands are charged to the predecessor edge they flow along, which
    for block-granular liveness means the phi's *block* sees its
    incoming values as live-in from each predecessor; we approximate by
    treating all phi operands as used at the phi, the standard
    block-level simplification.
    """

    direction = Direction.BACKWARD

    def boundary_state(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, inst: Instruction, state: frozenset) -> frozenset:
        state = state - {inst}
        uses = {op for op in inst.operands if isinstance(op, Instruction)}
        return state | uses
