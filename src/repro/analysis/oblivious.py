"""The far-memory access auditor: oblivious-loop classification.

Built on :mod:`repro.analysis.symbolic`, this module classifies every
loop of a program by how much the compiler can know about its far-memory
traffic, and turns the closed-form streams into *static predictions* of
the dynamic counters the runtime will report:

* **OBLIVIOUS** — every heap-may access has an exact affine stream and
  the trip count is known: the exact set of remote objects, the bytes
  fetched and the bytes used are computable at compile time (3PO's
  prerequisite for programmed prefetching);
* **STRIDED_PARTIAL** — strides are known but some start point or the
  trip count is not: a stride prefetcher will work, an exact schedule
  cannot be emitted;
* **OPAQUE** — at least one access is data-dependent (pointer chase,
  hash probe): only runtime prediction can help.

Predictions assume allocation bases are object-aligned (the region
allocator places allocations at object granularity) and are *per loop
entry*; :meth:`ModuleAudit.program_prediction` unions object sets
across loops per allocation base, which is exact for programs whose
local memory holds the working set (each object faults once, cold).

Guard overhead predictions reuse :class:`ChunkingCostModel` (Eqs. 1–3)
so the auditor reports naive-vs-chunked guard cycles alongside traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.loops import Loop, find_loops
from repro.analysis.provenance import (
    ProvenanceAnalysis,
    return_provenance_summaries,
)
from repro.analysis.symbolic import (
    CHASE_DEREFS,
    TRANSPARENT_DEREFS,
    SymbolicAddressAnalysis,
    SymbolicStream,
)
from repro.compiler.cost_model import ChunkingCostModel, LoopShape
from repro.ir.instructions import Call, Instruction, Load, Store
from repro.ir.module import Module
from repro.ir.values import Value
from repro.machine.costs import CostTable, DEFAULT_COSTS
from repro.units import BASE_PAGE

#: Enumeration guardrail: streams whose stride exceeds the object size
#: touch non-contiguous objects; we enumerate them exactly up to this
#: many iterations and refuse the prediction beyond it.
MAX_ENUMERATED_TRIPS = 1 << 20


class LoopClass(enum.Enum):
    """How statically analyzable a loop's far-memory traffic is."""

    OBLIVIOUS = "oblivious"
    STRIDED_PARTIAL = "strided_partial"
    OPAQUE = "opaque"


@dataclass
class LoopPrediction:
    """Static per-entry traffic prediction for one oblivious loop."""

    #: Distinct remote objects touched (per loop entry, cold).
    objects: int
    #: Bytes the runtime fetches to satisfy those touches.
    bytes_fetched: int
    #: Bytes the program actually consumes.
    bytes_used: int

    @property
    def fetch_amplification(self) -> float:
        """bytes_fetched / bytes_used (>= 1 for non-overlapping streams)."""
        if self.bytes_used <= 0:
            return 1.0
        return self.bytes_fetched / self.bytes_used


@dataclass
class LoopAudit:
    """Everything the auditor derived about one loop."""

    function: str
    loop: Loop
    classification: LoopClass
    #: Affine streams of heap-may accesses innermost to this loop.
    streams: List[SymbolicStream] = field(default_factory=list)
    #: Heap-may accesses with no affine stream (what made it opaque).
    opaque_accesses: List[Instruction] = field(default_factory=list)
    #: Traffic prediction; None unless the loop is oblivious.
    prediction: Optional[LoopPrediction] = None
    #: Distinct object ids per base value (oblivious loops only).
    objects_by_base: Dict[Value, Set[int]] = field(default_factory=dict)
    #: Governing trip count, when known.
    trips: Optional[int] = None
    #: Guard-overhead cycles (naive, chunked) from the cost model.
    naive_guard_cycles: float = 0.0
    chunked_guard_cycles: float = 0.0

    @property
    def has_heap_streams(self) -> bool:
        return bool(self.streams)

    def __repr__(self) -> str:
        return (
            f"<LoopAudit @{self.function} %{self.loop.header.name} "
            f"{self.classification.value} streams={len(self.streams)}>"
        )


@dataclass
class ProgramPrediction:
    """Whole-program cold-traffic prediction (union across loops)."""

    #: Distinct remote objects across all audited loops.
    objects: int
    bytes_fetched: int
    bytes_used: int
    #: False when some reachable loop with heap traffic was not
    #: oblivious — the numbers are then a lower bound, not a prediction.
    complete: bool

    @property
    def fetch_amplification(self) -> float:
        if self.bytes_used <= 0:
            return 1.0
        return self.bytes_fetched / self.bytes_used


@dataclass
class ModuleAudit:
    """The auditor's report over one module."""

    module_name: str
    object_size: int
    loops: List[LoopAudit] = field(default_factory=list)
    #: Functions the audit covered (reachable from the entry point).
    functions: List[str] = field(default_factory=list)

    def by_class(self, cls: LoopClass) -> List[LoopAudit]:
        return [a for a in self.loops if a.classification is cls]

    @property
    def oblivious(self) -> List[LoopAudit]:
        return self.by_class(LoopClass.OBLIVIOUS)

    @property
    def opaque(self) -> List[LoopAudit]:
        return self.by_class(LoopClass.OPAQUE)

    @property
    def strided_partial(self) -> List[LoopAudit]:
        return self.by_class(LoopClass.STRIDED_PARTIAL)

    def audit_of(self, loop: Loop) -> Optional[LoopAudit]:
        for a in self.loops:
            if a.loop is loop:
                return a
        return None

    def program_prediction(self) -> ProgramPrediction:
        """Union object sets across loops, per allocation base.

        A second sweep over the same allocation re-hits resident objects,
        so cold remote fetches are counted once per distinct object.
        """
        by_base: Dict[Value, Set[int]] = {}
        intervals: Dict[Value, List[Tuple[int, int, int]]] = {}
        complete = True
        for audit in self.loops:
            if audit.classification is not LoopClass.OBLIVIOUS:
                if audit.streams or audit.opaque_accesses:
                    complete = False
                continue
            if audit.prediction is None:
                if audit.streams:
                    complete = False
                continue
            for base, objs in audit.objects_by_base.items():
                by_base.setdefault(base, set()).update(objs)
            for stream in audit.streams:
                iv = stream.byte_interval()
                used = stream.used_bytes()
                if iv is None or used is None or stream.base is None:
                    continue
                intervals.setdefault(stream.base, []).append((iv[0], iv[1], used))
        objects = sum(len(objs) for objs in by_base.values())
        bytes_used = sum(
            _merged_used_bytes(spans) for spans in intervals.values()
        )
        return ProgramPrediction(
            objects=objects,
            bytes_fetched=objects * self.object_size,
            bytes_used=bytes_used,
            complete=complete,
        )


def _merged_used_bytes(spans: List[Tuple[int, int, int]]) -> int:
    """Union per-stream used-byte estimates over overlapping intervals."""
    if not spans:
        return 0
    spans = sorted(spans)
    total = 0
    cur_lo, cur_hi, cur_used = spans[0]
    for lo, hi, used in spans[1:]:
        if lo < cur_hi:  # overlapping streams share their footprint
            cur_hi = max(cur_hi, hi)
            cur_used = max(cur_used, used)
        else:
            total += min(cur_used, cur_hi - cur_lo)
            cur_lo, cur_hi, cur_used = lo, hi, used
    total += min(cur_used, cur_hi - cur_lo)
    return total


class AccessAuditor:
    """Whole-program far-memory access auditor."""

    def __init__(
        self,
        module: Module,
        object_size: int = BASE_PAGE,
        costs: CostTable = DEFAULT_COSTS,
        entry: str = "main",
        reachable_only: bool = True,
    ) -> None:
        self.module = module
        self.object_size = object_size
        self.cost_model = ChunkingCostModel(object_size, costs)
        self.entry = entry
        self.reachable_only = reachable_only
        self._summaries = return_provenance_summaries(module)

    def run(self) -> ModuleAudit:
        audit = ModuleAudit(module_name=self.module.name, object_size=self.object_size)
        callgraph = CallGraph(self.module)
        reachable = (
            callgraph.reachable_from(self.entry) if self.reachable_only else None
        )
        for func in self.module.defined_functions():
            if reachable is not None and func.name not in reachable:
                continue
            audit.functions.append(func.name)
            self._audit_function(func, audit)
        return audit

    # -- per function -------------------------------------------------------

    def _audit_function(self, func, audit: ModuleAudit) -> None:
        loop_info = find_loops(func)
        if not len(loop_info):
            return
        symbolic = SymbolicAddressAnalysis(func, loop_info)
        provenance = ProvenanceAnalysis(func, summaries=self._summaries)
        for loop in loop_info:
            audit.loops.append(
                self._audit_loop(func, loop, symbolic, provenance)
            )

    def _is_far_access(self, access: Instruction, provenance) -> bool:
        """Does this load/store potentially touch far memory?"""
        ptr = access.pointer
        if isinstance(ptr, Call) and ptr.callee in TRANSPARENT_DEREFS:
            return True  # already routed through the far-memory runtime
        return provenance.must_guard(access)

    def _audit_loop(
        self, func, loop: Loop, symbolic: SymbolicAddressAnalysis, provenance
    ) -> LoopAudit:
        streams: List[SymbolicStream] = []
        opaque: List[Instruction] = []
        for access in symbolic.loop_accesses(loop):
            if not self._is_far_access(access, provenance):
                continue
            stream = symbolic.stream_of(access)
            if stream is None:
                opaque.append(access)
            else:
                streams.append(stream)
        trips = symbolic.loop_trips(loop)

        if opaque:
            classification = LoopClass.OPAQUE
        elif streams and all(s.exact for s in streams) and trips is not None:
            classification = LoopClass.OBLIVIOUS
        elif streams:
            classification = LoopClass.STRIDED_PARTIAL
        else:
            # No far-memory traffic at all: trivially analyzable.
            classification = LoopClass.OBLIVIOUS

        result = LoopAudit(
            function=func.name,
            loop=loop,
            classification=classification,
            streams=streams,
            opaque_accesses=opaque,
            trips=trips,
        )
        if classification is LoopClass.OBLIVIOUS and streams:
            self._predict(result)
        if streams and trips is not None:
            elem = min(s.elem_size for s in streams)
            shape = LoopShape(
                iterations_per_entry=float(trips),
                elem_size=max(1, elem),
                accesses_per_iteration=len(streams),
            )
            naive, chunked = self.cost_model.loop_costs(shape)
            result.naive_guard_cycles = naive
            result.chunked_guard_cycles = chunked
        return result

    # -- predictions --------------------------------------------------------

    def _predict(self, audit: LoopAudit) -> None:
        by_base: Dict[Value, Set[int]] = {}
        intervals: Dict[Value, List[Tuple[int, int, int]]] = {}
        for stream in audit.streams:
            objs = self._stream_objects(stream)
            if objs is None or stream.base is None:
                return  # not predictable after all (e.g. huge sparse stride)
            by_base.setdefault(stream.base, set()).update(objs)
            iv = stream.byte_interval()
            used = stream.used_bytes()
            if iv is None or used is None:
                return
            intervals.setdefault(stream.base, []).append((iv[0], iv[1], used))
        objects = sum(len(objs) for objs in by_base.values())
        bytes_used = sum(_merged_used_bytes(spans) for spans in intervals.values())
        audit.objects_by_base = by_base
        audit.prediction = LoopPrediction(
            objects=objects,
            bytes_fetched=objects * self.object_size,
            bytes_used=bytes_used,
        )

    def _stream_objects(self, stream: SymbolicStream) -> Optional[Set[int]]:
        """Distinct object indices (relative to the base) a stream touches."""
        if stream.trips is None or not stream.exact:
            return None
        if stream.trips <= 0:
            return set()
        o = self.object_size
        interval = stream.byte_interval()
        assert interval is not None
        lo, hi = interval
        if abs(stream.stride) <= o:
            # Dense: every object between the endpoints is touched.
            return set(range(lo // o, (hi - 1) // o + 1))
        if stream.trips > MAX_ENUMERATED_TRIPS:
            return None
        objs: Set[int] = set()
        for k in range(stream.trips):
            first = stream.offset + k * stream.stride
            last = first + stream.elem_size - 1
            objs.update(range(first // o, last // o + 1))
        return objs


def audit_module(
    module: Module,
    object_size: int = BASE_PAGE,
    costs: CostTable = DEFAULT_COSTS,
    entry: str = "main",
    reachable_only: bool = True,
) -> ModuleAudit:
    """One-shot convenience wrapper around :class:`AccessAuditor`."""
    return AccessAuditor(
        module,
        object_size=object_size,
        costs=costs,
        entry=entry,
        reachable_only=reachable_only,
    ).run()
