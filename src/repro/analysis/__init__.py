"""Compiler analyses, standing in for NOELLE's abstractions.

TrackFM consumes four NOELLE facilities (§3): the program dependence
graph with its alias analyses (to skip stack/global accesses), induction
variable analysis (for loop chunking), loop structure, and the profiling
engine (loop coverage for the chunking cost model).  This package
implements each from scratch over :mod:`repro.ir`.
"""

from repro.analysis.cfg import CFG, reverse_postorder
from repro.analysis.dataflow import (
    TOP,
    DataflowAnalysis,
    Direction,
    LiveVariables,
)
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopInfo, find_loops
from repro.analysis.induction import (
    InductionVariable,
    InductionAnalysis,
)
from repro.analysis.provenance import (
    Provenance,
    ProvenanceAnalysis,
    return_provenance_summaries,
)
from repro.analysis.defuse import DefUse
from repro.analysis.callgraph import CallGraph
from repro.analysis.profiler import LoopProfile, ProfileData, profile_module
from repro.analysis.symbolic import (
    SymbolicAddressAnalysis,
    SymbolicStream,
)
from repro.analysis.oblivious import (
    AccessAuditor,
    LoopAudit,
    LoopClass,
    LoopPrediction,
    ModuleAudit,
    ProgramPrediction,
    audit_module,
)

__all__ = [
    "CFG",
    "reverse_postorder",
    "TOP",
    "DataflowAnalysis",
    "Direction",
    "LiveVariables",
    "DominatorTree",
    "Loop",
    "LoopInfo",
    "find_loops",
    "InductionVariable",
    "InductionAnalysis",
    "Provenance",
    "ProvenanceAnalysis",
    "return_provenance_summaries",
    "DefUse",
    "CallGraph",
    "LoopProfile",
    "ProfileData",
    "profile_module",
    "SymbolicAddressAnalysis",
    "SymbolicStream",
    "AccessAuditor",
    "LoopAudit",
    "LoopClass",
    "LoopPrediction",
    "ModuleAudit",
    "ProgramPrediction",
    "audit_module",
]
