"""Direct-call graph over a module."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import Call
from repro.ir.module import Module


class CallGraph:
    """Callee sets per function, plus reachability from an entry point."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.calls: Dict[str, Set[str]] = {}
        for func in module.defined_functions():
            callees: Set[str] = set()
            for inst in func.instructions():
                if isinstance(inst, Call):
                    callees.add(inst.callee)
            self.calls[func.name] = callees

    def callees(self, name: str) -> Set[str]:
        return set(self.calls.get(name, set()))

    def reachable_from(self, entry: str = "main") -> Set[str]:
        """Function names reachable from ``entry`` via direct calls."""
        seen: Set[str] = set()
        work = [entry]
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            work.extend(self.calls.get(name, set()))
        return seen

    def call_sites_of(self, callee: str) -> List[Call]:
        """Every direct call instruction targeting ``callee``."""
        sites: List[Call] = []
        for func in self.module.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, Call) and inst.callee == callee:
                    sites.append(inst)
        return sites
