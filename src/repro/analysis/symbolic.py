"""Symbolic (affine) address streams for far-memory loops.

3PO's observation (PAPERS.md, arxiv 2207.07688) is that many loops are
*oblivious*: their address streams are closed-form functions of loop
induction variables, computable at compile time.  This module derives
that closed form.  For each load/store inside a loop we try to express
the accessed address as

    addr(k) = base + offset + k * stride        (k = 0 .. trips-1)

where ``base`` is a loop-invariant pointer value, ``offset`` and
``stride`` are byte constants, and ``k`` counts loop iterations.  The
derivation walks the pointer's def-use chain through ``gep`` chains,
integer/pointer induction variables (:mod:`repro.analysis.induction`),
``ptrtoint``/``inttoptr`` round trips with constant arithmetic, and the
``tfm_*`` deref intrinsics the compiler routes accesses through — so
the same analysis works on pre-transform and post-transform IR.

Resolution has three outcomes per access:

* **affine & exact** — base, offset and stride all known;
* **partial** — the stride is known but the start point is not (e.g. a
  loop-invariant but non-constant first index);
* **opaque** — the address depends on in-loop memory (pointer chasing)
  or non-affine arithmetic (hashing), so no static stream exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.induction import InductionAnalysis, InductionVariable
from repro.analysis.loops import Loop, LoopInfo, find_loops
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Gep,
    Instruction,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Store,
)
from repro.ir.values import Constant, Value

#: Intrinsics that return (a canonical twin of) their first argument:
#: the address stream of the raw pointer is the stream of the access.
TRANSPARENT_DEREFS = frozenset(
    {
        "tfm_guard_read",
        "tfm_guard_write",
        "tfm_chunk_deref",
        "tfm_chunk_deref_write",
        "tfm_chase_deref",
        "tfm_chase_deref_write",
    }
)

#: Chase derefs are transparent for *plumbing* but their streams are
#: data-dependent by construction (the pointer is loaded from memory).
CHASE_DEREFS = frozenset({"tfm_chase_deref", "tfm_chase_deref_write"})


@dataclass
class SymbolicStream:
    """One access's affine address stream within its innermost loop."""

    #: The load/store this stream describes.
    access: Instruction
    #: Loop-invariant pointer the stream is relative to (allocation root).
    base: Optional[Value]
    #: Constant byte offset from ``base`` at the first iteration.
    offset: int
    #: Bytes advanced per loop iteration (0 = loop-invariant address).
    stride: int
    #: Bytes moved by the access itself.
    elem_size: int
    #: True when ``base + offset`` pins the first address exactly;
    #: False for partial streams (stride known, start unknown).
    exact: bool
    #: Trip count of the innermost loop, when statically known.
    trips: Optional[int] = None

    @property
    def is_write(self) -> bool:
        return isinstance(self.access, Store)

    def span_bytes(self) -> Optional[int]:
        """Distinct byte span touched over all iterations (needs trips)."""
        if self.trips is None:
            return None
        if self.trips <= 0:
            return 0
        return abs(self.stride) * (self.trips - 1) + self.elem_size

    def used_bytes(self) -> Optional[int]:
        """Bytes the program actually consumes (overlap-deduplicated)."""
        span = self.span_bytes()
        if span is None:
            return None
        return min(self.trips * self.elem_size, span)

    def byte_interval(self) -> Optional[tuple]:
        """[lo, hi) byte range relative to ``base`` (needs exact+trips)."""
        if not self.exact or self.trips is None or self.trips <= 0:
            return None
        first = self.offset
        last = self.offset + self.stride * (self.trips - 1)
        lo = min(first, last)
        hi = max(first, last) + self.elem_size
        return lo, hi

    def __repr__(self) -> str:
        base = self.base.short() if self.base is not None else "?"
        tag = "exact" if self.exact else "partial"
        return (
            f"<stream {base}+{self.offset} stride={self.stride} "
            f"x{self.elem_size} trips={self.trips} {tag}>"
        )


@dataclass
class _Affine:
    """Intermediate resolution state (base/offset/stride accumulator)."""

    base: Optional[Value]
    offset: int
    stride: int
    exact: bool


class SymbolicAddressAnalysis:
    """Derive affine address streams for every loop access of a function."""

    def __init__(self, func: Function, loop_info: Optional[LoopInfo] = None) -> None:
        self.function = func
        self.loop_info = loop_info if loop_info is not None else find_loops(func)
        self.induction = InductionAnalysis(func, self.loop_info)
        #: Resolved streams keyed by access instruction; opaque accesses
        #: are present with value None.
        self._streams: Dict[Instruction, Optional[SymbolicStream]] = {}
        self._analyze()

    # -- public API ---------------------------------------------------------

    def stream_of(self, access: Instruction) -> Optional[SymbolicStream]:
        """The affine stream of a load/store, or None when opaque."""
        return self._streams.get(access)

    def loop_streams(self, loop: Loop) -> List[SymbolicStream]:
        """Resolved (non-opaque) streams of accesses innermost to ``loop``."""
        out = []
        for access, stream in self._streams.items():
            if stream is None:
                continue
            block = access.parent
            if block is not None and self.loop_info.loop_of(block) is loop:
                out.append(stream)
        return out

    def loop_trips(self, loop: Loop) -> Optional[int]:
        """Trip count of ``loop``'s governing IV, when statically known."""
        iv = self.induction.governing_iv(loop)
        return iv.trip_count if iv is not None else None

    def loop_accesses(self, loop: Loop) -> List[Instruction]:
        """All analyzed accesses whose innermost loop is ``loop``."""
        out = []
        for access in self._streams:
            block = access.parent
            if block is not None and self.loop_info.loop_of(block) is loop:
                out.append(access)
        return out

    # -- derivation ---------------------------------------------------------

    def _analyze(self) -> None:
        for loop in self.loop_info:
            trips = self.loop_trips(loop)
            for inst in loop.instructions():
                if not isinstance(inst, (Load, Store)):
                    continue
                block = inst.parent
                if block is None or self.loop_info.loop_of(block) is not loop:
                    continue  # attributed to an inner loop instead
                self._streams[inst] = self._resolve_access(inst, loop, trips)

    def _resolve_access(
        self, access: Instruction, loop: Loop, trips: Optional[int]
    ) -> Optional[SymbolicStream]:
        ptr = access.pointer
        elem = self._access_size(access)
        if isinstance(ptr, Call) and ptr.callee in CHASE_DEREFS:
            return None  # pointer chase: data-dependent by construction
        affine = self._resolve(ptr, loop, set())
        if affine is None:
            return None
        return SymbolicStream(
            access=access,
            base=affine.base,
            offset=affine.offset,
            stride=affine.stride,
            elem_size=elem,
            exact=affine.exact and affine.base is not None,
            trips=trips,
        )

    @staticmethod
    def _access_size(access: Instruction) -> int:
        ty = access.type if isinstance(access, Load) else access.value.type
        size = ty.size_bytes()
        return size if size > 0 else 8

    def _in_loop(self, value: Value, loop: Loop) -> bool:
        return (
            isinstance(value, Instruction)
            and value.parent is not None
            and value.parent in loop.blocks
        )

    def _resolve(self, value: Value, loop: Loop, seen: set) -> Optional[_Affine]:
        """Affine form of a pointer-ish ``value`` relative to ``loop``."""
        if value in seen:
            return None
        seen.add(value)
        if isinstance(value, Constant):
            return _Affine(base=None, offset=int(value.value), stride=0, exact=True)
        if not self._in_loop(value, loop):
            # Loop-invariant: this is the stream's base object.
            return _Affine(base=value, offset=0, stride=0, exact=True)
        # In-loop instruction: peel one def-use layer.
        if isinstance(value, Gep):
            parent = self._resolve(value.base, loop, seen)
            if parent is None:
                return None
            return self._add_index(parent, value.index, value.elem_size, loop)
        if isinstance(value, Call) and value.callee in TRANSPARENT_DEREFS:
            if value.callee in CHASE_DEREFS:
                return None
            return self._resolve(value.args[0], loop, seen)
        if isinstance(value, Phi):
            # Pointer IVs step in bytes; an integer IV reached in address
            # context (through a ptrtoint round trip) also steps in bytes.
            iv = self.induction.iv_for_value(loop, value)
            if iv is not None:
                start = self._resolve(iv.start, loop, seen)
                if start is None:
                    return None
                return _Affine(
                    base=start.base,
                    offset=start.offset,
                    stride=start.stride + iv.step,
                    exact=start.exact,
                )
            return None
        if isinstance(value, (PtrToInt, IntToPtr)):
            return self._resolve(value.operands[0], loop, seen)
        if isinstance(value, BinOp) and value.opcode in ("add", "sub"):
            return self._resolve_binop(value, loop, seen)
        # Everything else in-loop (loads, selects, hashes, calls) is opaque.
        return None

    def _add_index(
        self, parent: _Affine, index: Value, elem_size: int, loop: Loop
    ) -> Optional[_Affine]:
        """Fold ``gep(parent, index, elem_size)`` into the affine form."""
        if isinstance(index, Constant):
            return _Affine(
                base=parent.base,
                offset=parent.offset + int(index.value) * elem_size,
                stride=parent.stride,
                exact=parent.exact,
            )
        iv = self._index_iv(index, loop)
        if iv is not None:
            iv_var, shift = iv
            offset = parent.offset + shift * iv_var.step * elem_size
            exact = parent.exact
            if isinstance(iv_var.start, Constant):
                offset += int(iv_var.start.value) * elem_size
            else:
                exact = False
            return _Affine(
                base=parent.base,
                offset=offset,
                stride=parent.stride + iv_var.step * elem_size,
                exact=exact,
            )
        if not self._in_loop(index, loop):
            # Loop-invariant but unknown index: stride survives, the
            # start point does not (a *partial* stream).
            return _Affine(
                base=parent.base,
                offset=parent.offset,
                stride=parent.stride,
                exact=False,
            )
        return None

    def _index_iv(self, index: Value, loop: Loop):
        """(iv, shift) when ``index`` is an IV phi (shift 0) or its
        update instruction (shift 1: one step ahead of the phi)."""
        iv = self.induction.iv_for_value(loop, index)
        if iv is not None and not iv.is_pointer:
            return iv, 0
        for candidate in self.induction.ivs(loop):
            if candidate.update is index and not candidate.is_pointer:
                return candidate, 1
        return None

    def _resolve_binop(self, value: BinOp, loop: Loop, seen: set) -> Optional[_Affine]:
        """Constant add/sub folded through a ptrtoint round trip."""
        lhs, rhs = value.lhs, value.rhs
        if isinstance(rhs, Constant):
            parent = self._resolve(lhs, loop, seen)
            if parent is None:
                return None
            delta = int(rhs.value) if value.opcode == "add" else -int(rhs.value)
            return _Affine(parent.base, parent.offset + delta, parent.stride, parent.exact)
        if isinstance(lhs, Constant) and value.opcode == "add":
            parent = self._resolve(rhs, loop, seen)
            if parent is None:
                return None
            return _Affine(
                parent.base, parent.offset + int(lhs.value), parent.stride, parent.exact
            )
        return None
