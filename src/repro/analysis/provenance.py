"""Pointer provenance: which allocations can a pointer refer to?

TrackFM's guard-check analysis must skip accesses to stack and global
objects and guard everything that may be heap (§3.1: "searches for all
LLVM IR-level load and store instructions that correspond to heap
allocations").  The paper leans on NOELLE's PDG and alias analyses; we
implement a flow-insensitive provenance lattice:

    STACK | GLOBAL | HEAP | UNKNOWN

computed as a fixed point over def-use chains.  ``gep``, ``select``,
``phi`` and ``inttoptr(ptrtoint(p) op k)`` propagate provenance; a
pointer that may be heap (or is unknown — e.g. loaded from memory or a
function argument) must be guarded, which is exactly the conservative
direction: a missed STACK classification costs a custody check, never
correctness.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Gep,
    Instruction,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Select,
    Store,
)
from repro.ir.values import Argument, Constant, Value

#: Allocation entry points whose results are heap pointers.  After the
#: libc transformation pass these become ``tfm_*`` calls, which are also
#: heap by construction.
HEAP_ALLOC_FUNCTIONS = frozenset(
    {
        "malloc",
        "calloc",
        "realloc",
        "tfm_malloc",
        "tfm_calloc",
        "tfm_realloc",
        "aifm_alloc",
    }
)


class Provenance(enum.Flag):
    """May-point-to classes; a value can carry several."""

    NONE = 0
    STACK = enum.auto()
    GLOBAL = enum.auto()
    HEAP = enum.auto()
    UNKNOWN = enum.auto()

    def may_be_heap(self) -> bool:
        return bool(self & (Provenance.HEAP | Provenance.UNKNOWN))

    def definitely_local_only(self) -> bool:
        """True when the pointer can never be a TrackFM pointer."""
        return not self.may_be_heap() and self != Provenance.NONE


class ProvenanceAnalysis:
    """Fixed-point provenance over one function.

    ``summaries`` optionally maps function names to the provenance of
    their returned pointers (see :func:`return_provenance_summaries`):
    with it, a call result is classified by what the callee actually
    returns instead of falling to UNKNOWN.  The guard pipeline runs
    without summaries (per-function, maximally conservative); the
    whole-program auditor passes them in.
    """

    def __init__(
        self,
        func: Function,
        summaries: Optional[Mapping[str, Provenance]] = None,
    ) -> None:
        self.function = func
        self.summaries: Mapping[str, Provenance] = summaries or {}
        self._prov: Dict[Value, Provenance] = {}
        self._compute()

    def of(self, value: Value) -> Provenance:
        """Provenance of ``value``; UNKNOWN when nothing better is known."""
        return self._prov.get(value, Provenance.UNKNOWN)

    def must_guard(self, access: Instruction) -> bool:
        """Should a load/store be guarded? (May-be-heap pointers only.)"""
        if isinstance(access, Load):
            ptr = access.pointer
        elif isinstance(access, Store):
            ptr = access.pointer
        else:
            return False
        return self.of(ptr).may_be_heap()

    # -- fixed point ----------------------------------------------------

    def _seed(self) -> None:
        for arg in self.function.args:
            if arg.type.is_pointer():
                # Escaped pointers: could be anything the caller made.
                self._prov[arg] = Provenance.UNKNOWN
        for inst in self.function.instructions():
            if isinstance(inst, Alloca):
                self._prov[inst] = Provenance.STACK
            elif isinstance(inst, Call):
                if inst.callee in HEAP_ALLOC_FUNCTIONS:
                    self._prov[inst] = Provenance.HEAP
                elif inst.callee.startswith("global_addr."):
                    self._prov[inst] = Provenance.GLOBAL
                elif inst.type.is_pointer():
                    summary = self.summaries.get(inst.callee)
                    if summary is not None and summary != Provenance.NONE:
                        self._prov[inst] = summary
                    else:
                        self._prov[inst] = Provenance.UNKNOWN
            elif isinstance(inst, Load) and inst.type.is_pointer():
                # A pointer loaded from memory: unknown origin.
                self._prov[inst] = Provenance.UNKNOWN
            elif isinstance(inst, Constant):  # pragma: no cover - not an inst
                pass

    def _transfer(self, inst: Instruction) -> Provenance:
        if isinstance(inst, Gep):
            return self.of(inst.base)
        if isinstance(inst, Select):
            _, a, b = inst.operands
            return self.of(a) | self.of(b)
        if isinstance(inst, Phi):
            prov = Provenance.NONE
            for value, _ in inst.incoming:
                prov |= self._value_prov(value)
            return prov
        if isinstance(inst, PtrToInt):
            return self.of(inst.operands[0])
        if isinstance(inst, IntToPtr):
            return self._int_origin(inst.operands[0])
        return self._prov.get(inst, Provenance.NONE)

    def _value_prov(self, value: Value) -> Provenance:
        if isinstance(value, Constant):
            # Null / literal addresses are not remotable.
            return Provenance.GLOBAL
        return self.of(value)

    def _int_origin(self, value: Value) -> Provenance:
        """Trace integer math back to a ptrtoint, preserving provenance.

        This is the §3.2 property: offset arithmetic on a TrackFM
        pointer cast to an integer keeps the non-canonical bits, so the
        provenance (and hence the guard) survives the round trip.
        """
        seen: Set[Value] = set()
        work = [value]
        prov = Provenance.NONE
        while work:
            v = work.pop()
            if v in seen:
                continue
            seen.add(v)
            if isinstance(v, PtrToInt):
                prov |= self.of(v.operands[0])
            elif isinstance(v, BinOp):
                work.extend(v.operands)
            elif isinstance(v, Phi):
                work.extend(val for val, _ in v.incoming)
            elif isinstance(v, Constant):
                continue
            else:
                prov |= Provenance.UNKNOWN
        return prov if prov != Provenance.NONE else Provenance.UNKNOWN

    def _compute(self) -> None:
        if self.function.is_declaration:
            return
        self._seed()
        changed = True
        # Flow-insensitive Kildall iteration to a fixed point.
        while changed:
            changed = False
            for inst in self.function.instructions():
                if not (inst.type.is_pointer() or isinstance(inst, (PtrToInt, IntToPtr))):
                    continue
                if isinstance(inst, (Alloca,)):
                    continue
                new = self._transfer(inst)
                if new == Provenance.NONE:
                    continue
                old = self._prov.get(inst, Provenance.NONE)
                merged = old | new
                if merged != old:
                    self._prov[inst] = merged
                    changed = True


def return_provenance_summaries(module) -> Dict[str, Provenance]:
    """Interprocedural return-value provenance, to a fixed point.

    For every *defined* function returning a pointer, join the
    provenance of all ``ret`` operands — feeding previous iterations'
    summaries back in so chains of helpers converge (a wrapper around a
    wrapper around ``malloc`` is still HEAP).  Declarations (externals)
    are absent from the result, so callers keep treating them as
    UNKNOWN.  The join only ever grows, so iteration terminates at the
    lattice height.
    """
    from repro.ir.instructions import Ret

    summaries: Dict[str, Provenance] = {}
    candidates = [
        func
        for func in module.defined_functions()
        if func.ret_type.is_pointer()
    ]
    changed = True
    while changed:
        changed = False
        for func in candidates:
            analysis = ProvenanceAnalysis(func, summaries=summaries)
            prov = Provenance.NONE
            for inst in func.instructions():
                if isinstance(inst, Ret) and inst.value is not None:
                    prov |= analysis._value_prov(inst.value)
            if prov == Provenance.NONE:
                prov = Provenance.UNKNOWN
            if summaries.get(func.name) != prov:
                summaries[func.name] = prov
                changed = True
    return summaries
