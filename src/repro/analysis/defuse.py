"""Def-use chains: the data-dependence half of a PDG-lite."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Value


class DefUse:
    """Map each value to the instructions that use it."""

    def __init__(self, func: Function) -> None:
        self.function = func
        self._users: Dict[Value, List[Instruction]] = {}
        for inst in func.instructions():
            for op in inst.operands:
                self._users.setdefault(op, []).append(inst)

    def users(self, value: Value) -> List[Instruction]:
        """Instructions that use ``value`` as an operand."""
        return list(self._users.get(value, []))

    def has_users(self, value: Value) -> bool:
        return bool(self._users.get(value))

    def transitive_users(self, value: Value) -> Set[Instruction]:
        """All instructions reachable from ``value`` along def-use edges."""
        seen: Set[Instruction] = set()
        work: List[Value] = [value]
        while work:
            v = work.pop()
            for user in self._users.get(v, []):
                if user not in seen:
                    seen.add(user)
                    work.append(user)
        return seen

    def is_dead(self, inst: Instruction) -> bool:
        """A non-void, side-effect-free instruction with no users is dead."""
        if inst.type.is_void():
            return False
        if inst.opcode in ("call",):
            return False  # calls may have side effects
        return not self.has_users(inst)
