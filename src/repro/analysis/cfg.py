"""Control-flow graph queries over a function's basic blocks."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import AnalysisError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


class CFG:
    """Predecessor/successor maps plus reachability for one function."""

    def __init__(self, func: Function) -> None:
        if func.is_declaration:
            raise AnalysisError(f"@{func.name} is a declaration; no CFG")
        self.function = func
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in func.blocks
        }
        for block in func.blocks:
            succs = list(block.successors())
            self.successors[block] = succs
            for s in succs:
                self.predecessors[s].append(block)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry

    def reachable(self) -> Set[BasicBlock]:
        """Blocks reachable from the entry."""
        seen: Set[BasicBlock] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            stack.extend(self.successors[block])
        return seen

    def preds(self, block: BasicBlock) -> List[BasicBlock]:
        return self.predecessors[block]

    def succs(self, block: BasicBlock) -> List[BasicBlock]:
        return self.successors[block]


def reverse_postorder(cfg: CFG) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (iterative DFS)."""
    postorder: List[BasicBlock] = []
    visited: Set[BasicBlock] = set()
    # Iterative DFS with an explicit state stack so deep CFGs don't
    # blow Python's recursion limit.
    stack: List[tuple] = [(cfg.entry, iter(cfg.succs(cfg.entry)))]
    visited.add(cfg.entry)
    while stack:
        block, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(cfg.succs(succ))))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder
