"""Loop-coverage profiling (the NOELLE profiling-engine stand-in).

§3.4: "we leverage NOELLE's profiling engine to collect loop code
coverage statistics.  With the profiling pass in TrackFM we filter out
loops with low object density transparently."  We profile by executing
the *untransformed* module in the IR interpreter with a basic-block hook
and aggregating block execution counts into per-loop trip counts and
instruction coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.loops import Loop, LoopInfo, find_loops
from repro.ir.function import Function
from repro.ir.module import Module


@dataclass
class LoopProfile:
    """Profile numbers for one loop."""

    function: str
    header: str
    #: Times the header block executed (loop iterations + final test).
    header_executions: int
    #: Times the loop was entered from outside.
    entries: int
    #: Dynamic instructions executed inside the loop's blocks.
    dynamic_instructions: int
    #: Fraction of the whole run's dynamic instructions spent in the loop.
    coverage: float

    @property
    def average_trip_count(self) -> float:
        if self.entries == 0:
            return 0.0
        return self.header_executions / self.entries


@dataclass
class ProfileData:
    """Block execution counts plus derived loop profiles for a module."""

    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    total_dynamic_instructions: int = 0
    loop_profiles: List[LoopProfile] = field(default_factory=list)

    def count(self, func_name: str, block_name: str) -> int:
        return self.block_counts.get((func_name, block_name), 0)

    def profile_for(self, func_name: str, header_name: str) -> Optional[LoopProfile]:
        for lp in self.loop_profiles:
            if lp.function == func_name and lp.header == header_name:
                return lp
        return None

    def hot_loops(self, min_coverage: float = 0.01) -> List[LoopProfile]:
        """Loops above a coverage threshold, hottest first."""
        hot = [lp for lp in self.loop_profiles if lp.coverage >= min_coverage]
        return sorted(hot, key=lambda lp: lp.coverage, reverse=True)


def profile_module(
    module: Module,
    entry: str = "main",
    args: Sequence[int] = (),
    max_steps: int = 50_000_000,
) -> ProfileData:
    """Execute ``entry`` and collect block counts + loop profiles.

    The interpreter import is local to avoid an analysis<->sim cycle.
    """
    from repro.sim.interpreter import Interpreter

    data = ProfileData()

    def on_block(func: Function, block_name: str) -> None:
        key = (func.name, block_name)
        data.block_counts[key] = data.block_counts.get(key, 0) + 1

    interp = Interpreter(module, block_hook=on_block, max_steps=max_steps)
    interp.run(entry, list(args))
    data.total_dynamic_instructions = interp.steps

    for func in module.defined_functions():
        loops = find_loops(func)
        from repro.analysis.cfg import CFG

        cfg = CFG(func)
        for loop in loops:
            header_exec = data.count(func.name, loop.header.name)
            if header_exec == 0:
                continue
            # Entries = header executions arriving from outside the loop.
            latch_exec = sum(
                data.count(func.name, latch.name) for latch in loop.latches
            )
            entries = max(header_exec - latch_exec, 0)
            dyn = sum(
                data.count(func.name, b.name) * len(b.instructions)
                for b in loop.blocks
            )
            total = max(data.total_dynamic_instructions, 1)
            data.loop_profiles.append(
                LoopProfile(
                    function=func.name,
                    header=loop.header.name,
                    header_executions=header_exec,
                    entries=max(entries, 1) if header_exec else 0,
                    dynamic_instructions=dyn,
                    coverage=dyn / total,
                )
            )
    return data
