"""Natural-loop detection from dominance back edges.

A back edge is an edge ``latch -> header`` where ``header`` dominates
``latch``; the natural loop is everything that can reach the latch
without passing through the header.  Loops with the same header are
merged (as LLVM does).  Nesting is recovered by block containment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


class Loop:
    """One natural loop: header, member blocks, latches, exits."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        """Nesting depth; top-level loops have depth 1."""
        d = 1
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def contains_block(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_edges(self, cfg: CFG) -> List[tuple]:
        """(inside_block, outside_block) pairs leaving the loop."""
        edges = []
        for block in self.blocks:
            for succ in cfg.succs(block):
                if succ not in self.blocks:
                    edges.append((block, succ))
        return edges

    def exit_blocks(self, cfg: CFG) -> List[BasicBlock]:
        """Outside blocks targeted by exit edges (deduplicated)."""
        seen: List[BasicBlock] = []
        for _, outside in self.exit_edges(cfg):
            if outside not in seen:
                seen.append(outside)
        return seen

    def preheader(self, cfg: CFG) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in cfg.preds(self.header) if p not in self.blocks]
        if len(outside) == 1:
            return outside[0]
        return None

    def instructions(self):
        """All instructions inside the loop, block layout order."""
        func = self.header.parent
        assert func is not None
        for block in func.blocks:
            if block in self.blocks:
                for inst in block.instructions:
                    yield inst

    def __repr__(self) -> str:
        return f"<Loop header=%{self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class LoopInfo:
    """All loops of one function, with nesting links."""

    def __init__(self, loops: List[Loop]) -> None:
        self.loops = loops

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def innermost(self) -> List[Loop]:
        return [l for l in self.loops if not l.children]

    def loop_of(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop.blocks:
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)


def _collect_loop(header: BasicBlock, latch: BasicBlock, cfg: CFG) -> Set[BasicBlock]:
    """Blocks of the natural loop of edge ``latch -> header``."""
    body: Set[BasicBlock] = {header, latch}
    stack = [latch]
    while stack:
        block = stack.pop()
        if block is header:
            # Never walk past the header (matters for self-loops, where
            # the latch IS the header: its out-of-loop predecessors must
            # not be swallowed into the loop).
            continue
        for pred in cfg.preds(block):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def find_loops(func: Function) -> LoopInfo:
    """Detect natural loops and recover their nesting structure."""
    cfg = CFG(func)
    dom = DominatorTree(cfg)
    reachable = cfg.reachable()

    by_header: Dict[BasicBlock, Loop] = {}
    for block in func.blocks:
        if block not in reachable:
            continue
        for succ in cfg.succs(block):
            if succ in reachable and dom.dominates(succ, block):
                loop = by_header.get(succ)
                if loop is None:
                    loop = Loop(succ)
                    by_header[succ] = loop
                loop.latches.append(block)
                loop.blocks |= _collect_loop(succ, block, cfg)

    loops = list(by_header.values())
    # Nesting: the parent of L is the smallest loop strictly containing it.
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if loop.blocks < other.blocks or (
                loop.blocks <= other.blocks and loop.header is not other.header
            ):
                if loop.header in other.blocks and loop.blocks <= other.blocks:
                    if best is None or len(other.blocks) < len(best.blocks):
                        best = other
        loop.parent = best
    for loop in loops:
        if loop.parent is not None:
            loop.parent.children.append(loop)
    return LoopInfo(loops)
