"""Induction-variable analysis in NOELLE's dependence-pattern style.

NOELLE detects induction variables "as patterns in the dependence
graph" rather than by syntactic variable matching (§3.4, footnote 6),
which catches both integer IVs and *pointer* IVs (a pointer phi stepped
by a constant-stride ``gep``).  Both matter to TrackFM: loop chunking
needs the loop-governing IV and its stride to chunk accesses at object
boundaries, and the prefetch pass needs the access stride.

We implement both patterns:

* **integer IV**: ``phi`` in the loop header whose in-loop incoming value
  is ``add(phi, c)`` (or ``sub``), with ``c`` a constant;
* **pointer IV**: ``phi`` of pointer type whose in-loop incoming value is
  ``gep(phi, c, elem)``, stride ``c * elem`` bytes.

The loop-governing IV is the one feeding the loop's exit comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.cfg import CFG
from repro.analysis.loops import Loop, LoopInfo
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import BinOp, CondBr, Gep, ICmp, Phi
from repro.ir.values import Constant, Value


@dataclass
class InductionVariable:
    """One detected induction variable."""

    phi: Phi
    loop: Loop
    start: Value
    #: Stride per iteration: IR units for integer IVs, bytes for pointer IVs.
    step: int
    is_pointer: bool
    #: The instruction computing the next value (add/sub/gep).
    update: Value
    #: True when this IV feeds the loop's exit condition.
    governs_loop: bool = False
    #: Trip-count bound when the exit compare is against a constant.
    trip_count: Optional[int] = None

    def __repr__(self) -> str:
        kind = "ptr" if self.is_pointer else "int"
        gov = " governing" if self.governs_loop else ""
        return f"<IV %{self.phi.name} {kind} step={self.step}{gov}>"


class InductionAnalysis:
    """Detect IVs for every loop of a function."""

    def __init__(self, func: Function, loop_info: LoopInfo) -> None:
        self.function = func
        self.loop_info = loop_info
        self.cfg = CFG(func)
        self._by_loop: Dict[Loop, List[InductionVariable]] = {}
        for loop in loop_info:
            self._by_loop[loop] = self._analyze_loop(loop)

    def ivs(self, loop: Loop) -> List[InductionVariable]:
        """All induction variables of ``loop``."""
        return list(self._by_loop.get(loop, []))

    def governing_iv(self, loop: Loop) -> Optional[InductionVariable]:
        """The loop-governing IV, if one was detected."""
        for iv in self._by_loop.get(loop, []):
            if iv.governs_loop:
                return iv
        return None

    def iv_for_value(self, loop: Loop, value: Value) -> Optional[InductionVariable]:
        """The IV whose phi is ``value``, if any."""
        for iv in self._by_loop.get(loop, []):
            if iv.phi is value:
                return iv
        return None

    # -- detection ----------------------------------------------------------

    def _analyze_loop(self, loop: Loop) -> List[InductionVariable]:
        ivs: List[InductionVariable] = []
        header = loop.header
        for phi in header.phis():
            iv = self._match_phi(phi, loop)
            if iv is not None:
                ivs.append(iv)
        self._mark_governing(loop, ivs)
        return ivs

    def _match_phi(self, phi: Phi, loop: Loop) -> Optional[InductionVariable]:
        if len(phi.incoming) != 2:
            return None
        inside: Optional[tuple] = None
        outside: Optional[tuple] = None
        for value, pred in phi.incoming:
            if pred in loop.blocks:
                inside = (value, pred)
            else:
                outside = (value, pred)
        if inside is None or outside is None:
            return None
        update, _ = inside
        start, _ = outside

        if isinstance(update, BinOp) and update.opcode in ("add", "sub"):
            step = self._const_step(update, phi)
            if step is None:
                return None
            if update.opcode == "sub":
                step = -step
            return InductionVariable(
                phi=phi, loop=loop, start=start, step=step,
                is_pointer=False, update=update,
            )
        if isinstance(update, Gep) and update.base is phi:
            if isinstance(update.index, Constant):
                byte_step = update.index.value * update.elem_size
                return InductionVariable(
                    phi=phi, loop=loop, start=start, step=byte_step,
                    is_pointer=True, update=update,
                )
        return None

    @staticmethod
    def _const_step(update: BinOp, phi: Phi) -> Optional[int]:
        """Constant stride of ``add``/``sub`` updates, either operand
        order for ``add`` (``c - phi`` is not an IV, so ``sub`` only
        matches the phi on the left).  Negative and non-unit constants
        are strides like any other."""
        a, b = update.lhs, update.rhs
        if a is phi and isinstance(b, Constant):
            return int(b.value)
        if b is phi and isinstance(a, Constant) and update.opcode == "add":
            return int(a.value)
        return None

    def _mark_governing(self, loop: Loop, ivs: List[InductionVariable]) -> None:
        """Find the IV used by the exit branch compare; derive trip count."""
        if not ivs:
            return
        exit_cmps: List[ICmp] = []
        for block in loop.blocks:
            term = block.terminator
            if not isinstance(term, CondBr):
                continue
            leaves = any(s not in loop.blocks for s in term.successors())
            if leaves and isinstance(term.condition, ICmp):
                exit_cmps.append(term.condition)
        for cmp_inst in exit_cmps:
            for iv in ivs:
                lhs, rhs = cmp_inst.operands
                uses_iv = lhs is iv.phi or rhs is iv.phi or (
                    lhs is iv.update or rhs is iv.update
                )
                if not uses_iv:
                    continue
                iv.governs_loop = True
                iv_on_left = lhs is iv.phi or lhs is iv.update
                bound = rhs if iv_on_left else lhs
                pred = cmp_inst.pred
                if not iv_on_left:
                    pred = _SWAPPED_PREDS.get(pred, pred)
                on_update = (lhs is iv.update) or (rhs is iv.update)
                iv.trip_count = self._trip_count(iv, bound, pred, on_update)
                return

    @staticmethod
    def _trip_count(
        iv: InductionVariable,
        bound: Value,
        pred: str = "slt",
        on_update: bool = False,
    ) -> Optional[int]:
        """Iterations executed before the exit compare fails.

        Exact for the signed monotone predicates (``slt``/``sle``/
        ``sgt``/``sge``) and for ``ne`` when the stride divides the
        distance; ``eq`` and the unsigned predicates stay unknown.
        ``on_update`` means the compare tests ``phi + step`` (a
        rotated/do-while loop): the tested sequence starts one step
        ahead and the body has already run once when it is first tested.
        """
        if not isinstance(bound, Constant) or not isinstance(iv.start, Constant):
            return None
        step = iv.step
        if step == 0:
            return None
        start = int(iv.start.value)
        target = int(bound.value)
        if on_update:
            # First tested value is start + step; one trip is already done.
            base = InductionAnalysis._trip_count_from(
                start + step, step, target, pred
            )
            return None if base is None else base + 1
        return InductionAnalysis._trip_count_from(start, step, target, pred)

    @staticmethod
    def _trip_count_from(
        start: int, step: int, bound: int, pred: str
    ) -> Optional[int]:
        """Count of k >= 0 with ``start + k*step <pred> bound``."""
        if pred == "ne":
            distance = bound - start
            if distance == 0:
                return 0
            if distance % step != 0 or distance * step < 0:
                return None  # never hits the bound exactly: no static exit
            return distance // step
        # Normalize <=/>= into strict compares against a shifted bound.
        if pred == "sle":
            pred, bound = "slt", bound + 1
        elif pred == "sge":
            pred, bound = "sgt", bound - 1
        if pred == "slt":
            if start >= bound:
                return 0
            if step < 0:
                return None  # counts away from the bound: no static exit
            return -(-(bound - start) // step)
        if pred == "sgt":
            if start <= bound:
                return 0
            if step > 0:
                return None
            return -(-(start - bound) // -step)
        return None  # eq / unsigned predicates: not a monotone exit


#: Predicate seen by the IV when the compare has it on the right.
_SWAPPED_PREDS = {
    "slt": "sgt",
    "sle": "sge",
    "sgt": "slt",
    "sge": "sle",
    "ult": "ugt",
    "ule": "uge",
    "ugt": "ult",
    "uge": "ule",
}
