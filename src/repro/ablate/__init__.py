"""Automated ablation + scenario-matrix engine (ROADMAP item 4).

The repo has grown many interacting mechanisms — decode cache,
programmed prefetch, stride prefetcher, chunked remotable transforms,
the integrity ladder, retry/degrade resilience, the hybrid page-tier
fallback, serving tenant quotas — and this package answers "which ones
earn their cost?" systematically instead of anecdotally:

* :mod:`repro.ablate.registry` — each mechanism as a named knob with an
  apply-function over compiler/runtime construction;
* :mod:`repro.ablate.matrix`   — the scenario matrix (workloads ×
  runtimes × fault/integrity configs), expanded into baseline +
  leave-one-out cells with seeded determinism;
* :mod:`repro.ablate.runner`   — runs one cell under one knob vector;
* :mod:`repro.ablate.score`    — per-component importance from metric
  deltas against the baseline cell;
* :mod:`repro.ablate.report`   — the ranked report (JSON + markdown)
  and the exact ``--record/--check`` baseline gate;
* :mod:`repro.ablate.legacy`   — the nine original hand-rolled
  ablation experiments folded in as named checks.

Everything is a pure function of seeds (no wall-clock), so the full
JSON report is bit-identical across runs — which is what lets CI gate
it against ``benchmarks/baselines/ABLATION_quick.json`` with ``==``.
See ``docs/ablations.md``.
"""

from repro.ablate.registry import COMPONENTS, Component, Knobs
from repro.ablate.matrix import CellSpec, applicable_components, generate_matrix
from repro.ablate.runner import CellRun, run_cell
from repro.ablate.score import score_pair, rank_components
from repro.ablate.report import build_report, render_markdown, run_matrix
from repro.ablate.legacy import LEGACY_ABLATIONS, LegacyAblation, run_legacy

__all__ = [
    "COMPONENTS",
    "Component",
    "Knobs",
    "CellSpec",
    "applicable_components",
    "generate_matrix",
    "CellRun",
    "run_cell",
    "score_pair",
    "rank_components",
    "build_report",
    "render_markdown",
    "run_matrix",
    "LEGACY_ABLATIONS",
    "LegacyAblation",
    "run_legacy",
]
