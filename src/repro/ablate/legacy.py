"""The nine hand-written ablation experiments, folded into the harness.

These predate the matrix engine: each wraps one experiment from
:mod:`repro.bench.ablations` together with the acceptance check its
benchmark test used to hand-roll inline.  ``benchmarks/bench_ablations.py``
is now a thin parametrized wrapper over :data:`LEGACY_ABLATIONS`, and
``python -m repro.ablate --legacy`` runs the same checks standalone.

The checks are kept byte-for-byte equivalent to the original inline
assertions — they are regression anchors, not scoring inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench import ablations as _exp

ExperimentFn = Callable[[], object]
CheckFn = Callable[[object], None]


@dataclass(frozen=True)
class LegacyAblation:
    """One folded experiment: a zero-arg runner plus its acceptance check."""

    name: str
    experiment: ExperimentFn
    check: CheckFn


def _check_state_table(result) -> None:
    with_table, without = result.get("total cycles").values
    assert without > 1.3 * with_table


def _check_prefetch_depth(result) -> None:
    costs = result.get("fetch cycles").values
    assert costs == sorted(costs, reverse=True)
    assert costs[0] / costs[-1] > 5  # deep pipelining pays


def _check_evacuator_policy(result) -> None:
    clock = result.get("CLOCK (hot bits)").values
    lru = result.get("LRU").values
    # Hotness tracking never loses to plain LRU on zipf traffic.
    assert all(c <= l + 1e-9 for c, l in zip(clock, lru))


def _check_chunk_setup(result) -> None:
    crossovers = result.get("d*").values
    assert crossovers == sorted(crossovers)
    default_idx = result.x_values.index(12700)
    assert 650 < crossovers[default_idx] < 800


def _check_heap_pruning(result) -> None:
    base, pruned = result.get("cycles").values
    base_g, pruned_g = result.get("guards").values
    assert pruned < base
    assert pruned_g < base_g


def _check_chase_prefetch(result) -> None:
    plain, chased = result.get("cycles").values
    plain_slow, chased_slow = result.get("slow guards").values
    assert chased < plain
    assert chased_slow < plain_slow


def _check_offload(result) -> None:
    fetch, offload = result.get("cycles").values
    fetch_bytes, offload_bytes = result.get("bytes fetched").values
    assert offload < fetch / 3
    assert offload_bytes < fetch_bytes / 100


def _check_multisize(result) -> None:
    small, big, multi = result.get("cycles").values
    assert multi < small and multi < big
    small_bytes, big_bytes, multi_bytes = result.get("bytes fetched").values
    assert multi_bytes <= small_bytes < big_bytes


def _check_hybrid_memcached(result) -> None:
    hyb = result.get("Hybrid").values
    fsw = result.get("Fastswap").values
    tfm = result.get("TrackFM").values
    assert all(h > f for h, f in zip(hyb, fsw))
    assert all(h > 0.9 * t for h, t in zip(hyb, tfm))


LEGACY_ABLATIONS = (
    LegacyAblation("state_table", _exp.ablation_state_table, _check_state_table),
    LegacyAblation(
        "prefetch_depth", _exp.ablation_prefetch_depth, _check_prefetch_depth
    ),
    LegacyAblation(
        "evacuator_policy", _exp.ablation_evacuator_policy, _check_evacuator_policy
    ),
    LegacyAblation("chunk_setup", _exp.ablation_chunk_setup, _check_chunk_setup),
    LegacyAblation("heap_pruning", _exp.ablation_heap_pruning, _check_heap_pruning),
    LegacyAblation(
        "chase_prefetch", _exp.ablation_chase_prefetch, _check_chase_prefetch
    ),
    LegacyAblation("offload", _exp.ablation_offload, _check_offload),
    LegacyAblation("multisize", _exp.ablation_multisize, _check_multisize),
    LegacyAblation(
        "hybrid_memcached", _exp.ablation_hybrid_memcached, _check_hybrid_memcached
    ),
)

LEGACY_NAMES = tuple(spec.name for spec in LEGACY_ABLATIONS)

_BY_NAME = {spec.name: spec for spec in LEGACY_ABLATIONS}


def legacy_ablation(name: str) -> LegacyAblation:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown legacy ablation {name!r}; known: {', '.join(LEGACY_NAMES)}"
        ) from None


def run_legacy(name: str):
    """Run one folded experiment and apply its check; returns the result."""
    spec = legacy_ablation(name)
    result = spec.experiment()
    spec.check(result)
    return result
