"""Importance scoring: what does each component's removal cost?

Per ``(cell, component)`` pair the scorer compares the leave-one-out
run against the cell's all-on baseline and folds the relative metric
deltas into one signed score:

* positive — removing the component made things worse (it *helps*);
* negative — removing it made things better (it *costs* more than it
  earns in that cell);
* ``CRITICAL_SCORE`` — the ablated run failed outright (an error the
  component was absorbing), the strongest evidence there is.

Deltas are relative (``(ablated - base) / base``), so a cell with
millions of cycles and a cell with thousands weigh the same; each
metric carries a fixed weight (cycles dominate; fetch/byte counts and
the deterministic host-dispatch proxy contribute; serving cells add
p99).  Protective components (integrity) barely move cycles, so the
score adds a *protection* term: detections lost per baseline fetch,
plus a flat penalty when the ablated run computes a different value
than the baseline (silent corruption reached the program).

Everything is plain float arithmetic over deterministic inputs —
no clocks, no randomness — so scores are bit-stable across runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.ablate.runner import CellRun

#: Relative-delta weights (the report documents these).
WEIGHTS: Dict[str, float] = {
    "cycles": 1.0,
    "remote_fetches": 0.2,
    "bytes_fetched": 0.2,
    "host_units": 0.25,
    "p99": 0.5,
}

#: Score assigned when the ablated run failed outright.
CRITICAL_SCORE = 10.0

#: Weight of the protection term (lost detections + value divergence).
PROTECTION_WEIGHT = 5.0

#: |importance| below this is noise -> "neutral".
NEUTRAL_BAND = 0.02


def _rel(base: float, ablated: float) -> float:
    if base == 0.0:
        return 0.0
    return (ablated - base) / base


def score_pair(base: CellRun, ablated: CellRun) -> Dict[str, object]:
    """Score one leave-one-out run against its baseline cell."""
    if not ablated.ok:
        return {
            "score": CRITICAL_SCORE,
            "critical": True,
            "deltas": {},
            "error": ablated.error,
        }
    deltas: Dict[str, float] = {
        "cycles": _rel(base.cycles, ablated.cycles),
        "remote_fetches": _rel(
            base.metric("remote_fetches"), ablated.metric("remote_fetches")
        ),
        "bytes_fetched": _rel(
            base.metric("bytes_fetched"), ablated.metric("bytes_fetched")
        ),
    }
    if base.host_units or ablated.host_units:
        deltas["host_units"] = _rel(base.host_units, ablated.host_units)
    if base.latency:
        deltas["p99"] = _rel(
            base.latency.get("p99", 0.0), ablated.latency.get("p99", 0.0)
        )
    score = sum(WEIGHTS[name] * value for name, value in deltas.items())

    detections_lost = max(
        0.0, base.metric("corruptions_detected") - ablated.metric("corruptions_detected")
    )
    value_diverged = (
        base.value is not None
        and ablated.value is not None
        and base.value != ablated.value
    )
    protection = 0.0
    if detections_lost:
        protection += (
            PROTECTION_WEIGHT * detections_lost / max(1.0, base.metric("remote_fetches"))
        )
    if value_diverged:
        protection += PROTECTION_WEIGHT
    out: Dict[str, object] = {
        "score": score + protection,
        "critical": False,
        "deltas": deltas,
    }
    if protection:
        out["protection"] = protection
    if value_diverged:
        out["value_diverged"] = True
    return out


def verdict_of(importance: float, any_critical: bool) -> str:
    if any_critical:
        return "critical"
    if importance > NEUTRAL_BAND:
        return "helps"
    if importance < -NEUTRAL_BAND:
        return "harmful"
    return "neutral"


def rank_components(
    per_component: Dict[str, List[Tuple[str, Dict[str, object]]]],
) -> List[Dict[str, object]]:
    """Fold per-cell scores into one ranked row per component.

    ``per_component`` maps component name -> ``[(cell_id, pair_score)]``.
    Importance is the mean cell score; ties break on name so the
    ranking is total and stable.
    """
    rows: List[Dict[str, object]] = []
    for name in sorted(per_component):
        pairs = per_component[name]
        if not pairs:
            continue
        scores = [float(entry["score"]) for _, entry in pairs]  # type: ignore[arg-type]
        importance = sum(scores) / len(scores)
        any_critical = any(entry.get("critical") for _, entry in pairs)
        mean_deltas = _mean_deltas([entry for _, entry in pairs])
        ranked_cells = sorted(
            (
                {"cell": cell_id, "score": float(entry["score"])}  # type: ignore[arg-type]
                for cell_id, entry in pairs
            ),
            key=lambda row: (-row["score"], row["cell"]),
        )
        rows.append(
            {
                "component": name,
                "importance": importance,
                "verdict": verdict_of(importance, any_critical),
                "cells": len(pairs),
                "mean_deltas": mean_deltas,
                "top_cells": ranked_cells[:3],
            }
        )
    rows.sort(
        key=lambda row: (-float(row["importance"]), str(row["component"]))  # type: ignore[arg-type]
    )
    return rows


def _mean_deltas(entries: Sequence[Dict[str, object]]) -> Dict[str, float]:
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for entry in entries:
        for name, value in dict(entry.get("deltas", {})).items():  # type: ignore[call-overload]
            sums[name] = sums.get(name, 0.0) + float(value)
            counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sorted(sums)}
