"""``python -m repro.ablate`` — run the matrix, rank components, gate CI.

Modes::

    python -m repro.ablate                  # full matrix, markdown to stdout
    python -m repro.ablate --quick          # CI-sized matrix (all components)
    python -m repro.ablate --quick --record # (re)write the exact baseline
    python -m repro.ablate --quick --check  # gate against the baseline (CI)
    python -m repro.ablate --list           # show components + cells, no runs
    python -m repro.ablate --legacy         # run the nine folded legacy checks

The report is bit-deterministic (seeded simulation, no wall-clock), so
``--check`` compares the re-measured JSON document to
``benchmarks/baselines/ABLATION_quick.json`` with ``==`` and fails on
any drift, printing the first differing paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.ablate.matrix import applicable_components, generate_matrix
from repro.ablate.registry import COMPONENTS
from repro.ablate.report import (
    DEFAULT_BASELINE_DIR,
    build_report,
    check_baseline,
    record_baseline,
    render_markdown,
    write_artifacts,
)


def _list_text(quick: bool) -> str:
    lines = ["components:"]
    for comp in COMPONENTS:
        lines.append(f"  {comp.name:22s} {comp.title}")
    cells = generate_matrix(quick)
    runs = sum(1 + len(applicable_components(spec)) for spec in cells)
    lines.append("")
    lines.append(f"cells ({'quick' if quick else 'full'} mode, {runs} runs):")
    for spec in cells:
        comps = ", ".join(c.name for c in applicable_components(spec))
        lines.append(f"  {spec.cell_id:28s} [{spec.kind}]  ablates: {comps or '-'}")
    return "\n".join(lines)


def _run_legacy() -> int:
    from repro.ablate.legacy import LEGACY_ABLATIONS, run_legacy

    failed = 0
    for spec in LEGACY_ABLATIONS:
        try:
            run_legacy(spec.name)
        except AssertionError as err:
            failed += 1
            print(f"legacy {spec.name}: FAIL ({err})", file=sys.stderr)
        else:
            print(f"legacy {spec.name}: ok")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ablate",
        description="Automated ablation matrix with a ranked importance report.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized matrix (trackfm+hybrid runtimes; all components)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--record", action="store_true", help="measure and (re)write the baseline"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against the recorded baseline"
    )
    mode.add_argument(
        "--list", action="store_true", help="list components and cells, run nothing"
    )
    mode.add_argument(
        "--legacy", action="store_true", help="run the nine folded legacy ablations"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"baseline directory (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--out-json", type=Path, default=None, help="also write the JSON report here"
    )
    parser.add_argument(
        "--out-md", type=Path, default=None, help="also write the markdown report here"
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_list_text(args.quick))
        return 0
    if args.legacy:
        return _run_legacy()
    if args.record:
        path = record_baseline(args.baseline_dir, args.quick)
        print(f"recorded {path}")
        if args.out_json or args.out_md:
            report = json.loads(path.read_text())
            write_artifacts(report, args.out_json, args.out_md)
        return 0
    if args.check:
        result = check_baseline(args.baseline_dir, args.quick)
        if "report" in result and (args.out_json or args.out_md):
            write_artifacts(result["report"], args.out_json, args.out_md)
        status = result["status"]
        stream = sys.stdout if result["ok"] else sys.stderr
        print(f"ablation baseline: {status}", file=stream)
        if status == "mismatch":
            for diff in result["diff"]:  # type: ignore[union-attr]
                print(
                    f"  {diff['path']}: expected {diff['expected']!r}, "
                    f"got {diff['got']!r}",
                    file=sys.stderr,
                )
        elif status == "missing-baseline":
            print(f"  hint: {result['hint']}", file=sys.stderr)
        return 0 if result["ok"] else 1

    report = build_report(args.quick)
    write_artifacts(report, args.out_json, args.out_md)
    print(render_markdown(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
