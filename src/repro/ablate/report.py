"""Matrix orchestration + the ranked report (JSON and markdown).

:func:`run_matrix` expands the matrix, runs every baseline and
leave-one-out cell, and scores the pairs; :func:`build_report` shapes
that into the canonical JSON document; :func:`render_markdown` is the
human-readable artifact CI uploads.

The JSON report is the baseline-gate unit: floats are rounded to a
fixed precision *once, here* (the arithmetic underneath is exact and
deterministic; rounding just keeps the file diffable), keys are
emitted in sorted order by the writer, and nothing derived from
wall-clock, environment, or filesystem state is included.  Two runs of
the same tree produce byte-identical documents — enforced in CI by
``python -m repro.ablate --quick --check`` against
``benchmarks/baselines/ABLATION_quick.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.ablate.matrix import (
    CellSpec,
    FAULTY_SPEC,
    CORRUPT_FAULT_SPEC,
    CORRUPT_INTEGRITY_SPEC,
    QUICK_RUNTIMES,
    RUNTIMES,
    SCENARIOS,
    WORKLOADS,
    applicable_components,
    generate_matrix,
)
from repro.ablate.registry import BASELINE, COMPONENTS, component
from repro.ablate.runner import CellRun, run_cell
from repro.ablate.score import WEIGHTS, rank_components, score_pair

SCHEMA_VERSION = 1

#: Decimal places kept in the JSON report (exact arithmetic upstream;
#: rounding only keeps the checked-in baseline diffable).
ROUND_DIGITS = 9

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"


def baseline_path(baseline_dir: Path, quick: bool) -> Path:
    name = "ABLATION_quick.json" if quick else "ABLATION_full.json"
    return Path(baseline_dir) / name


def run_matrix(
    quick: bool = False,
) -> List[Tuple[CellSpec, CellRun, Dict[str, Tuple[CellRun, Dict[str, object]]]]]:
    """Run every cell: baseline + one leave-one-out per applicable component.

    Returns ``[(spec, baseline_run, {component: (ablated_run, pair_score)})]``.
    """
    results = []
    for spec in generate_matrix(quick):
        base = run_cell(spec, BASELINE)
        ablations: Dict[str, Tuple[CellRun, Dict[str, object]]] = {}
        for comp in applicable_components(spec):
            ablated = run_cell(spec, BASELINE.off(comp.name))
            ablations[comp.name] = (ablated, score_pair(base, ablated))
        results.append((spec, base, ablations))
    return results


def build_report(quick: bool = False) -> Dict[str, object]:
    """The full canonical report document for one matrix mode."""
    results = run_matrix(quick)
    per_component: Dict[str, List[Tuple[str, Dict[str, object]]]] = {}
    cells: Dict[str, object] = {}
    run_count = 0
    for spec, base, ablations in results:
        run_count += 1 + len(ablations)
        cell_entry: Dict[str, object] = {
            "kind": spec.kind,
            "baseline": base.as_dict(),
            "ablations": {},
        }
        for name, (ablated, pair) in sorted(ablations.items()):
            per_component.setdefault(name, []).append((spec.cell_id, pair))
            cell_entry["ablations"][name] = {  # type: ignore[index]
                **ablated.as_dict(),
                "score": pair["score"],
                "deltas": pair["deltas"],
                **(
                    {"critical": True}
                    if pair.get("critical")
                    else {}
                ),
                **(
                    {"protection": pair["protection"]}
                    if "protection" in pair
                    else {}
                ),
            }
        cells[spec.cell_id] = cell_entry
    ranking = rank_components(per_component)
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "matrix": {
            "workloads": list(WORKLOADS),
            "runtimes": list(QUICK_RUNTIMES if quick else RUNTIMES),
            "scenarios": list(SCENARIOS),
            "specs": {
                "faulty": FAULTY_SPEC,
                "corrupt_faults": CORRUPT_FAULT_SPEC,
                "corrupt_integrity": CORRUPT_INTEGRITY_SPEC,
            },
            "cells": len(cells),
            "runs": run_count,
        },
        "weights": dict(WEIGHTS),
        "components": {
            comp.name: {"title": comp.title, "summary": comp.summary}
            for comp in COMPONENTS
        },
        "ranking": ranking,
        "cells": cells,
    }
    return _rounded(report)


def _rounded(obj):
    """Round every float to ``ROUND_DIGITS`` places, recursively."""
    if isinstance(obj, float):
        return round(obj, ROUND_DIGITS)
    if isinstance(obj, dict):
        return {key: _rounded(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_rounded(value) for value in obj]
    return obj


def dumps(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# -- record / check gate ------------------------------------------------------


def record_baseline(baseline_dir: Path, quick: bool) -> Path:
    path = baseline_path(baseline_dir, quick)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps(build_report(quick)))
    return path


def check_baseline(baseline_dir: Path, quick: bool) -> Dict[str, object]:
    """Re-run the matrix and compare exactly (no tolerance).

    Every cell is a pure function of seeds, so any diff is a semantic
    change in a registered mechanism (or the matrix itself) — never
    noise.  Returns ``{"ok": bool, ...}`` with a path-level diff.
    """
    path = baseline_path(baseline_dir, quick)
    out: Dict[str, object] = {"baseline": str(path), "ok": True}
    if not path.exists():
        out["ok"] = False
        out["status"] = "missing-baseline"
        out["hint"] = "run: python -m repro.ablate --quick --record"
        return out
    expected = json.loads(path.read_text())
    measured = json.loads(dumps(build_report(quick)))
    out["report"] = measured
    if measured == expected:
        out["status"] = "ok"
        return out
    out["ok"] = False
    out["status"] = "mismatch"
    out["diff"] = _diff_paths(expected, measured)
    return out


_MAX_DIFF_PATHS = 40


def _diff_paths(expected, got, prefix: str = "") -> List[Dict[str, object]]:
    """The first ``_MAX_DIFF_PATHS`` leaf paths where the documents differ."""
    diffs: List[Dict[str, object]] = []
    _walk_diff(expected, got, prefix, diffs)
    return diffs[:_MAX_DIFF_PATHS]


def _walk_diff(expected, got, prefix: str, diffs: List[Dict[str, object]]) -> None:
    if len(diffs) >= _MAX_DIFF_PATHS:
        return
    if isinstance(expected, dict) and isinstance(got, dict):
        for key in sorted(set(expected) | set(got)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                diffs.append({"path": path, "expected": None, "got": got[key]})
            elif key not in got:
                diffs.append({"path": path, "expected": expected[key], "got": None})
            elif expected[key] != got[key]:
                _walk_diff(expected[key], got[key], path, diffs)
        return
    if isinstance(expected, list) and isinstance(got, list) and len(expected) == len(got):
        for i, (e, g) in enumerate(zip(expected, got)):
            if e != g:
                _walk_diff(e, g, f"{prefix}[{i}]", diffs)
        return
    diffs.append({"path": prefix, "expected": expected, "got": got})


# -- markdown rendering -------------------------------------------------------


def render_markdown(report: Dict[str, object]) -> str:
    """The ranked importance report as a markdown document."""
    matrix = report["matrix"]
    lines = [
        "# Component importance ranking",
        "",
        f"Mode: **{report['mode']}** — {matrix['cells']} cells "  # type: ignore[index]
        f"({matrix['runs']} runs) over workloads "  # type: ignore[index]
        f"{', '.join(matrix['workloads'])}; "  # type: ignore[index]
        f"runtimes {', '.join(matrix['runtimes'])}; "  # type: ignore[index]
        f"scenarios {', '.join(matrix['scenarios'])}.",  # type: ignore[index]
        "",
        "Importance = mean leave-one-out score across applicable cells; "
        "positive means removing the component makes things worse. "
        "See docs/ablations.md for how scores are computed.",
        "",
        "| rank | component | importance | verdict | cells | Δcycles | Δfetches |",
        "|-----:|-----------|-----------:|---------|------:|--------:|---------:|",
    ]
    components = report["components"]
    for i, row in enumerate(report["ranking"], start=1):  # type: ignore[arg-type]
        deltas = row["mean_deltas"]
        lines.append(
            f"| {i} | {row['component']} | {row['importance']:+.4f} "
            f"| {row['verdict']} | {row['cells']} "
            f"| {deltas.get('cycles', 0.0):+.3f} "
            f"| {deltas.get('remote_fetches', 0.0):+.3f} |"
        )
    lines.append("")
    for row in report["ranking"]:  # type: ignore[arg-type]
        name = row["component"]
        meta = components[name]  # type: ignore[index]
        lines.append(f"## {meta['title']} (`{name}`)")
        lines.append("")
        lines.append(meta["summary"])
        lines.append("")
        lines.append(
            f"Importance **{row['importance']:+.4f}** ({row['verdict']}) "
            f"over {row['cells']} cell(s). Highest-impact cells:"
        )
        lines.append("")
        for cell in row["top_cells"]:
            lines.append(f"- `{cell['cell']}`: score {cell['score']:+.4f}")
        lines.append("")
    return "\n".join(lines)


def write_artifacts(
    report: Dict[str, object],
    out_json: Optional[Path] = None,
    out_md: Optional[Path] = None,
) -> None:
    if out_json is not None:
        out_json.parent.mkdir(parents=True, exist_ok=True)
        out_json.write_text(dumps(report))
    if out_md is not None:
        out_md.parent.mkdir(parents=True, exist_ok=True)
        out_md.write_text(render_markdown(report) + "\n")
