"""The component registry: every toggleable mechanism as a named knob.

A :class:`Knobs` vector is the full configuration of one ablation run —
all ``True`` is the baseline (every mechanism on, including
``programmed_prefetch``, which is opt-in elsewhere so stock baselines
stay bit-stable).  ``Knobs.off(name)`` produces the leave-one-out
vector for one component.

Each :class:`Component` carries an ``applies(kind, workload, runtime,
scenario)`` predicate: ablating the integrity ladder in a fault-free
cell, or the decode cache in a cell that never compiles IR, would
produce an all-zero delta row and dilute the ranking, so the matrix
only expands leave-one-out cells where the mechanism can matter.  The
actual *apply* of a knob lives in :mod:`repro.ablate.runner`, which
translates the vector into ``CompilerConfig`` fields, interpreter
engine choice, backend retry posture, degraded-mode wiring, and
cluster quota config.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Tuple

from repro.errors import ReproError


class AblationError(ReproError):
    """Bad component name / knob vector / matrix configuration."""


@dataclass(frozen=True)
class Knobs:
    """One on/off vector over every registered mechanism."""

    decode_cache: bool = True
    chunked_transforms: bool = True
    programmed_prefetch: bool = True
    stride_prefetcher: bool = True
    integrity_checking: bool = True
    retry_degrade: bool = True
    hybrid_fallback: bool = True
    tenant_quotas: bool = True
    adaptive_selector: bool = True
    evacuation_policy: bool = True
    replication: bool = True

    def off(self, name: str) -> "Knobs":
        """The leave-one-out vector with ``name`` disabled."""
        if name not in KNOB_NAMES:
            raise AblationError(
                f"unknown component {name!r}; have {', '.join(KNOB_NAMES)}"
            )
        return replace(self, **{name: False})

    def enabled(self, name: str) -> bool:
        if name not in KNOB_NAMES:
            raise AblationError(
                f"unknown component {name!r}; have {', '.join(KNOB_NAMES)}"
            )
        return getattr(self, name)


KNOB_NAMES: Tuple[str, ...] = tuple(f.name for f in fields(Knobs))

#: The all-on baseline vector every cell is scored against.
BASELINE = Knobs()

Predicate = Callable[[str, str, str], bool]


@dataclass(frozen=True)
class Component:
    """One registered mechanism: a knob plus where ablating it is meaningful."""

    #: Knob name (a :class:`Knobs` field).
    name: str
    #: Short human title for reports.
    title: str
    #: One line on what the mechanism does / what ablating it means.
    summary: str
    #: ``(kind, workload, runtime, scenario) -> bool``.
    predicate: Callable[[str, str, str, str], bool]

    def applies(self, kind: str, workload: str, runtime: str, scenario: str) -> bool:
        return self.predicate(kind, workload, runtime, scenario)


def _ir_only(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    return kind == "ir"


def _stride(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    # Compiler-inserted prefetches on compiled IR; the runtime stride
    # prefetcher on AIFM's access path.  Fastswap's kernel readahead and
    # the serving layer's point lookups have no stride knob.
    return kind == "ir" or (kind == "pattern" and runtime == "aifm")


def _integrity(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    # Only corrupt cells exercise the ladder; shard backends never
    # attach integrity, so serving cells are excluded.
    return scenario == "corrupt" and kind != "serving"


def _retry(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    # Serving clusters always arm retry/breaker (losing a shard must be
    # survivable), so the knob is only meaningful outside them.
    return scenario == "faulty" and kind != "serving"


def _hybrid_fallback(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    return runtime == "hybrid" and kind != "serving" and scenario != "clean"


def _quotas(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    return kind == "serving"


def _replication(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    # Replica sets only exist in the serving layer; ablating R=2 back to
    # R=1 is meaningful in every serving cell (fault-free cells price
    # the write fan-out, faulty cells lose the durability).
    return kind == "serving"


def _adaptive_selector(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    # Only the adaptive runtime carries the online path selector; its
    # serving shards are built by the cluster, which does not plumb the
    # knob, so pattern replays are where leaving it out is meaningful.
    return kind == "pattern" and runtime == "adaptive"


def _evacuation_policy(kind: str, workload: str, runtime: str, scenario: str) -> bool:
    # CLOCK vs LRU reclaim matters wherever a residency set evicts:
    # compiled IR runs and the single-runtime pattern replays.  The
    # composite runtimes (hybrid, adaptive) build their tier pools
    # internally and keep the default CLOCK posture.
    return kind == "ir" or (
        kind == "pattern" and runtime in ("aifm", "fastswap", "trackfm")
    )


COMPONENTS: Tuple[Component, ...] = (
    Component(
        "decode_cache",
        "Interpreter decode cache",
        "Pre-decoded op records vs re-decoding IR every dispatch "
        "(ablated: engine='legacy'); scored on deterministic host "
        "dispatch units, not wall-clock.",
        _ir_only,
    ),
    Component(
        "chunked_transforms",
        "Chunked remotable transforms",
        "Loop chunking that hoists guards out of oblivious loops "
        "(ChunkingPolicy.ALL — the cost model rejects these CI-sized "
        "short loops; ablated: NONE, every access guards).",
        _ir_only,
    ),
    Component(
        "programmed_prefetch",
        "Programmed prefetch schedules",
        "tfm_prefetch_sched exact schedules for oblivious affine "
        "streams (ablated: streams fall back to the stride prefetcher).",
        _ir_only,
    ),
    Component(
        "stride_prefetcher",
        "Stride prefetcher",
        "Compiler stride/chase prefetch on IR; AIFM's runtime stride "
        "prefetcher on pattern replays (ablated: demand fetches only).",
        _stride,
    ),
    Component(
        "integrity_checking",
        "Integrity checking",
        "Checksum verify->repair->quarantine on every fetch (ablated: "
        "corruption flows into the program silently).",
        _integrity,
    ),
    Component(
        "retry_degrade",
        "Retry + degraded mode",
        "Bounded retry, circuit breaker, and local degraded service "
        "(ablated: no breaker, patient unbounded-attempt retry, no "
        "degraded mode — the run pays full timeout+backoff for every "
        "loss).",
        _retry,
    ),
    Component(
        "hybrid_fallback",
        "Hybrid page-tier fallback",
        "Object-tier failures fall back to lazily shadowed kernel pages "
        "(ablated: the object tier degrades in place instead).",
        _hybrid_fallback,
    ),
    Component(
        "tenant_quotas",
        "Serving tenant quotas",
        "Per-tenant local-memory budgets on object-granular shards "
        "(ablated: tenants share local memory unboundedly).",
        _quotas,
    ),
    Component(
        "adaptive_selector",
        "Adaptive path selector",
        "Online per-region objects-vs-pages selection from windowed "
        "density stats (ablated: every region stays on the object "
        "tier — the static TrackFM posture).",
        _adaptive_selector,
    ),
    Component(
        "evacuation_policy",
        "CLOCK evacuation policy",
        "CLOCK second-chance victim selection in the residency sets "
        "(ablated: strict LRU — no hot-bit protection for recently "
        "re-touched entries).",
        _evacuation_policy,
    ),
    Component(
        "replication",
        "Shard replication (R=2)",
        "Quorum-replicated serving shards: every key on two nodes, "
        "write-all/read-one with version tags, heartbeat failure "
        "detection and lossless failover (ablated: R=1 — the "
        "unreplicated posture where a lost shard's writes die with it).",
        _replication,
    ),
)


def component(name: str) -> Component:
    for comp in COMPONENTS:
        if comp.name == name:
            return comp
    raise AblationError(
        f"unknown component {name!r}; have {', '.join(c.name for c in COMPONENTS)}"
    )
