"""The scenario matrix: workloads × runtimes × fault/integrity configs.

A *cell* is one ``(workload, runtime, scenario)`` point; the engine
runs each cell once at the all-on baseline and once per applicable
component with that knob off.  Three scenarios cover the regimes the
mechanisms were built for:

* ``clean``   — healthy fabric, performance mechanisms only;
* ``faulty``  — seeded drops + jitter + a remote pause window, the
  retry/degrade and hybrid-fallback regime;
* ``corrupt`` — seeded bitflips/torn writes with the integrity ladder
  armed, the detection/repair regime.

Cell support is explicit: the ``chase`` workload is compiled IR (there
is no pattern replay for it), so it runs only under ``trackfm``; the
``webcache`` workload runs through the serving layer, whose shard
backends never attach integrity, so it has no ``corrupt`` scenario.
Quick mode (CI) keeps every workload and scenario but restricts
runtimes to ``(adaptive, hybrid, trackfm)`` — the composite models plus
the online selector — which still exercises all ten registered
components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ablate.registry import COMPONENTS, Component
from repro.integrity.config import IntegrityConfig, parse_integrity_spec
from repro.net.faults import FaultPlan, parse_fault_spec

#: Every workload on the scenario axis (the three new ones included).
WORKLOADS: Tuple[str, ...] = ("chase", "extsort", "graph", "hashmap", "stream", "webcache")

#: Workloads with a compiled-IR form (run under trackfm as IR cells).
IR_WORKLOADS: Tuple[str, ...] = ("chase", "hashmap", "stream")

RUNTIMES: Tuple[str, ...] = ("adaptive", "aifm", "fastswap", "hybrid", "trackfm")
QUICK_RUNTIMES: Tuple[str, ...] = ("adaptive", "hybrid", "trackfm")

SCENARIOS: Tuple[str, ...] = ("clean", "faulty", "corrupt")

#: Scenario fault/integrity specs (the CLI grammar, so the same cells
#: can be reproduced by hand with ``python -m repro.trace --faults``).
#: Two pause windows: hybrid cells split traffic across two links, so
#: each link sees roughly half the messages an IR cell's single link
#: does — the early window is what makes the object tier go dark
#: mid-run there (exercising the page-tier fallback), the late one
#: lands inside the long single-link IR runs.
FAULTY_SPEC = "seed=11,drop=0.02,jitter=300,pause=180:260;420:520"
CORRUPT_FAULT_SPEC = "seed=5,bitflip=0.04,torn=0.02"
CORRUPT_INTEGRITY_SPEC = "seed=1,refetch=3"


@dataclass(frozen=True)
class CellSpec:
    """One matrix point, before any knob is turned."""

    workload: str
    runtime: str
    scenario: str
    #: ``ir`` (compiled + interpreted), ``pattern`` (access replay), or
    #: ``serving`` (full cluster simulation).
    kind: str

    @property
    def cell_id(self) -> str:
        return f"{self.workload}/{self.runtime}/{self.scenario}"

    def fault_plan(self) -> Optional[FaultPlan]:
        if self.scenario == "faulty":
            return parse_fault_spec(FAULTY_SPEC)
        if self.scenario == "corrupt":
            return parse_fault_spec(CORRUPT_FAULT_SPEC)
        return None

    def integrity_config(self) -> Optional[IntegrityConfig]:
        if self.scenario == "corrupt":
            return parse_integrity_spec(CORRUPT_INTEGRITY_SPEC)
        return None


def cell_kind(workload: str, runtime: str) -> str:
    if workload == "webcache":
        return "serving"
    if runtime == "trackfm" and workload in IR_WORKLOADS:
        return "ir"
    return "pattern"


def supported(workload: str, runtime: str, scenario: str) -> bool:
    if workload == "chase" and runtime != "trackfm":
        return False  # IR-only workload, no pattern replay defined
    if workload == "webcache" and scenario == "corrupt":
        return False  # shard backends never attach integrity
    return True


def generate_matrix(quick: bool = False) -> Tuple[CellSpec, ...]:
    """All supported cells, in a fixed sorted order."""
    runtimes = QUICK_RUNTIMES if quick else RUNTIMES
    cells = []
    for workload in WORKLOADS:
        for runtime in runtimes:
            for scenario in SCENARIOS:
                if not supported(workload, runtime, scenario):
                    continue
                cells.append(
                    CellSpec(workload, runtime, scenario, cell_kind(workload, runtime))
                )
    return tuple(cells)


def applicable_components(spec: CellSpec) -> Tuple[Component, ...]:
    """Components whose leave-one-out run is meaningful in this cell."""
    return tuple(
        comp
        for comp in COMPONENTS
        if comp.applies(spec.kind, spec.workload, spec.runtime, spec.scenario)
    )
