"""Run one matrix cell under one knob vector; everything else consumes this.

The runner is where knobs become mechanism: a :class:`Knobs` vector is
translated into ``CompilerConfig`` fields (chunking policy, prefetch
flags), the interpreter engine choice, the backends' retry posture,
degraded-mode wiring, and the serving cluster's quota config.  Cell
sizing mirrors the trace drivers (small arenas against smaller local
memory, so every cell pays real fetch/evict traffic) and every input is
seeded, so a :class:`CellRun` is a pure function of ``(spec, knobs)``.

Ablation postures worth spelling out:

* **retry_degrade off** does not mean "crash on the first drop" — that
  would make faulty cells unfinishable and score nothing.  It means the
  *naive* posture: no circuit breaker, no degraded mode, and a patient
  retry policy with an effectively unbounded attempt budget, so every
  loss is paid for in full timeout + backoff cycles.  The cycles delta
  against the baseline is exactly what the resilience layer earns.
* **hybrid_fallback off** keeps the hybrid's two tiers but enables
  degraded mode on the *object* tier, so object-side failures are
  absorbed in place and never reach the page-tier fallback — the
  degrade-in-place posture every non-hybrid runtime uses.
* **decode_cache** has no simulated-cycles effect (it is a host-speed
  optimization), so IR cells also report deterministic *host dispatch
  units* — a fixed-cost dispatch model over interpreter steps — which
  the scorer weighs instead of (banned, non-deterministic) wall-clock.
* **adaptive_selector off** keeps the adaptive runtime's two tiers but
  freezes the selector (``adaptive=False``): no profiling, no epochs,
  every region stays on the object tier — bit-identical to the static
  TrackFM posture, so the delta is exactly what online selection earns.
* **evacuation_policy off** flips every residency set from CLOCK
  second-chance to strict LRU (``use_clock=False``), removing the
  hot-bit protection recently re-touched entries get under pressure.
* **replication off** drops the serving cells from the replicated
  baseline (R=2 quorum writes with version tags and a failure
  detector) to the unreplicated R=1 data plane — the cycles delta is
  the replication tax, and under chaos the durability it buys.

A cell that raises :class:`~repro.errors.FarMemoryUnavailableError` or
:class:`~repro.errors.DataIntegrityError` under an ablation is reported
``ok=False`` rather than crashing the engine; the scorer treats that as
the strongest possible evidence for the component.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.ablate.matrix import CellSpec
from repro.ablate.registry import BASELINE, Knobs
from repro.errors import DataIntegrityError, FarMemoryUnavailableError, ReproError
from repro.integrity import installed_integrity_config
from repro.machine.costs import AccessKind
from repro.net.faults import RetryPolicy, installed_fault_plan
from repro.trace.drivers import (
    ARRAY_BYTES,
    DEGRADED_STALL_CYCLES,
    HEAP,
    OBJECT_LOCAL,
    OBJECT_SIZE,
    PAGE_LOCAL,
    _IR_BUILDERS,
    _PATTERNS,
)
from repro.workloads.extsort import ExternalSortWorkload
from repro.workloads.graph import GraphTraversalWorkload
from repro.workloads.webcache import WebCacheWorkload

#: Per-workload seeds — fixed so every fingerprint in the report is a
#: function of nothing but this file and the code under test.
HASHMAP_SEED = 7
GRAPH_SEED = 1
EXTSORT_SEED = 2

#: The naive retry posture for the retry_degrade ablation: effectively
#: unbounded attempts, so faulty cells always finish (paying in full).
PATIENT_ATTEMPTS = 10_000

#: Deterministic host-dispatch cost model for the decode-cache score
#: (wall-clock is banned from the report).  Legacy re-decodes every
#: dispatched instruction; decoded pays the decode once per instruction
#: and one unit per dispatch.  The 4:1 ratio matches the ~3.8x measured
#: speedup the BENCH_interp baselines pin.
LEGACY_UNITS_PER_STEP = 4.0
DECODED_UNITS_PER_STEP = 1.0
DECODE_UNITS_PER_INSTRUCTION = 4.0

MAX_STEPS = 5_000_000


@dataclass
class CellRun:
    """What one ``(spec, knobs)`` execution produced."""

    ok: bool
    value: Optional[int] = None
    cycles: float = 0.0
    #: Deterministic interpreter-host cost (IR cells; 0 elsewhere).
    host_units: float = 0.0
    #: Canonical sparse ``Metrics.as_dict`` form.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: End-to-end latency percentiles (serving cells; empty elsewhere).
    latency: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    def metric(self, key: str, default: float = 0.0) -> float:
        value = self.metrics.get(key, default)
        return float(value)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "ok": self.ok,
            "value": self.value,
            "cycles": self.cycles,
            "metrics": dict(self.metrics),
        }
        if self.host_units:
            out["host_units"] = self.host_units
        if self.latency:
            out["latency"] = dict(self.latency)
        if self.error is not None:
            out["error"] = self.error
        return out


def run_cell(spec: CellSpec, knobs: Knobs = BASELINE) -> CellRun:
    """Execute one cell under one knob vector (never raises on cell failure)."""
    try:
        with ExitStack() as stack:
            plan = spec.fault_plan()
            if plan is not None:
                stack.enter_context(installed_fault_plan(plan))
            integ = spec.integrity_config()
            if integ is not None and knobs.integrity_checking:
                stack.enter_context(installed_integrity_config(integ))
            if spec.kind == "ir":
                return _run_ir(spec, knobs)
            if spec.kind == "pattern":
                return _run_pattern(spec, knobs)
            return _run_serving(spec, knobs)
    except (FarMemoryUnavailableError, DataIntegrityError, ReproError) as err:
        return CellRun(ok=False, error=f"{type(err).__name__}: {err}")


# -- resilience posture -------------------------------------------------------


def _arm_resilience(runtime, spec: CellSpec, knobs: Knobs) -> None:
    """Apply the retry/degrade and hybrid-fallback postures to ``runtime``."""
    if spec.scenario == "clean":
        return
    plan = spec.fault_plan()
    if knobs.retry_degrade:
        # The drivers' posture: degraded mode absorbs outages locally.
        if spec.runtime == "hybrid":
            runtime.fastswap.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
            if not knobs.hybrid_fallback:
                # Degrade-in-place on the object tier: its errors are
                # absorbed before the page-tier fallback can fire.
                runtime.trackfm.enable_degraded_mode(
                    stall_cycles=DEGRADED_STALL_CYCLES
                )
        else:
            runtime.enable_degraded_mode(stall_cycles=DEGRADED_STALL_CYCLES)
    else:
        for backend in runtime.remote_backends():
            backend.breaker = None
            backend.retry_policy = RetryPolicy(
                seed=plan.seed if plan is not None else 0,
                max_attempts=PATIENT_ATTEMPTS,
            )


# -- IR cells (trackfm: compile + interpret) ---------------------------------


def _build_ir_module(workload: str):
    if workload == "chase":
        from repro.bench.regress import _build_chase_module

        return _build_chase_module()
    return _IR_BUILDERS[workload](HASHMAP_SEED)


def _run_ir(spec: CellSpec, knobs: Knobs) -> CellRun:
    from repro.aifm.pool import PoolConfig
    from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig, TrackFMCompiler
    from repro.sim.irrun import TrackFMProgram
    from repro.trackfm.runtime import TrackFMRuntime

    module = _build_ir_module(spec.workload)
    config = CompilerConfig(
        object_size=OBJECT_SIZE,
        # ALL, not COST_MODEL: on these CI-sized modules the cost model
        # rejects every candidate (short loops), which would make the
        # knob indistinguishable from NONE — and programmed prefetch
        # only lowers schedules for loops that were actually chunked.
        chunking=(
            ChunkingPolicy.ALL if knobs.chunked_transforms else ChunkingPolicy.NONE
        ),
        enable_prefetch=knobs.stride_prefetcher,
        enable_chase_prefetch=knobs.stride_prefetcher,
        enable_programmed_prefetch=knobs.programmed_prefetch,
    )
    compiled = TrackFMCompiler(config).compile(module)
    runtime = TrackFMRuntime(
        PoolConfig(
            object_size=OBJECT_SIZE,
            local_memory=OBJECT_LOCAL,
            heap_size=HEAP,
            use_clock=knobs.evacuation_policy,
        )
    )
    _arm_resilience(runtime, spec, knobs)
    engine = "decoded" if knobs.decode_cache else "legacy"
    result = TrackFMProgram(
        compiled.module, runtime, max_steps=MAX_STEPS, engine=engine
    ).run("main")
    if knobs.decode_cache:
        host_units = (
            compiled.module.instruction_count() * DECODE_UNITS_PER_INSTRUCTION
            + result.steps * DECODED_UNITS_PER_STEP
        )
    else:
        host_units = result.steps * LEGACY_UNITS_PER_STEP
    return CellRun(
        ok=True,
        value=int(result.value) & 0xFFFFFFFFFFFFFFFF,
        cycles=runtime.metrics.cycles,
        host_units=host_units,
        metrics=runtime.metrics.as_dict(),
    )


# -- pattern cells (access replay on any runtime) ----------------------------


def _pattern_source(
    workload: str,
) -> Tuple[int, Iterator[Tuple[int, AccessKind]], Optional[int]]:
    """``(arena_bytes, access stream, precomputed value-or-None)``."""
    if workload == "graph":
        wl = GraphTraversalWorkload(seed=GRAPH_SEED)
        return wl.arena_bytes, wl.accesses(), wl.value()
    if workload == "extsort":
        wl = ExternalSortWorkload(seed=EXTSORT_SEED)
        return wl.arena_bytes, wl.accesses(), wl.value()
    # stream/hashmap: the trace drivers' patterns; the value is the
    # replay checksum over touched offsets (the drivers' convention).
    return ARRAY_BYTES, _PATTERNS[workload](HASHMAP_SEED), None


def _run_pattern(spec: CellSpec, knobs: Knobs) -> CellRun:
    arena, accesses, value = _pattern_source(spec.workload)
    runtime, access = _pattern_runtime(spec, knobs, arena)
    _arm_resilience(runtime, spec, knobs)
    checksum = 0
    for offset, kind in accesses:
        access(offset, kind)
        checksum = (checksum * 31 + offset + 1) & 0xFFFFFFFF
    return CellRun(
        ok=True,
        value=value if value is not None else checksum,
        cycles=runtime.metrics.cycles,
        metrics=runtime.metrics.as_dict(),
    )


def _pattern_runtime(spec: CellSpec, knobs: Knobs, arena: int):
    """Construct the runtime and its ``access(offset, kind)`` closure."""
    if spec.runtime == "aifm":
        from repro.aifm.pool import PoolConfig
        from repro.aifm.runtime import AIFMRuntime

        runtime = AIFMRuntime(
            PoolConfig(
                object_size=OBJECT_SIZE,
                local_memory=OBJECT_LOCAL,
                heap_size=HEAP,
                use_clock=knobs.evacuation_policy,
            )
        )
        runtime.allocate(arena)
        prefetch = knobs.stride_prefetcher
        return runtime, lambda off, kind: runtime.access(
            off, kind, size=8, prefetch=prefetch
        )
    if spec.runtime == "fastswap":
        from repro.fastswap.runtime import FastswapConfig, FastswapRuntime

        runtime = FastswapRuntime(
            FastswapConfig(
                local_memory=PAGE_LOCAL,
                heap_size=HEAP,
                use_clock=knobs.evacuation_policy,
            )
        )
        runtime.allocate(arena)
        return runtime, lambda off, kind: runtime.access(off, kind, size=8)
    if spec.runtime == "adaptive":
        from repro.hybrid.runtime import AdaptiveHybridRuntime

        # The drivers' sizing with both tiers' budgets pooled; the knob
        # freezes the selector (every region stays on the object tier),
        # so the delta against baseline is what online selection earns.
        runtime = AdaptiveHybridRuntime(
            local_memory=OBJECT_LOCAL + PAGE_LOCAL,
            heap_size=HEAP,
            object_size=OBJECT_SIZE,
            adaptive=knobs.adaptive_selector,
        )
        base = runtime.tfm_malloc(arena)
        return runtime, lambda off, kind: runtime.access(base + off, kind, size=8)
    if spec.runtime == "hybrid":
        from repro.hybrid.runtime import HybridRuntime, Placement

        runtime = HybridRuntime(
            local_memory=OBJECT_LOCAL + PAGE_LOCAL,
            heap_size=HEAP,
            object_size=OBJECT_SIZE,
        )
        # Half objects / half pages (the drivers' §5 split), with the
        # boundary 8-aligned so no element straddles it.
        half = (arena // 2 + 7) & ~7
        objects = runtime.allocate(half, Placement.OBJECTS)
        pages = runtime.allocate(arena - half, Placement.PAGES)

        def access(offset: int, kind: AccessKind) -> float:
            if offset < half:
                return runtime.access(objects, offset, kind, size=8)
            return runtime.access(pages, offset - half, kind, size=8)

        return runtime, access
    # trackfm pattern replay: guarded accesses through an encoded
    # pointer (no compiler involved, so the IR-side knobs do not apply).
    from repro.aifm.pool import PoolConfig
    from repro.trackfm.runtime import TrackFMRuntime

    runtime = TrackFMRuntime(
        PoolConfig(
            object_size=OBJECT_SIZE,
            local_memory=OBJECT_LOCAL,
            heap_size=HEAP,
            use_clock=knobs.evacuation_policy,
        )
    )
    base = runtime.tfm_malloc(arena)
    return runtime, lambda off, kind: runtime.access(base + off, kind, size=8)


# -- serving cells (webcache through the cluster) ----------------------------


def _run_serving(spec: CellSpec, knobs: Knobs) -> CellRun:
    # Baseline serving posture is replicated (R=2); the ablation drops
    # the cluster back to the unreplicated R=1 data plane.
    report = WebCacheWorkload().run(
        runtime=spec.runtime,
        fault_plan=spec.fault_plan(),
        quotas=knobs.tenant_quotas,
        replication=2 if knobs.replication else 1,
    )
    return CellRun(
        ok=True,
        value=report.completions_fingerprint,
        cycles=report.makespan_cycles,
        metrics=dict(report.metrics),
        latency={k: float(v) for k, v in report.latency_percentiles.items()},
    )
