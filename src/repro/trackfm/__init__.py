"""The TrackFM runtime: what the compiler-injected code calls into.

§3.1–3.3 of the paper: a custom malloc returns *non-canonical* pointers
(bit 60 set); compiler-injected guards interpose on every heap load and
store, consulting the object state table (a contiguous cache of AIFM
object metadata) to decide between a ~21-cycle fast path and a runtime
call that localizes the object; loop chunking replaces per-element
guards with 3-instruction boundary checks plus one locality-invariant
guard per object.
"""

from repro.trackfm.pointer import (
    TFM_TAG_SHIFT,
    TFM_BASE,
    is_tfm_pointer,
    encode_tfm_pointer,
    decode_tfm_pointer,
    object_id_of,
)
from repro.trackfm.state_table import ObjectStateTable
from repro.trackfm.guards import GuardEngine, GuardResult
from repro.trackfm.runtime import TrackFMRuntime, GuardStrategy
from repro.trackfm.multipool import MultiPoolRuntime, DEFAULT_CLASSES

__all__ = [
    "TFM_TAG_SHIFT",
    "TFM_BASE",
    "is_tfm_pointer",
    "encode_tfm_pointer",
    "decode_tfm_pointer",
    "object_id_of",
    "ObjectStateTable",
    "GuardEngine",
    "GuardResult",
    "TrackFMRuntime",
    "GuardStrategy",
    "MultiPoolRuntime",
    "DEFAULT_CLASSES",
]
