"""TrackFM guards: custody check, fast path, slow path, chunking guards.

This module reproduces the control flow of Fig. 4 in cost-model form:

1. **custody check** (~4 instructions): not a TrackFM pointer → run the
   original load/store untouched;
2. **object metadata lookup**: one indexed load from the object state
   table (the only fast-path data access — cached vs uncached decides
   the Table 1 column);
3. **fast path** (14 instructions): the unsafe mask is clear — the
   object is guaranteed local, and the DerefScope barrier semantics
   guarantee it stays local until the access retires;
4. **slow path** (>= 144 instructions): runtime call; localizes the
   object through AIFM (a remote fetch if needed) and triggers a
   collection point.

Loop chunking's two helpers also live here: the 3-instruction
**boundary check** and the **locality-invariant guard** that pins one
object for a whole loop chunk (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aifm.pool import ObjectPool
from repro.machine.costs import AccessKind, CostTable, GuardKind
from repro.sim.metrics import Metrics
from repro.trace.tracer import NULL_TRACER
from repro.trackfm.pointer import is_tfm_pointer, object_id_of
from repro.trackfm.state_table import ObjectStateTable


@dataclass
class GuardResult:
    """Outcome of one guarded access."""

    kind: GuardKind
    cycles: float
    #: True when the state-table lookup hit the CPU cache.
    cache_hit: bool = True
    #: True when the object had to be fetched from the remote node.
    remote_fetch: bool = False


class GuardEngine:
    """Executes guard semantics against a pool + state table."""

    def __init__(
        self,
        pool: ObjectPool,
        table: ObjectStateTable,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.pool = pool
        self.table = table
        self.metrics = metrics if metrics is not None else pool.metrics
        self.costs: CostTable = pool.config.costs
        #: Trace sink; disabled by default (one attribute check per guard).
        self.tracer = NULL_TRACER
        # Hot-path constants, hoisted once per engine (the CostTable is a
        # frozen dataclass and the pool geometry is fixed): a fast guard
        # then costs one dict lookup instead of a method-call chain.
        c = self.costs
        self._fast_cycles = {
            (AccessKind.READ, True): c.fast_guard_read_cached,
            (AccessKind.READ, False): c.fast_guard_read_uncached,
            (AccessKind.WRITE, True): c.fast_guard_write_cached,
            (AccessKind.WRITE, False): c.fast_guard_write_uncached,
        }
        self._object_size = pool.object_size

    # -- the full guard (naive transformation) ----------------------------

    def guard(self, addr: int, kind: AccessKind, depth: int = 1) -> GuardResult:
        """Guard one load/store at ``addr``; returns the path taken.

        The cycles returned cover guard code plus any data movement; the
        target access itself (36 cycles) is charged by the caller so the
        accounting matches Table 1's "additional overhead" framing.
        """
        if not is_tfm_pointer(addr):
            self.metrics.count_guard(GuardKind.CUSTODY_MISS)
            tracer = self.tracer
            if tracer.enabled:
                tracer.guard(
                    GuardKind.CUSTODY_MISS, None, kind,
                    self.metrics.cycles, self.costs.custody_miss,
                )
            return GuardResult(GuardKind.CUSTODY_MISS, self.costs.custody_miss)
        obj_id = object_id_of(addr, self._object_size)
        safe, cache_hit = self.table.is_safe(obj_id)
        if safe:
            # The evacuator barrier (§3.3) guarantees no TOCTOU: while a
            # thread is inside a guard it is never "out-of-scope", so the
            # object cannot be delocalized between the test and the access.
            self.pool.residency.access(obj_id, write=kind is AccessKind.WRITE)
            cycles = self._fast_cycles[(kind, cache_hit)]
            self.metrics.count_guard(GuardKind.FAST)
            tracer = self.tracer
            if tracer.enabled:
                tracer.guard(GuardKind.FAST, obj_id, kind, self.metrics.cycles, cycles)
            return GuardResult(GuardKind.FAST, cycles, cache_hit=cache_hit)
        return self._slow_path(obj_id, kind, cache_hit, depth)

    def _slow_path(
        self, obj_id: int, kind: AccessKind, cache_hit: bool, depth: int
    ) -> GuardResult:
        was_local, movement = self.pool.ensure_local(
            obj_id, write=kind is AccessKind.WRITE, depth=depth
        )
        cycles = self.costs.slow_guard_local(kind, cached=cache_hit) + movement
        self.metrics.count_guard(GuardKind.SLOW)
        tracer = self.tracer
        if tracer.enabled:
            tracer.guard(GuardKind.SLOW, obj_id, kind, self.metrics.cycles, cycles)
        return GuardResult(
            GuardKind.SLOW,
            cycles,
            cache_hit=cache_hit,
            remote_fetch=not was_local,
        )

    # -- loop-chunking helpers (optimized transformation) ------------------

    def boundary_check(self) -> float:
        """The per-iteration object-boundary test (3 instructions)."""
        self.metrics.count_guard(GuardKind.BOUNDARY)
        return self.costs.boundary_check

    def locality_guard(
        self, addr: int, kind: AccessKind, depth: int = 1
    ) -> GuardResult:
        """Pin the object at ``addr`` local for one loop chunk.

        Called when the boundary check fires: a runtime call that
        localizes the object (remote fetch if needed) and pins it so the
        chunk's unguarded accesses are safe.
        """
        if not is_tfm_pointer(addr):
            self.metrics.count_guard(GuardKind.CUSTODY_MISS)
            tracer = self.tracer
            if tracer.enabled:
                tracer.guard(
                    GuardKind.CUSTODY_MISS, None, kind,
                    self.metrics.cycles, self.costs.custody_miss,
                )
            return GuardResult(GuardKind.CUSTODY_MISS, self.costs.custody_miss)
        obj_id = object_id_of(addr, self.pool.object_size)
        was_local, movement = self.pool.ensure_local(
            obj_id, write=kind is AccessKind.WRITE, depth=depth
        )
        cycles = self.costs.locality_guard + movement
        self.metrics.count_guard(GuardKind.LOCALITY)
        tracer = self.tracer
        if tracer.enabled:
            tracer.guard(GuardKind.LOCALITY, obj_id, kind, self.metrics.cycles, cycles)
        return GuardResult(
            GuardKind.LOCALITY, cycles, remote_fetch=not was_local
        )
