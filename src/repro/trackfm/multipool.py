"""Multiple object sizes — the §3.2 future work, implemented.

The paper: "While multiple object sizes are possible, this increases
the complexity of the runtime system and compiler transformations, so
we leave this for future work."  The cost of the single compile-time
size is visible across Figs. 9/10: sequential data wants 4 KB objects,
fine-grained random data wants 64 B, and one application often contains
both (the hashmap experiment itself streams a 190 MB trace *and* does
4-byte lookups).

:class:`MultiPoolRuntime` runs one object pool per size class and
routes each allocation to a class — chosen by the compiler per
allocation site (see :func:`repro.compiler.size_classes.recommend_object_sizes`)
or by the caller.  Pointers encode the class in the top bits of the
heap offset, so the guard still derives everything from the pointer
with shifts (§3.2's constraint is preserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.aifm.pool import PoolConfig
from repro.errors import PointerError, RuntimeConfigError
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS
from repro.sim.metrics import Metrics
from repro.trackfm.pointer import decode_tfm_pointer, encode_tfm_pointer, is_tfm_pointer
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import is_power_of_two

#: Bits of the heap offset reserved for the size-class index.
CLASS_SHIFT = 56
CLASS_MASK = (1 << 4) - 1
OFFSET_MASK = (1 << CLASS_SHIFT) - 1

#: The default classes: cache line, mid, base page (§3.2's range).
DEFAULT_CLASSES = (64, 512, 4096)


class MultiPoolRuntime:
    """One TrackFM runtime per object-size class, unified pointer space."""

    def __init__(
        self,
        local_memory: int,
        heap_size: int,
        classes: Sequence[int] = DEFAULT_CLASSES,
        shares: Optional[Sequence[float]] = None,
        costs: CostTable = DEFAULT_COSTS,
    ) -> None:
        if not classes:
            raise RuntimeConfigError("need at least one size class")
        if len(classes) > CLASS_MASK:
            raise RuntimeConfigError(f"at most {CLASS_MASK} size classes")
        if sorted(classes) != list(classes):
            raise RuntimeConfigError("size classes must be ascending")
        for size in classes:
            if not is_power_of_two(size):
                raise RuntimeConfigError("size classes must be powers of two")
        if shares is None:
            shares = [1.0 / len(classes)] * len(classes)
        if len(shares) != len(classes) or abs(sum(shares) - 1.0) > 1e-6:
            raise RuntimeConfigError("shares must match classes and sum to 1")
        self.classes = tuple(classes)
        self._runtimes: Dict[int, TrackFMRuntime] = {}
        for idx, (size, share) in enumerate(zip(classes, shares)):
            local = max(size, int(local_memory * share))
            self._runtimes[idx] = TrackFMRuntime(
                PoolConfig(
                    object_size=size,
                    local_memory=local,
                    heap_size=heap_size,
                    costs=costs,
                )
            )

    # -- pointer plumbing --------------------------------------------------

    def _class_of_size(self, object_size: int) -> int:
        for idx, size in enumerate(self.classes):
            if size == object_size:
                return idx
        raise RuntimeConfigError(
            f"no {object_size}B size class (have {self.classes})"
        )

    def class_of_pointer(self, ptr: int) -> int:
        if not is_tfm_pointer(ptr):
            raise PointerError(f"{ptr:#x} is not a TrackFM pointer")
        idx = (decode_tfm_pointer(ptr) >> CLASS_SHIFT) & CLASS_MASK
        if idx not in self._runtimes:
            raise PointerError(f"pointer {ptr:#x} names unknown size class {idx}")
        return idx

    def runtime_for(self, ptr: int) -> TrackFMRuntime:
        return self._runtimes[self.class_of_pointer(ptr)]

    def runtime_of_class(self, object_size: int) -> TrackFMRuntime:
        return self._runtimes[self._class_of_size(object_size)]

    # -- allocation -----------------------------------------------------

    def tfm_malloc(self, size: int, object_size: Optional[int] = None) -> int:
        """Allocate in a class: explicit, or smallest class >= size."""
        if object_size is None:
            object_size = self.classes[-1]
            for cls in self.classes:
                if size <= cls:
                    object_size = cls
                    break
        idx = self._class_of_size(object_size)
        inner = self._runtimes[idx].tfm_malloc(size)
        offset = decode_tfm_pointer(inner)
        if offset > OFFSET_MASK:
            raise PointerError("class heap exceeded the encodable offset range")
        return encode_tfm_pointer((idx << CLASS_SHIFT) | offset)

    def tfm_free(self, ptr: int) -> None:
        idx = self.class_of_pointer(ptr)
        inner = encode_tfm_pointer(decode_tfm_pointer(ptr) & OFFSET_MASK)
        self._runtimes[idx].tfm_free(inner)

    # -- access ---------------------------------------------------------

    def _inner_ptr(self, ptr: int) -> Tuple[TrackFMRuntime, int]:
        idx = self.class_of_pointer(ptr)
        inner = encode_tfm_pointer(decode_tfm_pointer(ptr) & OFFSET_MASK)
        return self._runtimes[idx], inner

    def access(
        self, ptr: int, kind: AccessKind = AccessKind.READ, size: int = 8
    ) -> float:
        runtime, inner = self._inner_ptr(ptr)
        return runtime.access(inner, kind, size)

    def sequential_scan(
        self,
        ptr: int,
        n_elems: int,
        elem_size: int,
        kind: AccessKind = AccessKind.READ,
        strategy: GuardStrategy = GuardStrategy.CHUNKED_PREFETCH,
        resident_fraction: float = 0.0,
        body_cycles: Optional[float] = None,
    ) -> float:
        runtime, inner = self._inner_ptr(ptr)
        return runtime.sequential_scan(
            decode_tfm_pointer(inner),
            n_elems,
            elem_size,
            kind,
            strategy,
            resident_fraction,
            body_cycles,
        )

    # -- evacuation hooks ----------------------------------------------------

    def install_evacuation_hook(self, hook) -> None:
        """Install one ``(obj_id, dirty) -> cycles`` eviction hook per class.

        Each class pool's :class:`~repro.aifm.evacuator.Evacuator` calls
        the hook for every eviction it processes (the adaptive hybrid
        plane uses this as its migration point; see
        :attr:`repro.aifm.evacuator.Evacuator.on_evict`).  Pass ``None``
        to uninstall.
        """
        for runtime in self._runtimes.values():
            runtime.pool.evacuator.on_evict = hook

    # -- metrics -------------------------------------------------------------

    @property
    def metrics(self) -> Metrics:
        merged = Metrics()
        for runtime in self._runtimes.values():
            merged.merge(runtime.metrics)
        return merged

    def per_class_metrics(self) -> Dict[int, Metrics]:
        return {
            self.classes[idx]: rt.metrics for idx, rt in self._runtimes.items()
        }
