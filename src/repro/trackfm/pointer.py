"""Non-canonical TrackFM pointers.

§3.1: "The 60th bit of the address is used to flag a pointer as a
TrackFM pointer" — on x86_64 any address with bits above 47 set is
non-canonical, so hardware faults if such a pointer reaches an unguarded
load/store, and TrackFM's custody check (``shr $0x3c, %rax``) can
recognize its own pointers in one instruction.  TrackFM-managed
allocations live at offsets from 2^60 (§3.2), and the object id of a
pointer is its heap offset divided by the object size (a shift for
powers of two).
"""

from __future__ import annotations

from repro.errors import PointerError
from repro.units import is_power_of_two, log2_exact

#: The custody check's shift: bits 60..63 must be non-zero for a
#: TrackFM pointer (Fig. 4b line 0 shifts right by 0x3c = 60).
TFM_TAG_SHIFT = 60

#: Base of the non-canonical address range (§3.2: "starting at 2^60").
TFM_BASE = 1 << TFM_TAG_SHIFT

#: Largest representable heap offset under the tag.
MAX_HEAP_OFFSET = TFM_BASE - 1

_U64 = (1 << 64) - 1


def is_tfm_pointer(addr: int) -> bool:
    """The custody check: are any of bits 60..63 set?"""
    return ((addr & _U64) >> TFM_TAG_SHIFT) != 0


def encode_tfm_pointer(heap_offset: int) -> int:
    """Tag a heap offset into the non-canonical TrackFM range."""
    if not 0 <= heap_offset <= MAX_HEAP_OFFSET:
        raise PointerError(f"heap offset {heap_offset:#x} out of TrackFM range")
    return TFM_BASE | heap_offset

def decode_tfm_pointer(addr: int) -> int:
    """Recover the heap offset from a TrackFM pointer."""
    if not is_tfm_pointer(addr):
        raise PointerError(f"{addr:#x} is not a TrackFM pointer")
    return addr & MAX_HEAP_OFFSET


def object_id_of(addr: int, object_size: int) -> int:
    """Object id of a TrackFM pointer: offset >> log2(object size).

    §3.2: "The object corresponding to a TrackFM pointer can be derived
    by dividing the TrackFM pointer by the object size (a right shift
    for powers of two)."
    """
    if not is_power_of_two(object_size):
        raise PointerError("object size must be a power of two")
    return decode_tfm_pointer(addr) >> log2_exact(object_size)
