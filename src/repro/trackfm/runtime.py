"""The TrackFM runtime facade.

This is the layer the compiler-injected code talks to (Fig. 1's "TrackFM
runtime"): the custom malloc returning non-canonical pointers, the guard
entry points, the chunked-loop state (Fig. 5's ``tfm_init``/``tfm_rw``),
and the bridge into the AIFM object pool.

Two execution styles are provided, with identical accounting:

* **per-access replay** (``access``/``chunk_*``): every memory access is
  simulated individually — used for irregular access streams and the IR
  interpreter bridge;
* **closed-form scans** (``sequential_scan``): the same arithmetic
  evaluated in bulk for regular loops, so 12 GB-shaped STREAM sweeps run
  in milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.aifm.allocator import Allocation, RegionAllocator
from repro.aifm.pool import ObjectPool, PoolConfig
from repro.aifm.prefetcher import ProgrammedSchedule, StridePrefetcher
from repro.errors import PointerError, RuntimeConfigError
from repro.integrity import (
    IntegrityChecker,
    IntegrityConfig,
    RecoveryManager,
    RecoveryReport,
    attach_integrity,
)
from repro.machine.cache import CacheModel
from repro.machine.costs import AccessKind, GuardKind
from repro.net.backends import RemoteBackend
from repro.sim.metrics import Metrics
from repro.trace.tracer import NULL_TRACER
from repro.trackfm.guards import GuardEngine, GuardResult
from repro.trackfm.pointer import (
    decode_tfm_pointer,
    encode_tfm_pointer,
    is_tfm_pointer,
    object_id_of,
)
from repro.trackfm.state_table import ObjectStateTable
from repro.units import ceil_div


class GuardStrategy(enum.Enum):
    """How the compiler decided to guard a given loop's accesses."""

    #: Every access gets a full guard (the baseline transformation).
    NAIVE = "naive"
    #: Loop chunking: boundary checks + per-object locality guards.
    CHUNKED = "chunked"
    #: Chunking plus stride prefetching of the induction-variable stream.
    CHUNKED_PREFETCH = "chunked_prefetch"


@dataclass
class _ChunkState:
    """Fig. 5's (end, ptrid) state for one chunked pointer stream."""

    current_obj: Optional[int] = None
    pinned: bool = False


class TrackFMRuntime:
    """Far memory for unmodified programs, at AIFM-object granularity."""

    def __init__(
        self,
        config: PoolConfig,
        backend: Optional[RemoteBackend] = None,
        cache: Optional[CacheModel] = None,
        prefetch_depth: int = 8,
        tracer=None,
    ) -> None:
        if prefetch_depth < 1:
            raise RuntimeConfigError("prefetch_depth must be >= 1")
        self.config = config
        self.pool = ObjectPool(config, backend=backend)
        self.table = ObjectStateTable(self.pool, cache=cache)
        self.guards = GuardEngine(self.pool, self.table)
        self.allocator = RegionAllocator(config.heap_size, config.object_size)
        self.prefetcher = StridePrefetcher(depth=prefetch_depth)
        self.prefetch_depth = prefetch_depth
        self.object_size = config.object_size
        self._chunks: Dict[int, _ChunkState] = {}
        #: Compiler-programmed prefetch schedules, keyed by chunk stream.
        self._psched: Dict[int, ProgrammedSchedule] = {}
        self.initialized = False
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.set_tracer(tracer)

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to every event source in this runtime."""
        self.tracer = tracer
        self.pool.tracer = tracer
        self.guards.tracer = tracer
        self.pool.backend.set_tracer(tracer)

    def enable_integrity(
        self, config: Optional[IntegrityConfig] = None
    ) -> IntegrityChecker:
        """Checksum-verify every remote fetch (detect → repair → quarantine).

        Attaches an :class:`~repro.integrity.IntegrityChecker` to the
        pool's backend, wired into this runtime's metrics and tracer;
        dirty writebacks start following the write-ahead evacuation
        journal.  Returns the checker.
        """
        checker = attach_integrity(self.pool.backend, config)
        checker.metrics = self.pool.metrics
        checker.tracer = self.tracer
        return checker

    def recover(self) -> RecoveryReport:
        """Replay/roll back the evacuation journal and rebuild residency.

        The pool's metadata array is rebuilt *in place*, so the state
        table (which aliases it) observes the recovered words directly.
        """
        return RecoveryManager.for_pool(self.pool).recover()

    def enable_degraded_mode(
        self,
        stall_cycles: float = 0.0,
        hook=None,
    ) -> None:
        """Serve accesses locally when far memory is unavailable.

        Without this, an open circuit breaker surfaces
        :class:`~repro.errors.FarMemoryUnavailableError` through the
        guard to the program.  With it, the guard's slow path falls back
        to the local tier: each degraded access charges ``stall_cycles``
        (or whatever ``hook(obj_id)`` returns) and is counted in
        ``metrics.degraded_accesses``.
        """
        if hook is not None:
            self.pool.degraded_handler = hook
        else:
            self.pool.degraded_handler = lambda _obj_id: stall_cycles

    def remote_backends(self) -> Tuple[RemoteBackend, ...]:
        """Every far node this runtime talks to (one: the pool's).

        The uniform hook the sharded serving layer uses to reach a
        runtime's fault domains — arming a shard-loss schedule, reading
        breaker state — without knowing which runtime kind it holds.
        """
        return (self.pool.backend,)

    @property
    def metrics(self) -> Metrics:
        return self.pool.metrics

    @property
    def costs(self):
        return self.config.costs

    # -- runtime init (what the runtime-initialization pass hooks up) --------

    def initialize(self) -> None:
        """Called from the instrumented main's first block."""
        self.initialized = True

    # -- allocation (the libc-transformation targets) ----------------------

    def tfm_malloc(self, size: int) -> int:
        """Allocate remotable memory; returns a non-canonical pointer."""
        alloc = self.allocator.allocate(size)
        return encode_tfm_pointer(alloc.offset)

    def tfm_calloc(self, count: int, size: int) -> int:
        return self.tfm_malloc(count * size)

    def tfm_malloc_pinned(self, size: int) -> int:
        """Allocate *local-pinned* memory (the heap-pruning extension).

        The allocation's objects are materialized resident and pinned:
        the evacuator can never remote them, so accesses need no guard.
        Returns the heap offset; callers treat the memory as canonical.
        Over-pinning beyond local capacity raises
        :class:`~repro.errors.EvacuationError` — the compile-time pin
        budget is supposed to prevent that.
        """
        alloc = self.allocator.allocate(size)
        first, last = alloc.object_range(self.object_size)
        for obj_id in range(first, last):
            if not self.pool.residency.is_pinned(obj_id):
                self.pool.materialize(obj_id, pinned=True)
        return alloc.offset

    def tfm_free(self, ptr: int) -> None:
        if not is_tfm_pointer(ptr):
            raise PointerError(f"tfm_free of non-TrackFM pointer {ptr:#x}")
        alloc = self.allocator.free(decode_tfm_pointer(ptr))
        first, last = alloc.object_range(self.object_size)
        for obj_id in range(first, last):
            if self.allocator.allocation_at(obj_id * self.object_size) is None:
                self.pool.free_object(obj_id)

    def allocation_of(self, ptr: int) -> Allocation:
        """The live allocation containing ``ptr`` (debug/testing aid)."""
        alloc = self.allocator.allocation_at(decode_tfm_pointer(ptr))
        if alloc is None:
            raise PointerError(f"{ptr:#x} is not inside a live allocation")
        return alloc

    # -- guarded single accesses (naive transformation) ---------------------

    def access(
        self,
        ptr: int,
        kind: AccessKind = AccessKind.READ,
        size: int = 8,
        depth: int = 1,
    ) -> float:
        """One guarded load/store; returns cycles (guard + access)."""
        result = self.guards.guard(ptr, kind, depth=depth)
        cycles = result.cycles + self.costs.local_access
        # Accesses spanning an object boundary guard the tail object too.
        if is_tfm_pointer(ptr) and size > 1:
            first = object_id_of(ptr, self.object_size)
            last = object_id_of(ptr + size - 1, self.object_size)
            for obj_id in range(first + 1, last + 1):
                tail = self.guards.guard(
                    encode_tfm_pointer(obj_id * self.object_size), kind, depth=depth
                )
                cycles += tail.cycles
        self.metrics.accesses += 1
        self.metrics.cycles += cycles
        return cycles

    # -- chunked loop streams (Fig. 5's transformed loop) --------------------

    def chunk_begin(self, stream: int = 0) -> float:
        """``tfm_init``/``tfm_rw``: set up chunk state for one loop entry."""
        self._chunks[stream] = _ChunkState()
        cycles = self.costs.chunk_setup
        self.metrics.cycles += cycles
        return cycles

    def install_prefetch_schedule(
        self,
        stream: int,
        ptr: int,
        offset: int,
        stride: int,
        count: int,
        distance: int,
    ) -> float:
        """``tfm_prefetch_sched``: arm a stream with an exact schedule.

        The compiler statically derived the loop's affine address stream
        ``addr(k) = ptr + offset + k*stride`` (k < count); this lowers
        it to the distinct first-touch object ids, clipped to the
        pointer's allocation, and primes the first ``distance`` of them
        so the loop's very first touches are already in flight —
        skipping the stride prefetcher's learning misses entirely.
        Returns the cycles charged for the priming fetches.
        """
        if not is_tfm_pointer(ptr) or count <= 0:
            return 0.0
        base = decode_tfm_pointer(ptr)
        lo, hi = 0, self.pool.config.num_objects
        alloc = self.allocator.allocation_at(base)
        if alloc is not None:
            lo, hi = alloc.object_range(self.object_size)
        objects: list = []
        last = None
        for k in range(count):
            obj_id = (base + offset + k * stride) // self.object_size
            if obj_id != last and lo <= obj_id < hi:
                objects.append(obj_id)
            last = obj_id
        sched = ProgrammedSchedule(objects=objects, distance=max(1, distance))
        self._psched[stream] = sched
        cycles = 0.0
        for target in sched.prime():
            cycles += self.pool.prefetch(target)
        self.metrics.cycles += cycles
        return cycles

    def chunk_access(
        self,
        ptr: int,
        kind: AccessKind = AccessKind.READ,
        stream: int = 0,
        prefetch: bool = False,
    ) -> float:
        """One access inside a chunked loop body."""
        state = self._chunks.get(stream)
        if state is None:
            raise RuntimeConfigError(
                f"chunk_access on stream {stream} before chunk_begin"
            )
        cycles = self.guards.boundary_check()
        if is_tfm_pointer(ptr):
            obj_id = object_id_of(ptr, self.object_size)
            if obj_id != state.current_obj:
                if state.pinned and state.current_obj is not None:
                    self.pool.unpin(state.current_obj)
                depth = self.prefetch_depth if prefetch else 1
                result = self.guards.locality_guard(ptr, kind, depth=depth)
                cycles += result.cycles
                self.pool.pin(obj_id)
                state.current_obj = obj_id
                state.pinned = True
                sched = self._psched.get(stream)
                if sched is not None:
                    # Programmed schedule: exact targets, no learning.
                    for target in sched.observe(obj_id):
                        cycles += self.pool.prefetch(target)
                elif prefetch:
                    # Clip prefetch targets to the allocation the pointer
                    # belongs to; fetching past it would be pure waste.
                    lo, hi = 0, self.pool.config.num_objects
                    alloc = self.allocator.allocation_at(decode_tfm_pointer(ptr))
                    if alloc is not None:
                        lo, hi = alloc.object_range(self.object_size)
                    for target in self.prefetcher.observe(obj_id, stream=stream):
                        if lo <= target < hi:
                            cycles += self.pool.prefetch(target)
            else:
                self.pool.residency.access(obj_id, write=kind is AccessKind.WRITE)
        cycles += self.costs.local_access
        self.metrics.accesses += 1
        self.metrics.cycles += cycles
        return cycles

    def chunk_end(self, stream: int = 0) -> None:
        """Tear down a chunk stream (loop exit): unpin, forget state."""
        state = self._chunks.pop(stream, None)
        if state is not None and state.pinned and state.current_obj is not None:
            self.pool.unpin(state.current_obj)
        self.prefetcher.reset(stream)
        self._psched.pop(stream, None)

    # -- closed-form scans ----------------------------------------------------

    def sequential_scan(
        self,
        ptr: int,
        n_elems: int,
        elem_size: int,
        kind: AccessKind = AccessKind.READ,
        strategy: GuardStrategy = GuardStrategy.NAIVE,
        resident_fraction: float = 0.0,
        body_cycles: Optional[float] = None,
        loop_entries: int = 1,
    ) -> float:
        """Bulk cost of a sequential loop over ``n_elems`` elements.

        ``resident_fraction`` is the probability an object is already
        local when first touched by the scan.  ``body_cycles`` is the
        per-access base cost inside the loop (defaults to the cost
        table's standalone local access; tight loops pass less).
        ``loop_entries`` is how many times the loop is *entered* — the
        chunk setup is paid per entry, which is what penalizes chunking
        nested short loops (Fig. 8/15).
        """
        if n_elems <= 0:
            return 0.0
        if not 0.0 <= resident_fraction <= 1.0:
            raise RuntimeConfigError("resident_fraction must be in [0, 1]")
        costs = self.costs
        body = costs.local_access if body_cycles is None else body_cycles
        total_bytes = n_elems * elem_size
        n_objects = max(1, ceil_div(total_bytes, self.object_size))
        misses = int(round(n_objects * (1.0 - resident_fraction)))
        hits = n_objects - misses

        cycles = n_elems * body
        link = self.pool.backend.link

        tracer = self.tracer
        if strategy is GuardStrategy.NAIVE:
            # One slow-path guard per object (its first touch), fast-path
            # guards for the rest.  State-table lookups for one object's
            # elements share a cache line, so fast guards are cached.
            fast = n_elems - n_objects
            fetch_each = link.transfer_cycles(self.object_size)
            cycles += fast * costs.fast_guard(kind, cached=True)
            cycles += misses * (
                costs.slow_guard_local(kind, cached=False) + fetch_each
            )
            cycles += hits * costs.slow_guard_local(kind, cached=True)
            self.metrics.count_guard(GuardKind.FAST, max(fast, 0))
            self.metrics.count_guard(GuardKind.SLOW, n_objects)
            if tracer.enabled:
                tracer.counter(
                    "scan_guards", self.metrics.cycles,
                    fast=max(fast, 0), slow=n_objects,
                )
        else:
            prefetch = strategy is GuardStrategy.CHUNKED_PREFETCH
            cycles += loop_entries * costs.chunk_setup
            cycles += n_elems * costs.boundary_check
            cycles += n_objects * costs.locality_guard
            if prefetch:
                fetch_each = link.wire_cycles(self.object_size)
                self.metrics.prefetches_issued += misses
                self.metrics.prefetches_useful += misses
                if tracer.enabled and misses:
                    tracer.prefetch(
                        misses * self.object_size, self.metrics.cycles,
                        useful=True, n=misses, name="scan_prefetch",
                    )
            else:
                fetch_each = link.transfer_cycles(self.object_size)
            cycles += misses * fetch_each
            self.metrics.count_guard(GuardKind.BOUNDARY, n_elems)
            self.metrics.count_guard(GuardKind.LOCALITY, n_objects)
            if tracer.enabled:
                tracer.counter(
                    "scan_guards", self.metrics.cycles,
                    boundary=n_elems, locality=n_objects,
                )

        if misses:
            integrity = self.pool.backend.integrity
            if integrity is not None:
                # Closed-form scans verify each fetched object's checksum
                # (no corruption rolls: the closed form models the
                # healthy-payload cost envelope).
                cycles += misses * integrity.config.verify_cycles
            self.metrics.remote_fetches += misses
            self.metrics.bytes_fetched += misses * self.object_size
            link.stats.messages += misses
            link.stats.bytes_fetched += misses * self.object_size
            if tracer.enabled:
                tracer.fetch(
                    misses * self.object_size, fetch_each, self.metrics.cycles,
                    n=misses, name="scan_fetch",
                )
            if kind is AccessKind.WRITE:
                # Displaced dirty objects are written back by the evacuator.
                wb = link.wire_cycles(self.object_size)
                cycles += misses * wb * self.pool.evacuator.sync_fraction
                self.metrics.bytes_evacuated += misses * self.object_size
                self.metrics.evictions += misses
                link.stats.bytes_evicted += misses * self.object_size
                if tracer.enabled:
                    tracer.evict(
                        misses * self.object_size, self.metrics.cycles,
                        n=misses, dirty=misses, name="scan_evict",
                    )

        self.metrics.accesses += n_elems
        self.metrics.cycles += cycles
        return cycles
