"""The TrackFM object state table.

§3.2: AIFM needs two dependent memory references to reach object
metadata; TrackFM eliminates one by caching the metadata words in a
flat, contiguous table indexed by object id — possible because the
object id is encoded in the pointer's non-canonical bits.  The table
holds one 8-byte entry per object (64 MB for a 32 GB heap of 4 KB
objects), and the guard's only data access is the indexed load from it
— which is what the cached/uncached split of Table 1 is about.

Coherence with the AIFM-managed metadata is by construction here: the
table *aliases the pool's metadata array* (the simulation analogue of
the paper's modified AIFM that writes the table on every state change).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.aifm.pool import ObjectPool
from repro.machine.cache import CacheModel
from repro.units import fmt_bytes

#: Where the table lives in the simulated canonical address space, for
#: cache-index purposes only.
TABLE_BASE_ADDR = 0x7000_0000

ENTRY_BYTES = 8


class ObjectStateTable:
    """Flat metadata-entry table with a modelled CPU-cache lookup."""

    def __init__(self, pool: ObjectPool, cache: Optional[CacheModel] = None) -> None:
        self.pool = pool
        self.cache = cache if cache is not None else CacheModel()
        self.base_addr = TABLE_BASE_ADDR
        self.lookups = 0

    @property
    def num_entries(self) -> int:
        return self.pool.config.num_objects

    @property
    def size_bytes(self) -> int:
        """Total table footprint (the single-level-page-table math of §3.2)."""
        return self.num_entries * ENTRY_BYTES

    def entry_addr(self, obj_id: int) -> int:
        return self.base_addr + obj_id * ENTRY_BYTES

    def lookup(self, obj_id: int) -> Tuple[int, bool]:
        """Read the metadata word for ``obj_id``.

        Returns ``(word, cache_hit)``; the hit/miss drives the
        cached/uncached guard-cost columns of Table 1.
        """
        self.lookups += 1
        hit = self.cache.access(self.entry_addr(obj_id))
        return self.pool.meta_word(obj_id), hit

    def is_safe(self, obj_id: int) -> Tuple[bool, bool]:
        """(fast-path safe?, cache hit?) for one object."""
        word, hit = self.lookup(obj_id)
        from repro.aifm.objectmeta import UNSAFE_MASK

        return (word & UNSAFE_MASK) == 0, hit

    def describe(self) -> str:
        return (
            f"object state table: {self.num_entries} entries x {ENTRY_BYTES}B "
            f"= {fmt_bytes(self.size_bytes)} for a "
            f"{fmt_bytes(self.pool.config.heap_size)} heap of "
            f"{fmt_bytes(self.pool.object_size)} objects"
        )
