"""The density profiler: windowed per-region access statistics.

The adaptive hybrid's selector needs, per region and per epoch, exactly
the quantities the paging-vs-object cost crossover is written in
(:meth:`repro.compiler.cost_model.ChunkingCostModel.prefer_pages`):
how many accesses landed in the region, how many distinct objects and
distinct pages they touched, and how many were writes.  This module
collects them.

Everything is a pure fold over the access stream: recording costs no
simulated cycles (the profiler is the software analogue of the trace
layer's counters, not a mechanism the machine pays for), and folding a
window produces frozen :class:`RegionStats` snapshots in sorted region
order — so two replays of the same stream profile identically and every
downstream decision is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.errors import RuntimeConfigError
from repro.machine.costs import AccessKind


@dataclass(frozen=True)
class RegionStats:
    """One region's folded window: the selector's entire input."""

    region: int
    #: Accesses that landed in the region this window.
    accesses: int
    #: Distinct objects those accesses touched.
    distinct_objects: int
    #: Distinct (architected) pages those accesses touched.
    distinct_pages: int
    #: How many of the accesses were writes.
    writes: int

    @property
    def page_density(self) -> float:
        """Accesses per touched page — the crossover's x-axis."""
        if self.distinct_pages <= 0:
            return 0.0
        return self.accesses / self.distinct_pages


@dataclass
class _Window:
    """Mutable per-region accumulator for the current epoch."""

    accesses: int = 0
    writes: int = 0
    objects: Set[int] = field(default_factory=set)
    pages: Set[int] = field(default_factory=set)


class DensityProfiler:
    """Folds per-base access counters into windowed region stats."""

    def __init__(self, region_bytes: int, object_size: int, page_size: int) -> None:
        if region_bytes <= 0 or object_size <= 0 or page_size <= 0:
            raise RuntimeConfigError("profiler granularities must be positive")
        if region_bytes % object_size != 0:
            raise RuntimeConfigError(
                f"region_bytes {region_bytes} must be a multiple of "
                f"object_size {object_size}"
            )
        if region_bytes % page_size != 0:
            raise RuntimeConfigError(
                f"region_bytes {region_bytes} must be a multiple of "
                f"page_size {page_size}"
            )
        self.region_bytes = region_bytes
        self.object_size = object_size
        self.page_size = page_size
        self._windows: Dict[int, _Window] = {}
        #: Region-to-region transitions this window (scan-vs-random
        #: signal: sequential sweeps run long in one region, random
        #: probe mixes hop every few accesses).
        self.window_transitions = 0
        self.window_accesses = 0
        self._last_region: int = -1
        #: Lifetime totals (observability only; never fed to the selector).
        self.total_accesses = 0
        self.epochs_folded = 0

    def region_of(self, offset: int) -> int:
        return offset // self.region_bytes

    def record(self, offset: int, kind: AccessKind) -> None:
        """Fold one access at heap ``offset`` into the current window."""
        region = offset // self.region_bytes
        window = self._windows.get(region)
        if window is None:
            window = self._windows[region] = _Window()
        window.accesses += 1
        if kind is AccessKind.WRITE:
            window.writes += 1
        window.objects.add(offset // self.object_size)
        window.pages.add(offset // self.page_size)
        if self._last_region >= 0 and region != self._last_region:
            self.window_transitions += 1
        self._last_region = region
        self.window_accesses += 1
        self.total_accesses += 1

    def interleave_rate(self) -> float:
        """Fraction of this window's accesses that changed region.

        Near 0 for sweeps (long runs in one region), high for random
        mixes.  The adaptive runtime uses it to tell *cheap* page-tier
        over-commit (a sweep faults each page once per pass no matter
        the capacity) from *thrashing* over-commit (an interleaved mix
        faults on nearly every access).
        """
        if self.window_accesses <= 0:
            return 0.0
        return self.window_transitions / self.window_accesses

    def _freeze(self) -> Dict[int, RegionStats]:
        stats: Dict[int, RegionStats] = {}
        for region in sorted(self._windows):
            window = self._windows[region]
            stats[region] = RegionStats(
                region=region,
                accesses=window.accesses,
                distinct_objects=len(window.objects),
                distinct_pages=len(window.pages),
                writes=window.writes,
            )
        return stats

    def fold(self) -> Dict[int, RegionStats]:
        """Freeze and clear the current window, keyed by region, sorted."""
        stats = self._freeze()
        self._windows.clear()
        self.window_transitions = 0
        self.window_accesses = 0
        self._last_region = -1
        self.epochs_folded += 1
        return stats

    def peek(self) -> Dict[int, RegionStats]:
        """Like :meth:`fold` but leaves the window intact (diagnostics)."""
        return self._freeze()
