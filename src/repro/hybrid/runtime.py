"""A hybrid runtime: TrackFM objects and kernel pages, side by side."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.aifm.pool import PoolConfig
from repro.errors import (
    DataIntegrityError,
    FarMemoryUnavailableError,
    PointerError,
    RuntimeConfigError,
)
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.integrity import IntegrityConfig, RecoveryReport
from repro.machine.costs import AccessKind
from repro.sim.metrics import Metrics
from repro.trackfm.pointer import is_tfm_pointer
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import BASE_PAGE


class Placement(enum.Enum):
    """Which mechanism backs an allocation."""

    #: TrackFM objects: guarded, sub-page granularity.
    OBJECTS = "objects"
    #: Kernel pages: unguarded, page granularity, fault on miss.
    PAGES = "pages"


@dataclass(frozen=True)
class HybridHandle:
    """An allocation handle carrying its placement."""

    placement: Placement
    #: TrackFM pointer (OBJECTS) or page-heap offset (PAGES).
    address: int
    size: int


class HybridRuntime:
    """Splits local memory between an object pool and a page cache.

    The compiler (or, here, the caller) chooses a :class:`Placement`
    per allocation; a plausible policy is the one §5 hints at — hot,
    densely-reused regions on pages (faults amortize, hits are free of
    guard costs), fine-grained or cold regions on objects (no
    amplification).
    """

    def __init__(
        self,
        local_memory: int,
        heap_size: int,
        object_size: int = 256,
        page_fraction: float = 0.5,
        object_backend=None,
        page_backend=None,
    ) -> None:
        if not 0.0 < page_fraction < 1.0:
            raise RuntimeConfigError("page_fraction must be in (0, 1)")
        page_local = max(BASE_PAGE, int(local_memory * page_fraction))
        object_local = max(object_size, local_memory - page_local)
        self.trackfm = TrackFMRuntime(
            PoolConfig(
                object_size=object_size,
                local_memory=object_local,
                heap_size=heap_size,
            ),
            backend=object_backend,
        )
        self.fastswap = FastswapRuntime(
            FastswapConfig(local_memory=page_local, heap_size=heap_size),
            backend=page_backend,
        )
        self.page_fraction = page_fraction
        self._handles: Dict[int, HybridHandle] = {}
        #: Shadow page-tier allocations for object allocations served in
        #: fallback mode (keyed by the object allocation's address).
        self._fallback: Dict[int, int] = {}
        #: Counters owned by the hybrid layer itself (fallback accesses);
        #: merged into :attr:`metrics` alongside both mechanisms'.
        self.extra_metrics = Metrics()

    def set_tracer(self, tracer) -> None:
        """Attach one tracer to both mechanisms (events share a timeline)."""
        self.trackfm.set_tracer(tracer)
        self.fastswap.set_tracer(tracer)

    def enable_integrity(self, config: Optional[IntegrityConfig] = None) -> None:
        """Arm checksum verification on both tiers.

        Each tier gets its own checker (its own journal and damage map —
        the tiers have independent remote copies), built from the same
        config so both replay the same corruption schedule parameters.
        """
        self.trackfm.enable_integrity(config)
        self.fastswap.enable_integrity(config)

    def recover(self) -> RecoveryReport:
        """Run crash recovery on every tier with a checker attached.

        Returns the merged :class:`~repro.integrity.RecoveryReport`;
        tiers without integrity enabled are skipped.
        """
        report = RecoveryReport()
        if self.trackfm.pool.integrity is not None:
            report.merge(self.trackfm.recover())
        if self.fastswap.integrity is not None:
            report.merge(self.fastswap.recover())
        return report

    @property
    def tracer(self):
        return self.trackfm.tracer

    def remote_backends(self) -> tuple:
        """Both tiers' far nodes (object pool first, then swap target).

        Uniform across the four runtimes; a hybrid shard is one fault
        domain spanning two links, so losing the shard must arm both.
        """
        return self.trackfm.remote_backends() + self.fastswap.remote_backends()

    # -- allocation -----------------------------------------------------

    def allocate(self, size: int, placement: Placement) -> HybridHandle:
        if placement is Placement.OBJECTS:
            addr = self.trackfm.tfm_malloc(size)
        else:
            addr = self.fastswap.allocate(size)
        handle = HybridHandle(placement, addr, size)
        self._handles[addr] = handle
        return handle

    # -- access ---------------------------------------------------------

    def access(
        self,
        handle: HybridHandle,
        offset: int = 0,
        kind: AccessKind = AccessKind.READ,
        size: int = 8,
    ) -> float:
        if offset < 0 or offset + size > handle.size:
            raise PointerError(
                f"access [{offset}, {offset + size}) outside allocation "
                f"of {handle.size} bytes"
            )
        if handle.placement is Placement.OBJECTS:
            assert is_tfm_pointer(handle.address)
            try:
                return self.trackfm.access(handle.address + offset, kind, size)
            except (FarMemoryUnavailableError, DataIntegrityError):
                # The degrade rung of the integrity escalation ladder:
                # a quarantined object is served via the page tier
                # (whose copy is independently verified) instead of
                # surfacing the error to the program.
                return self._fallback_access(handle, offset, kind, size)
        return self.fastswap.access(handle.address + offset, kind, size)

    def _fallback_access(
        self, handle: HybridHandle, offset: int, kind: AccessKind, size: int
    ) -> float:
        """Serve an object access via the page tier: the hybrid's whole
        point is having a second mechanism to fall back on when the
        object path's remote backend is unavailable.

        The allocation gets a lazily-created shadow in the page heap;
        subsequent fallback accesses reuse it, so a long outage behaves
        like the allocation had been placed on pages to begin with.
        """
        shadow = self._fallback.get(handle.address)
        if shadow is None:
            shadow = self.fastswap.allocate(handle.size)
            self._fallback[handle.address] = shadow
        self.extra_metrics.degraded_accesses += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.degrade(
                "hybrid_fallback",
                self.trackfm.metrics.cycles,
                addr=handle.address,
                offset=offset,
            )
        return self.fastswap.access(shadow + offset, kind, size)

    # -- metrics ------------------------------------------------------------

    @property
    def metrics(self) -> Metrics:
        """Merged view over both mechanisms (plus hybrid-layer counters)."""
        merged = Metrics()
        merged.merge(self.trackfm.metrics)
        merged.merge(self.fastswap.metrics)
        merged.merge(self.extra_metrics)
        return merged

    def split(self) -> Tuple[Metrics, Metrics]:
        """(object-side, page-side) metrics, unmerged."""
        return self.trackfm.metrics, self.fastswap.metrics
