"""Hybrid runtimes: TrackFM objects and kernel pages, side by side.

Two planes share the two tiers:

* :class:`HybridRuntime` — the original *static* plane: the caller picks
  a :class:`Placement` per allocation, and the page tier doubles as the
  degrade/fallback target when the object tier's far node is lost or an
  object is quarantined.
* :class:`AdaptiveHybridRuntime` — the *online* plane (docs/hybrid.md):
  a :class:`~repro.hybrid.profiler.DensityProfiler` folds the access
  stream into windowed region stats, a
  :class:`~repro.hybrid.selector.PathSelector` evaluates the
  paging-vs-object cost crossover per region every epoch, and regions
  whose decision flips are migrated between tiers — eagerly for their
  resident state, and lazily at evacuation time through the
  :class:`~repro.aifm.evacuator.Evacuator` ``on_evict`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.aifm.pool import PoolConfig
from repro.compiler.cost_model import ChunkingCostModel
from repro.errors import (
    DataIntegrityError,
    FarMemoryUnavailableError,
    PointerError,
    RuntimeConfigError,
)
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.hybrid.placement import Placement
from repro.hybrid.profiler import DensityProfiler
from repro.hybrid.selector import PathSelector, SelectorConfig
from repro.integrity import IntegrityConfig, RecoveryReport
from repro.machine.costs import AccessKind, GuardKind
from repro.sim.metrics import Metrics
from repro.trackfm.guards import GuardResult
from repro.trackfm.pointer import decode_tfm_pointer, is_tfm_pointer
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import BASE_PAGE

__all__ = [
    "AdaptiveHybridRuntime",
    "HybridHandle",
    "HybridRuntime",
    "MigrationEvent",
    "Placement",
]


@dataclass(frozen=True)
class HybridHandle:
    """An allocation handle carrying its placement."""

    placement: Placement
    #: TrackFM pointer (OBJECTS) or page-heap offset (PAGES).
    address: int
    size: int


class HybridRuntime:
    """Splits local memory between an object pool and a page cache.

    The compiler (or, here, the caller) chooses a :class:`Placement`
    per allocation; a plausible policy is the one §5 hints at — hot,
    densely-reused regions on pages (faults amortize, hits are free of
    guard costs), fine-grained or cold regions on objects (no
    amplification).
    """

    def __init__(
        self,
        local_memory: int,
        heap_size: int,
        object_size: int = 256,
        page_fraction: float = 0.5,
        object_backend=None,
        page_backend=None,
    ) -> None:
        if not 0.0 < page_fraction < 1.0:
            raise RuntimeConfigError("page_fraction must be in (0, 1)")
        page_local = max(BASE_PAGE, int(local_memory * page_fraction))
        object_local = max(object_size, local_memory - page_local)
        self.trackfm = TrackFMRuntime(
            PoolConfig(
                object_size=object_size,
                local_memory=object_local,
                heap_size=heap_size,
            ),
            backend=object_backend,
        )
        self.fastswap = FastswapRuntime(
            FastswapConfig(local_memory=page_local, heap_size=heap_size),
            backend=page_backend,
        )
        self.page_fraction = page_fraction
        self._handles: Dict[int, HybridHandle] = {}
        #: Shadow page-tier allocations for object allocations served in
        #: fallback mode (keyed by the object allocation's address).
        self._fallback: Dict[int, int] = {}
        #: Counters owned by the hybrid layer itself (fallback accesses);
        #: merged into :attr:`metrics` alongside both mechanisms'.
        self.extra_metrics = Metrics()

    def set_tracer(self, tracer) -> None:
        """Attach one tracer to both mechanisms (events share a timeline)."""
        self.trackfm.set_tracer(tracer)
        self.fastswap.set_tracer(tracer)

    def enable_integrity(self, config: Optional[IntegrityConfig] = None) -> None:
        """Arm checksum verification on both tiers.

        Each tier gets its own checker (its own journal and damage map —
        the tiers have independent remote copies), built from the same
        config so both replay the same corruption schedule parameters.
        """
        self.trackfm.enable_integrity(config)
        self.fastswap.enable_integrity(config)

    def recover(self) -> RecoveryReport:
        """Run crash recovery on every tier with a checker attached.

        Returns the merged :class:`~repro.integrity.RecoveryReport`;
        tiers without integrity enabled are skipped.
        """
        report = RecoveryReport()
        if self.trackfm.pool.integrity is not None:
            report.merge(self.trackfm.recover())
        if self.fastswap.integrity is not None:
            report.merge(self.fastswap.recover())
        return report

    @property
    def tracer(self):
        return self.trackfm.tracer

    def remote_backends(self) -> tuple:
        """Both tiers' far nodes (object pool first, then swap target).

        Uniform across the four runtimes; a hybrid shard is one fault
        domain spanning two links, so losing the shard must arm both.
        """
        return self.trackfm.remote_backends() + self.fastswap.remote_backends()

    # -- allocation -----------------------------------------------------

    def allocate(self, size: int, placement: Placement) -> HybridHandle:
        if placement is Placement.OBJECTS:
            addr = self.trackfm.tfm_malloc(size)
        else:
            addr = self.fastswap.allocate(size)
        handle = HybridHandle(placement, addr, size)
        self._handles[addr] = handle
        return handle

    # -- access ---------------------------------------------------------

    def access(
        self,
        handle: HybridHandle,
        offset: int = 0,
        kind: AccessKind = AccessKind.READ,
        size: int = 8,
    ) -> float:
        if offset < 0 or offset + size > handle.size:
            raise PointerError(
                f"access [{offset}, {offset + size}) outside allocation "
                f"of {handle.size} bytes"
            )
        if handle.placement is Placement.OBJECTS:
            assert is_tfm_pointer(handle.address)
            try:
                return self.trackfm.access(handle.address + offset, kind, size)
            except (FarMemoryUnavailableError, DataIntegrityError):
                # The degrade rung of the integrity escalation ladder:
                # a quarantined object is served via the page tier
                # (whose copy is independently verified) instead of
                # surfacing the error to the program.
                return self._fallback_access(handle, offset, kind, size)
        return self.fastswap.access(handle.address + offset, kind, size)

    def _fallback_access(
        self, handle: HybridHandle, offset: int, kind: AccessKind, size: int
    ) -> float:
        """Serve an object access via the page tier: the hybrid's whole
        point is having a second mechanism to fall back on when the
        object path's remote backend is unavailable.

        The allocation gets a lazily-created shadow in the page heap;
        subsequent fallback accesses reuse it, so a long outage behaves
        like the allocation had been placed on pages to begin with.
        """
        shadow = self._fallback.get(handle.address)
        if shadow is None:
            shadow = self.fastswap.allocate(handle.size)
            self._fallback[handle.address] = shadow
        self.extra_metrics.degraded_accesses += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.degrade(
                "hybrid_fallback",
                self.trackfm.metrics.cycles,
                addr=handle.address,
                offset=offset,
            )
        return self.fastswap.access(shadow + offset, kind, size)

    # -- metrics ------------------------------------------------------------

    @property
    def metrics(self) -> Metrics:
        """Merged view over both mechanisms (plus hybrid-layer counters)."""
        merged = Metrics()
        merged.merge(self.trackfm.metrics)
        merged.merge(self.fastswap.metrics)
        merged.merge(self.extra_metrics)
        return merged

    def split(self) -> Tuple[Metrics, Metrics]:
        """(object-side, page-side) metrics, unmerged."""
        return self.trackfm.metrics, self.fastswap.metrics


# -- the adaptive plane ------------------------------------------------------


@dataclass(frozen=True)
class MigrationEvent:
    """One selector flip: a region re-homed between tiers."""

    epoch: int
    region: int
    source: Placement
    target: Placement
    #: Region objects re-homed by the flip.
    objects: int


class _TierRouter:
    """A guard-engine-shaped proxy that routes each access by placement.

    Implements the :class:`~repro.trackfm.guards.GuardEngine` surface
    (``guard``/``boundary_check``/``locality_guard``) so the inherited
    TrackFM access paths and the IR interpreter bridge work unchanged.
    OBJECTS regions take the real guard engine; PAGES regions skip guard
    code entirely and touch the page tier (the whole point of paging:
    resident pages cost nothing in software).  Chunked-loop guards stay
    on the object tier — chunking pins one object per chunk, and is
    already the compiler's answer for high-density loops.
    """

    def __init__(self, runtime: "AdaptiveHybridRuntime", object_guards) -> None:
        self.runtime = runtime
        self.object_guards = object_guards
        self.costs = object_guards.costs
        self.metrics = object_guards.metrics
        self.tracer = object_guards.tracer

    def guard(self, addr: int, kind: AccessKind, depth: int = 1) -> GuardResult:
        if not is_tfm_pointer(addr):
            return self.object_guards.guard(addr, kind, depth=depth)
        rt = self.runtime
        offset = decode_tfm_pointer(addr)
        rt._note_access(offset, kind)
        region = offset // rt.region_bytes
        if rt._placement.get(region, Placement.OBJECTS) is Placement.OBJECTS:
            return self.object_guards.guard(addr, kind, depth=depth)
        return rt._page_guard(region, offset, kind)

    def boundary_check(self) -> float:
        return self.object_guards.boundary_check()

    def locality_guard(
        self, addr: int, kind: AccessKind, depth: int = 1
    ) -> GuardResult:
        return self.object_guards.locality_guard(addr, kind, depth=depth)


class AdaptiveHybridRuntime(TrackFMRuntime):
    """Online per-region path selection over the two hybrid tiers.

    A drop-in :class:`~repro.trackfm.runtime.TrackFMRuntime`: the
    allocator, chunk streams, prefetch schedules and the IR interpreter
    bridge all work unchanged.  What changes is the guard engine — a
    :class:`_TierRouter` that profiles every guarded access and serves
    regions the :class:`~repro.hybrid.selector.PathSelector` has flipped
    to :attr:`Placement.PAGES` through a private page tier at kernel
    fault costs instead of guard+fetch costs.

    Both tiers account into **one** metrics bundle (the object pool's),
    so ``metrics`` reads uniformly and nothing is double-charged: the
    page tier's ``_touch_page`` returns cycles for the inherited
    ``access``/interpreter paths to add, exactly like a guard result.

    Determinism: epochs are counted in guarded accesses, the profiler
    and selector are pure folds of the access stream, and migrations
    walk regions in sorted order — the same program replays bit-for-bit.
    """

    def __init__(
        self,
        local_memory: int,
        heap_size: int,
        object_size: int = 256,
        page_fraction: float = 0.5,
        region_bytes: Optional[int] = None,
        epoch_accesses: int = 256,
        selector_config: SelectorConfig = SelectorConfig(),
        overcommit_interleave_max: float = 0.125,
        adaptive: bool = True,
        object_backend=None,
        page_backend=None,
        cache=None,
    ) -> None:
        if not 0.0 < page_fraction < 1.0:
            raise RuntimeConfigError("page_fraction must be in (0, 1)")
        if epoch_accesses < 1:
            raise RuntimeConfigError("epoch_accesses must be >= 1")
        page_local = max(BASE_PAGE, int(local_memory * page_fraction))
        object_local = max(object_size, local_memory - page_local)
        super().__init__(
            PoolConfig(
                object_size=object_size,
                local_memory=object_local,
                heap_size=heap_size,
            ),
            backend=object_backend,
            cache=cache,
        )
        self.fastswap = FastswapRuntime(
            FastswapConfig(local_memory=page_local, heap_size=heap_size),
            backend=page_backend,
        )
        # One bundle backs both tiers: re-point the page tier (and its
        # backend/integrity plumbing) at the pool's metrics so the
        # inherited ``metrics`` property sees everything and stays a
        # stable, mutable object (the interpreter bridge mutates it).
        page_bundle = self.fastswap.metrics
        self.fastswap.metrics = self.pool.metrics
        if self.fastswap.backend.metrics is page_bundle:
            self.fastswap.backend.metrics = self.pool.metrics
        self.page_fraction = page_fraction
        self.region_bytes = (
            region_bytes if region_bytes is not None else self.fastswap.page_size
        )
        if self.region_bytes % self.fastswap.page_size != 0:
            raise RuntimeConfigError(
                "region_bytes must be a multiple of the page size so "
                "region shadows stay page-aligned"
            )
        self.epoch_accesses = epoch_accesses
        #: Windows whose region-interleave rate is at or below this are
        #: sweep-shaped: page-tier over-commit is cheap for them (one
        #: fault per page per pass) and the capacity gate stands aside.
        self.overcommit_interleave_max = overcommit_interleave_max
        self.adaptive = adaptive
        self.profiler = DensityProfiler(
            self.region_bytes, object_size, self.fastswap.page_size
        )
        self.selector = PathSelector(
            ChunkingCostModel(object_size, self.config.costs), selector_config
        )
        self._placement: Dict[int, Placement] = {}
        #: Page-heap base of each region's shadow range (lazily built;
        #: kept across flips so a region can bounce without new heap).
        self._shadow: Dict[int, int] = {}
        self._epoch_ticks = 0
        self.epochs = 0
        self.migration_log: List[MigrationEvent] = []
        # Route every guard through the selector's placement map.
        self._object_guards = self.guards
        self.guards = _TierRouter(self, self._object_guards)
        # Evictions double as migration points: a dirty object leaving
        # the pool while its region is page-placed re-homes its bytes
        # into the shadow page instead of only writing back remotely.
        self.pool.evacuator.on_evict = self._on_evict

    # -- wiring (both tiers, one surface) -----------------------------------

    def set_tracer(self, tracer) -> None:
        super().set_tracer(tracer)  # pool, router (.tracer), object backend
        self._object_guards.tracer = tracer
        self.fastswap.set_tracer(tracer)

    def enable_integrity(self, config: Optional[IntegrityConfig] = None):
        """Arm checksum verification on both tiers (shared metrics)."""
        checker = super().enable_integrity(config)
        self.fastswap.enable_integrity(config)
        return checker

    def recover(self) -> RecoveryReport:
        report = RecoveryReport()
        if self.pool.integrity is not None:
            report.merge(super().recover())
        if self.fastswap.integrity is not None:
            report.merge(self.fastswap.recover())
        return report

    def enable_degraded_mode(self, stall_cycles: float = 0.0, hook=None) -> None:
        super().enable_degraded_mode(stall_cycles, hook)
        self.fastswap.enable_degraded_mode(stall_cycles, hook)

    def remote_backends(self):
        return super().remote_backends() + self.fastswap.remote_backends()

    # -- placement bookkeeping ----------------------------------------------

    def placement_of(self, offset: int) -> Placement:
        """Current tier of the region containing heap ``offset``."""
        return self._placement.get(offset // self.region_bytes, Placement.OBJECTS)

    def region_placements(self) -> Dict[int, Placement]:
        """A snapshot of every non-default region placement."""
        return dict(self._placement)

    def _note_access(self, offset: int, kind: AccessKind) -> None:
        if not self.adaptive:
            return
        self.profiler.record(offset, kind)
        self._epoch_ticks += 1
        if self._epoch_ticks >= self.epoch_accesses:
            self.rebalance()

    # -- the page-tier access path -------------------------------------------

    def _ensure_shadow(self, region: int) -> int:
        shadow = self._shadow.get(region)
        if shadow is None:
            shadow = self.fastswap.allocate(self.region_bytes)
            self._shadow[region] = shadow
        return shadow

    def _page_guard(self, region: int, offset: int, kind: AccessKind) -> GuardResult:
        fs = self.fastswap
        shadow = self._ensure_shadow(region)
        page = fs.page_of(shadow + (offset % self.region_bytes))
        was_resident = page in fs.residency
        # _touch_page returns its cycles (its counters land in the shared
        # bundle); the inherited access()/interpreter paths add them —
        # exactly once — alongside the local access, like a guard result.
        cycles = fs._touch_page(page, kind)
        return GuardResult(
            GuardKind.NONE, cycles, remote_fetch=not was_resident
        )

    # -- selection + migration -------------------------------------------------

    def rebalance(self) -> List[MigrationEvent]:
        """Fold the window, re-decide every profiled region, migrate flips.

        Called automatically every ``epoch_accesses`` guarded accesses;
        callable directly (the serving layer's chaos tests force an
        epoch mid-knockout).  Returns this epoch's migrations.
        """
        self._epoch_ticks = 0
        self.epochs += 1
        interleave = self.profiler.interleave_rate()
        stats = self.profiler.fold()
        events: List[MigrationEvent] = []
        metrics = self.pool.metrics
        tracer = self.tracer
        # Capacity gate: the cost model prices one amortized fault per
        # distinct page, which only holds while the page tier can keep
        # the placed regions resident — or while the access stream runs
        # region-at-a-time (a sweep faults each page once per pass no
        # matter the capacity).  Over-commit is allowed for sweep-shaped
        # windows and refused for interleaved ones, where it would turn
        # every access into a fault.
        region_pages = self.region_bytes // self.fastswap.page_size
        capacity = self.fastswap.config.local_capacity_pages
        sweep_shaped = interleave <= self.overcommit_interleave_max
        placed = sum(
            region_pages
            for p in self._placement.values()
            if p is Placement.PAGES
        )
        for region in sorted(stats):
            current = self._placement.get(region, Placement.OBJECTS)
            decision = self.selector.decide(stats[region], current)
            if decision is current:
                continue
            if decision is Placement.PAGES:
                if placed + region_pages > capacity and not sweep_shaped:
                    continue
                placed += region_pages
            else:
                placed -= region_pages
            self._placement[region] = decision
            moved = self._migrate_region(region, decision)
            metrics.tier_switches += 1
            metrics.objects_migrated += moved
            event = MigrationEvent(self.epochs, region, current, decision, moved)
            events.append(event)
            self.migration_log.append(event)
            if tracer.enabled:
                tracer.tier(
                    "switch",
                    metrics.cycles,
                    region=region,
                    source=current.value,
                    target=decision.value,
                    objects=moved,
                )
        return events

    def _region_objects(self, region: int) -> Tuple[int, int]:
        """``(first_obj, count)`` of the region, clipped to the heap."""
        per_region = self.region_bytes // self.object_size
        first = region * per_region
        count = max(0, min(per_region, self.pool.config.num_objects - first))
        return first, count

    def _migrate_region(self, region: int, target: Placement) -> int:
        """Re-home one region's resident state; returns objects re-homed."""
        first, count = self._region_objects(region)
        if target is Placement.PAGES:
            self._ensure_shadow(region)
            for obj_id in range(first, first + count):
                # expel() drives the evacuator, whose on_evict hook lands
                # dirty bytes in the shadow page; pinned objects stay put
                # and migrate later, at their natural eviction.
                self.pool.expel(obj_id)
            return count
        fs = self.fastswap
        shadow = self._shadow.get(region)
        if shadow is not None:
            metrics = self.pool.metrics
            first_page = fs.page_of(shadow)
            for page in range(first_page, first_page + self.region_bytes // fs.page_size):
                if page not in fs.residency:
                    continue
                dirty = fs.residency.is_dirty(page)
                fs.residency.discard(page)
                metrics.evictions += 1
                if dirty:
                    wb = fs.backend.link.wire_cycles(fs.page_size)
                    cycles = wb * fs.config.writeback_sync_fraction
                    metrics.bytes_evacuated += fs.page_size
                    fs.backend.link.stats.bytes_evicted += fs.page_size
                    metrics.cycles += cycles
        return count

    def _on_evict(self, obj_id: int, dirty: bool) -> float:
        """Evacuator hook: the migration step at evacuation time."""
        offset = obj_id * self.object_size
        region = offset // self.region_bytes
        if self._placement.get(region, Placement.OBJECTS) is not Placement.PAGES:
            return 0.0
        if not dirty:
            return 0.0
        shadow = self._ensure_shadow(region)
        page = self.fastswap.page_of(shadow + (offset % self.region_bytes))
        # Resident + dirty without remote traffic: the bytes came from
        # the local object copy.  _reinstate_page self-accounts victim
        # reclaim/writeback cycles, so the hook itself returns 0.
        self.fastswap._reinstate_page(page)
        return 0.0
