"""Hybrid compiler+kernel far memory (§5's "Lessons" extension).

The paper: "we were also surprised how well kernel-based approaches
perform when there is sufficient temporal locality ... This suggests
that a hybrid approach (compiler and kernel) holds promise."  This
package prototypes that idea: local memory is split between a TrackFM
object pool and a kernel page cache, and each allocation is *placed* on
the mechanism that suits its access pattern — page-backed for coarse,
high-temporal-reuse data (zero software cost on hits), object-backed
for fine-grained data (no I/O amplification on misses).
"""

from repro.hybrid.runtime import HybridRuntime, Placement

__all__ = ["HybridRuntime", "Placement"]
