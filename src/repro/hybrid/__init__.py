"""Hybrid compiler+kernel far memory (§5's "Lessons" extension).

The paper: "we were also surprised how well kernel-based approaches
perform when there is sufficient temporal locality ... This suggests
that a hybrid approach (compiler and kernel) holds promise."  This
package prototypes that idea: local memory is split between a TrackFM
object pool and a kernel page cache, and each allocation is *placed* on
the mechanism that suits its access pattern — page-backed for coarse,
high-temporal-reuse data (zero software cost on hits), object-backed
for fine-grained data (no I/O amplification on misses).

Two planes (docs/hybrid.md):

* :class:`HybridRuntime` — static: the caller picks the placement per
  allocation, and the page tier doubles as the degrade/fallback target.
* :class:`AdaptiveHybridRuntime` — online: a :class:`DensityProfiler`
  folds the access stream into windowed region stats, a
  :class:`PathSelector` re-evaluates the paging-vs-object cost
  crossover per region every epoch, and flipped regions are migrated
  between tiers (eagerly for resident state, lazily at evacuation).
"""

from repro.hybrid.placement import Placement
from repro.hybrid.profiler import DensityProfiler, RegionStats
from repro.hybrid.runtime import (
    AdaptiveHybridRuntime,
    HybridHandle,
    HybridRuntime,
    MigrationEvent,
)
from repro.hybrid.selector import PathSelector, SelectorConfig

__all__ = [
    "AdaptiveHybridRuntime",
    "DensityProfiler",
    "HybridHandle",
    "HybridRuntime",
    "MigrationEvent",
    "PathSelector",
    "Placement",
    "RegionStats",
    "SelectorConfig",
]
