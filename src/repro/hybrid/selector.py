"""The path selector: per-region paging-vs-object-fetch decisions.

"A Tale of Two Paths" (arxiv 2406.16005) observes that neither paging
nor object fetch wins everywhere; which is cheaper depends on the
region's *access density*.  The selector evaluates the explicit cost
crossover from :class:`repro.compiler.cost_model.ChunkingCostModel`
(:meth:`~repro.compiler.cost_model.ChunkingCostModel.page_tier_cost` vs
:meth:`~repro.compiler.cost_model.ChunkingCostModel.object_tier_cost`)
over one :class:`~repro.hybrid.profiler.RegionStats` window and picks
the cheaper tier.

Two structural properties the hypothesis suite pins:

* **Monotone in density.**  The object-tier cost is linear in the
  window's access count while the page-tier cost is flat, so raising
  density (more accesses over the same footprint) can only move a
  decision *toward* pages, never pages → objects — and lowering it can
  only move a decision toward objects.
* **Hysteresis, hence idempotence.**  To flip away from the current
  placement the other tier must be cheaper by a factor of
  ``1 + hysteresis``.  Immediately after a flip the freshly chosen tier
  is *more* than ``1 + hysteresis`` ahead on the same window, so
  re-running selection with unchanged counters never flips back:
  decisions are stable under replay, and migration is idempotent.

The selector holds no mutable state: every decision is a pure function
of ``(stats, current placement)`` and the frozen cost table, which is
what lets every adaptive run replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.compiler.cost_model import ChunkingCostModel
from repro.errors import RuntimeConfigError
from repro.hybrid.placement import Placement
from repro.hybrid.profiler import RegionStats
from repro.net.link import BYTES_PER_CYCLE_25G
from repro.units import BASE_PAGE


@dataclass(frozen=True)
class SelectorConfig:
    """Tuning for the path selector (all pure, all deterministic)."""

    #: Required cost advantage (relative) before flipping tiers.
    hysteresis: float = 0.25
    #: Assumed probability a granule is already local on first touch;
    #: the selector deliberately prices the cold worst case by default.
    resident_fraction: float = 0.0
    #: Kernel reclaim charged per page fault under memory pressure
    #: (mirrors :class:`repro.fastswap.runtime.FastswapConfig`).
    reclaim_cycles: float = 2_000.0
    #: Windows with fewer accesses than this are too noisy to act on.
    min_accesses: int = 8
    #: Page size the wire-amplification term prices a fault at.
    page_bytes: int = BASE_PAGE
    #: Link bandwidth for the wire terms (cycles = bytes / this).
    wire_bytes_per_cycle: float = BYTES_PER_CYCLE_25G

    def __post_init__(self) -> None:
        if self.hysteresis < 0.0:
            raise RuntimeConfigError("hysteresis must be >= 0")
        if not 0.0 <= self.resident_fraction < 1.0:
            raise RuntimeConfigError("resident_fraction must be in [0, 1)")
        if self.min_accesses < 1:
            raise RuntimeConfigError("min_accesses must be >= 1")
        if self.page_bytes <= 0:
            raise RuntimeConfigError("page_bytes must be positive")
        if self.wire_bytes_per_cycle <= 0:
            raise RuntimeConfigError("wire bandwidth must be positive")


class PathSelector:
    """Chooses the serving tier for one region from one window."""

    def __init__(
        self,
        cost_model: ChunkingCostModel,
        config: SelectorConfig = SelectorConfig(),
    ) -> None:
        self.cost_model = cost_model
        self.config = config

    def _wire_terms(self) -> Tuple[float, float]:
        """Per-miss wire serialization (object, page): I/O amplification."""
        cfg = self.config
        return (
            self.cost_model.object_size / cfg.wire_bytes_per_cycle,
            cfg.page_bytes / cfg.wire_bytes_per_cycle,
        )

    def tier_costs(self, stats: RegionStats) -> Tuple[float, float]:
        """``(object_cycles, page_cycles)`` predicted for the window."""
        cfg = self.config
        wire_object, wire_page = self._wire_terms()
        object_cost = self.cost_model.object_tier_cost(
            stats.accesses,
            stats.distinct_objects,
            resident_fraction=cfg.resident_fraction,
            wire_object_cycles=wire_object,
        )
        page_cost = self.cost_model.page_tier_cost(
            stats.accesses,
            stats.distinct_pages,
            resident_fraction=cfg.resident_fraction,
            reclaim_cycles=cfg.reclaim_cycles,
            wire_page_cycles=wire_page,
        )
        return object_cost, page_cost

    def decide(self, stats: RegionStats, current: Placement) -> Placement:
        """The placement for the next epoch; pure in its arguments."""
        if stats.accesses < self.config.min_accesses:
            return current
        object_cost, page_cost = self.tier_costs(stats)
        margin = 1.0 + self.config.hysteresis
        if current is Placement.OBJECTS:
            if page_cost * margin < object_cost:
                return Placement.PAGES
            return Placement.OBJECTS
        if object_cost * margin < page_cost:
            return Placement.OBJECTS
        return Placement.PAGES

    def crossover_density(self, stats: RegionStats) -> float:
        """The window's break-even accesses/page (diagnostics/figures)."""
        pages = max(1, stats.distinct_pages)
        wire_object, wire_page = self._wire_terms()
        return self.cost_model.paging_crossover_density(
            objects_touched_per_page=stats.distinct_objects / pages,
            resident_fraction=self.config.resident_fraction,
            reclaim_cycles=self.config.reclaim_cycles,
            wire_object_cycles=wire_object,
            wire_page_cycles=wire_page,
        )
