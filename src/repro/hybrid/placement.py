"""The placement axis shared by the static and adaptive hybrid planes."""

from __future__ import annotations

import enum


class Placement(enum.Enum):
    """Which mechanism backs an allocation (or, adaptively, a region)."""

    #: TrackFM objects: guarded, sub-page granularity.
    OBJECTS = "objects"
    #: Kernel pages: unguarded, page granularity, fault on miss.
    PAGES = "pages"
