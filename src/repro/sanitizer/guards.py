"""Guard/evacuation classification and the reaching-guards dataflow.

The sanitizer's core question is flow-sensitive: *at this program
point, which localized addresses are still valid?*  A localizer call
(``tfm_guard_read``/``tfm_guard_write``, the chunk locality derefs, the
chase derefs) returns a canonical address whose object is guaranteed
local — but only until the next *evacuation point*: any runtime entry
(another guard, an allocator call, a chunk begin/end) or an unknown
call may trigger evacuation and move the object remote, after which the
canonical address is a dangling raw pointer (§3.3).

:class:`ReachingGuards` runs the generic engine forward with
intersection join (a localized address is valid only if valid on *all*
paths): the state is the frozenset of localizer ``Call`` instructions
whose results are currently safe to dereference.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dataflow import DataflowAnalysis, Direction
from repro.ir.instructions import Call, Gep, Instruction
from repro.ir.values import Value

#: Runtime calls whose pointer result is a *localized* canonical
#: address: the guards proper (Fig. 4), the chunk boundary-check +
#: locality-guard derefs (Fig. 5), and the chase-prefetch derefs.
LOCALIZER_CALLS = frozenset(
    {
        "tfm_guard_read",
        "tfm_guard_write",
        "tfm_chunk_deref",
        "tfm_chunk_deref_write",
        "tfm_chase_deref",
        "tfm_chase_deref_write",
    }
)

#: The pure guards (for the redundant-guard lint; chunk/chase derefs
#: carry stream bookkeeping, so eliding them is not a pure win).
PURE_GUARD_CALLS = frozenset({"tfm_guard_read", "tfm_guard_write"})

#: Callees that can never enter the TrackFM runtime and therefore never
#: evacuate an object: compile-time address formation, the simulator's
#: print/abort builtins, and LLVM intrinsics.
_SAFE_CALL_PREFIXES = ("global_addr.", "llvm.")
_SAFE_CALLS = frozenset({"print_i64", "print_f64", "abort"})


def is_localizer(inst: Instruction) -> bool:
    """Does ``inst`` return a localized (canonical, pinned-ish) address?"""
    return isinstance(inst, Call) and inst.callee in LOCALIZER_CALLS


def is_pure_guard(inst: Instruction) -> bool:
    return isinstance(inst, Call) and inst.callee in PURE_GUARD_CALLS


def is_evacuation_point(inst: Instruction) -> bool:
    """May executing ``inst`` evacuate (move remote) a local object?

    Conservatively, every call is an evacuation point unless it is in
    the known-safe set: runtime entries evacuate by design, and calls
    to defined or unknown functions may reach the runtime transitively.
    Localizer calls are themselves evacuation points *for other
    objects* — guarding ``q`` may evict the object behind ``p``.
    """
    if not isinstance(inst, Call):
        return False
    if inst.callee in _SAFE_CALLS:
        return False
    return not any(inst.callee.startswith(p) for p in _SAFE_CALL_PREFIXES)


def guarded_pointer(inst: Call) -> Optional[Value]:
    """The raw (non-canonical) pointer a localizer call protects."""
    if inst.callee in LOCALIZER_CALLS and inst.args:
        return inst.args[0]
    return None


def localized_root(value: Value) -> Optional[Call]:
    """The localizer call ``value`` derives from through geps, if any.

    Guard results are canonical addresses; pointer arithmetic on them
    stays within the localized object, so the sanitizer treats
    ``gep(gep(guard, i), j)`` as the same localized address (the
    GEP-transparency the reaching-guards check needs).
    """
    node = value
    while isinstance(node, Gep):
        node = node.base
    if isinstance(node, Call) and is_localizer(node):
        return node
    return None


class ReachingGuards(DataflowAnalysis):
    """Forward must-analysis: which localized addresses are valid here.

    State: ``frozenset`` of localizer :class:`Call` instructions whose
    results may still be dereferenced.  An evacuation point kills the
    whole set; a localizer call then gens itself (kill happens first —
    the guard may evict every *other* local object before pinning its
    own target).  Join is intersection: validity must hold on all paths.
    """

    direction = Direction.FORWARD

    def boundary_state(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer(self, inst: Instruction, state: frozenset) -> frozenset:
        if is_evacuation_point(inst):
            state = frozenset()
        if is_localizer(inst):
            state = state | {inst}
        return state
