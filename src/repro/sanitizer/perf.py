"""Perf diagnostics (TFM-P3xx): the access auditor as a linter.

Where the S-codes prove *safety*, the P-codes surface *waste*: far-
memory traffic the static auditor (:mod:`repro.analysis.oblivious`)
proves avoidable.  They are opt-in (``Sanitizer(perf=True)`` or
``--perf`` on the CLI) because they need the whole-program audit —
interprocedural provenance, loop classification, traffic predictions —
which is overkill for the between-passes safety checks.

* **TFM-P301** — an oblivious loop (exact streams, known trips) has no
  ``tfm_prefetch_sched`` in its preheader: its first touches demand-miss
  even though the compiler could have programmed the exact schedule.
* **TFM-P302** — a loop's predicted fetch amplification exceeds the
  threshold: the object size fights the access pattern (sparse stride
  over dense objects), so most fetched bytes are never read.
* **TFM-P303** — a guarded access with a loop-invariant address
  (stride 0) sits inside the loop: the guard re-runs every iteration
  but one hoisted guard (plus a pin) would do.
* **TFM-P304** — a ``tfm_prefetch_sched`` exists whose stream is not
  exact (opaque/partial, or no matching chunked access): the schedule
  fetches objects the loop may never touch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cfg import CFG
from repro.analysis.loops import find_loops
from repro.analysis.oblivious import LoopClass, audit_module
from repro.analysis.symbolic import SymbolicAddressAnalysis
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.machine.costs import CostTable, DEFAULT_COSTS
from repro.sanitizer.diagnostics import (
    Diagnostic,
    HIGH_FETCH_AMPLIFICATION,
    INVARIANT_GUARD_IN_LOOP,
    OBLIVIOUS_NOT_PREFETCHED,
    SCHEDULE_FOR_OPAQUE_STREAM,
    Severity,
)
from repro.units import BASE_PAGE

PREFETCH_SCHED = "tfm_prefetch_sched"
CHUNK_DEREFS = ("tfm_chunk_deref", "tfm_chunk_deref_write")

#: Loops shorter than this aren't worth a schedule; don't nag (matches
#: the pass's MIN_SCHEDULED_TRIPS).
MIN_PREFETCH_TRIPS = 4
#: Fetch-amplification ratio above which TFM-P302 fires.
AMPLIFICATION_THRESHOLD = 2.0


def check_module_perf(
    module: Module,
    object_size: int = BASE_PAGE,
    costs: CostTable = DEFAULT_COSTS,
    entry: str = "main",
) -> List[Diagnostic]:
    """Run the whole-program audit and render findings as diagnostics."""
    diags: List[Diagnostic] = []
    audit = audit_module(
        module,
        object_size=object_size,
        costs=costs,
        entry=entry,
        reachable_only=False,  # lint everything in the file
    )
    scheduled = _scheduled_preheaders(module)

    for la in audit.loops:
        anchor = la.loop.header.instructions[0]
        if (
            la.classification is LoopClass.OBLIVIOUS
            and la.has_heap_streams
            and la.trips is not None
            and la.trips >= MIN_PREFETCH_TRIPS
            and (la.prediction is None or la.prediction.objects >= 2)
            and id(la.loop.header) not in scheduled.get(la.function, set())
        ):
            diags.append(
                Diagnostic.at(
                    OBLIVIOUS_NOT_PREFETCHED,
                    Severity.WARNING,
                    f"loop is oblivious ({len(la.streams)} exact stream(s), "
                    f"{la.trips} trips) but has no programmed prefetch "
                    "schedule; its first touches will demand-miss",
                    anchor,
                )
            )
        if (
            la.prediction is not None
            and la.prediction.bytes_used > 0
            and la.prediction.fetch_amplification >= AMPLIFICATION_THRESHOLD
        ):
            amp = la.prediction.fetch_amplification
            diags.append(
                Diagnostic.at(
                    HIGH_FETCH_AMPLIFICATION,
                    Severity.WARNING,
                    f"loop fetches {la.prediction.bytes_fetched} B to use "
                    f"{la.prediction.bytes_used} B ({amp:.1f}x amplification); "
                    f"a smaller object size or denser layout would help",
                    anchor,
                )
            )
        for stream in la.streams:
            if stream.stride == 0 and stream.base is not None:
                diags.append(
                    Diagnostic.at(
                        INVARIANT_GUARD_IN_LOOP,
                        Severity.WARNING,
                        "address is loop-invariant (stride 0): the guard "
                        "re-runs every iteration but could be hoisted to "
                        "the preheader",
                        stream.access,
                    )
                )

    diags.extend(_check_schedules(module))
    return diags


def _scheduled_preheaders(module: Module) -> dict:
    """function name -> set of header-block ids with a sched'd preheader."""
    out: dict = {}
    for func in module.defined_functions():
        sched_blocks = {
            id(inst.parent)
            for inst in func.instructions()
            if isinstance(inst, Call) and inst.callee == PREFETCH_SCHED
        }
        if not sched_blocks:
            continue
        cfg = CFG(func)
        headers = set()
        for loop in find_loops(func):
            pre = loop.preheader(cfg)
            if pre is not None and id(pre) in sched_blocks:
                headers.add(id(loop.header))
        out[func.name] = headers
    return out


def _check_schedules(module: Module) -> List[Diagnostic]:
    """TFM-P304: every emitted schedule must match an exact stream."""
    diags: List[Diagnostic] = []
    for func in module.defined_functions():
        sched_calls = [
            inst
            for inst in func.instructions()
            if isinstance(inst, Call) and inst.callee == PREFETCH_SCHED
        ]
        if not sched_calls:
            continue
        loop_info = find_loops(func)
        cfg = CFG(func)
        analysis = SymbolicAddressAnalysis(func, loop_info)
        preheaders = {}
        for loop in loop_info:
            pre = loop.preheader(cfg)
            if pre is not None:
                preheaders.setdefault(id(pre), []).append(loop)
        for call in sched_calls:
            verdict = _schedule_verdict(call, preheaders, analysis)
            if verdict is not None:
                diags.append(
                    Diagnostic.at(
                        SCHEDULE_FOR_OPAQUE_STREAM, Severity.WARNING, verdict, call
                    )
                )
    return diags


def _schedule_verdict(call, preheaders, analysis) -> Optional[str]:
    """None when the schedule is backed by an exact stream; else why not."""
    from repro.ir.values import Constant

    stream_arg = call.args[5] if len(call.args) == 6 else None
    if not isinstance(stream_arg, Constant):
        return "schedule's stream id is not a compile-time constant"
    stream_id = int(stream_arg.value)
    loops = preheaders.get(id(call.parent), [])
    if not loops:
        return "schedule is not in any loop preheader"
    for loop in loops:
        for access in analysis.loop_accesses(loop):
            if not isinstance(access, (Load, Store)):
                continue
            ptr = access.pointer
            if not (isinstance(ptr, Call) and ptr.callee in CHUNK_DEREFS):
                continue
            sid = ptr.args[1]
            if not isinstance(sid, Constant) or int(sid.value) != stream_id:
                continue
            sym = analysis.stream_of(access)
            if sym is not None and sym.exact and sym.trips is not None:
                return None
            return (
                f"stream {stream_id}'s access is not an exact affine "
                "stream; the schedule would fetch objects the loop may "
                "never touch"
            )
    return f"no chunked access consumes stream {stream_id} in this loop"
