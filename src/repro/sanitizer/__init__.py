"""Guard-safety sanitizer for TrackFM-transformed IR.

TrackFM's correctness rests on an invariant the compiler must
*establish* and nothing previously *checked*: every dereference of a
heap-may pointer executes through a guard, and the localized address a
guard returns must not outlive an evacuation point (§3.3, Fig. 4).
This package proves it statically, post-pipeline or between passes:

* :class:`Sanitizer` / :func:`sanitize_module` — run all checks,
  returning a :class:`SanitizerReport` of :class:`Diagnostic`\\ s;
* ``python -m repro.sanitizer file.ir`` — lint textual IR from the
  command line (non-zero exit on errors);
* ``CompilerConfig(verify_guards=True)`` — re-run the sanitizer after
  every pipeline stage to bisect which pass broke an invariant.

Diagnostic codes are documented in ``docs/sanitizer.md`` and in
:mod:`repro.sanitizer.diagnostics`.
"""

from repro.sanitizer.checks import GuardSafetyChecker, check_function
from repro.sanitizer.core import Sanitizer, sanitize_module
from repro.sanitizer.diagnostics import (
    CHUNK_INVARIANT,
    CODE_SUMMARIES,
    GUARD_ON_LOCAL,
    HIGH_FETCH_AMPLIFICATION,
    INVARIANT_GUARD_IN_LOOP,
    LOCALIZED_ESCAPE,
    OBLIVIOUS_NOT_PREFETCHED,
    REDUNDANT_GUARD,
    SCHEDULE_FOR_OPAQUE_STREAM,
    STALE_LOCALIZED,
    UNGUARDED_DEREF,
    Diagnostic,
    SanitizerReport,
    Severity,
)
from repro.sanitizer.perf import check_module_perf
from repro.sanitizer.guards import (
    LOCALIZER_CALLS,
    ReachingGuards,
    is_evacuation_point,
    is_localizer,
    localized_root,
)

__all__ = [
    "Sanitizer",
    "sanitize_module",
    "GuardSafetyChecker",
    "check_function",
    "Diagnostic",
    "SanitizerReport",
    "Severity",
    "UNGUARDED_DEREF",
    "LOCALIZED_ESCAPE",
    "STALE_LOCALIZED",
    "CHUNK_INVARIANT",
    "REDUNDANT_GUARD",
    "GUARD_ON_LOCAL",
    "OBLIVIOUS_NOT_PREFETCHED",
    "HIGH_FETCH_AMPLIFICATION",
    "INVARIANT_GUARD_IN_LOOP",
    "SCHEDULE_FOR_OPAQUE_STREAM",
    "check_module_perf",
    "CODE_SUMMARIES",
    "ReachingGuards",
    "LOCALIZER_CALLS",
    "is_localizer",
    "is_evacuation_point",
    "localized_root",
]
