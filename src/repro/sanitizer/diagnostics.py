"""Structured diagnostics for the guard-safety sanitizer.

Every finding carries a machine-readable code, a severity, and a
precise location (function, block, instruction), so CI can gate on
errors while humans and tools triage the rest.

Code space::

    TFM-S1xx   errors — the compiled module is unsafe under far memory
    TFM-S2xx   lints  — safe but wasteful; fodder for optimizations
    TFM-P3xx   perf   — static access-auditor findings (opt-in --perf):
               far-memory traffic the compiler could have avoided
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.instructions import Instruction


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: A heap-may load/store dereferences a pointer that never passed
#: through a guard (or chunk/chase locality deref) on some path.
UNGUARDED_DEREF = "TFM-S101"
#: A localized (guard-returned) address escapes: stored to memory,
#: returned, passed to a call, or phi-merged with unlocalized values.
LOCALIZED_ESCAPE = "TFM-S102"
#: A localized address is used after a potential evacuation point, so
#: the object it names may have moved remote since the guard ran.
STALE_LOCALIZED = "TFM-S103"
#: A chunked access violates the chunk protocol: not routed through a
#: locality-guarded deref, or no dominating ``tfm_chunk_begin``.
CHUNK_INVARIANT = "TFM-S104"
#: A guard is dominated by an earlier guard of the same pointer with no
#: intervening evacuation point; a guard-elision pass could drop it.
REDUNDANT_GUARD = "TFM-S201"
#: A guard protects a pointer that provenance proves can never be a
#: TrackFM pointer (stack/global only) — a wasted custody check.
GUARD_ON_LOCAL = "TFM-S202"

#: An oblivious loop (exact affine streams, known trip count) runs with
#: no programmed prefetch schedule: every first touch demand-misses.
OBLIVIOUS_NOT_PREFETCHED = "TFM-P301"
#: A loop fetches far more bytes than it uses (sparse stride over
#: dense objects): the object size or layout fights the access pattern.
HIGH_FETCH_AMPLIFICATION = "TFM-P302"
#: A guarded access whose address is loop-invariant (stride 0): the
#: guard re-runs every iteration but could be hoisted to the preheader.
INVARIANT_GUARD_IN_LOOP = "TFM-P303"
#: A ``tfm_prefetch_sched`` call with no matching exact stream: the
#: schedule would fetch objects the loop never touches.
SCHEDULE_FOR_OPAQUE_STREAM = "TFM-P304"

#: Human one-liners keyed by code, for ``--explain`` style output.
CODE_SUMMARIES = {
    UNGUARDED_DEREF: "heap-may dereference not covered by a guard",
    LOCALIZED_ESCAPE: "localized address escapes its guard window",
    STALE_LOCALIZED: "localized address used across an evacuation point",
    CHUNK_INVARIANT: "chunked access breaks the chunk protocol",
    REDUNDANT_GUARD: "guard dominated by an equivalent earlier guard",
    GUARD_ON_LOCAL: "guard on a provably stack/global-only pointer",
    OBLIVIOUS_NOT_PREFETCHED: "oblivious loop not prefetched",
    HIGH_FETCH_AMPLIFICATION: "loop fetches far more bytes than it uses",
    INVARIANT_GUARD_IN_LOOP: "loop-invariant guard not hoisted",
    SCHEDULE_FOR_OPAQUE_STREAM: "prefetch schedule emitted for opaque stream",
}


@dataclass
class Diagnostic:
    """One sanitizer finding, locatable and machine-readable."""

    code: str
    severity: Severity
    message: str
    function: str
    block: str = ""
    instruction: str = ""

    @classmethod
    def at(
        cls,
        code: str,
        severity: Severity,
        message: str,
        inst: Instruction,
    ) -> "Diagnostic":
        """Build a diagnostic anchored at ``inst``."""
        block = inst.parent
        func = block.parent if block is not None else None
        return cls(
            code=code,
            severity=severity,
            message=message,
            function=func.name if func is not None else "?",
            block=block.name if block is not None else "?",
            instruction=inst.render(),
        )

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def matches(self, codes) -> bool:
        """True when the code matches any entry (exact or prefix).

        ``TFM-P`` matches every perf diagnostic, ``TFM-S1`` every
        safety error, ``TFM-S101`` exactly one code — ruff-style.
        """
        return any(self.code.startswith(c) for c in codes)

    def as_dict(self) -> dict:
        """JSON-ready representation (``--format json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
        }

    def render(self) -> str:
        """``error[TFM-S101] @main %body: 'load i64, %p': message``."""
        loc = f"@{self.function}"
        if self.block:
            loc += f" %{self.block}"
        at = f" '{self.instruction}'" if self.instruction else ""
        return f"{self.severity.value}[{self.code}] {loc}:{at} {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass
class SanitizerReport:
    """All findings from one sanitizer run over a module."""

    module_name: str
    strict: bool
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (lints do not fail a run)."""
        return not self.errors

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def filtered(self, select=None, ignore=None) -> "SanitizerReport":
        """A new report keeping only selected, non-ignored diagnostics.

        ``select``/``ignore`` are iterables of code prefixes (see
        :meth:`Diagnostic.matches`).  ``select=None`` keeps everything;
        ``ignore`` is subtracted afterwards.  Exit-code policy is then
        computed from the *filtered* report, so ``--ignore TFM-S101``
        really does silence that failure class.
        """
        kept = self.diagnostics
        if select is not None:
            kept = [d for d in kept if d.matches(select)]
        if ignore:
            kept = [d for d in kept if not d.matches(ignore)]
        return SanitizerReport(
            module_name=self.module_name, strict=self.strict, diagnostics=kept
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (``--format json``)."""
        return {
            "module": self.module_name,
            "strict": self.strict,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render(self, max_lines: Optional[int] = None) -> str:
        lines = [d.render() for d in self.diagnostics]
        if max_lines is not None and len(lines) > max_lines:
            lines = lines[:max_lines] + [f"... {len(lines) - max_lines} more"]
        mode = "strict" if self.strict else "incremental"
        lines.append(
            f"{self.module_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) [{mode}]"
        )
        return "\n".join(lines)
