"""Structured diagnostics for the guard-safety sanitizer.

Every finding carries a machine-readable code, a severity, and a
precise location (function, block, instruction), so CI can gate on
errors while humans and tools triage the rest.

Code space::

    TFM-S1xx   errors — the compiled module is unsafe under far memory
    TFM-S2xx   lints  — safe but wasteful; fodder for optimizations
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.instructions import Instruction


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: A heap-may load/store dereferences a pointer that never passed
#: through a guard (or chunk/chase locality deref) on some path.
UNGUARDED_DEREF = "TFM-S101"
#: A localized (guard-returned) address escapes: stored to memory,
#: returned, passed to a call, or phi-merged with unlocalized values.
LOCALIZED_ESCAPE = "TFM-S102"
#: A localized address is used after a potential evacuation point, so
#: the object it names may have moved remote since the guard ran.
STALE_LOCALIZED = "TFM-S103"
#: A chunked access violates the chunk protocol: not routed through a
#: locality-guarded deref, or no dominating ``tfm_chunk_begin``.
CHUNK_INVARIANT = "TFM-S104"
#: A guard is dominated by an earlier guard of the same pointer with no
#: intervening evacuation point; a guard-elision pass could drop it.
REDUNDANT_GUARD = "TFM-S201"
#: A guard protects a pointer that provenance proves can never be a
#: TrackFM pointer (stack/global only) — a wasted custody check.
GUARD_ON_LOCAL = "TFM-S202"

#: Human one-liners keyed by code, for ``--explain`` style output.
CODE_SUMMARIES = {
    UNGUARDED_DEREF: "heap-may dereference not covered by a guard",
    LOCALIZED_ESCAPE: "localized address escapes its guard window",
    STALE_LOCALIZED: "localized address used across an evacuation point",
    CHUNK_INVARIANT: "chunked access breaks the chunk protocol",
    REDUNDANT_GUARD: "guard dominated by an equivalent earlier guard",
    GUARD_ON_LOCAL: "guard on a provably stack/global-only pointer",
}


@dataclass
class Diagnostic:
    """One sanitizer finding, locatable and machine-readable."""

    code: str
    severity: Severity
    message: str
    function: str
    block: str = ""
    instruction: str = ""

    @classmethod
    def at(
        cls,
        code: str,
        severity: Severity,
        message: str,
        inst: Instruction,
    ) -> "Diagnostic":
        """Build a diagnostic anchored at ``inst``."""
        block = inst.parent
        func = block.parent if block is not None else None
        return cls(
            code=code,
            severity=severity,
            message=message,
            function=func.name if func is not None else "?",
            block=block.name if block is not None else "?",
            instruction=inst.render(),
        )

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """``error[TFM-S101] @main %body: 'load i64, %p': message``."""
        loc = f"@{self.function}"
        if self.block:
            loc += f" %{self.block}"
        at = f" '{self.instruction}'" if self.instruction else ""
        return f"{self.severity.value}[{self.code}] {loc}:{at} {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass
class SanitizerReport:
    """All findings from one sanitizer run over a module."""

    module_name: str
    strict: bool
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (lints do not fail a run)."""
        return not self.errors

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render(self, max_lines: Optional[int] = None) -> str:
        lines = [d.render() for d in self.diagnostics]
        if max_lines is not None and len(lines) > max_lines:
            lines = lines[:max_lines] + [f"... {len(lines) - max_lines} more"]
        mode = "strict" if self.strict else "incremental"
        lines.append(
            f"{self.module_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) [{mode}]"
        )
        return "\n".join(lines)
