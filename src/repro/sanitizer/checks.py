"""The guard-safety checks, one function at a time.

Four families (§3.3's invariants, made checkable):

* **Unguarded deref** (``TFM-S101``): every load/store whose pointer
  may be a TrackFM (heap) pointer must dereference the *result* of a
  localizer call — geps over it included — not the raw pointer.
* **Escape** (``TFM-S102``/``TFM-S103``): a localized address is only
  meaningful between its guard and the next evacuation point; it must
  not be stored to memory, returned, passed to calls, merged with
  unlocalized values, or used after an evacuation point.
* **Chunk invariant** (``TFM-S104``): chunked accesses go through
  ``tfm_chunk_deref`` and every chunk deref is dominated by the
  ``tfm_chunk_begin`` that set up its stream.
* **Redundant guard** (``TFM-S201``, lint): a pure guard whose pointer
  is already covered by a valid earlier guard could be elided.

Checks run in two modes.  *Strict* (post-pipeline, and the CLI) demands
the final state: every heap-may access localized.  *Incremental* (the
``verify_guards`` hook between passes) only validates what transforms
claim to have done — an access marked guarded/chunked/chased whose
pointer is no longer localized means the last pass broke the invariant.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.analysis.provenance import ProvenanceAnalysis
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    Instruction,
    Load,
    Phi,
    PtrToInt,
    Ret,
    Select,
    Store,
)
from repro.ir.values import Constant, Value
from repro.sanitizer.diagnostics import (
    CHUNK_INVARIANT,
    GUARD_ON_LOCAL,
    LOCALIZED_ESCAPE,
    REDUNDANT_GUARD,
    STALE_LOCALIZED,
    UNGUARDED_DEREF,
    Diagnostic,
    Severity,
)
from repro.sanitizer.guards import (
    ReachingGuards,
    guarded_pointer,
    is_localizer,
    is_pure_guard,
    localized_root,
)

#: Access-side metadata marks meaning "a transform localized me".
_TRANSFORMED_MARKS = ("tfm.guarded", "tfm.chunked", "tfm.chase")
#: Pending mark meaning "guard-analysis scheduled me for localization".
_PENDING_MARK = "tfm.guard"

_CHUNK_DEREFS = frozenset({"tfm_chunk_deref", "tfm_chunk_deref_write"})
_CHUNK_BEGIN = "tfm_chunk_begin"


class GuardSafetyChecker:
    """Run every check over one defined function."""

    def __init__(self, func: Function, strict: bool = True) -> None:
        self.func = func
        self.strict = strict
        self.cfg = CFG(func)
        self.dom = DominatorTree(self.cfg)
        self.reaching = ReachingGuards(func, self.cfg).run()
        self.prov = ProvenanceAnalysis(func)
        self.diags: List[Diagnostic] = []
        self._chunk_begins = self._collect_chunk_begins()

    # -- driver ---------------------------------------------------------

    def check(self) -> List[Diagnostic]:
        reachable = self.cfg.reachable()
        for block in self.func.blocks:
            if block not in reachable:
                continue
            state = self.reaching.in_state(block)
            if not isinstance(state, frozenset):
                continue  # unreached by the dataflow (degenerate CFG)
            for inst in block.instructions:
                self._check_instruction(inst, state)
                state = self.reaching.transfer(inst, state)
        return self.diags

    def _emit(
        self, code: str, severity: Severity, message: str, inst: Instruction
    ) -> None:
        self.diags.append(Diagnostic.at(code, severity, message, inst))

    # -- per-instruction dispatch ---------------------------------------

    def _check_instruction(self, inst: Instruction, state: frozenset) -> None:
        if isinstance(inst, Phi):
            self._check_phi(inst)
            return
        self._check_localized_uses(inst, state)
        if isinstance(inst, (Load, Store)):
            self._check_deref(inst, state)
            self._check_chunk_mark(inst)
        if isinstance(inst, Call):
            if inst.callee in _CHUNK_DEREFS:
                self._check_chunk_deref(inst)
            if is_localizer(inst):
                self._check_guard_target(inst)
            if is_pure_guard(inst):
                self._check_redundant_guard(inst, state)

    # -- escape / staleness ---------------------------------------------

    def _check_localized_uses(self, inst: Instruction, state: frozenset) -> None:
        for i, op in enumerate(inst.operands):
            guard = localized_root(op)
            if guard is None:
                continue
            if guard not in state:
                self._emit(
                    STALE_LOCALIZED,
                    Severity.ERROR,
                    f"localized address %{guard.name} (from @{guard.callee}) "
                    "used after a potential evacuation point",
                    inst,
                )
            self._check_escape(inst, op, i, guard)

    def _check_escape(
        self, inst: Instruction, op: Value, index: int, guard: Call
    ) -> None:
        where: Optional[str] = None
        if isinstance(inst, Store) and index == 0:
            where = "stored to memory"
        elif isinstance(inst, Ret):
            where = "returned from the function"
        elif isinstance(inst, Call):
            where = f"passed to call @{inst.callee}"
        elif isinstance(inst, PtrToInt):
            where = "cast to an integer (laundering the localization)"
        elif isinstance(inst, Select) and index in (1, 2):
            other = inst.operands[2 if index == 1 else 1]
            if localized_root(other) is None:
                where = "select-merged with an unlocalized pointer"
        if where is not None:
            self._emit(
                LOCALIZED_ESCAPE,
                Severity.ERROR,
                f"localized address %{guard.name} (from @{guard.callee}) "
                f"escapes its guard window: {where}",
                inst,
            )

    def _check_phi(self, phi: Phi) -> None:
        roots = [(value, pred, localized_root(value)) for value, pred in phi.incoming]
        localized = [r for r in roots if r[2] is not None]
        if not localized:
            return
        if len(localized) < len(roots):
            value, _pred, guard = localized[0]
            assert guard is not None
            self._emit(
                LOCALIZED_ESCAPE,
                Severity.ERROR,
                f"localized address %{guard.name} (from @{guard.callee}) "
                "phi-merged with unlocalized pointers",
                phi,
            )
        for _value, pred, guard in localized:
            assert guard is not None
            out = self.reaching.out_state(pred)
            if isinstance(out, frozenset) and guard not in out:
                self._emit(
                    STALE_LOCALIZED,
                    Severity.ERROR,
                    f"localized address %{guard.name} flows along the edge "
                    f"%{pred.name} -> %{phi.parent.name if phi.parent else '?'} "
                    "after a potential evacuation point",
                    phi,
                )

    # -- unguarded dereference ------------------------------------------

    def _check_deref(self, inst: Instruction, state: frozenset) -> None:
        assert isinstance(inst, (Load, Store))
        ptr = inst.pointer
        if localized_root(ptr) is not None:
            return  # validity already checked by _check_localized_uses
        if not self.prov.of(ptr).may_be_heap():
            return  # provably stack/global: no guard needed (§3.1)
        marks = [m for m in _TRANSFORMED_MARKS if inst.metadata.get(m)]
        if marks:
            self._emit(
                UNGUARDED_DEREF,
                Severity.ERROR,
                f"access marked {marks[0]!r} but its pointer is not a "
                "localized address — a pass dropped or bypassed the guard",
                inst,
            )
            return
        if not self.strict:
            return  # untransformed-yet access; only strict mode demands it
        if inst.metadata.get(_PENDING_MARK):
            message = (
                "guard candidate was never transformed (pipeline ended "
                "with the 'tfm.guard' mark still pending)"
            )
        else:
            message = (
                "heap-may pointer dereferenced without a guard or "
                "locality-guarded chunk/chase deref"
            )
        self._emit(UNGUARDED_DEREF, Severity.ERROR, message, inst)

    # -- chunk protocol --------------------------------------------------

    def _collect_chunk_begins(self) -> List[Tuple[Call, BasicBlock, int]]:
        begins: List[Tuple[Call, BasicBlock, int]] = []
        for block in self.func.blocks:
            for i, inst in enumerate(block.instructions):
                if isinstance(inst, Call) and inst.callee == _CHUNK_BEGIN:
                    begins.append((inst, block, i))
        return begins

    def _check_chunk_mark(self, inst: Instruction) -> None:
        assert isinstance(inst, (Load, Store))
        if not inst.metadata.get("tfm.chunked"):
            return
        root = localized_root(inst.pointer)
        if root is None or root.callee not in _CHUNK_DEREFS:
            self._emit(
                CHUNK_INVARIANT,
                Severity.ERROR,
                "access marked 'tfm.chunked' is not routed through a "
                "boundary-checked tfm_chunk_deref",
                inst,
            )

    def _check_chunk_deref(self, deref: Call) -> None:
        if len(deref.args) < 2 or not isinstance(deref.args[1], Constant):
            self._emit(
                CHUNK_INVARIANT,
                Severity.ERROR,
                "chunk deref has no constant stream id; the runtime cannot "
                "associate it with its tfm_chunk_begin",
                deref,
            )
            return
        stream = deref.args[1]
        block = deref.parent
        assert block is not None
        index = block.index_of(deref)
        for begin, bblock, bindex in self._chunk_begins:
            if not begin.args or not isinstance(begin.args[0], Constant):
                continue
            if begin.args[0] != stream:
                continue
            if bblock is block and bindex < index:
                return
            if bblock is not block and self.dom.dominates(bblock, block):
                return
        self._emit(
            CHUNK_INVARIANT,
            Severity.ERROR,
            f"chunk deref of stream {stream.value} is not dominated by a "
            "tfm_chunk_begin for that stream (locality guard never set up)",
            deref,
        )

    # -- lints -----------------------------------------------------------

    def _check_guard_target(self, guard: Call) -> None:
        ptr = guarded_pointer(guard)
        if ptr is None:
            return
        if self.prov.of(ptr).definitely_local_only():
            self._emit(
                GUARD_ON_LOCAL,
                Severity.WARNING,
                f"guard @{guard.callee} protects a pointer provenance proves "
                "is stack/global-only; the custody check is wasted",
                guard,
            )

    def _check_redundant_guard(self, guard: Call, state: frozenset) -> None:
        ptr = guarded_pointer(guard)
        if ptr is None:
            return
        for earlier in state:
            if earlier is guard or not is_pure_guard(earlier):
                continue
            if guarded_pointer(earlier) is not ptr:
                continue
            # A write guard establishes custody for reads too; a read
            # guard does not cover a later write's dirty tracking.
            if guard.callee == "tfm_guard_write" and earlier.callee != "tfm_guard_write":
                continue
            self._emit(
                REDUNDANT_GUARD,
                Severity.WARNING,
                f"guard dominated by %{earlier.name} (@{earlier.callee}) on "
                "the same pointer with no intervening evacuation point; "
                "a guard-elision pass could drop it",
                guard,
            )
            return


def check_function(func: Function, strict: bool = True) -> List[Diagnostic]:
    """All guard-safety diagnostics for one defined function."""
    if func.is_declaration:
        return []
    return GuardSafetyChecker(func, strict=strict).check()
