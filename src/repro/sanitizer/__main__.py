"""``python -m repro.sanitizer`` — lint textual IR for guard safety.

Usage::

    python -m repro.sanitizer [--no-strict] [--max-diagnostics N] \\
        [--perf] [--object-size N] [--select CODES] [--ignore CODES] \\
        [--format {text,json}] [--explain] file.ir [more.ir ...]

``--select``/``--ignore`` take comma-separated code prefixes
(ruff-style): ``--select TFM-P`` keeps only perf diagnostics,
``--ignore TFM-S201,TFM-S202`` silences the guard lints.  The exit
status is computed from the *filtered* report.

Exit status: 0 when no file has errors, 1 when any does, 2 when a file
cannot be read, parsed, or structurally verified.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import IRError, IRVerifyError
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.sanitizer.core import Sanitizer
from repro.sanitizer.diagnostics import CODE_SUMMARIES


def _codes(raw: Optional[List[str]]) -> Optional[List[str]]:
    """Flatten repeatable comma-separated code lists."""
    if not raw:
        return None
    out = []
    for chunk in raw:
        out.extend(c.strip() for c in chunk.split(",") if c.strip())
    return out or None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Guard-safety sanitizer for TrackFM-transformed IR.",
    )
    parser.add_argument("files", nargs="*", help="textual .ir files to lint")
    parser.add_argument(
        "--no-strict",
        action="store_true",
        help="between-passes mode: only validate transformed accesses",
    )
    parser.add_argument(
        "--max-diagnostics",
        type=int,
        default=50,
        metavar="N",
        help="print at most N diagnostics per file (default 50)",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="also run the TFM-P3xx perf audit (whole-program analysis)",
    )
    parser.add_argument(
        "--object-size",
        type=int,
        default=4096,
        metavar="N",
        help="object size the perf audit assumes (default 4096)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only report codes matching these comma-separated prefixes",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="drop codes matching these comma-separated prefixes",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.explain:
        for code, summary in sorted(CODE_SUMMARIES.items()):
            print(f"{code}  {summary}")
        return 0
    if not args.files:
        print("error: no input files (try --explain)", file=sys.stderr)
        return 2
    select = _codes(args.select)
    ignore = _codes(args.ignore)
    sanitizer = Sanitizer(
        strict=not args.no_strict,
        perf=args.perf,
        object_size=args.object_size,
    )
    worst = 0
    json_out = []
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        try:
            module = parse_module(text, name=path)
            verify_module(module)
        except (IRError, IRVerifyError) as exc:
            print(f"{path}: invalid IR: {exc}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        report = sanitizer.run(module).filtered(select=select, ignore=ignore)
        if args.format == "json":
            entry = report.as_dict()
            entry["file"] = path
            json_out.append(entry)
        else:
            print(report.render(max_lines=args.max_diagnostics))
        if not report.ok:
            worst = max(worst, 1)
    if args.format == "json":
        print(json.dumps(json_out, indent=2))
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
