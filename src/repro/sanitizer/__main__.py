"""``python -m repro.sanitizer`` — lint textual IR for guard safety.

Usage::

    python -m repro.sanitizer [--no-strict] [--max-diagnostics N] \\
        [--explain] file.ir [more.ir ...]

Exit status: 0 when no file has errors, 1 when any does, 2 when a file
cannot be read, parsed, or structurally verified.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import IRError, IRVerifyError
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.sanitizer.core import Sanitizer
from repro.sanitizer.diagnostics import CODE_SUMMARIES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Guard-safety sanitizer for TrackFM-transformed IR.",
    )
    parser.add_argument("files", nargs="*", help="textual .ir files to lint")
    parser.add_argument(
        "--no-strict",
        action="store_true",
        help="between-passes mode: only validate transformed accesses",
    )
    parser.add_argument(
        "--max-diagnostics",
        type=int,
        default=50,
        metavar="N",
        help="print at most N diagnostics per file (default 50)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.explain:
        for code, summary in sorted(CODE_SUMMARIES.items()):
            print(f"{code}  {summary}")
        return 0
    if not args.files:
        print("error: no input files (try --explain)", file=sys.stderr)
        return 2
    sanitizer = Sanitizer(strict=not args.no_strict)
    worst = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        try:
            module = parse_module(text, name=path)
            verify_module(module)
        except (IRError, IRVerifyError) as exc:
            print(f"{path}: invalid IR: {exc}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        report = sanitizer.run(module)
        print(report.render(max_lines=args.max_diagnostics))
        if not report.ok:
            worst = max(worst, 1)
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
