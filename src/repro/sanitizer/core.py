"""The Sanitizer facade: run every guard-safety check over a module."""

from __future__ import annotations

from typing import List

from repro.ir.module import Module
from repro.sanitizer.checks import check_function
from repro.sanitizer.diagnostics import Diagnostic, SanitizerReport


class Sanitizer:
    """Guard-safety sanitizer over whole modules.

    ``strict=True`` (the default; post-pipeline and CLI behaviour)
    demands the finished-compilation invariant: every heap-may
    dereference localized.  ``strict=False`` is the between-passes mode:
    it only validates invariants transforms claim to have established,
    so it can run after *any* pipeline stage without false positives —
    which is what lets ``verify_guards`` bisect a broken pipeline to the
    pass that broke it.
    """

    def __init__(
        self,
        strict: bool = True,
        max_diagnostics: int = 1000,
        perf: bool = False,
        object_size: int = 4096,
    ) -> None:
        self.strict = strict
        self.max_diagnostics = max_diagnostics
        #: Opt-in TFM-P3xx perf diagnostics (the whole-program auditor).
        self.perf = perf
        #: Object size assumed by the perf audit's traffic predictions.
        self.object_size = object_size

    def run(self, module: Module) -> SanitizerReport:
        """Check every defined function; findings sorted errors-first."""
        report = SanitizerReport(module_name=module.name, strict=self.strict)
        for func in module.defined_functions():
            report.diagnostics.extend(self.run_function(func))
            if len(report.diagnostics) >= self.max_diagnostics:
                break
        if self.perf:
            from repro.sanitizer.perf import check_module_perf

            report.diagnostics.extend(
                check_module_perf(module, object_size=self.object_size)
            )
        report.diagnostics.sort(key=lambda d: (d.severity.value, d.code))
        del report.diagnostics[self.max_diagnostics:]
        return report

    def run_function(self, func) -> List[Diagnostic]:
        return check_function(func, strict=self.strict)


def sanitize_module(module: Module, strict: bool = True) -> SanitizerReport:
    """One-shot convenience wrapper around :class:`Sanitizer`."""
    return Sanitizer(strict=strict).run(module)
