"""STREAM figures: 7 (chunking), 10 (object size), 11 (prefetch), 12 (vs Fastswap)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.aifm.pool import PoolConfig
from repro.bench.harness import CPU_HZ, DEFAULT_BENCH_SCALE, ExperimentResult
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.machine.scale import ScaleModel
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import GB, KB
from repro.workloads.stream import StreamKernel, StreamWorkload

#: Fractions of the working set granted as local memory (the x-axes).
LOCAL_FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def _trackfm(working_set: int, local_frac: float, object_size: int) -> TrackFMRuntime:
    local = max(object_size, int(working_set * local_frac))
    return TrackFMRuntime(
        PoolConfig(
            object_size=object_size,
            local_memory=local,
            heap_size=working_set * 2,
        )
    )


def _fastswap(working_set: int, local_frac: float) -> FastswapRuntime:
    local = max(4096, int(working_set * local_frac))
    return FastswapRuntime(
        FastswapConfig(local_memory=local, heap_size=working_set * 2)
    )


def _stream_cycles(
    workload: StreamWorkload,
    working_set: int,
    frac: float,
    strategy: GuardStrategy,
    object_size: int = 4 * KB,
) -> float:
    return workload.run_trackfm(_trackfm(working_set, frac, object_size), strategy)


def fig07(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    fractions: Sequence[float] = LOCAL_FRACTIONS,
) -> ExperimentResult:
    """Loop chunking speedup on STREAM Sum/Copy (12 GB working set)."""
    working_set = scale.bytes(12 * GB)
    result = ExperimentResult(
        "fig07",
        "Loop chunking speedup over the naive transform (STREAM)",
        "local mem [% of 12GB]",
        [f"{f:.0%}" for f in fractions],
        "speedup (chunked / naive, no prefetch)",
    )
    for kernel in (StreamKernel.SUM, StreamKernel.COPY):
        speedups: List[float] = []
        for frac in fractions:
            wl = StreamWorkload(working_set, kernel=kernel)
            naive = _stream_cycles(wl, working_set, frac, GuardStrategy.NAIVE)
            wl2 = StreamWorkload(working_set, kernel=kernel)
            chunked = _stream_cycles(wl2, working_set, frac, GuardStrategy.CHUNKED)
            speedups.append(naive / chunked)
        result.add_series(kernel.value.capitalize(), speedups)
    result.note("paper: 1.5-2x, rising toward full local memory")
    return result


def fig10(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    object_sizes: Sequence[int] = (4 * KB, 2 * KB, 1 * KB, 512, 256),
    fractions: Sequence[float] = LOCAL_FRACTIONS,
) -> ExperimentResult:
    """Object-size impact on STREAM copy bandwidth (9 GB working set)."""
    working_set = scale.bytes(9 * GB)
    result = ExperimentResult(
        "fig10",
        "STREAM copy far-memory bandwidth vs object size",
        "local mem [% of 9GB]",
        [f"{f:.0%}" for f in fractions],
        "memory bandwidth (MB/s)",
    )
    for size in object_sizes:
        bw: List[float] = []
        for frac in fractions:
            wl = StreamWorkload(working_set, kernel=StreamKernel.COPY)
            cycles = _stream_cycles(
                wl, working_set, frac, GuardStrategy.CHUNKED_PREFETCH, size
            )
            bw.append(wl.bandwidth_mb_per_s(cycles, CPU_HZ))
        label = f"{size // KB}KB" if size >= KB else f"{size}B"
        result.add_series(label, bw)
    result.note("paper: high spatial locality favours 4KB objects")
    return result


def fig11(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    fractions: Sequence[float] = LOCAL_FRACTIONS,
) -> ExperimentResult:
    """Prefetching + chunking vs chunking alone (STREAM, 12 GB)."""
    working_set = scale.bytes(12 * GB)
    result = ExperimentResult(
        "fig11",
        "Speedup of prefetching coupled with loop chunking (STREAM)",
        "local mem [% of 12GB]",
        [f"{f:.0%}" for f in fractions],
        "speedup (chunk+prefetch / chunk only)",
    )
    for kernel in (StreamKernel.SUM, StreamKernel.COPY):
        speedups: List[float] = []
        for frac in fractions:
            wl = StreamWorkload(working_set, kernel=kernel)
            plain = _stream_cycles(wl, working_set, frac, GuardStrategy.CHUNKED)
            wl2 = StreamWorkload(working_set, kernel=kernel)
            pref = _stream_cycles(
                wl2, working_set, frac, GuardStrategy.CHUNKED_PREFETCH
            )
            speedups.append(plain / pref)
        result.add_series(kernel.value.capitalize(), speedups)
    result.note("paper: up to ~5x when remote costs dominate, shrinking to ~1x")
    return result


def fig12(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    fractions: Sequence[float] = LOCAL_FRACTIONS,
) -> ExperimentResult:
    """TrackFM (chunking + prefetching) vs Fastswap on STREAM (12 GB)."""
    working_set = scale.bytes(12 * GB)
    result = ExperimentResult(
        "fig12",
        "STREAM speedup relative to Fastswap",
        "local mem [% of 12GB]",
        [f"{f:.0%}" for f in fractions],
        "speedup vs Fastswap",
    )
    for kernel in (StreamKernel.SUM, StreamKernel.COPY):
        speedups: List[float] = []
        for frac in fractions:
            wl = StreamWorkload(working_set, kernel=kernel)
            tfm = _stream_cycles(
                wl, working_set, frac, GuardStrategy.CHUNKED_PREFETCH
            )
            wl2 = StreamWorkload(working_set, kernel=kernel)
            fsw = wl2.run_fastswap(_fastswap(working_set, frac))
            speedups.append(fsw / tfm)
        result.add_series(kernel.value.capitalize(), speedups)
    result.note("paper: ~2.7x (Sum) and ~2.9x (Copy) over Fastswap")
    return result
