"""Command-line figure regeneration, mirroring the artifact's make targets.

Usage::

    python -m repro.bench fig14          # one experiment
    python -m repro.bench table1 fig07   # several
    python -m repro.bench --list         # show what exists
    python -m repro.bench --all          # everything (a few seconds)
    python -m repro.bench regress --check   # baseline gate (see regress.py)
    python -m repro.bench ablate --quick    # ablation matrix (see repro.ablate)

The original artifact exposes ``make trackfm_fig14a`` etc.; this is the
equivalent entry point for the reproduction.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench import (
    compile_costs,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17a,
    fig17b,
    table1,
    table2,
    table4,
)
from repro.bench.ablations import (
    ablation_chase_prefetch,
    ablation_chunk_setup,
    ablation_evacuator_policy,
    ablation_heap_pruning,
    ablation_hybrid_memcached,
    ablation_multisize,
    ablation_offload,
    ablation_prefetch_depth,
    ablation_state_table,
)

EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1,
    "table2": table2,
    "table4": table4,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17a": fig17a,
    "fig17b": fig17b,
    "compile_costs": compile_costs,
    "ablation_state_table": ablation_state_table,
    "ablation_prefetch_depth": ablation_prefetch_depth,
    "ablation_evacuator_policy": ablation_evacuator_policy,
    "ablation_chunk_setup": ablation_chunk_setup,
    "ablation_heap_pruning": ablation_heap_pruning,
    "ablation_hybrid_memcached": ablation_hybrid_memcached,
    "ablation_chase_prefetch": ablation_chase_prefetch,
    "ablation_offload": ablation_offload,
    "ablation_multisize": ablation_multisize,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "regress":
        # The baseline gate has its own flags (--record/--check/...);
        # hand the rest of the command line straight to it.
        from repro.bench.regress import main as regress_main

        return regress_main(argv[1:])
    if argv and argv[0] == "pprefetch":
        # Programmed-prefetch baseline gate: same dispatch convention.
        from repro.bench.prefetch_regress import main as pprefetch_main

        return pprefetch_main(argv[1:])
    if argv and argv[0] == "serving":
        # Sharded serving-layer curves + baseline gate: same convention.
        from repro.bench.serving import main as serving_main

        return serving_main(argv[1:])
    if argv and argv[0] == "hybrid":
        # Adaptive-hybrid matrix + baseline gate: same convention.
        from repro.bench.hybrid import main as hybrid_main

        return hybrid_main(argv[1:])
    if argv and argv[0] == "ablate":
        # Ablation matrix + ranked importance report: same convention.
        from repro.ablate.__main__ import main as ablate_main

        return ablate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names (fig07, table1, ...)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help=(
            "run the experiments on a fault-injected fabric, e.g. "
            "'seed=1,drop=0.01,jitter=400' (see docs/resilience.md); "
            "not available for the regress baseline gate, which must "
            "stay fault-free"
        ),
    )
    parser.add_argument(
        "--integrity", type=str, default=None, metavar="SPEC",
        help=(
            "checksum-verify fetched payloads while the experiments "
            "run: 'on' or 'seed=1,refetch=2,verify=25' (see "
            "docs/resilience.md); not honored by the regress gate, "
            "whose baselines are recorded verification-free"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        try:
            for name in EXPERIMENTS:
                print(name)
        except BrokenPipeError:
            sys.stderr.close()
        return 0
    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    from contextlib import ExitStack

    try:
        with ExitStack() as stack:
            if args.faults is not None:
                from repro.net.faults import installed_fault_plan, parse_fault_spec

                stack.enter_context(installed_fault_plan(parse_fault_spec(args.faults)))
            if args.integrity is not None:
                from repro.integrity import (
                    installed_integrity_config,
                    parse_integrity_spec,
                )

                stack.enter_context(
                    installed_integrity_config(parse_integrity_spec(args.integrity))
                )
            for name in names:
                print(EXPERIMENTS[name]().to_text())
                print()
    except BrokenPipeError:  # e.g. piped into head
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
