"""Programmed-prefetch baselines: demand misses, stride vs programmed.

The :class:`ProgrammedPrefetchPass` exists to beat the runtime stride
prefetcher on oblivious loops: the stride learner burns demand misses
while it gains confidence, the programmed schedule primes before the
first iteration.  This module freezes that win behind checked-in
baselines so it can never silently regress:

* for each workload, a deterministic run per prefetch mode records the
  demand-miss count (``metrics.remote_fetches``), useful prefetches,
  bytes fetched and total cycles;
* ``--check`` re-measures and demands (a) exact equality with the
  recorded numbers (the simulation is deterministic — any diff is
  semantic drift) and (b) the structural invariant
  ``programmed demand misses <= stride demand misses``.

Baselines live in ``benchmarks/baselines/BENCH_pprefetch_<name>.json``::

    python -m repro.bench pprefetch --record   # (re)write baselines
    python -m repro.bench pprefetch --check    # gate (CI runs this)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.ir.module import Module

#: Compile/runtime shape: objects small enough that loops cross many
#: boundaries, local memory large enough that prefetched objects are
#: not evicted before use (we are measuring prefetch efficacy, not
#: eviction policy).
OBJECT_SIZE = 256
LOCAL_OBJECTS = 64
NAS_N = 256

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"


def _build_stream() -> Module:
    from repro.trace.drivers import _build_stream_module

    return _build_stream_module()


def _build_nas_cg() -> Module:
    from repro.workloads.nas import build_nas_ir

    return build_nas_ir("CG", n=NAS_N)


WORKLOADS: Dict[str, Callable[[], Module]] = {
    "stream": _build_stream,
    "nas_cg": _build_nas_cg,
}


def _run_mode(build: Callable[[], Module], programmed: bool) -> Dict[str, object]:
    from repro.aifm.pool import PoolConfig
    from repro.compiler import ChunkingPolicy, CompilerConfig, TrackFMCompiler
    from repro.sim.irrun import TrackFMProgram
    from repro.trackfm.runtime import TrackFMRuntime

    module = build()
    config = CompilerConfig(
        object_size=OBJECT_SIZE,
        chunking=ChunkingPolicy.ALL,
        enable_programmed_prefetch=programmed,
    )
    TrackFMCompiler(config).compile(module)
    runtime = TrackFMRuntime(
        PoolConfig(
            object_size=OBJECT_SIZE,
            local_memory=LOCAL_OBJECTS * OBJECT_SIZE,
            heap_size=1 << 20,
        )
    )
    result = TrackFMProgram(module, runtime).run("main")
    m = runtime.metrics
    return {
        "value": result.value,
        "demand_misses": m.remote_fetches,
        "prefetches_issued": m.prefetches_issued,
        "prefetches_useful": m.prefetches_useful,
        "bytes_fetched": m.bytes_fetched,
        "cycles": m.cycles,
    }


def measure_bench(name: str) -> Dict[str, object]:
    """Deterministic stride-vs-programmed measurement for one workload."""
    build = WORKLOADS[name]
    stride = _run_mode(build, programmed=False)
    programmed = _run_mode(build, programmed=True)
    return {
        "bench": f"pprefetch_{name}",
        "object_size": OBJECT_SIZE,
        "local_objects": LOCAL_OBJECTS,
        "stride": stride,
        "programmed": programmed,
    }


def baseline_path(baseline_dir: Path, name: str) -> Path:
    return Path(baseline_dir) / f"BENCH_pprefetch_{name}.json"


def record_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> List[Path]:
    baseline_dir = Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in benches or list(WORKLOADS):
        data = measure_bench(name)
        path = baseline_path(baseline_dir, name)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def check_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> Dict[str, object]:
    """Exact-match gate plus the programmed<=stride invariant."""
    report: Dict[str, object] = {"benches": {}, "ok": True}
    for name in benches or list(WORKLOADS):
        path = baseline_path(Path(baseline_dir), name)
        entry: Dict[str, object] = {"baseline": str(path)}
        report["benches"][name] = entry  # type: ignore[index]
        if not path.exists():
            entry["status"] = "missing-baseline"
            entry["hint"] = "run: python -m repro.bench pprefetch --record"
            report["ok"] = False
            continue
        baseline = json.loads(path.read_text())
        measured = measure_bench(name)
        stride, programmed = measured["stride"], measured["programmed"]
        entry["measured"] = measured
        if programmed["value"] != stride["value"]:
            entry["status"] = "semantics-diverge"
            report["ok"] = False
            continue
        if programmed["demand_misses"] > stride["demand_misses"]:
            entry["status"] = "prefetch-regression"
            entry["detail"] = (
                f"programmed {programmed['demand_misses']} demand misses > "
                f"stride {stride['demand_misses']}"
            )
            report["ok"] = False
            continue
        if measured != baseline:
            entry["status"] = "baseline-mismatch"
            entry["expected"] = baseline
            report["ok"] = False
            continue
        entry["status"] = "ok"
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench pprefetch",
        description="Record or check programmed-prefetch baselines.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--record", action="store_true", help="measure and (re)write baselines"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against recorded baselines"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"baseline directory (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(WORKLOADS),
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the check report JSON here"
    )
    args = parser.parse_args(argv)

    if args.record:
        for path in record_baselines(args.baseline_dir, args.bench):
            print(f"recorded {path}")
        return 0

    report = check_baselines(args.baseline_dir, args.bench)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name, entry in report["benches"].items():  # type: ignore[union-attr]
        status = entry["status"]
        marker = "ok" if status == "ok" else f"FAILED ({status})"
        print(f"[pprefetch] {name}: {marker}")
    if not report["ok"]:
        print("[pprefetch] baseline gate FAILED", file=sys.stderr)
        return 1
    print("[pprefetch] all baselines hold")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro.bench
    sys.exit(main())
