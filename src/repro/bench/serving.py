"""Serving-layer benchmark + baseline gate: ``python -m repro.bench serving``.

Sweeps the sharded serving simulation over a client-count × shard-count
matrix ({100, 1k, 10k} open-loop clients against {1, 4, 16} far-node
shards) plus one chaos cell (4 shards, one knocked out mid-run and
rebalanced away) and one replicated pair (the same knockout at R=2,
where failover promotes surviving replicas and zero keys re-seed), and
reports throughput and p50/p95/p99 end-to-end latency per cell.

Every cell is a deterministic discrete-event simulation — seeded
arrivals, seeded Zipf keys, seeded fault schedules — so the full
:class:`~repro.serve.simulation.ServingReport` is bit-identical across
reruns.  That is what the baseline gate exploits: baselines are the
*exact* report dictionaries, compared with ``==`` and no tolerance::

    python -m repro.bench serving            # print the curves
    python -m repro.bench serving --record   # (re)write baselines
    python -m repro.bench serving --check    # gate (CI runs this)

Baselines live in ``benchmarks/baselines/BENCH_serving_*.json`` — one
file per client count plus one for the chaos cell.  Re-record after an
intentional serving-layer change and commit the diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.serve.cluster import ClusterConfig, ShardedCluster
from repro.serve.simulation import ChaosAction, ServingSimulation
from repro.serve.traffic import TrafficConfig, generate_schedule

#: The acceptance matrix.
CLIENT_COUNTS = (100, 1_000, 10_000)
SHARD_COUNTS = (1, 4, 16)

#: Total requests per cell (split across the cell's clients) — enough
#: to queue meaningfully, small enough that the full sweep is seconds.
TOTAL_REQUESTS = 10_000

#: Keyspace and per-shard sizing: 4096 keys x 8 B = 32 KB of slots per
#: shard worst-case vs 4 KB local — a single shard runs memory-starved,
#: sixteen shards run resident, which is the curve the sweep shows.
N_KEYS = 4096
LOCAL_MEMORY = 4 * 1024

#: The cell seed: every schedule and cluster derives from this.
SEED = 2024

#: Chaos cell shape: 4 shards, shard 1 dies at 40% of the run and is
#: rebalanced away at 70%.
CHAOS_SHARDS = 4
CHAOS_LOSE_FRACTION = 0.4
CHAOS_REBALANCE_FRACTION = 0.7
CHAOS_LOST_SHARD = 1

#: Replica count of the replicated bench cells (quorum: write-all,
#: read-one).
REPLICATION = 2

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"

RUNTIME_KIND = "trackfm"


def _traffic(clients: int) -> TrafficConfig:
    return TrafficConfig(
        clients=clients,
        requests_per_client=max(1, TOTAL_REQUESTS // clients),
        n_keys=N_KEYS,
        seed=SEED,
    )


def _cluster(n_shards: int, replication: int = 1) -> ShardedCluster:
    return ShardedCluster(
        ClusterConfig(
            n_shards=n_shards,
            n_keys=N_KEYS,
            runtime=RUNTIME_KIND,
            local_memory=LOCAL_MEMORY,
            seed=SEED,
            replication=replication,
        )
    )


def run_cell(clients: int, n_shards: int, replication: int = 1) -> Dict[str, object]:
    """One fault-free matrix cell; returns the exact report dict."""
    schedule = generate_schedule(_traffic(clients))
    report = ServingSimulation(_cluster(n_shards, replication), schedule).run()
    return report.to_dict()


def run_chaos_cell(clients: int = 1_000, replication: int = 1) -> Dict[str, object]:
    """The knockout cell: lose one of four shards mid-run, rebalance,
    and still finish — the report's degraded/reseeded counters are part
    of the pinned baseline (exact retry/degrade accounting).  At
    ``replication >= 2`` the failure detector suspects the dead shard
    and failover promotes surviving replicas (zero re-seeds); the
    scripted rebalance becomes a no-op if detection beat it."""
    schedule = generate_schedule(_traffic(clients))
    end = float(schedule.times[-1])
    chaos = (
        ChaosAction(end * CHAOS_LOSE_FRACTION, "lose", CHAOS_LOST_SHARD),
        ChaosAction(end * CHAOS_REBALANCE_FRACTION, "rebalance"),
    )
    report = ServingSimulation(
        _cluster(CHAOS_SHARDS, replication), schedule, chaos
    ).run()
    return report.to_dict()


def measure_client_count(clients: int) -> Dict[str, object]:
    """All shard counts for one client count (one baseline file)."""
    return {
        "bench": f"serving_c{clients}",
        "clients": clients,
        "runtime": RUNTIME_KIND,
        "cells": {
            f"shards_{s}": run_cell(clients, s) for s in SHARD_COUNTS
        },
    }


def measure_chaos() -> Dict[str, object]:
    return {
        "bench": "serving_chaos",
        "clients": 1_000,
        "runtime": RUNTIME_KIND,
        "cells": {"knockout": run_chaos_cell()},
    }


def measure_replicated() -> Dict[str, object]:
    """The R=2 pair: fault-free (replication overhead vs the R=1 cells)
    and the knockout (lossless failover — ``reseeded_keys`` stays 0 and
    ``failovers``/``promoted_keys`` are pinned exactly)."""
    return {
        "bench": "serving_replicated",
        "clients": 1_000,
        "runtime": RUNTIME_KIND,
        "replication": REPLICATION,
        "cells": {
            "fault_free": run_cell(1_000, CHAOS_SHARDS, REPLICATION),
            "knockout": run_chaos_cell(replication=REPLICATION),
        },
    }


def _bench_names() -> List[str]:
    return [f"c{c}" for c in CLIENT_COUNTS] + ["chaos", "replicated"]


def measure(name: str) -> Dict[str, object]:
    if name == "chaos":
        return measure_chaos()
    if name == "replicated":
        return measure_replicated()
    return measure_client_count(int(name[1:]))


def baseline_path(baseline_dir: Path, name: str) -> Path:
    return Path(baseline_dir) / f"BENCH_serving_{name}.json"


def record_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> List[Path]:
    baseline_dir = Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in benches or _bench_names():
        path = baseline_path(baseline_dir, name)
        path.write_text(json.dumps(measure(name), indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def check_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> Dict[str, object]:
    """Re-measure every cell and compare exactly (no tolerance).

    The simulation is a pure function of its seeds, so any diff is a
    semantic change in the serving stack, never noise.
    """
    report: Dict[str, object] = {"benches": {}, "ok": True}
    for name in benches or _bench_names():
        path = baseline_path(Path(baseline_dir), name)
        entry: Dict[str, object] = {"baseline": str(path)}
        report["benches"][name] = entry  # type: ignore[index]
        if not path.exists():
            entry["status"] = "missing-baseline"
            entry["hint"] = "run: python -m repro.bench serving --record"
            report["ok"] = False
            continue
        baseline = json.loads(path.read_text())
        measured = measure(name)
        if measured != baseline:
            diffs = _diff_cells(baseline.get("cells", {}), measured.get("cells", {}))
            entry["status"] = "mismatch"
            entry["diff"] = diffs
            report["ok"] = False
            continue
        entry["status"] = "ok"
    return report


def _diff_cells(
    expected: Dict[str, object], got: Dict[str, object]
) -> Dict[str, object]:
    """Per-cell, per-field diff so a gate failure names the drift."""
    out: Dict[str, object] = {}
    for cell in sorted(set(expected) | set(got)):
        e, g = expected.get(cell), got.get(cell)
        if e == g:
            continue
        if not isinstance(e, dict) or not isinstance(g, dict):
            out[cell] = {"expected": e, "got": g}
            continue
        fields = {
            key: {"expected": e.get(key), "got": g.get(key)}
            for key in sorted(set(e) | set(g))
            if e.get(key) != g.get(key)
        }
        out[cell] = fields
    return out


# -- human-readable curves ----------------------------------------------------


def curves_text(replication: int = 1) -> str:
    """The throughput/latency matrix as a text table."""
    posture = f", replication {replication}" if replication > 1 else ""
    lines = [
        "serving: open-loop clients vs far-node shards "
        f"({RUNTIME_KIND} shards, {TOTAL_REQUESTS} requests/cell, "
        f"{N_KEYS} keys, seed {SEED}{posture})",
        "",
        f"{'clients':>8} {'shards':>7} {'req/Mcyc':>10} "
        f"{'p50':>9} {'p95':>10} {'p99':>11} {'degraded':>9}",
    ]
    for clients in CLIENT_COUNTS:
        for shards in SHARD_COUNTS:
            if shards < replication:
                continue  # fewer shards than replicas: not a posture
            cell = run_cell(clients, shards, replication)
            p = cell["latency_percentiles"]
            lines.append(
                f"{clients:>8} {shards:>7} {cell['throughput_per_mcycle']:>10.1f} "
                f"{p['p50']:>9.0f} {p['p95']:>10.0f} {p['p99']:>11.0f} "
                f"{cell['degraded_requests']:>9}"
            )
    chaos = run_chaos_cell(replication=replication)
    p = chaos["latency_percentiles"]
    lines.append(
        f"{1000:>8} {'4-1':>7} {chaos['throughput_per_mcycle']:>10.1f} "
        f"{p['p50']:>9.0f} {p['p95']:>10.0f} {p['p99']:>11.0f} "
        f"{chaos['degraded_requests']:>9}  <- knockout + rebalance"
    )
    stats = chaos["cluster_stats"]
    if replication > 1:
        lines.append(
            f"\nchaos cell (R={replication}): {stats['reseeded_keys']} keys "
            f"re-seeded, {stats.get('promoted_keys', 0)} replica copies promoted "
            f"after losing shard {CHAOS_LOST_SHARD} of {CHAOS_SHARDS}; run "
            f"completed with {chaos['degraded_requests']} degraded requests"
        )
    else:
        lines.append(
            f"\nchaos cell: {stats['reseeded_keys']} keys re-seeded after losing "
            f"shard {CHAOS_LOST_SHARD} of {CHAOS_SHARDS}; run completed with "
            f"{chaos['degraded_requests']} degraded requests"
        )
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serving",
        description="Serving-layer curves and their exact baseline gate.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--record", action="store_true", help="measure and (re)write baselines"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against recorded baselines"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"baseline directory (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=_bench_names(),
        help="restrict to one bench (repeatable; default: all)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the check report JSON here"
    )
    parser.add_argument(
        "--replication", type=int, default=1, metavar="N",
        help=(
            "replica count for the printed curves (default 1; the "
            "recorded 'replicated' baseline always uses "
            f"R={REPLICATION})"
        ),
    )
    args = parser.parse_args(argv)

    if args.record:
        for path in record_baselines(args.baseline_dir, args.bench):
            print(f"recorded {path}")
        return 0
    if args.check:
        report = check_baselines(args.baseline_dir, args.bench)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        for name, entry in report["benches"].items():  # type: ignore[union-attr]
            status = entry["status"]
            line = f"serving_{name}: {status}"
            if status == "mismatch":
                line += f"  diff cells: {sorted(entry['diff'])}"
            print(line, file=sys.stderr if status != "ok" else sys.stdout)
        return 0 if report["ok"] else 1

    print(curves_text(replication=args.replication))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
