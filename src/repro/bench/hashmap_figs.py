"""Hashmap figures: 9 (object size) and 13 (I/O amplification)."""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.harness import CPU_HZ, ExperimentResult
from repro.machine.scale import ScaleModel
from repro.units import GB, KB, MB
from repro.workloads.hashmap import HashmapWorkload

#: Milder shrink for the hashmap: enough buckets for the zipf heat
#: aggregation to be smooth at every object size.
HASHMAP_SCALE = ScaleModel(factor=256)

FRACTIONS = (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)


def _workload(scale: ScaleModel) -> HashmapWorkload:
    working_set = scale.bytes(2 * GB)
    return HashmapWorkload(
        working_set=working_set,
        n_lookups=scale.count(50_000_000, floor=100_000),
        skew=1.02,
        trace_bytes=scale.bytes(190 * MB),
    )


def fig09(
    scale: ScaleModel = HASHMAP_SCALE,
    object_sizes: Sequence[int] = (4 * KB, 2 * KB, 1 * KB, 512, 256),
    fractions: Sequence[float] = FRACTIONS,
) -> ExperimentResult:
    """Object-size impact on zipf hashmap throughput (2 GB working set).

    Fig. 9a sweeps local memory for each object size; Fig. 9b is the
    25 % column of the same data.
    """
    wl = _workload(scale)
    result = ExperimentResult(
        "fig09",
        "Hashmap (zipf 1.02) throughput vs object size",
        "local mem [% of 2GB]",
        [f"{f:.0%}" for f in fractions],
        "throughput (MOps/s)",
    )
    for size in object_sizes:
        series: List[float] = []
        for frac in fractions:
            local = max(size, int(wl.working_set * frac))
            res = wl.run_trackfm(object_size=size, local_memory=local)
            series.append(res.throughput_mops(CPU_HZ))
        label = f"{size // KB}KB" if size >= KB else f"{size}B"
        result.add_series(label, series)
    result.note("paper: little spatial locality -> small object sizes win")
    return result


def fig13(
    scale: ScaleModel = HASHMAP_SCALE,
    fractions: Sequence[float] = FRACTIONS,
) -> ExperimentResult:
    """TrackFM 64 B objects vs Fastswap on the hashmap: time + data moved.

    Two series pairs: execution time (seconds) and total data fetched
    (GB, paper-scale equivalent via the scale factor) — Fig. 13a/13b.
    """
    wl = _workload(scale)
    result = ExperimentResult(
        "fig13",
        "Hashmap I/O amplification: TrackFM (64B) vs Fastswap (4KB pages)",
        "local mem [% of 2GB]",
        [f"{f:.0%}" for f in fractions],
        "execution time (s) / data fetched (GB, paper scale)",
    )
    tfm_time: List[float] = []
    fsw_time: List[float] = []
    tfm_data: List[float] = []
    fsw_data: List[float] = []
    for frac in fractions:
        local = max(64, int(wl.working_set * frac))
        tfm = wl.run_trackfm(object_size=64, local_memory=local)
        fsw = wl.run_fastswap(local_memory=local)
        # Paper-scale wall time and bytes: the scale factor shrinks both
        # the working set and the op count linearly, so multiply back.
        tfm_time.append(tfm.execution_seconds(CPU_HZ) * scale.factor)
        fsw_time.append(fsw.execution_seconds(CPU_HZ) * scale.factor)
        tfm_data.append(tfm.metrics.total_bytes_transferred * scale.factor / GB)
        fsw_data.append(fsw.metrics.total_bytes_transferred * scale.factor / GB)
    result.add_series("TrackFM 64B time (s)", tfm_time)
    result.add_series("Fastswap time (s)", fsw_time)
    result.add_series("TrackFM 64B data (GB)", tfm_data)
    result.add_series("Fastswap data (GB)", fsw_data)
    tfm_amp = wl.run_trackfm(64, int(wl.working_set * 0.25)).amplification(wl.working_set)
    fsw_amp = wl.run_fastswap(int(wl.working_set * 0.25)).amplification(wl.working_set)
    result.note(
        f"amplification at 25% local: TrackFM {tfm_amp:.1f}x vs Fastswap "
        f"{fsw_amp:.1f}x (paper: 2.3x vs 43x)"
    )
    return result
