"""§4.6: compilation costs — code-size growth and compile-time ratio.

The paper reports an average 2.4x generated-code-size increase
(proportional to the number of memory instructions, each expanded into
a guard) and compile times under 6x standard LLVM.  We reproduce both
over a small corpus of IR programs: code size via the pipeline's
native-expansion estimate, compile time as (full TrackFM pipeline) /
(O1-only baseline).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import ExperimentResult, geomean
from repro.compiler.optimize import O1Pipeline
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.pipeline import CompilerConfig, TrackFMCompiler
from repro.ir import IRBuilder, Module
from repro.ir.types import I64, PTR
from repro.ir.values import Constant
from repro.workloads.nas import build_nas_ir


def _build_sum_loop(n: int = 1000) -> Module:
    m = Module("sumloop")
    f = m.add_function("main", I64)
    entry, header, body, exit_ = (f.add_block(x) for x in ("entry", "header", "body", "exit"))
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", i, n), body, exit_)
    b.set_block(body)
    v = b.load(I64, b.gep(p, i, 8))
    s2 = b.add(s, v)
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), entry)
    s.add_incoming(s2, body)
    b.set_block(exit_)
    b.ret(s)
    return m


def _build_pointer_chase(n: int = 64) -> Module:
    """Irregular accesses: every load needs a full guard (no chunking)."""
    m = Module("chase")
    f = m.add_function("main", I64)
    entry, header, body, exit_ = (f.add_block(x) for x in ("entry", "header", "body", "exit"))
    b = IRBuilder(entry)
    p = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="p")
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name="i")
    acc = b.phi(I64, name="acc")
    b.condbr(b.icmp("slt", i, n), body, exit_)
    b.set_block(body)
    # Index depends on the accumulator: not an induction pattern.
    idx = b.srem(acc, n)
    v = b.load(I64, b.gep(p, idx, 8))
    acc2 = b.add(b.add(acc, v), 7)
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    acc.add_incoming(Constant(I64, 1), entry)
    acc.add_incoming(acc2, body)
    b.set_block(exit_)
    b.ret(acc)
    return m


#: The corpus: program name -> builder.
CORPUS: Dict[str, Callable[[], Module]] = {
    "sum-loop": _build_sum_loop,
    "pointer-chase": _build_pointer_chase,
    "nas-ft": lambda: build_nas_ir("FT"),
    "nas-sp": lambda: build_nas_ir("SP"),
    "nas-cg": lambda: build_nas_ir("CG"),
}


def compile_costs() -> ExperimentResult:
    """Code-size factor and compile-time ratio per corpus program."""
    names = list(CORPUS)
    result = ExperimentResult(
        "compile_costs",
        "Compilation costs (§4.6): code size growth and compile time",
        "program",
        names + ["mean"],
        "x vs untransformed / x vs O1-only compile",
    )
    size_factors: List[float] = []
    time_ratios: List[float] = []
    for name in names:
        module = CORPUS[name]()
        res = TrackFMCompiler(CompilerConfig()).compile(module)
        size_factors.append(res.code_size_factor)

        baseline = CORPUS[name]()
        started = time.perf_counter()
        ctx = PassContext(config=CompilerConfig())
        PassManager([O1Pipeline()]).run(baseline, ctx)
        baseline_time = max(time.perf_counter() - started, 1e-6)
        time_ratios.append(max(res.compile_seconds / baseline_time, 0.01))
    result.add_series("code size (x)", size_factors + [geomean(size_factors)])
    result.add_series("compile time (x)", time_ratios + [geomean(time_ratios)])
    result.note("paper: code size ~2.4x average; compile time under 6x LLVM")
    return result
