"""Shared benchmark plumbing: result containers and text rendering."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import BenchError
from repro.machine.scale import ScaleModel

#: The testbed's clock (Xeon E5-2640v4 @ 2.40 GHz).
CPU_HZ = 2.4e9

#: Default working-set shrink for benchmark sweeps (GB -> MB).
DEFAULT_BENCH_SCALE = ScaleModel(factor=1024)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (Fig. 17a's GeoM column)."""
    vals = [v for v in values if v > 0]
    if not vals:
        raise BenchError("geomean of no positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class Series:
    """One line/bar group of a figure."""

    name: str
    values: List[float]

    def __post_init__(self) -> None:
        self.values = [float(v) for v in self.values]


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment: str
    title: str
    #: X-axis (or row) labels.
    x_label: str
    x_values: List[object]
    #: Y-axis description.
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        if len(values) != len(self.x_values):
            raise BenchError(
                f"{self.experiment}: series {name!r} has {len(values)} points "
                f"for {len(self.x_values)} x values"
            )
        self.series.append(Series(name, list(values)))

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise BenchError(f"{self.experiment}: no series {name!r}")

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- rendering ---------------------------------------------------------

    def to_text(self) -> str:
        """A compact fixed-width table, printable from the bench harness."""
        header = [self.x_label] + [s.name for s in self.series]
        rows: List[List[str]] = []
        for i, x in enumerate(self.x_values):
            row = [self._fmt(x)]
            for s in self.series:
                row.append(self._fmt(s.values[i]))
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        lines.append(f"(y: {self.y_label})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    @staticmethod
    def _fmt(v: object) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000:
                return f"{v:,.0f}"
            if abs(v) >= 10:
                return f"{v:.1f}"
            return f"{v:.3f}"
        return str(v)


def local_memory_sweep(fractions: Sequence[float], working_set: int) -> List[int]:
    """Local-memory budgets for a sweep over working-set fractions."""
    out = []
    for f in fractions:
        if not 0 < f <= 1.0:
            raise BenchError(f"local-memory fraction {f} out of (0, 1]")
        out.append(max(4096, int(working_set * f) // 4096 * 4096))
    return out
