"""Benchmark baselines: the perf + semantics regression gate.

Every simulated number in this repro flows through the interpreter, so
the interpreter's speed *and* its exact semantics are product surface.
This module freezes both behind checked-in baselines:

* a **semantic fingerprint** per workload — the return value, the
  dynamic step count, and the full :meth:`Metrics.as_dict` of a
  TrackFM-compiled run on a memory-constrained far-memory runtime.
  Fingerprints must match **exactly**: the simulation is deterministic,
  so any diff is semantic drift, never noise;
* a **wall-clock measurement** — interpreted ops/sec of the raw module
  and the decoded-vs-legacy speedup.  Absolute ops/sec are recorded for
  trend-tracking but are host-specific; the *speedup ratio* is measured
  fresh on both engines each run, transfers across hosts, and is gated
  with a configurable tolerance band.

Baselines live in ``benchmarks/baselines/BENCH_interp_<name>.json``::

    python -m repro.bench regress --record   # (re)write baselines
    python -m repro.bench regress --check    # gate (CI runs this)

Re-record after an *intentional* semantic or performance change and
commit the diff; ``docs/performance.md`` documents the policy.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.ir.module import Module

#: Workload seeds are fixed: the fingerprints below must be
#: reproducible bit for bit from a clean checkout.
HASHMAP_SEED = 7
CHASE_SEED = 3
CHASE_NODES = 1024
CHASE_NODE_BYTES = 64

#: Perf-measurement shape: one warm-up run (which also pays the decode),
#: then best-of-``REPEATS`` timed runs.
REPEATS = 5

#: Default tolerance band for the decoded-vs-legacy speedup gate: the
#: measured speedup may fall at most this fraction below the recorded
#: one.  Fingerprints take no tolerance — they must match exactly.
DEFAULT_TOLERANCE = 0.35

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"


def _build_chase_module() -> Module:
    """A linked-list walk in stride-shuffled order (poor locality).

    ``CHASE_NODES`` nodes of ``CHASE_NODE_BYTES``; node ``i`` links to
    node ``(i + stride) mod N`` with an odd, seed-derived stride coprime
    to N, so one walk visits every node in a cache-hostile order.
    """
    from repro.ir import IRBuilder
    from repro.ir.types import I64, PTR
    from repro.ir.values import Constant

    n, node_sz = CHASE_NODES, CHASE_NODE_BYTES
    stride = (2 * CHASE_SEED + 1) * 37 % n | 1
    m = Module("regress_chase")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    bh, bb = f.add_block("bh"), f.add_block("bb")
    mid = f.add_block("mid")
    wh, wb = f.add_block("wh"), f.add_block("wb")
    done = f.add_block("done")
    b = IRBuilder(entry)
    base = b.call(PTR, "malloc", [Constant(I64, n * node_sz)], name="base")
    b.br(bh)
    b.set_block(bh)
    i = b.phi(I64, name="i")
    b.condbr(b.icmp("slt", i, n), bb, mid)
    b.set_block(bb)
    node = b.gep(base, i, node_sz)
    b.store(b.mul(i, 3), node)
    nxt_idx = b.and_(b.add(i, stride), n - 1)
    b.store(b.gep(base, nxt_idx, node_sz), b.gep(node, 1, 8))
    i2 = b.add(i, 1)
    b.br(bh)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, bb)
    b.set_block(mid)
    b.br(wh)
    # Walk exactly n hops starting at node 0, summing payloads.
    b.set_block(wh)
    k = b.phi(I64, name="k")
    p = b.phi(PTR, name="p")
    s = b.phi(I64, name="s")
    b.condbr(b.icmp("slt", k, n), wb, done)
    b.set_block(wb)
    s2 = b.add(s, b.load(I64, p))
    nextp = b.load(PTR, b.gep(p, 1, 8))
    k2 = b.add(k, 1)
    b.br(wh)
    k.add_incoming(Constant(I64, 0), mid)
    k.add_incoming(k2, wb)
    p.add_incoming(base, mid)
    p.add_incoming(nextp, wb)
    s.add_incoming(Constant(I64, 0), mid)
    s.add_incoming(s2, wb)
    b.set_block(done)
    b.ret(s)
    return m


def _build_stream() -> Module:
    from repro.trace.drivers import _build_stream_module

    return _build_stream_module()


def _build_hashmap() -> Module:
    from repro.trace.drivers import _build_hashmap_module

    return _build_hashmap_module(HASHMAP_SEED)


WORKLOADS: Dict[str, Callable[[], Module]] = {
    "stream": _build_stream,
    "hashmap": _build_hashmap,
    "chase": _build_chase_module,
}


# -- measurement --------------------------------------------------------------


def fingerprint_run(build: Callable[[], Module]) -> Dict[str, object]:
    """TrackFM-compile the workload and run it on a small far runtime.

    Returns the exact-match fingerprint: value, interpreter steps, and
    the runtime's canonical :meth:`Metrics.as_dict`.  Everything here is
    deterministic — fixed seeds, ``AlwaysHitCache``, no wall clock.
    """
    from repro.aifm.pool import PoolConfig
    from repro.compiler import CompilerConfig, TrackFMCompiler
    from repro.machine.cache import AlwaysHitCache
    from repro.sim.irrun import TrackFMProgram
    from repro.trackfm.runtime import TrackFMRuntime
    from repro.units import KB, MB

    compiled = TrackFMCompiler(CompilerConfig()).compile(build())
    runtime = TrackFMRuntime(
        PoolConfig(object_size=256, local_memory=2 * KB, heap_size=1 * MB),
        cache=AlwaysHitCache(),
    )
    result = TrackFMProgram(compiled.module, runtime).run("main")
    return {
        "value": result.value,
        "steps": result.steps,
        "metrics": runtime.metrics.as_dict(),
    }


def measure_ops(
    build: Callable[[], Module], engine: str, repeats: int = REPEATS
) -> Dict[str, float]:
    """Best-of-``repeats`` interpretation rate of the raw module.

    The first (untimed) run pays the pre-decode, so the timed runs
    measure steady-state interpretation — the quantity the decode cache
    exists to make fast.
    """
    from repro.sim.interpreter import Interpreter

    module = build()
    Interpreter(module, engine=engine).run("main")
    best = float("inf")
    steps = 0
    for _ in range(repeats):
        interp = Interpreter(module, engine=engine)
        t0 = time.perf_counter()
        result = interp.run("main")
        best = min(best, time.perf_counter() - t0)
        steps = result.steps
    return {"steps": steps, "seconds": best, "ops_per_sec": steps / best}


def measure_bench(name: str) -> Dict[str, object]:
    """Full measurement for one workload: fingerprint + both engines."""
    build = WORKLOADS[name]
    decoded = measure_ops(build, "decoded")
    legacy = measure_ops(build, "legacy")
    return {
        "bench": f"interp_{name}",
        "fingerprint": fingerprint_run(build),
        "ops_per_sec": decoded["ops_per_sec"],
        "legacy_ops_per_sec": legacy["ops_per_sec"],
        "speedup_vs_legacy": decoded["ops_per_sec"] / legacy["ops_per_sec"],
        "interp_steps": decoded["steps"],
    }


# -- baseline I/O -------------------------------------------------------------


def baseline_path(baseline_dir: Path, name: str) -> Path:
    return Path(baseline_dir) / f"BENCH_interp_{name}.json"


def record_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> List[Path]:
    """Measure and (re)write baseline files; returns the paths written."""
    baseline_dir = Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in benches or list(WORKLOADS):
        path = baseline_path(baseline_dir, name)
        data = measure_bench(name)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def check_baselines(
    baseline_dir: Path,
    benches: Optional[List[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, object]:
    """Compare fresh measurements against recorded baselines.

    Returns a JSON-safe report; ``report["ok"]`` is the gate.  Failure
    modes per bench: ``missing-baseline``, ``fingerprint-mismatch``
    (semantic drift — exact comparison), ``speedup-regression`` (the
    decoded-vs-legacy ratio fell more than ``tolerance`` below the
    recorded ratio).
    """
    report: Dict[str, object] = {"tolerance": tolerance, "benches": {}, "ok": True}
    for name in benches or list(WORKLOADS):
        path = baseline_path(Path(baseline_dir), name)
        entry: Dict[str, object] = {"baseline": str(path)}
        report["benches"][name] = entry  # type: ignore[index]
        if not path.exists():
            entry["status"] = "missing-baseline"
            entry["hint"] = "run: python -m repro.bench regress --record"
            report["ok"] = False
            continue
        baseline = json.loads(path.read_text())
        measured = measure_bench(name)
        entry["measured_ops_per_sec"] = measured["ops_per_sec"]
        entry["baseline_ops_per_sec"] = baseline.get("ops_per_sec")
        entry["measured_speedup"] = measured["speedup_vs_legacy"]
        entry["baseline_speedup"] = baseline.get("speedup_vs_legacy")
        if measured["fingerprint"] != baseline.get("fingerprint"):
            entry["status"] = "fingerprint-mismatch"
            entry["expected_fingerprint"] = baseline.get("fingerprint")
            entry["got_fingerprint"] = measured["fingerprint"]
            report["ok"] = False
            continue
        floor = float(baseline.get("speedup_vs_legacy", 0.0)) * (1.0 - tolerance)
        if measured["speedup_vs_legacy"] < floor:
            entry["status"] = "speedup-regression"
            entry["speedup_floor"] = floor
            report["ok"] = False
            continue
        entry["status"] = "ok"
    return report


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench regress",
        description="Record or check interpreter benchmark baselines.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--record", action="store_true", help="measure and (re)write baselines"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against recorded baselines"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"baseline directory (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop in decoded-vs-legacy speedup "
        f"(default: {DEFAULT_TOLERANCE}; fingerprints are always exact)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(WORKLOADS),
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the check report JSON here"
    )
    args = parser.parse_args(argv)

    if args.record:
        for path in record_baselines(args.baseline_dir, args.bench):
            print(f"recorded {path}")
        return 0

    report = check_baselines(args.baseline_dir, args.bench, args.tolerance)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name, entry in report["benches"].items():  # type: ignore[union-attr]
        status = entry["status"]
        line = f"{name}: {status}"
        if "measured_speedup" in entry and entry.get("baseline_speedup"):
            line += (
                f"  (speedup {entry['measured_speedup']:.2f}x"
                f" vs baseline {entry['baseline_speedup']:.2f}x,"
                f" {entry['measured_ops_per_sec']:,.0f} ops/s)"
            )
        print(line, file=sys.stderr if status != "ok" else sys.stdout)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
