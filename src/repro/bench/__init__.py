"""Benchmark harness: every table and figure of the paper's §4.

Each ``fig*``/``table*`` function returns an :class:`ExperimentResult`
holding the same rows/series the paper plots; ``benchmarks/`` wraps
them in pytest-benchmark entries and EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from repro.bench.harness import (
    CPU_HZ,
    ExperimentResult,
    Series,
    geomean,
    DEFAULT_BENCH_SCALE,
)
from repro.bench.tables import table1, table2, table4
from repro.bench.micro import fig06
from repro.bench.stream_figs import fig07, fig10, fig11, fig12
from repro.bench.hashmap_figs import fig09, fig13
from repro.bench.app_figs import fig08, fig14, fig15, fig16, fig17a, fig17b
from repro.bench.compile_costs import compile_costs
from repro.bench.regress import (
    check_baselines,
    measure_bench,
    record_baselines,
)

__all__ = [
    "check_baselines",
    "measure_bench",
    "record_baselines",
    "CPU_HZ",
    "ExperimentResult",
    "Series",
    "geomean",
    "DEFAULT_BENCH_SCALE",
    "table1",
    "table2",
    "table4",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17a",
    "fig17b",
    "compile_costs",
]
